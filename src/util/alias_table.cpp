#include "util/alias_table.hpp"

#include <cstddef>

#include "util/error.hpp"
#include "util/prefetch.hpp"

namespace noswalker::util {

void
AliasTable::sample_batch(Rng &rng, std::uint32_t *out, std::size_t n) const
{
    NOSWALKER_CHECK(!prob_.empty());
    // Chunked so the scratch stays register/L1 resident however large
    // the batch is.
    constexpr std::size_t kChunk = 64;
    std::uint32_t slot[kChunk];
    double coin[kChunk];
    for (std::size_t done = 0; done < n; done += kChunk) {
        const std::size_t m = n - done < kChunk ? n - done : kChunk;
        // Pass 1: consume the generator exactly as sequential sample()
        // calls would — (slot, coin) per draw — and start the row
        // loads early.
        for (std::size_t i = 0; i < m; ++i) {
            slot[i] =
                static_cast<std::uint32_t>(rng.next_index(prob_.size()));
            coin[i] = rng.next_double();
            prefetch_line(&prob_[slot[i]]);
            prefetch_line(&alias_[slot[i]]);
        }
        // Pass 2: branch-light resolution against in-flight lines.
        for (std::size_t i = 0; i < m; ++i) {
            const std::uint32_t s = slot[i];
            out[done + i] = coin[i] < prob_[s] ? s : alias_[s];
        }
    }
}

void
AliasTable::build(std::span<const double> weights)
{
    const std::size_t n = weights.size();
    NOSWALKER_CHECK(n > 0);

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);

    double total = 0.0;
    for (double w : weights) {
        NOSWALKER_CHECK(w >= 0.0);
        total += w;
    }
    if (total <= 0.0) {
        throw ConfigError("AliasTable: all weights are zero");
    }

    // Scaled weights: mean 1.  Partition into under-/over-full slots.
    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    const double scale = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * scale;
        if (scaled[i] < 1.0) {
            small.push_back(static_cast<std::uint32_t>(i));
        } else {
            large.push_back(static_cast<std::uint32_t>(i));
        }
    }

    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        const std::uint32_t l = large.back();
        small.pop_back();
        large.pop_back();
        prob_[s] = scaled[s];
        alias_[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0) {
            small.push_back(l);
        } else {
            large.push_back(l);
        }
    }
    // Numerical leftovers are exactly-full slots.
    for (std::uint32_t l : large) {
        prob_[l] = 1.0;
    }
    for (std::uint32_t s : small) {
        prob_[s] = 1.0;
    }
}

void
build_alias_arrays(std::span<const double> weights, std::span<float> prob,
                   std::span<std::uint32_t> alias)
{
    const std::size_t n = weights.size();
    NOSWALKER_CHECK(n > 0 && prob.size() == n && alias.size() == n);

    double total = 0.0;
    for (double w : weights) {
        NOSWALKER_CHECK(w >= 0.0);
        total += w;
    }
    if (total <= 0.0) {
        throw ConfigError("build_alias_arrays: all weights are zero");
    }

    std::vector<double> scaled(n);
    std::vector<std::uint32_t> small, large;
    small.reserve(n);
    large.reserve(n);
    const double scale = static_cast<double>(n) / total;
    for (std::size_t i = 0; i < n; ++i) {
        scaled[i] = weights[i] * scale;
        alias[i] = static_cast<std::uint32_t>(i);
        if (scaled[i] < 1.0) {
            small.push_back(static_cast<std::uint32_t>(i));
        } else {
            large.push_back(static_cast<std::uint32_t>(i));
        }
    }
    while (!small.empty() && !large.empty()) {
        const std::uint32_t s = small.back();
        const std::uint32_t l = large.back();
        small.pop_back();
        large.pop_back();
        prob[s] = static_cast<float>(scaled[s]);
        alias[s] = l;
        scaled[l] = (scaled[l] + scaled[s]) - 1.0;
        if (scaled[l] < 1.0) {
            small.push_back(l);
        } else {
            large.push_back(l);
        }
    }
    for (std::uint32_t l : large) {
        prob[l] = 1.0f;
    }
    for (std::uint32_t s : small) {
        prob[s] = 1.0f;
    }
}

} // namespace noswalker::util
