/**
 * @file
 * Fast, reproducible pseudo-random number generation.
 *
 * Random walk engines burn one or two random draws per step, so the
 * generator must be cheap, and experiments must be reproducible, so every
 * component is seeded explicitly.  We use xoshiro256** (Blackman & Vigna)
 * seeded through SplitMix64, the combination recommended by its authors.
 */
#pragma once

#include <cstdint>
#include <limits>

namespace noswalker::util {

/**
 * One SplitMix64 output step on an externally held state word.
 *
 * The engine threads a bare 64-bit stream state through each walker
 * record (see core::NosWalkerEngine); this is the per-event advance.
 */
inline std::uint64_t
splitmix_next(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Initial stream state for entity @p id under master @p seed.
 *
 * Mixing the id through the golden-ratio increment before hashing keeps
 * nearby ids (walker 0, 1, 2, …) on well-separated streams.  The same
 * derivation chains: derive_stream(derive_stream(s, a), b) names a
 * stream for the pair (a, b).
 */
inline std::uint64_t
derive_stream(std::uint64_t seed, std::uint64_t id)
{
    std::uint64_t state = seed ^ (id * 0x9e3779b97f4a7c15ULL + 1);
    return splitmix_next(state);
}

/**
 * SplitMix64 generator.
 *
 * Used to expand a single 64-bit seed into the larger state of
 * xoshiro256**; also usable standalone for cheap hashing.
 */
class SplitMix64 {
  public:
    explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

    /** Next 64-bit value. */
    std::uint64_t next() { return splitmix_next(state_); }

  private:
    std::uint64_t state_;
};

/**
 * xoshiro256** PRNG.
 *
 * Satisfies the UniformRandomBitGenerator requirements, so it can also be
 * fed to <random> distributions where convenient, but the inline helpers
 * below avoid the cost of the standard distributions in hot loops.
 */
class Rng {
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL)
    {
        SplitMix64 sm(seed);
        for (auto &word : state_) {
            word = sm.next();
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

    /** Next raw 64-bit value. */
    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /**
     * Uniform integer in [0, bound).
     *
     * Uses Lemire's multiply-shift reduction; the tiny modulo bias
     * (< 2^-64 * bound) is irrelevant for sampling workloads.
     * @pre bound > 0.
     */
    std::uint64_t
    next_index(std::uint64_t bound)
    {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    next_double()
    {
        return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [0, hi). */
    double next_double(double hi) { return next_double() * hi; }

    /** Bernoulli draw with success probability p. */
    bool next_bool(double p) { return next_double() < p; }

    /**
     * Split off an independently seeded child generator.
     *
     * Used to give every worker thread / walker pool its own stream while
     * keeping the whole run a function of one master seed.
     */
    Rng
    split()
    {
        const std::uint64_t s = operator()();
        return Rng(s ^ 0x9e3779b97f4a7c15ULL);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace noswalker::util
