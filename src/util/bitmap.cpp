#include "util/bitmap.hpp"

#include <algorithm>
#include <bit>

namespace noswalker::util {

void
Bitmap::resize(std::size_t nbits)
{
    nbits_ = nbits;
    words_.assign((nbits + 63) / 64, 0);
}

void
Bitmap::reset()
{
    std::fill(words_.begin(), words_.end(), 0);
}

std::size_t
Bitmap::count() const
{
    std::size_t n = 0;
    for (std::uint64_t word : words_) {
        n += static_cast<std::size_t>(std::popcount(word));
    }
    return n;
}

bool
Bitmap::none() const
{
    return std::all_of(words_.begin(), words_.end(),
                       [](std::uint64_t w) { return w == 0; });
}

} // namespace noswalker::util
