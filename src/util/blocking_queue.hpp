/**
 * @file
 * Bounded blocking MPMC queue.
 *
 * Connects NosWalker's background block-loader thread to the walker
 * processing threads (Figure 6: block buffers feed the pre-sampler),
 * and the walk service's submission path to its dispatcher/worker
 * threads.  Capacity bounds the number of in-flight elements, which is
 * what keeps producers from outrunning the memory budget; capacity 0
 * means unbounded.
 *
 * Shutdown semantics (multi-producer, multi-consumer safe): close()
 * fails all current and future pushes, wakes every blocked producer and
 * consumer, and lets consumers drain the remaining elements before
 * pop() starts returning nullopt.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace noswalker::util {

/**
 * Why a non-blocking push failed (or did not).
 *
 * try_push's bool return conflates "full" with "closed"; callers that
 * must report the rejection reason (the walk service's submission
 * path) use try_push_result, which decides under the queue lock and is
 * therefore race-free against a concurrent close().
 */
enum class PushOutcome : std::uint8_t {
    kPushed,
    /** The queue was at capacity (and not closed). */
    kFull,
    /** close() had been called; the queue accepts nothing ever again. */
    kClosed,
};

/** Bounded FIFO with blocking push/pop and cooperative shutdown. */
template <typename T>
class BlockingQueue {
  public:
    /** Queue holding at most @p capacity elements (0 = unbounded). */
    explicit BlockingQueue(std::size_t capacity = 4) : capacity_(capacity) {}

    /**
     * Push @p value, blocking while full.
     * @return false if the queue was closed (value dropped).
     */
    bool
    push(T value)
    {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&] { return closed_ || has_room(); });
        if (closed_) {
            return false;
        }
        queue_.push_back(std::move(value));
        not_empty_.notify_one();
        return true;
    }

    /**
     * Non-blocking push.
     * @return false (value dropped) when full or closed.
     */
    bool
    try_push(T value)
    {
        return try_push_result(std::move(value)) == PushOutcome::kPushed;
    }

    /**
     * Non-blocking push reporting *why* it failed.  The outcome is
     * decided under the queue lock, so "full" and "closed" can never be
     * conflated by a close() racing the push: kClosed is returned iff
     * close() happened-before this call took the lock.
     */
    PushOutcome
    try_push_result(T value)
    {
        std::lock_guard lock(mutex_);
        if (closed_) {
            return PushOutcome::kClosed;
        }
        if (!has_room()) {
            return PushOutcome::kFull;
        }
        queue_.push_back(std::move(value));
        not_empty_.notify_one();
        return PushOutcome::kPushed;
    }

    /**
     * Pop the oldest element, blocking while empty.
     * @return nullopt when the queue is closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
        return take(lock);
    }

    /**
     * Pop with a timeout.
     * @return nullopt on timeout, or when the queue is closed and
     *         drained (disambiguate with closed()).
     */
    template <typename Rep, typename Period>
    std::optional<T>
    pop_for(std::chrono::duration<Rep, Period> timeout)
    {
        std::unique_lock lock(mutex_);
        not_empty_.wait_for(lock, timeout,
                            [&] { return closed_ || !queue_.empty(); });
        return take(lock);
    }

    /** Non-blocking pop. */
    std::optional<T>
    try_pop()
    {
        std::unique_lock lock(mutex_);
        return take(lock);
    }

    /**
     * Push every element of @p values under one lock acquisition,
     * blocking while the batch does not fit (the batch is admitted
     * whole, never interleaved with other producers' batches).
     * @return false if the queue was closed (remaining values dropped);
     *         elements pushed before the close stay in the queue.
     */
    bool
    push_batch(std::vector<T> values)
    {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || capacity_ == 0 ||
                   queue_.size() + values.size() <= capacity_;
        });
        if (closed_) {
            return false;
        }
        for (T &value : values) {
            queue_.push_back(std::move(value));
        }
        not_empty_.notify_all();
        return true;
    }

    /**
     * Drain every queued element under one lock acquisition, without
     * blocking (an empty vector when there is nothing queued — check
     * closed() to tell "nothing yet" from "never again").  The drain
     * is atomic: concurrent consumers never split a producer's batch.
     */
    std::vector<T>
    pop_all()
    {
        std::vector<T> out;
        std::lock_guard lock(mutex_);
        out.reserve(queue_.size());
        while (!queue_.empty()) {
            out.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        if (!out.empty()) {
            not_full_.notify_all();
        }
        return out;
    }

    /** Close the queue: producers fail, consumers drain then get nullopt. */
    void
    close()
    {
        std::lock_guard lock(mutex_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /** Whether close() has been called. */
    bool
    closed() const
    {
        std::lock_guard lock(mutex_);
        return closed_;
    }

    /** Current element count. */
    std::size_t
    size() const
    {
        std::lock_guard lock(mutex_);
        return queue_.size();
    }

    /** Max elements (0 = unbounded). */
    std::size_t capacity() const { return capacity_; }

  private:
    bool has_room() const { return capacity_ == 0 || queue_.size() < capacity_; }

    std::optional<T>
    take(std::unique_lock<std::mutex> &)
    {
        if (queue_.empty()) {
            return std::nullopt;
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        return value;
    }

    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> queue_;
    bool closed_ = false;
};

} // namespace noswalker::util
