/**
 * @file
 * Bounded blocking MPMC queue.
 *
 * Connects NosWalker's background block-loader thread to the walker
 * processing threads (Figure 6: block buffers feed the pre-sampler).
 * Capacity bounds the number of in-flight block buffers, which is what
 * keeps the loader from outrunning the memory budget.
 */
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace noswalker::util {

/** Bounded FIFO with blocking push/pop and cooperative shutdown. */
template <typename T>
class BlockingQueue {
  public:
    /** Queue holding at most @p capacity elements. */
    explicit BlockingQueue(std::size_t capacity = 4) : capacity_(capacity) {}

    /**
     * Push @p value, blocking while full.
     * @return false if the queue was closed (value dropped).
     */
    bool
    push(T value)
    {
        std::unique_lock lock(mutex_);
        not_full_.wait(lock, [&] {
            return closed_ || queue_.size() < capacity_;
        });
        if (closed_) {
            return false;
        }
        queue_.push_back(std::move(value));
        not_empty_.notify_one();
        return true;
    }

    /**
     * Pop the oldest element, blocking while empty.
     * @return nullopt when the queue is closed and drained.
     */
    std::optional<T>
    pop()
    {
        std::unique_lock lock(mutex_);
        not_empty_.wait(lock, [&] { return closed_ || !queue_.empty(); });
        if (queue_.empty()) {
            return std::nullopt;
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        return value;
    }

    /** Non-blocking pop. */
    std::optional<T>
    try_pop()
    {
        std::lock_guard lock(mutex_);
        if (queue_.empty()) {
            return std::nullopt;
        }
        T value = std::move(queue_.front());
        queue_.pop_front();
        not_full_.notify_one();
        return value;
    }

    /** Close the queue: producers fail, consumers drain then get nullopt. */
    void
    close()
    {
        std::lock_guard lock(mutex_);
        closed_ = true;
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    /** Current element count. */
    std::size_t
    size() const
    {
        std::lock_guard lock(mutex_);
        return queue_.size();
    }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> queue_;
    bool closed_ = false;
};

} // namespace noswalker::util
