/**
 * @file
 * Lightweight named-counter registry.
 *
 * Engines expose fine-grained counters (pre-sample hits, fine-mode I/Os,
 * spilled walkers, ...) that the bench harness prints alongside the
 * headline RunStats.  Counters are plain uint64 bumps; negligible cost.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace noswalker::util {

/** A set of named monotonically increasing counters. */
class StatsRegistry {
  public:
    /** Add @p delta to counter @p name (creating it at zero). */
    void
    add(const std::string &name, std::uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    /** Set counter @p name to @p value. */
    void
    set(const std::string &name, std::uint64_t value)
    {
        counters_[name] = value;
    }

    /** Value of counter @p name (0 if never touched). */
    std::uint64_t
    get(const std::string &name) const
    {
        const auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** All counters, sorted by name. */
    const std::map<std::string, std::uint64_t> &all() const
    {
        return counters_;
    }

    /** Merge another registry into this one (summing shared names). */
    void merge(const StatsRegistry &other);

    /** Render as "name=value" lines. */
    std::string to_string() const;

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace noswalker::util
