/**
 * @file
 * Minimal leveled logger.
 *
 * Engines and the bench harness log progress/diagnostics at runtime-
 * selectable levels; tests run silent by default.
 */
#pragma once

#include <cstdarg>

namespace noswalker::util {

/** Severity levels, ordered. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/** Set the global minimum level that is emitted (default kWarn). */
void set_log_level(LogLevel level);

/** Current global minimum level. */
LogLevel log_level();

/** printf-style log at @p level to stderr. */
void log(LogLevel level, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define NOSWALKER_LOG_DEBUG(...)                                            \
    ::noswalker::util::log(::noswalker::util::LogLevel::kDebug, __VA_ARGS__)
#define NOSWALKER_LOG_INFO(...)                                             \
    ::noswalker::util::log(::noswalker::util::LogLevel::kInfo, __VA_ARGS__)
#define NOSWALKER_LOG_WARN(...)                                             \
    ::noswalker::util::log(::noswalker::util::LogLevel::kWarn, __VA_ARGS__)
#define NOSWALKER_LOG_ERROR(...)                                            \
    ::noswalker::util::log(::noswalker::util::LogLevel::kError, __VA_ARGS__)

} // namespace noswalker::util
