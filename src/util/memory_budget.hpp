/**
 * @file
 * Explicit memory accounting — the reproduction's stand-in for cgroups.
 *
 * The paper caps every evaluated system at 64 GiB (≈12 % of its largest
 * graph) with cgroups.  We enforce the identical constraint with an
 * explicit accountant that every engine allocates its large structures
 * through: block buffers, walker pools, pre-sample buffers, spill
 * buffers.  Exceeding the budget is a hard error, so an engine that
 * cannot fit (e.g. DrunkardMob holding all walkers in memory) fails the
 * run just like it does in the paper.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "util/error.hpp"

namespace noswalker::util {

/** Thrown when a reservation would push usage above the budget. */
class BudgetExceeded : public ConfigError {
  public:
    explicit BudgetExceeded(const std::string &what) : ConfigError(what) {}
};

/**
 * Byte accountant with a hard cap.
 *
 * Thread safe: the NosWalker loader thread and processing threads
 * reserve/release concurrently.  Tracks the high-water mark so tests and
 * benches can assert the cap was respected and report real usage.
 */
class MemoryBudget {
  public:
    /** Budget of @p limit_bytes; 0 means unlimited (in-memory engines). */
    explicit MemoryBudget(std::uint64_t limit_bytes = 0)
        : limit_(limit_bytes) {}

    MemoryBudget(const MemoryBudget &) = delete;
    MemoryBudget &operator=(const MemoryBudget &) = delete;

    /** The configured cap in bytes (0 = unlimited). */
    std::uint64_t limit() const { return limit_; }

    /** Currently reserved bytes. */
    std::uint64_t used() const { return used_.load(std::memory_order_relaxed); }

    /** Largest value used() ever reached. */
    std::uint64_t
    peak() const
    {
        return peak_.load(std::memory_order_relaxed);
    }

    /** Bytes still available, or UINT64_MAX when unlimited. */
    std::uint64_t available() const;

    /**
     * Reserve @p bytes, labelled for diagnostics.
     * @throws BudgetExceeded when the cap would be exceeded.
     */
    void reserve(std::uint64_t bytes, const char *label = "");

    /**
     * Reserve @p bytes if they fit.
     * @return false (without reserving) when the cap would be exceeded.
     */
    bool try_reserve(std::uint64_t bytes);

    /**
     * Reserve @p bytes, waiting up to @p timeout_seconds for other
     * holders to release enough.  Lets concurrent engine runs queue for
     * a shared budget instead of failing outright (the walk service's
     * admission control).
     * @return false when the bytes never became available in time.
     */
    bool reserve_wait(std::uint64_t bytes, double timeout_seconds);

    /** Release @p bytes previously reserved. */
    void release(std::uint64_t bytes);

  private:
    void bump_peak(std::uint64_t now);

    std::uint64_t limit_;
    std::atomic<std::uint64_t> used_{0};
    std::atomic<std::uint64_t> peak_{0};
    /** Set when an unlimited-budget reservation saturated used_ at
     *  UINT64_MAX; releases then clamp instead of asserting pairing. */
    std::atomic<bool> saturated_{false};

    /** Waiter support for reserve_wait; the fast paths never lock. */
    std::atomic<int> waiters_{0};
    std::mutex wait_mutex_;
    std::condition_variable released_;
};

/**
 * RAII reservation against a MemoryBudget.
 *
 * Movable, not copyable; releases on destruction.  Components hold one
 * Reservation per large allocation so accounting can never leak.
 */
class Reservation {
  public:
    Reservation() = default;

    /** Reserve @p bytes from @p budget. @throws BudgetExceeded */
    Reservation(MemoryBudget &budget, std::uint64_t bytes,
                const char *label = "")
        : budget_(&budget), bytes_(bytes)
    {
        budget.reserve(bytes, label);
    }

    Reservation(Reservation &&other) noexcept
        : budget_(other.budget_), bytes_(other.bytes_)
    {
        other.budget_ = nullptr;
        other.bytes_ = 0;
    }

    Reservation &
    operator=(Reservation &&other) noexcept
    {
        if (this != &other) {
            release();
            budget_ = other.budget_;
            bytes_ = other.bytes_;
            other.budget_ = nullptr;
            other.bytes_ = 0;
        }
        return *this;
    }

    Reservation(const Reservation &) = delete;
    Reservation &operator=(const Reservation &) = delete;

    ~Reservation() { release(); }

    /** Bytes held by this reservation. */
    std::uint64_t bytes() const { return bytes_; }

    /** The budget this reservation charges (nullptr when empty). */
    MemoryBudget *budget() const { return budget_; }

    /** Grow or shrink the reservation to @p new_bytes. */
    void resize(std::uint64_t new_bytes);

    /** Release early (idempotent). */
    void release();

  private:
    MemoryBudget *budget_ = nullptr;
    std::uint64_t bytes_ = 0;
};

} // namespace noswalker::util
