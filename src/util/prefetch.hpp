/**
 * @file
 * Software-prefetch hints for the interleaved step kernel (DESIGN.md
 * §12).
 *
 * The hot random walk loop is dominated by two dependent cache misses
 * per step: the CSR offset entry of the walker's vertex and the first
 * lines of its adjacency record.  The cohort kernel issues these hints
 * one pipeline stage ahead so the miss of one walker overlaps useful
 * work on the rest of the cohort.  On non-GNU compilers the hints
 * compile to nothing; callers can still count them, so the modeled
 * kernel telemetry stays identical.
 */
#pragma once

#include <cstddef>

namespace noswalker::util {

/** Assumed cache line granularity for range hints. */
inline constexpr std::size_t kCacheLineBytes = 64;

/** Hint one cache line for reading (no-op off GCC/Clang). */
inline void
prefetch_line(const void *p)
{
#if defined(__GNUC__) || defined(__clang__)
    __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
    (void)p;
#endif
}

/**
 * Hint up to @p max_lines cache lines of [@p p, @p p + @p bytes).
 * @return the number of hints issued (kernel telemetry).
 */
inline unsigned
prefetch_range(const void *p, std::size_t bytes, unsigned max_lines = 2)
{
    if (p == nullptr || bytes == 0) {
        return 0;
    }
    const std::size_t lines =
        (bytes + kCacheLineBytes - 1) / kCacheLineBytes;
    const unsigned n = static_cast<unsigned>(
        lines < max_lines ? lines : max_lines);
    const char *c = static_cast<const char *>(p);
    for (unsigned i = 0; i < n; ++i) {
        prefetch_line(c + std::size_t{i} * kCacheLineBytes);
    }
    return n;
}

} // namespace noswalker::util
