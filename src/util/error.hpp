/**
 * @file
 * Error handling helpers.
 *
 * Following the gem5 fatal()/panic() split: user-caused conditions (bad
 * configuration, missing files, infeasible memory budgets) throw
 * ConfigError; internal invariant violations abort via CHECK.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace noswalker::util {

/** Error caused by user input: configuration, files, budgets. */
class ConfigError : public std::runtime_error {
  public:
    explicit ConfigError(const std::string &what)
        : std::runtime_error(what) {}
};

/** Error surfaced by the I/O substrate (failed read, short file, ...). */
class IoError : public std::runtime_error {
  public:
    explicit IoError(const std::string &what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void
check_failed(const char *expr, const char *file, int line)
{
    std::fprintf(stderr, "NOSWALKER_CHECK failed: %s at %s:%d\n", expr, file,
                 line);
    std::abort();
}

} // namespace detail

/**
 * Internal invariant check, enabled in all build types.
 *
 * Unlike assert(), survives NDEBUG builds: the engines rely on these
 * invariants for memory safety of the compact buffers.
 */
#define NOSWALKER_CHECK(expr)                                               \
    do {                                                                    \
        if (!(expr)) {                                                      \
            ::noswalker::util::detail::check_failed(#expr, __FILE__,        \
                                                    __LINE__);              \
        }                                                                   \
    } while (false)

} // namespace noswalker::util
