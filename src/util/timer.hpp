/**
 * @file
 * Wall-clock timing helpers used by engines and benchmarks.
 */
#pragma once

#include <chrono>

namespace noswalker::util {

/** Monotonic stopwatch measuring wall-clock seconds. */
class Timer {
  public:
    Timer() : start_(Clock::now()) {}

    /** Restart the stopwatch. */
    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/** Accumulating timer: sums the durations of many start/stop intervals. */
class AccumTimer {
  public:
    /** Begin an interval. */
    void start() { timer_.reset(); running_ = true; }

    /** End the current interval and add it to the total. */
    void
    stop()
    {
        if (running_) {
            total_ += timer_.seconds();
            running_ = false;
        }
    }

    /** Total accumulated seconds over all completed intervals. */
    double seconds() const { return total_; }

  private:
    Timer timer_;
    double total_ = 0.0;
    bool running_ = false;
};

} // namespace noswalker::util
