/**
 * @file
 * Persistent fork-join worker pool for intra-block walker stepping.
 *
 * The pool is deliberately minimal: run(n, task) executes task(0..n-1)
 * across the hired threads *and the calling thread*, returning only
 * when every index has finished (the join is the engine's shard
 * barrier).  Tasks are claimed from a shared atomic counter, so uneven
 * shards load-balance dynamically.  The pool is persistent — threads
 * are hired once and reused across run() calls (and across engine
 * runs), avoiding per-block thread spawn cost.
 *
 * run() serializes concurrent callers internally, so one pool can be
 * shared by several engines (the walk service hands every BatchRunner
 * the same pool); callers simply queue behind each other.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace noswalker::util {

/** Fixed-size fork-join pool; the caller participates in every run. */
class ThreadPool {
  public:
    /**
     * Hire @p hired_threads workers (may be 0: run() then executes
     * everything on the calling thread, which keeps single-threaded
     * configurations free of synchronization).
     */
    explicit ThreadPool(unsigned hired_threads);

    /** Joins all workers. @pre no run() is in flight. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Workers hired (excluding the participating caller). */
    unsigned hired() const { return static_cast<unsigned>(threads_.size()); }

    /**
     * Execute task(i) for every i in [0, num_tasks) and wait for all of
     * them (fork-join barrier).  Thread safe: concurrent callers are
     * serialized.
     *
     * If a task throws, the first exception is captured, remaining
     * unclaimed indices are abandoned, and the exception is rethrown
     * here after the barrier.
     */
    void run(std::size_t num_tasks,
             const std::function<void(std::size_t)> &task);

  private:
    void worker_loop();

    /** Claim and execute indices until the counter runs out. */
    void drain(const std::function<void(std::size_t)> &task);

    std::mutex run_mutex_; ///< serializes concurrent run() callers

    std::mutex mutex_;
    std::condition_variable start_cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t num_tasks_ = 0;
    std::uint64_t generation_ = 0;
    unsigned active_ = 0;
    bool stop_ = false;

    std::atomic<std::size_t> next_{0};

    std::mutex error_mutex_;
    std::exception_ptr first_error_;

    std::vector<std::thread> threads_;
};

} // namespace noswalker::util
