/**
 * @file
 * Alias-method table for O(1) weighted sampling (Walker/Vose).
 *
 * The paper's weighted-graph experiments (K30W, §4.4) store a
 * pre-generated alias table per vertex instead of the raw adjacency list,
 * as is common in random walk systems.  AliasTable implements the
 * classical structure; graph::WeightedCsr builds one per vertex.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace noswalker::util {

/**
 * Alias table over n outcomes with given non-negative weights.
 *
 * Sampling costs one random draw and at most one comparison.  Build cost
 * is O(n) (Vose's algorithm).
 */
class AliasTable {
  public:
    AliasTable() = default;

    /**
     * Build from weights.
     * @param weights non-negative weights; at least one must be positive.
     */
    explicit AliasTable(std::span<const double> weights) { build(weights); }

    /** Rebuild in place from a new weight vector. */
    void build(std::span<const double> weights);

    /** Number of outcomes. */
    std::size_t size() const { return prob_.size(); }

    /** True if no outcomes have been loaded. */
    bool empty() const { return prob_.empty(); }

    /** Draw an outcome index in [0, size()). @pre !empty(). */
    std::uint32_t
    sample(Rng &rng) const
    {
        const std::uint32_t slot =
            static_cast<std::uint32_t>(rng.next_index(prob_.size()));
        return rng.next_double() < prob_[slot] ? slot : alias_[slot];
    }

    /**
     * Draw @p n outcomes into @p out, draw-for-draw identical to @p n
     * sequential sample() calls on the same generator (the step
     * kernel's bit-identity contract rides on this equivalence).
     *
     * The draws are split into two branch-light passes: pass one
     * consumes the RNG in sample()'s exact (slot, coin) order and
     * prefetches each chosen probability row; pass two resolves the
     * alias comparisons against lines that are already in flight.
     * @pre !empty().
     */
    void sample_batch(Rng &rng, std::uint32_t *out, std::size_t n) const;

    /** Bytes of heap memory held by this table. */
    std::size_t
    memory_bytes() const
    {
        return prob_.capacity() * sizeof(double) +
               alias_.capacity() * sizeof(std::uint32_t);
    }

  private:
    std::vector<double> prob_;
    std::vector<std::uint32_t> alias_;
};

/**
 * Compute alias-method arrays into caller-provided storage.
 *
 * Used by the on-disk graph format to serialize per-vertex alias tables
 * (prob as float for compactness).
 * @pre prob.size() == alias.size() == weights.size() > 0.
 */
void build_alias_arrays(std::span<const double> weights,
                        std::span<float> prob,
                        std::span<std::uint32_t> alias);

} // namespace noswalker::util
