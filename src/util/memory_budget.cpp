#include "util/memory_budget.hpp"

#include <chrono>
#include <limits>

namespace noswalker::util {

std::uint64_t
MemoryBudget::available() const
{
    if (limit_ == 0) {
        return std::numeric_limits<std::uint64_t>::max();
    }
    const std::uint64_t u = used();
    return u >= limit_ ? 0 : limit_ - u;
}

void
MemoryBudget::reserve(std::uint64_t bytes, const char *label)
{
    if (!try_reserve(bytes)) {
        throw BudgetExceeded(
            "memory budget exceeded reserving " + std::to_string(bytes) +
            " bytes for '" + label + "' (used " + std::to_string(used()) +
            " / limit " + std::to_string(limit_) + ")");
    }
}

bool
MemoryBudget::try_reserve(std::uint64_t bytes)
{
    std::uint64_t cur = used_.load(std::memory_order_relaxed);
    for (;;) {
        // Saturating add: cur + bytes can wrap near UINT64_MAX, which
        // would corrupt used_/peak_ (and, under a nonzero limit, slip
        // a giant reservation past the cap with a tiny wrapped sum).
        std::uint64_t next = cur + bytes;
        const bool wrapped = next < cur;
        if (limit_ != 0 && (wrapped || next > limit_)) {
            return false;
        }
        if (wrapped) {
            next = std::numeric_limits<std::uint64_t>::max();
        }
        if (used_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
            if (wrapped) {
                // The accountant lost bytes to saturation; releases
                // must clamp instead of asserting exact pairing.
                saturated_.store(true, std::memory_order_relaxed);
            }
            bump_peak(next);
            return true;
        }
    }
}

bool
MemoryBudget::reserve_wait(std::uint64_t bytes, double timeout_seconds)
{
    if (try_reserve(bytes)) {
        return true;
    }
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(timeout_seconds));
    waiters_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock lock(wait_mutex_);
    bool ok = false;
    for (;;) {
        if (try_reserve(bytes)) {
            ok = true;
            break;
        }
        if (released_.wait_until(lock, deadline) ==
            std::cv_status::timeout) {
            ok = try_reserve(bytes);
            break;
        }
    }
    waiters_.fetch_sub(1, std::memory_order_relaxed);
    return ok;
}

void
MemoryBudget::release(std::uint64_t bytes)
{
    if (saturated_.load(std::memory_order_relaxed)) {
        // Exact pairing is gone once a reservation saturated; clamp at
        // zero so the drain invariant (used() == 0 when every holder
        // released) still holds.
        std::uint64_t cur = used_.load(std::memory_order_relaxed);
        while (!used_.compare_exchange_weak(
            cur, cur >= bytes ? cur - bytes : 0,
            std::memory_order_relaxed)) {
        }
        if (waiters_.load(std::memory_order_relaxed) > 0) {
            std::lock_guard lock(wait_mutex_);
            released_.notify_all();
        }
        return;
    }
    const std::uint64_t prev =
        used_.fetch_sub(bytes, std::memory_order_relaxed);
    NOSWALKER_CHECK(prev >= bytes);
    if (waiters_.load(std::memory_order_relaxed) > 0) {
        // Lock before notifying so a waiter between its try_reserve and
        // its wait cannot miss the wake-up.
        std::lock_guard lock(wait_mutex_);
        released_.notify_all();
    }
}

void
MemoryBudget::bump_peak(std::uint64_t now)
{
    std::uint64_t cur = peak_.load(std::memory_order_relaxed);
    while (now > cur &&
           !peak_.compare_exchange_weak(cur, now,
                                        std::memory_order_relaxed)) {
    }
}

void
Reservation::resize(std::uint64_t new_bytes)
{
    NOSWALKER_CHECK(budget_ != nullptr);
    if (new_bytes > bytes_) {
        budget_->reserve(new_bytes - bytes_, "resize");
    } else if (new_bytes < bytes_) {
        budget_->release(bytes_ - new_bytes);
    }
    bytes_ = new_bytes;
}

void
Reservation::release()
{
    if (budget_ != nullptr && bytes_ > 0) {
        budget_->release(bytes_);
    }
    budget_ = nullptr;
    bytes_ = 0;
}

} // namespace noswalker::util
