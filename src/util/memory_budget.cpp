#include "util/memory_budget.hpp"

#include <limits>

namespace noswalker::util {

std::uint64_t
MemoryBudget::available() const
{
    if (limit_ == 0) {
        return std::numeric_limits<std::uint64_t>::max();
    }
    const std::uint64_t u = used();
    return u >= limit_ ? 0 : limit_ - u;
}

void
MemoryBudget::reserve(std::uint64_t bytes, const char *label)
{
    if (!try_reserve(bytes)) {
        throw BudgetExceeded(
            "memory budget exceeded reserving " + std::to_string(bytes) +
            " bytes for '" + label + "' (used " + std::to_string(used()) +
            " / limit " + std::to_string(limit_) + ")");
    }
}

bool
MemoryBudget::try_reserve(std::uint64_t bytes)
{
    std::uint64_t cur = used_.load(std::memory_order_relaxed);
    for (;;) {
        const std::uint64_t next = cur + bytes;
        if (limit_ != 0 && next > limit_) {
            return false;
        }
        if (used_.compare_exchange_weak(cur, next,
                                        std::memory_order_relaxed)) {
            bump_peak(next);
            return true;
        }
    }
}

void
MemoryBudget::release(std::uint64_t bytes)
{
    const std::uint64_t prev =
        used_.fetch_sub(bytes, std::memory_order_relaxed);
    NOSWALKER_CHECK(prev >= bytes);
}

void
MemoryBudget::bump_peak(std::uint64_t now)
{
    std::uint64_t cur = peak_.load(std::memory_order_relaxed);
    while (now > cur &&
           !peak_.compare_exchange_weak(cur, now,
                                        std::memory_order_relaxed)) {
    }
}

void
Reservation::resize(std::uint64_t new_bytes)
{
    NOSWALKER_CHECK(budget_ != nullptr);
    if (new_bytes > bytes_) {
        budget_->reserve(new_bytes - bytes_, "resize");
    } else if (new_bytes < bytes_) {
        budget_->release(bytes_ - new_bytes);
    }
    bytes_ = new_bytes;
}

void
Reservation::release()
{
    if (budget_ != nullptr && bytes_ > 0) {
        budget_->release(bytes_);
    }
    budget_ = nullptr;
    bytes_ = 0;
}

} // namespace noswalker::util
