/**
 * @file
 * Dynamic bitmap used by the fine-grained block loader (§3.3.1).
 *
 * NosWalker marks the 4 KiB pages that stalled walkers need in a bitmap
 * and issues precise I/O for marked pages only.  std::vector<bool> is
 * avoided because we need word-level iteration over set bits.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace noswalker::util {

/** Fixed-capacity bitmap with fast iteration over set bits. */
class Bitmap {
  public:
    Bitmap() = default;

    /** Create a bitmap of @p nbits bits, all clear. */
    explicit Bitmap(std::size_t nbits) { resize(nbits); }

    /** Resize to @p nbits bits; newly exposed bits are clear. */
    void resize(std::size_t nbits);

    /** Number of addressable bits. */
    std::size_t size() const { return nbits_; }

    /** Set bit @p i. */
    void
    set(std::size_t i)
    {
        words_[i >> 6] |= (std::uint64_t{1} << (i & 63));
    }

    /** Clear bit @p i. */
    void
    clear(std::size_t i)
    {
        words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    /** Test bit @p i. */
    bool
    test(std::size_t i) const
    {
        return (words_[i >> 6] >> (i & 63)) & 1;
    }

    /** Clear all bits. */
    void reset();

    /** Number of set bits. */
    std::size_t count() const;

    /** True if no bit is set. */
    bool none() const;

    /**
     * Invoke @p fn(index) for every set bit in ascending order.
     *
     * Word-at-a-time scan; the loader uses this to coalesce adjacent
     * marked pages into single I/O requests.
     */
    template <typename Fn>
    void
    for_each_set(Fn &&fn) const
    {
        for (std::size_t wi = 0; wi < words_.size(); ++wi) {
            std::uint64_t word = words_[wi];
            while (word != 0) {
                const int bit = __builtin_ctzll(word);
                fn(wi * 64 + static_cast<std::size_t>(bit));
                word &= word - 1;
            }
        }
    }

    /** Bytes of heap memory held. */
    std::size_t
    memory_bytes() const
    {
        return words_.capacity() * sizeof(std::uint64_t);
    }

  private:
    std::vector<std::uint64_t> words_;
    std::size_t nbits_ = 0;
};

} // namespace noswalker::util
