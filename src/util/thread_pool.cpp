#include "util/thread_pool.hpp"

namespace noswalker::util {

ThreadPool::ThreadPool(unsigned hired_threads)
{
    threads_.reserve(hired_threads);
    for (unsigned t = 0; t < hired_threads; ++t) {
        threads_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    start_cv_.notify_all();
    for (std::thread &t : threads_) {
        t.join();
    }
}

void
ThreadPool::drain(const std::function<void(std::size_t)> &task)
{
    for (;;) {
        const std::size_t i =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_tasks_) {
            return;
        }
        try {
            task(i);
        } catch (...) {
            {
                std::lock_guard<std::mutex> lock(error_mutex_);
                if (!first_error_) {
                    first_error_ = std::current_exception();
                }
            }
            // Abandon unclaimed indices: push the counter past the end
            // so every thread falls out of its claim loop promptly.
            next_.store(num_tasks_, std::memory_order_relaxed);
        }
    }
}

void
ThreadPool::worker_loop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *task = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            start_cv_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_) {
                return;
            }
            seen = generation_;
            task = task_;
        }
        drain(*task);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--active_ == 0) {
                done_cv_.notify_all();
            }
        }
    }
}

void
ThreadPool::run(std::size_t num_tasks,
                const std::function<void(std::size_t)> &task)
{
    if (num_tasks == 0) {
        return;
    }
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    first_error_ = nullptr;
    next_.store(0, std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        task_ = &task;
        num_tasks_ = num_tasks;
        active_ = hired();
        ++generation_;
    }
    start_cv_.notify_all();
    drain(task); // the caller is a worker too
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [&] { return active_ == 0; });
        task_ = nullptr;
    }
    if (first_error_) {
        std::exception_ptr e = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(e);
    }
}

} // namespace noswalker::util
