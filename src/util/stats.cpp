#include "util/stats.hpp"

#include <sstream>

namespace noswalker::util {

void
StatsRegistry::merge(const StatsRegistry &other)
{
    for (const auto &[name, value] : other.counters_) {
        counters_[name] += value;
    }
}

std::string
StatsRegistry::to_string() const
{
    std::ostringstream out;
    for (const auto &[name, value] : counters_) {
        out << name << "=" << value << "\n";
    }
    return out.str();
}

} // namespace noswalker::util
