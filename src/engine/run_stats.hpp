/**
 * @file
 * Per-run result record shared by all engines.
 *
 * Raw counters (steps, bytes, requests) are scale-faithful; modeled
 * time combines the device cost model with measured CPU time following
 * the policy in DESIGN.md §2: synchronous engines pay I/O and CPU
 * serially (scaled by their achieved disk utilisation), pipelined
 * engines overlap them.
 */
#pragma once

#include <cstdint>
#include <string>

namespace noswalker::engine {

/** Counters and timings of one random walk run. */
struct RunStats {
    /** Engine name for reports. */
    std::string engine;

    /** Walkers retired. */
    std::uint64_t walkers = 0;
    /** Total steps moved across all walkers. */
    std::uint64_t steps = 0;

    /** Bytes of graph (edge region) data read. */
    std::uint64_t graph_bytes_read = 0;
    /** Graph read requests issued. */
    std::uint64_t graph_read_requests = 0;
    /** Edge records streamed from disk. */
    std::uint64_t edges_loaded = 0;
    /** Bytes of walker-state swap traffic (GraphWalker-style spilling). */
    std::uint64_t swap_bytes = 0;

    /** Coarse block loads. */
    std::uint64_t blocks_loaded = 0;
    /** Fine-grained (4 KiB bitmap) loads. */
    std::uint64_t fine_loads = 0;
    /** Coarse loads served from a shared block cache (no device I/O). */
    std::uint64_t cache_hit_blocks = 0;
    /** Coarse loads that probed an attached shared cache and missed
     *  (went to the device).  0 when no cache is attached. */
    std::uint64_t cache_miss_blocks = 0;

    /** Demanded blocks served by a speculative prefetch (DESIGN.md §10). */
    std::uint64_t prefetch_hits = 0;
    /** Speculative loads whose walker bucket drained before processing
     *  (demoted to the shared cache / stash, never discarded). */
    std::uint64_t prefetch_mispredicts = 0;

    /** Speculative loads committed by the LoadPlanner (plan_window > 0;
     *  DESIGN.md §13). */
    std::uint64_t planned_loads = 0;
    /** One-step walker-flow propagations applied while planning. */
    std::uint64_t plan_rescores = 0;
    /** Planned picks whose cost was discounted for cache residency. */
    std::uint64_t plan_cache_credits = 0;

    /** Walkers handed across shard boundaries (sharded engine only). */
    std::uint64_t migrations = 0;
    /** Non-empty (src,dst) walker batches exchanged at round barriers. */
    std::uint64_t migration_batches = 0;

    /** Interleaved-kernel rotations executed: one gather+sample pass
     *  over a cohort ring (DESIGN.md §12). */
    std::uint64_t kernel_cohorts = 0;
    /** Software prefetch hints issued by the kernel's gather stage. */
    std::uint64_t kernel_prefetches = 0;
    /** Walker batches stepped by the legacy scalar loop instead of the
     *  cohort kernel (kernel off, or the batch was too small). */
    std::uint64_t kernel_scalar_fallbacks = 0;

    /** Steps served by reserved pre-samples (§3.3.5 counts separately). */
    std::uint64_t presample_steps = 0;
    /** Steps served directly from the currently loaded block. */
    std::uint64_t block_steps = 0;
    /** Walker stalls (no data available to move a walker). */
    std::uint64_t stalls = 0;
    /** Second-order rejection trials resolved / rejected. */
    std::uint64_t rejection_trials = 0;
    std::uint64_t rejection_rejected = 0;

    /** Measured compute wall time, seconds. */
    double cpu_seconds = 0.0;
    /** Modeled device busy time, seconds (includes swap traffic). */
    double io_busy_seconds = 0.0;
    /** Modeled seconds the engine was blocked waiting on block loads
     *  (deterministic pipeline-clock accounting, DESIGN.md §10). */
    double io_wait_seconds = 0.0;
    /** Modeled seconds spent exchanging walker batches at shard round
     *  barriers (DESIGN.md §11; overlapped by neither phase). */
    double migration_wait_seconds = 0.0;
    /** Modeled exchange seconds *hidden* behind stepping by overlapped
     *  per-bucket migration flushes (shard_overlap; DESIGN.md §11).
     *  Informational: never added to modeled_seconds — it is the part
     *  of the wire cost stepping already covered. */
    double migration_overlap_seconds = 0.0;
    /** Fraction of device bandwidth the engine's I/O path achieves. */
    double io_efficiency = 1.0;
    /** True when the engine overlaps I/O with computation. */
    bool pipelined = false;
    /** Measured end-to-end wall time of the run, seconds. */
    double wall_seconds = 0.0;

    /** Peak bytes held against the memory budget. */
    std::uint64_t peak_memory = 0;

    /** Peak bytes actually held by pre-sample buffers (Fig 14's
     *  "reserve memory for pre-sampling" cost, measured not planned). */
    std::uint64_t presample_bytes_used = 0;
    /** Byte budget granted to the pre-sample pool (0 = pool off). */
    std::uint64_t presample_bytes_total = 0;

    /** Modeled end-to-end seconds (policy above). */
    double modeled_seconds() const;

    /** Average edge records loaded per step (Fig 2a). */
    double edges_per_step() const;

    /** Steps per modeled second (Fig 2b). */
    double step_rate() const;

    /** Total I/O volume in bytes (graph + swap), Fig 14's lines. */
    std::uint64_t
    total_io_bytes() const
    {
        return graph_bytes_read + swap_bytes;
    }

    /**
     * Accumulate @p other into this record (per-tenant aggregation in
     * the walk service).  Additive counters and times sum, peak memory
     * takes the max, and the engine label is kept when it matches
     * (otherwise it becomes "mixed").
     */
    RunStats &operator+=(const RunStats &other);

    /**
     * This record scaled by @p fraction: additive counters and times
     * are multiplied, rates/flags/peaks are kept.  Used to slice a
     * batched run's cost across the requests coalesced into it.
     */
    RunStats scaled(double fraction) const;

    /** Multi-line human-readable dump. */
    std::string to_string() const;
};

} // namespace noswalker::engine
