/**
 * @file
 * The NosWalker programming model (§3.2, Appendix A.3).
 *
 * An application supplies four functions — GenerateWalker, Sample,
 * Active, Action — and, for second-order walks, Rejection.  All engines
 * (NosWalker and every baseline) run the same application types, so
 * cross-system comparisons exercise identical walk semantics.
 *
 * One deliberate deviation from the paper's pseudo-code (DESIGN.md §7):
 * Algorithm 1/2 is self-inconsistent about Active's polarity; here
 * active(w) == true means "keep walking" and an engine retires a walker
 * as soon as active(w) turns false.
 */
#pragma once

#include <concepts>
#include <cstdint>

#include "graph/graph_file.hpp"
#include "graph/types.hpp"
#include "util/rng.hpp"

namespace noswalker::engine {

/**
 * First-order random walk application.
 *
 * Requirements:
 *  - WalkerT: POD walker state with a `location` field.
 *  - generate(n): create the n-th walker.
 *  - sample(view, rng): draw one out-edge destination of `view`
 *    (this is the pre-samplable part — it depends on edge data only).
 *  - active(w): true while the walker should keep moving.
 *  - action(w, next): apply one movement decision; returns true when
 *    the supplied pre-sample was consumed.
 */
template <typename A>
concept RandomWalkApp = requires(A app, std::uint64_t n,
                                 const graph::VertexView &view,
                                 util::Rng &rng, typename A::WalkerT &w,
                                 const typename A::WalkerT &cw,
                                 graph::VertexId next) {
    typename A::WalkerT;
    { app.generate(n) } -> std::same_as<typename A::WalkerT>;
    { app.sample(view, rng) } -> std::same_as<graph::VertexId>;
    { app.active(cw) } -> std::same_as<bool>;
    { app.action(w, next, rng) } -> std::same_as<bool>;
    { cw.location } -> std::convertible_to<graph::VertexId>;
};

/**
 * Second-order extension: action() records a candidate destination plus
 * a trial height, and rejection() resolves the trial once the
 * candidate's adjacency is resident (rejection sampling, Appendix A.2).
 */
template <typename A>
concept SecondOrderApp =
    RandomWalkApp<A> &&
    requires(A app, typename A::WalkerT &w, const typename A::WalkerT &cw,
             const graph::VertexView &candidate_view, util::Rng &rng) {
        { app.has_candidate(cw) } -> std::same_as<bool>;
        { app.candidate(cw) } -> std::same_as<graph::VertexId>;
        { app.rejection(w, candidate_view, rng) } -> std::same_as<bool>;
    };

/** Compile-time dispatch helper. */
template <typename A>
inline constexpr bool kIsSecondOrder = SecondOrderApp<A>;

/**
 * Walker-aware extension: the app draws each step from per-walker
 * random state instead of the engine's run-wide stream.
 *
 * This is what makes multi-tenant serving reproducible: a walker's
 * trajectory becomes a pure function of (its request seed, its walk
 * index, the graph), independent of how requests were batched together
 * or scheduled across worker threads.  The price is that shared
 * pre-sample buffers cannot serve such walkers (a reserved sample is
 * drawn from an anonymous stream), so the engine disables pre-sampling
 * for walker-aware apps.
 */
template <typename A>
concept WalkerAwareApp =
    RandomWalkApp<A> &&
    requires(A app, typename A::WalkerT &w,
             const graph::VertexView &view) {
        { app.sample_for(w, view) } -> std::same_as<graph::VertexId>;
    };

/** Compile-time dispatch helper. */
template <typename A>
inline constexpr bool kIsWalkerAware = WalkerAwareApp<A>;

/**
 * Gather-hint extension (DESIGN.md §12): the app exposes the addresses
 * its sample()/rejection() will actually touch, so the step kernel's
 * gather stage can prefetch them one pipeline stage ahead of the draw.
 *
 * gather(w, view) must be a pure hint — no walker or app state may
 * change and no random draws may be consumed — so skipping it (scalar
 * path, non-GNU compilers) cannot change walk output.  It returns the
 * number of hints issued, which feeds RunStats::kernel_prefetches.
 */
template <typename A>
concept GatherHintApp =
    RandomWalkApp<A> &&
    requires(const A app, const typename A::WalkerT &cw,
             const graph::VertexView &view) {
        { app.gather(cw, view) } -> std::same_as<unsigned>;
    };

/** Compile-time dispatch helper. */
template <typename A>
inline constexpr bool kHasGatherHint = GatherHintApp<A>;

/**
 * Draw-hint extension (DESIGN.md §12): the strongest gather form.  The
 * step kernel constructs each event's RNG at resolve time and hands the
 * app a *copy*, so the app can dry-run the draw on the copy and
 * prefetch the precise line sample() will read — e.g. the one target
 * slot a uniform draw lands on — instead of guessing with head lines.
 * Head-line guesses miss exactly where misses concentrate: steps land
 * on high-degree vertices in proportion to degree, and there the drawn
 * slot is almost never in the first lines.
 *
 * Same purity contract as GatherHintApp — the probe is taken by value,
 * no walker or app state may change, and skipping the hint cannot
 * change walk output.  Preferred over the two-argument form when both
 * are present.
 */
template <typename A>
concept DrawHintApp =
    RandomWalkApp<A> &&
    requires(const A app, const typename A::WalkerT &cw,
             const graph::VertexView &view, util::Rng probe) {
        { app.gather(cw, view, probe) } -> std::same_as<unsigned>;
    };

/** Compile-time dispatch helper. */
template <typename A>
inline constexpr bool kHasDrawHint = DrawHintApp<A>;

/**
 * The vertex a walker is waiting on: the pending candidate for
 * second-order walkers, otherwise the current location.
 */
template <typename App>
graph::VertexId
waiting_vertex(const App &app, const typename App::WalkerT &w)
{
    if constexpr (kIsSecondOrder<App>) {
        if (app.has_candidate(w)) {
            return app.candidate(w);
        }
    }
    return w.location;
}

} // namespace noswalker::engine
