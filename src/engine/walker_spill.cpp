#include "engine/walker_spill.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace noswalker::engine {

namespace {

/** Spill/reload granularity: states move in page-sized batches. */
constexpr std::uint64_t kBatchBytes = 4096;

} // namespace

WalkerSpill::WalkerSpill(storage::IoDevice &device,
                         std::uint32_t walker_bytes, std::uint64_t capacity,
                         std::uint32_t num_blocks)
    : device_(&device), walker_bytes_(walker_bytes), capacity_(capacity),
      parked_(num_blocks, 0), spilled_(num_blocks, 0)
{
    NOSWALKER_CHECK(walker_bytes_ > 0);
}

void
WalkerSpill::write_out(std::uint32_t block, std::uint64_t count)
{
    if (count == 0) {
        return;
    }
    // The actual state payload is synthetic: the experiments only need
    // byte-accurate traffic, so a zero buffer of the right size is
    // written batch by batch.
    std::uint64_t bytes = count * walker_bytes_;
    static const std::vector<std::uint8_t> zeros(kBatchBytes, 0);
    while (bytes > 0) {
        const std::uint64_t len = std::min<std::uint64_t>(bytes, kBatchBytes);
        device_->write(device_cursor_, len, zeros.data());
        device_cursor_ += len;
        swap_bytes_ += len;
        bytes -= len;
    }
    spilled_[block] += count;
    NOSWALKER_CHECK(resident_ >= count);
    resident_ -= count;
}

void
WalkerSpill::read_in(std::uint32_t block, std::uint64_t count)
{
    if (count == 0) {
        return;
    }
    std::uint64_t bytes = count * walker_bytes_;
    std::vector<std::uint8_t> scratch(kBatchBytes);
    std::uint64_t cursor = 0;
    while (bytes > 0) {
        const std::uint64_t len = std::min<std::uint64_t>(bytes, kBatchBytes);
        // Reads address the spill region written earlier; exact offsets
        // are immaterial to the cost model, bytes and request counts are.
        device_->read(cursor, len, scratch.data());
        cursor += len;
        swap_bytes_ += len;
        bytes -= len;
    }
    NOSWALKER_CHECK(spilled_[block] >= count);
    spilled_[block] -= count;
    resident_ += count;
}

void
WalkerSpill::spill_from_coldest(std::uint64_t need, std::uint32_t except)
{
    // Evict resident walkers from the fullest other buckets until @p
    // need walkers fit (GraphWalker flushes whole buckets when its
    // buffer fills).
    while (need > 0) {
        std::uint32_t victim = except;
        std::uint64_t best = 0;
        for (std::uint32_t b = 0; b < parked_.size(); ++b) {
            if (b == except) {
                continue;
            }
            const std::uint64_t in_mem = parked_[b] - spilled_[b];
            if (in_mem > best) {
                best = in_mem;
                victim = b;
            }
        }
        if (victim == except || best == 0) {
            return; // nothing left to evict
        }
        const std::uint64_t count = std::min(best, need);
        write_out(victim, count);
        need -= count;
    }
}

void
WalkerSpill::park(std::uint32_t block, std::uint64_t count)
{
    parked_[block] += count;
    resident_ += count;
    if (resident_ > capacity_) {
        const std::uint64_t excess = resident_ - capacity_;
        const std::uint64_t in_mem = parked_[block] - spilled_[block];
        write_out(block, std::min(excess, in_mem));
    }
}

void
WalkerSpill::activate(std::uint32_t block)
{
    const std::uint64_t need = spilled_[block];
    if (need == 0) {
        return;
    }
    if (resident_ + need > capacity_) {
        spill_from_coldest(resident_ + need - capacity_, block);
    }
    read_in(block, need);
}

void
WalkerSpill::retire(std::uint32_t block, std::uint64_t count)
{
    // Engines retire walkers only from an activated (fully resident)
    // block, so the retired walkers are in memory by construction.
    NOSWALKER_CHECK(spilled_[block] == 0);
    NOSWALKER_CHECK(parked_[block] >= count);
    parked_[block] -= count;
    NOSWALKER_CHECK(resident_ >= count);
    resident_ -= count;
}

} // namespace noswalker::engine
