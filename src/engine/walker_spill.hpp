/**
 * @file
 * Walker-state swap accounting (§2.4.2).
 *
 * GraphChi-descended systems keep walker states in a bounded buffer and
 * swap overflow to disk; the paper measures this swap traffic at more
 * than 60 % of GraphWalker's total I/O.  WalkerSpill reproduces the
 * traffic: a global resident counter against a capacity, per-block
 * spilled counts, and real device write/read requests for every spill
 * and reload.  NosWalker's dynamic walker generation sets the capacity
 * high enough that this class is never invoked — that is optimization
 * (1) of the Fig 14 breakdown.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "storage/io_device.hpp"

namespace noswalker::engine {

/** Tracks walker residency and issues swap I/O through a device. */
class WalkerSpill {
  public:
    /**
     * @param device        swap target (separate from the graph device so
     *                      graph-I/O metrics stay clean).
     * @param walker_bytes  size of one walker state record.
     * @param capacity      walkers that fit in the in-memory buffer.
     * @param num_blocks    blocks walkers can be parked in.
     */
    WalkerSpill(storage::IoDevice &device, std::uint32_t walker_bytes,
                std::uint64_t capacity, std::uint32_t num_blocks);

    /**
     * Park @p count walkers in block @p block.  Walkers that exceed the
     * buffer capacity are written out.
     */
    void park(std::uint32_t block, std::uint64_t count);

    /**
     * Activate block @p block for processing: spilled walkers of the
     * block are read back in (possibly spilling other blocks to make
     * room) and the whole bucket becomes resident.
     */
    void activate(std::uint32_t block);

    /** Remove @p count walkers of @p block (moved away or terminated). */
    void retire(std::uint32_t block, std::uint64_t count);

    /** Total swap traffic so far in bytes. */
    std::uint64_t swap_bytes() const { return swap_bytes_; }

    /** Walkers currently resident in memory. */
    std::uint64_t resident() const { return resident_; }

  private:
    void spill_from_coldest(std::uint64_t need, std::uint32_t except);
    void write_out(std::uint32_t block, std::uint64_t count);
    void read_in(std::uint32_t block, std::uint64_t count);

    storage::IoDevice *device_;
    std::uint32_t walker_bytes_;
    std::uint64_t capacity_;
    std::uint64_t resident_ = 0;
    std::uint64_t swap_bytes_ = 0;
    std::uint64_t device_cursor_ = 0; ///< append position for spills
    std::vector<std::uint64_t> parked_;  ///< walkers per block
    std::vector<std::uint64_t> spilled_; ///< of which, on disk
};

} // namespace noswalker::engine
