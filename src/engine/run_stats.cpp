#include "engine/run_stats.hpp"

#include <algorithm>
#include <sstream>

namespace noswalker::engine {

double
RunStats::modeled_seconds() const
{
    const double eff = io_efficiency > 0.0 ? io_efficiency : 1.0;
    const double io = io_busy_seconds / eff;
    if (pipelined) {
        return std::max(io, cpu_seconds);
    }
    return io + cpu_seconds;
}

double
RunStats::edges_per_step() const
{
    return steps == 0 ? 0.0
                      : static_cast<double>(edges_loaded) /
                            static_cast<double>(steps);
}

double
RunStats::step_rate() const
{
    const double t = modeled_seconds();
    return t <= 0.0 ? 0.0 : static_cast<double>(steps) / t;
}

std::string
RunStats::to_string() const
{
    std::ostringstream out;
    out << "engine=" << engine << " walkers=" << walkers
        << " steps=" << steps << "\n"
        << "  graph_bytes=" << graph_bytes_read
        << " requests=" << graph_read_requests
        << " edges_loaded=" << edges_loaded << " swap_bytes=" << swap_bytes
        << "\n"
        << "  blocks=" << blocks_loaded << " fine_loads=" << fine_loads
        << " presample_steps=" << presample_steps
        << " block_steps=" << block_steps << " stalls=" << stalls << "\n"
        << "  cpu_s=" << cpu_seconds << " io_busy_s=" << io_busy_seconds
        << " eff=" << io_efficiency << " modeled_s=" << modeled_seconds()
        << " wall_s=" << wall_seconds << "\n"
        << "  edges/step=" << edges_per_step()
        << " steps/s=" << step_rate() << " peak_mem=" << peak_memory;
    return out.str();
}

} // namespace noswalker::engine
