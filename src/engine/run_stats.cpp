#include "engine/run_stats.hpp"

#include <algorithm>
#include <sstream>

namespace noswalker::engine {

double
RunStats::modeled_seconds() const
{
    const double eff = io_efficiency > 0.0 ? io_efficiency : 1.0;
    const double io = io_busy_seconds / eff;
    if (pipelined) {
        // Loading and stepping overlap, so the busy phases run at the
        // pace of the slower one — but the seconds the consumer
        // provably blocked on loads (io_wait_seconds) and on shard
        // round barriers (migration_wait_seconds) are covered by
        // neither phase and stretch the total.
        return std::max(io, cpu_seconds) + io_wait_seconds +
               migration_wait_seconds;
    }
    return io + cpu_seconds + migration_wait_seconds;
}

double
RunStats::edges_per_step() const
{
    return steps == 0 ? 0.0
                      : static_cast<double>(edges_loaded) /
                            static_cast<double>(steps);
}

double
RunStats::step_rate() const
{
    const double t = modeled_seconds();
    return t <= 0.0 ? 0.0 : static_cast<double>(steps) / t;
}

RunStats &
RunStats::operator+=(const RunStats &other)
{
    if (engine.empty()) {
        engine = other.engine;
    } else if (!other.engine.empty() && other.engine != engine) {
        engine = "mixed";
    }
    walkers += other.walkers;
    steps += other.steps;
    graph_bytes_read += other.graph_bytes_read;
    graph_read_requests += other.graph_read_requests;
    edges_loaded += other.edges_loaded;
    swap_bytes += other.swap_bytes;
    blocks_loaded += other.blocks_loaded;
    fine_loads += other.fine_loads;
    cache_hit_blocks += other.cache_hit_blocks;
    cache_miss_blocks += other.cache_miss_blocks;
    prefetch_hits += other.prefetch_hits;
    prefetch_mispredicts += other.prefetch_mispredicts;
    planned_loads += other.planned_loads;
    plan_rescores += other.plan_rescores;
    plan_cache_credits += other.plan_cache_credits;
    migrations += other.migrations;
    migration_batches += other.migration_batches;
    kernel_cohorts += other.kernel_cohorts;
    kernel_prefetches += other.kernel_prefetches;
    kernel_scalar_fallbacks += other.kernel_scalar_fallbacks;
    presample_steps += other.presample_steps;
    block_steps += other.block_steps;
    stalls += other.stalls;
    rejection_trials += other.rejection_trials;
    rejection_rejected += other.rejection_rejected;
    cpu_seconds += other.cpu_seconds;
    io_busy_seconds += other.io_busy_seconds;
    io_wait_seconds += other.io_wait_seconds;
    migration_wait_seconds += other.migration_wait_seconds;
    migration_overlap_seconds += other.migration_overlap_seconds;
    wall_seconds += other.wall_seconds;
    pipelined = pipelined || other.pipelined;
    io_efficiency = std::max(io_efficiency, other.io_efficiency);
    peak_memory = std::max(peak_memory, other.peak_memory);
    presample_bytes_used =
        std::max(presample_bytes_used, other.presample_bytes_used);
    presample_bytes_total =
        std::max(presample_bytes_total, other.presample_bytes_total);
    return *this;
}

RunStats
RunStats::scaled(double fraction) const
{
    const auto part = [fraction](std::uint64_t v) {
        return static_cast<std::uint64_t>(
            static_cast<double>(v) * fraction + 0.5);
    };
    RunStats out = *this;
    out.walkers = part(walkers);
    out.steps = part(steps);
    out.graph_bytes_read = part(graph_bytes_read);
    out.graph_read_requests = part(graph_read_requests);
    out.edges_loaded = part(edges_loaded);
    out.swap_bytes = part(swap_bytes);
    out.blocks_loaded = part(blocks_loaded);
    out.fine_loads = part(fine_loads);
    out.cache_hit_blocks = part(cache_hit_blocks);
    out.cache_miss_blocks = part(cache_miss_blocks);
    out.prefetch_hits = part(prefetch_hits);
    out.prefetch_mispredicts = part(prefetch_mispredicts);
    out.planned_loads = part(planned_loads);
    out.plan_rescores = part(plan_rescores);
    out.plan_cache_credits = part(plan_cache_credits);
    out.migrations = part(migrations);
    out.migration_batches = part(migration_batches);
    out.kernel_cohorts = part(kernel_cohorts);
    out.kernel_prefetches = part(kernel_prefetches);
    out.kernel_scalar_fallbacks = part(kernel_scalar_fallbacks);
    out.presample_steps = part(presample_steps);
    out.block_steps = part(block_steps);
    out.stalls = part(stalls);
    out.rejection_trials = part(rejection_trials);
    out.rejection_rejected = part(rejection_rejected);
    out.cpu_seconds = cpu_seconds * fraction;
    out.io_busy_seconds = io_busy_seconds * fraction;
    out.io_wait_seconds = io_wait_seconds * fraction;
    out.migration_wait_seconds = migration_wait_seconds * fraction;
    out.migration_overlap_seconds = migration_overlap_seconds * fraction;
    out.wall_seconds = wall_seconds * fraction;
    return out;
}

std::string
RunStats::to_string() const
{
    std::ostringstream out;
    out << "engine=" << engine << " walkers=" << walkers
        << " steps=" << steps << "\n"
        << "  graph_bytes=" << graph_bytes_read
        << " requests=" << graph_read_requests
        << " edges_loaded=" << edges_loaded << " swap_bytes=" << swap_bytes
        << "\n"
        << "  blocks=" << blocks_loaded << " fine_loads=" << fine_loads
        << " cache_hits=" << cache_hit_blocks
        << " cache_misses=" << cache_miss_blocks
        << " prefetch_hits=" << prefetch_hits
        << " mispredicts=" << prefetch_mispredicts
        << " presample_steps=" << presample_steps
        << " block_steps=" << block_steps << " stalls=" << stalls << "\n"
        << "  planned_loads=" << planned_loads
        << " plan_rescores=" << plan_rescores
        << " plan_cache_credits=" << plan_cache_credits << "\n"
        << "  migrations=" << migrations
        << " migration_batches=" << migration_batches
        << " migration_wait_s=" << migration_wait_seconds
        << " migration_overlap_s=" << migration_overlap_seconds << "\n"
        << "  kernel_cohorts=" << kernel_cohorts
        << " kernel_prefetches=" << kernel_prefetches
        << " kernel_scalar_fallbacks=" << kernel_scalar_fallbacks << "\n"
        << "  cpu_s=" << cpu_seconds << " io_busy_s=" << io_busy_seconds
        << " io_wait_s=" << io_wait_seconds
        << " eff=" << io_efficiency << " modeled_s=" << modeled_seconds()
        << " wall_s=" << wall_seconds << "\n"
        << "  edges/step=" << edges_per_step()
        << " steps/s=" << step_rate() << " peak_mem=" << peak_memory
        << " ps_mem=" << presample_bytes_used << "/"
        << presample_bytes_total;
    return out.str();
}

} // namespace noswalker::engine
