/**
 * @file
 * Walker state records.
 *
 * Walker states are the "vertex data" of random walk (§2.4.2): their
 * total size is proportional to the number of walkers, which is why
 * their management dominates existing systems' I/O.  Records are kept
 * POD and minimal so the spill accounting matches real byte counts.
 */
#pragma once

#include <cstdint>

#include "graph/types.hpp"

namespace noswalker::engine {

/** First-order walker: current position and steps taken. */
struct Walker {
    std::uint64_t id = 0;
    graph::VertexId location = 0;
    std::uint32_t step = 0;
};

/**
 * Second-order walker (Appendix A): additionally remembers the previous
 * vertex and, while a rejection-sampling trial is pending, the candidate
 * destination and the uniform height h of the trial coordinate.
 */
struct SecondOrderWalker {
    std::uint64_t id = 0;
    graph::VertexId location = 0;
    std::uint32_t step = 0;
    graph::VertexId prev = graph::kInvalidVertex;
    graph::VertexId candidate = graph::kInvalidVertex;
    float h = 0.0f;
};

/**
 * Engine-side wrapper pairing an application walker with its private
 * sampling stream (SplitMix64 state, one advance per sampling event).
 *
 * The stream is derived from (run seed, walker id) at generation time,
 * so a walker's trajectory is a pure function of the seed and the
 * graph — independent of how walkers interleave across step threads.
 * This generalizes the WalkerAware apps' per-walker seeding to every
 * application.
 */
template <typename WalkerT>
struct Stepped {
    WalkerT w;
    std::uint64_t rng_state = 0;
};

} // namespace noswalker::engine
