#include "storage/async_loader.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace noswalker::storage {

AsyncLoader::AsyncLoader(BlockReader &reader, bool background,
                         std::size_t depth, BlockBufferPool *pool)
    : reader_(&reader), background_(background),
      depth_(std::max<std::size_t>(depth, 1)), pool_(pool),
      requests_(depth_), responses_(depth_)
{
    if (background_) {
        thread_ = std::thread([this] { loop(); });
    }
}

AsyncLoader::~AsyncLoader()
{
    requests_.close();
    responses_.close();
    if (thread_.joinable()) {
        thread_.join();
    }
}

void
AsyncLoader::submit(Request request)
{
    NOSWALKER_CHECK(can_submit());
    NOSWALKER_CHECK(request.block != nullptr);
    ++inflight_;
    if (background_) {
        requests_.push(std::move(request));
    } else {
        pending_.push_back(std::move(request));
    }
}

AsyncLoader::Response
AsyncLoader::wait()
{
    NOSWALKER_CHECK(outstanding());
    --inflight_;
    if (!background_) {
        Request request = std::move(pending_.front());
        pending_.pop_front();
        Response response = execute(request);
        if (response.error) {
            std::rethrow_exception(response.error);
        }
        return response;
    }
    auto response = responses_.pop();
    NOSWALKER_CHECK(response.has_value());
    if (response->error) {
        std::rethrow_exception(response->error);
    }
    return std::move(*response);
}

std::optional<AsyncLoader::Response>
AsyncLoader::try_wait()
{
    if (!outstanding()) {
        return std::nullopt;
    }
    if (!background_) {
        --inflight_;
        Request request = std::move(pending_.front());
        pending_.pop_front();
        return execute(request);
    }
    auto response = responses_.try_pop();
    if (!response.has_value()) {
        return std::nullopt;
    }
    --inflight_;
    return std::move(*response);
}

AsyncLoader::Response
AsyncLoader::execute(Request &request)
{
    Response response;
    response.block = request.block;
    response.fine = request.fine;
    if (pool_ != nullptr) {
        response.buffer = pool_->acquire();
    }
    try {
        if (request.fine) {
            response.result = reader_->load_fine(*request.block,
                                                 request.needed,
                                                 response.buffer);
        } else {
            response.result =
                reader_->load_coarse(*request.block, response.buffer);
        }
    } catch (...) {
        response.error = std::current_exception();
    }
    return response;
}

void
AsyncLoader::loop()
{
    for (;;) {
        auto request = requests_.pop();
        if (!request.has_value()) {
            return;
        }
        if (!responses_.push(execute(*request))) {
            return;
        }
    }
}

} // namespace noswalker::storage
