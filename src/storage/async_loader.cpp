#include "storage/async_loader.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace noswalker::storage {

AsyncLoader::AsyncLoader(BlockReader &reader, bool background,
                         std::size_t depth, BlockBufferPool *pool)
    : reader_(&reader), background_(background),
      depth_(std::max<std::size_t>(depth, 1)), pool_(pool),
      requests_(depth_), responses_(depth_)
{
    if (background_) {
        thread_ = std::thread([this] { loop(); });
    }
}

AsyncLoader::~AsyncLoader()
{
    requests_.close();
    responses_.close();
    if (thread_.joinable()) {
        thread_.join();
    }
}

std::uint64_t
AsyncLoader::submit(Request request)
{
    NOSWALKER_CHECK(can_submit());
    NOSWALKER_CHECK(request.block != nullptr);
    const std::uint64_t ticket = next_ticket_++;
    request.ticket = ticket;
    ++inflight_;
    if (background_) {
        requests_.push(std::move(request));
    } else {
        pending_.push_back(std::move(request));
    }
    return ticket;
}

void
AsyncLoader::drain_ready()
{
    for (;;) {
        auto response = responses_.try_pop();
        if (!response.has_value()) {
            return;
        }
        const std::uint64_t ticket = response->ticket;
        banked_.emplace(ticket, std::move(*response));
    }
}

AsyncLoader::Response
AsyncLoader::pop_banked()
{
    NOSWALKER_CHECK(!banked_.empty());
    auto it = banked_.begin();
    Response response = std::move(it->second);
    banked_.erase(it);
    return response;
}

AsyncLoader::Response
AsyncLoader::consume(Response response)
{
    NOSWALKER_CHECK(inflight_ > 0);
    --inflight_;
    return response;
}

AsyncLoader::Response
AsyncLoader::wait()
{
    Response response = consume_any();
    return response;
}

AsyncLoader::Response
AsyncLoader::consume_any()
{
    NOSWALKER_CHECK(outstanding());
    if (!background_) {
        if (!banked_.empty()) {
            Response response = consume(pop_banked());
            if (response.error) {
                std::rethrow_exception(response.error);
            }
            return response;
        }
        Request request = std::move(pending_.front());
        pending_.pop_front();
        Response response = consume(execute(request));
        if (response.error) {
            std::rethrow_exception(response.error);
        }
        return response;
    }
    drain_ready();
    if (banked_.empty()) {
        auto response = responses_.pop();
        NOSWALKER_CHECK(response.has_value());
        banked_.emplace(response->ticket, std::move(*response));
    }
    Response response = consume(pop_banked());
    if (response.error) {
        std::rethrow_exception(response.error);
    }
    return response;
}

std::optional<AsyncLoader::Response>
AsyncLoader::try_wait()
{
    if (!outstanding()) {
        return std::nullopt;
    }
    if (!background_) {
        if (!banked_.empty()) {
            return consume(pop_banked());
        }
        Request request = std::move(pending_.front());
        pending_.pop_front();
        return consume(execute(request));
    }
    drain_ready();
    if (banked_.empty()) {
        return std::nullopt;
    }
    return consume(pop_banked());
}

std::optional<AsyncLoader::Response>
AsyncLoader::try_consume(std::uint32_t block_id)
{
    if (!outstanding()) {
        return std::nullopt;
    }
    if (background_) {
        drain_ready();
    } else {
        // Execute every pending load up to and including the target —
        // the work a background thread would already have finished by
        // the time the target completed — banking the earlier ones.
        const bool queued = std::any_of(
            pending_.begin(), pending_.end(), [&](const Request &r) {
                return r.block->id == block_id;
            });
        if (queued) {
            for (;;) {
                Request request = std::move(pending_.front());
                pending_.pop_front();
                const bool target = request.block->id == block_id;
                Response response = execute(request);
                banked_.emplace(response.ticket, std::move(response));
                if (target) {
                    break;
                }
            }
        }
    }
    for (auto it = banked_.begin(); it != banked_.end(); ++it) {
        if (it->second.block->id == block_id) {
            Response response = std::move(it->second);
            banked_.erase(it);
            return consume(std::move(response));
        }
    }
    return std::nullopt;
}

AsyncLoader::Response
AsyncLoader::execute(Request &request)
{
    Response response;
    response.block = request.block;
    response.fine = request.fine;
    response.ticket = request.ticket;
    if (pool_ != nullptr) {
        response.buffer = pool_->acquire();
    }
    try {
        if (request.fine) {
            response.result = reader_->load_fine(*request.block,
                                                 request.needed,
                                                 response.buffer);
        } else {
            response.result =
                reader_->load_coarse(*request.block, response.buffer);
        }
    } catch (...) {
        response.error = std::current_exception();
    }
    return response;
}

void
AsyncLoader::loop()
{
    for (;;) {
        auto request = requests_.pop();
        if (!request.has_value()) {
            return;
        }
        if (!responses_.push(execute(*request))) {
            return;
        }
    }
}

} // namespace noswalker::storage
