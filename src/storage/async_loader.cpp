#include "storage/async_loader.hpp"

#include <utility>

#include "util/error.hpp"

namespace noswalker::storage {

AsyncLoader::AsyncLoader(BlockReader &reader, bool background)
    : reader_(&reader), background_(background)
{
    if (background_) {
        thread_ = std::thread([this] { loop(); });
    }
}

AsyncLoader::~AsyncLoader()
{
    requests_.close();
    responses_.close();
    if (thread_.joinable()) {
        thread_.join();
    }
}

void
AsyncLoader::submit(Request request)
{
    NOSWALKER_CHECK(!outstanding_);
    NOSWALKER_CHECK(request.block != nullptr);
    outstanding_ = true;
    if (background_) {
        requests_.push(std::move(request));
    } else {
        sync_request_ = std::move(request);
    }
}

AsyncLoader::Response
AsyncLoader::wait()
{
    NOSWALKER_CHECK(outstanding_);
    outstanding_ = false;
    if (!background_) {
        Response response = execute(*sync_request_);
        sync_request_.reset();
        return response;
    }
    auto response = responses_.pop();
    NOSWALKER_CHECK(response.has_value());
    if (response->error) {
        std::rethrow_exception(response->error);
    }
    return std::move(*response);
}

AsyncLoader::Response
AsyncLoader::execute(Request &request)
{
    Response response;
    response.block = request.block;
    response.fine = request.fine;
    try {
        if (request.fine) {
            response.result = reader_->load_fine(*request.block,
                                                 request.needed,
                                                 response.buffer);
        } else {
            response.result =
                reader_->load_coarse(*request.block, response.buffer);
        }
    } catch (...) {
        response.error = std::current_exception();
    }
    return response;
}

void
AsyncLoader::loop()
{
    for (;;) {
        auto request = requests_.pop();
        if (!request.has_value()) {
            return;
        }
        if (!responses_.push(execute(*request))) {
            return;
        }
    }
}

} // namespace noswalker::storage
