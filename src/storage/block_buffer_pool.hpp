/**
 * @file
 * Recycling pool of BlockBuffers (DESIGN.md §10).
 *
 * Every block load used to allocate a fresh page-span vector and take a
 * fresh budget reservation, then drop both when the block was consumed
 * — allocation churn on the hottest path in the engine.  The pool keeps
 * consumed buffers at their capacity high-water mark (storage and
 * reservation intact, see BlockBuffer::clear), so steady-state loads
 * reuse storage and the budget charge instead of round-tripping the
 * allocator and the accountant.
 */
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "storage/block_reader.hpp"

namespace noswalker::storage {

/**
 * Thread-safe free list of BlockBuffers.
 *
 * The loader thread acquires, the engine thread recycles; both may run
 * concurrently.  Buffers recycled beyond @p max_free release their
 * storage before being dropped so an over-provisioned pool cannot pin
 * memory forever.
 */
class BlockBufferPool {
  public:
    explicit BlockBufferPool(std::size_t max_free = 16)
        : max_free_(max_free)
    {
    }

    BlockBufferPool(const BlockBufferPool &) = delete;
    BlockBufferPool &operator=(const BlockBufferPool &) = delete;

    /** Take a buffer (recycled when available, fresh otherwise). */
    BlockBuffer acquire();

    /** Return a consumed buffer; capacity and reservation survive. */
    void recycle(BlockBuffer &&buffer);

    /** Buffers constructed fresh because the free list was empty. */
    std::uint64_t created() const;

    /** Acquisitions served from the free list. */
    std::uint64_t reused() const;

    /** Buffers currently parked in the free list. */
    std::size_t free_count() const;

  private:
    mutable std::mutex mutex_;
    std::vector<BlockBuffer> free_;
    std::size_t max_free_;
    std::uint64_t created_ = 0;
    std::uint64_t reused_ = 0;
};

} // namespace noswalker::storage
