#include "storage/file_device.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/error.hpp"

namespace noswalker::storage {

FileDevice::FileDevice(const std::string &path, SsdModel model)
    : IoDevice(model), path_(path)
{
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) {
        throw util::IoError("FileDevice: cannot open '" + path +
                            "': " + std::strerror(errno));
    }
}

FileDevice::~FileDevice()
{
    if (fd_ >= 0) {
        ::close(fd_);
    }
}

std::uint64_t
FileDevice::size() const
{
    struct stat st {};
    if (::fstat(fd_, &st) != 0) {
        throw util::IoError("FileDevice: fstat failed on '" + path_ +
                            "': " + std::strerror(errno));
    }
    return static_cast<std::uint64_t>(st.st_size);
}

void
FileDevice::sync()
{
    ::fsync(fd_);
}

void
FileDevice::do_read(std::uint64_t offset, std::uint64_t len, void *buffer)
{
    std::uint8_t *out = static_cast<std::uint8_t *>(buffer);
    std::uint64_t done = 0;
    while (done < len) {
        const ssize_t got =
            ::pread(fd_, out + done, len - done,
                    static_cast<off_t>(offset + done));
        if (got < 0) {
            throw util::IoError("FileDevice: pread failed on '" + path_ +
                                "': " + std::strerror(errno));
        }
        if (got == 0) {
            throw util::IoError("FileDevice: short read on '" + path_ + "'");
        }
        done += static_cast<std::uint64_t>(got);
    }
}

void
FileDevice::do_write(std::uint64_t offset, std::uint64_t len,
                     const void *buffer)
{
    const std::uint8_t *in = static_cast<const std::uint8_t *>(buffer);
    std::uint64_t done = 0;
    while (done < len) {
        const ssize_t put =
            ::pwrite(fd_, in + done, len - done,
                     static_cast<off_t>(offset + done));
        if (put < 0) {
            throw util::IoError("FileDevice: pwrite failed on '" + path_ +
                                "': " + std::strerror(errno));
        }
        done += static_cast<std::uint64_t>(put);
    }
}

} // namespace noswalker::storage
