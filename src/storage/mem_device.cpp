#include "storage/mem_device.hpp"

#include <cstring>
#include <string>

#include "util/error.hpp"

namespace noswalker::storage {

void
MemDevice::do_read(std::uint64_t offset, std::uint64_t len, void *buffer)
{
    if (offset + len > data_.size()) {
        throw util::IoError("MemDevice: read past end (offset " +
                            std::to_string(offset) + " len " +
                            std::to_string(len) + " size " +
                            std::to_string(data_.size()) + ")");
    }
    std::memcpy(buffer, data_.data() + offset, len);
}

void
MemDevice::do_write(std::uint64_t offset, std::uint64_t len,
                    const void *buffer)
{
    if (offset + len > data_.size()) {
        data_.resize(offset + len);
    }
    std::memcpy(data_.data() + offset, buffer, len);
}

} // namespace noswalker::storage
