/**
 * @file
 * POSIX file-backed device.
 *
 * Used when a run should exercise the real filesystem (examples and the
 * on-disk integration tests); the cost model still accumulates modeled
 * busy time so results are comparable with MemDevice runs.
 */
#pragma once

#include <cstdint>
#include <string>

#include "storage/io_device.hpp"

namespace noswalker::storage {

/** Device over a regular file, using pread/pwrite. */
class FileDevice final : public IoDevice {
  public:
    /**
     * Open (creating if needed) @p path.
     * @throws util::IoError when the file cannot be opened.
     */
    explicit FileDevice(const std::string &path,
                        SsdModel model = SsdModel::p4618());

    ~FileDevice() override;

    std::uint64_t size() const override;

    /** Path this device is bound to. */
    const std::string &path() const { return path_; }

    /** Flush file contents to stable storage. */
    void sync();

  protected:
    void do_read(std::uint64_t offset, std::uint64_t len,
                 void *buffer) override;
    void do_write(std::uint64_t offset, std::uint64_t len,
                  const void *buffer) override;

  private:
    std::string path_;
    int fd_ = -1;
};

} // namespace noswalker::storage
