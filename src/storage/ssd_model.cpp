#include "storage/ssd_model.hpp"

#include <algorithm>

namespace noswalker::storage {

double
SsdModel::request_seconds(std::uint64_t len) const
{
    if (seq_bandwidth <= 0.0 || iops <= 0.0) {
        return 0.0;
    }
    const double bw_time = static_cast<double>(len) / seq_bandwidth;
    const double iops_time = 1.0 / iops;
    return std::max(bw_time, iops_time);
}

SsdModel
SsdModel::p4618()
{
    SsdModel m;
    m.seq_bandwidth = 3.1 * static_cast<double>(1ULL << 30);
    m.iops = 600'000.0;
    m.queue_latency = 80e-6;
    return m;
}

SsdModel
SsdModel::raid0_s4610()
{
    SsdModel m;
    m.seq_bandwidth = 3.4 * static_cast<double>(1ULL << 30);
    m.iops = 150'000.0;
    m.queue_latency = 150e-6;
    return m;
}

SsdModel
SsdModel::instant()
{
    SsdModel m;
    m.seq_bandwidth = 0.0;
    m.iops = 0.0;
    m.queue_latency = 0.0;
    return m;
}

} // namespace noswalker::storage
