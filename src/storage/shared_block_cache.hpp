/**
 * @file
 * Shared, reference-counted cache of coarse block loads.
 *
 * Concurrent walk-service runs over the same GraphFile repeatedly load
 * the same hot blocks.  This cache lets every BlockReader publish the
 * raw bytes of a completed coarse load and serve later loads of the
 * same block without touching the device: a hit costs one memcpy
 * instead of a modeled multi-millisecond SSD read.
 *
 * Entries are held by shared_ptr, so a reader that obtained an entry
 * keeps it alive even if the LRU policy evicts it concurrently
 * (reference counting is what makes the cache safe to share across
 * worker threads without a reader lock on the bytes).  Capacity is
 * byte-bounded and, when a shared util::MemoryBudget is attached,
 * every resident entry is charged against it — the cache shrinks to
 * whatever the engines leave over and never causes a BudgetExceeded.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/memory_budget.hpp"

namespace noswalker::storage {

/** Thread-safe byte-bounded LRU cache of coarse block bytes. */
class SharedBlockCache {
  public:
    /** One cached coarse load: the page-aligned span of a block. */
    struct Entry {
        std::uint32_t block_id = 0;
        /** Absolute file offset of bytes[0] (page aligned). */
        std::uint64_t aligned_begin = 0;
        std::vector<std::uint8_t> bytes;
        /**
         * Bytes reserved against the attached budget when this entry
         * was inserted.  Zero for entries inserted while no budget was
         * attached — eviction releases exactly this amount, never the
         * byte size, so attaching a budget to a pre-populated cache
         * cannot over-release.
         */
        std::uint64_t reserved_bytes = 0;
    };

    /**
     * @param capacity_bytes  max resident entry bytes (0 disables
     *        caching entirely; every lookup misses).
     * @param budget  optional shared budget every resident entry is
     *        charged against (best effort: entries that do not fit are
     *        simply not cached).
     */
    explicit SharedBlockCache(std::uint64_t capacity_bytes,
                              util::MemoryBudget *budget = nullptr)
        : capacity_(capacity_bytes), budget_(budget)
    {
    }

    ~SharedBlockCache() { clear(); }

    SharedBlockCache(const SharedBlockCache &) = delete;
    SharedBlockCache &operator=(const SharedBlockCache &) = delete;

    /**
     * Look up @p block_id, bumping it to most-recently-used.
     * @return a pinned entry, or nullptr on a miss.
     */
    std::shared_ptr<const Entry> find(std::uint32_t block_id);

    /**
     * Non-mutating residency probe: no LRU bump, no hit/miss count.
     * The LoadPlanner's residency term (DESIGN.md §13) asks many times
     * per planning point whether a candidate's bytes are cached;
     * find() here would skew both the recency order and the hit-rate
     * counters the service reports per tenant.
     */
    bool resident(std::uint32_t block_id) const;

    /**
     * Publish a completed coarse load (best effort).  Oversized entries
     * and entries that cannot fit the byte capacity or the attached
     * budget after evicting colder blocks are dropped silently.
     */
    void insert(std::uint32_t block_id, std::uint64_t aligned_begin,
                std::vector<std::uint8_t> bytes);

    /** Drop every entry (pinned readers keep theirs alive). */
    void clear();

    /**
     * Attach (or detach, with nullptr) the budget later insertions
     * reserve against.  Entries already resident stay unaccounted —
     * their reserved_bytes is zero, so their eviction releases
     * nothing.  Reservations made under a previously attached budget
     * are released against the new one's pointer only via their
     * recorded reserved_bytes; detach only when no reserved entries
     * remain resident.
     */
    void attach_budget(util::MemoryBudget *budget);

    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    std::uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
    std::uint64_t evictions() const { return evictions_.load(std::memory_order_relaxed); }

    /** Bytes of resident entries. */
    std::uint64_t used_bytes() const;

    /** The configured byte capacity. */
    std::uint64_t capacity_bytes() const { return capacity_; }

  private:
    using LruList =
        std::list<std::pair<std::uint32_t, std::shared_ptr<const Entry>>>;

    /** Drop the LRU tail entry. @pre lru_ not empty; mutex held. */
    void evict_tail();

    const std::uint64_t capacity_;
    util::MemoryBudget *budget_;

    mutable std::mutex mutex_;
    std::uint64_t used_ = 0;
    LruList lru_; ///< front = most recently used
    std::unordered_map<std::uint32_t, LruList::iterator> index_;

    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> evictions_{0};
};

} // namespace noswalker::storage
