#include "storage/io_device.hpp"

namespace noswalker::storage {

IoStats &
IoStats::operator+=(const IoStats &other)
{
    bytes_read += other.bytes_read;
    bytes_written += other.bytes_written;
    read_requests += other.read_requests;
    write_requests += other.write_requests;
    busy_seconds += other.busy_seconds;
    return *this;
}

void
IoDevice::read(std::uint64_t offset, std::uint64_t len, void *buffer)
{
    do_read(offset, len, buffer);
    account(false, len, model_.request_seconds(len));
}

void
IoDevice::write(std::uint64_t offset, std::uint64_t len, const void *buffer)
{
    do_write(offset, len, buffer);
    account(true, len, model_.request_seconds(len));
}

void
IoDevice::account(bool is_write, std::uint64_t len, double seconds)
{
    if (is_write) {
        bytes_written_.fetch_add(len, std::memory_order_relaxed);
        write_requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
        bytes_read_.fetch_add(len, std::memory_order_relaxed);
        read_requests_.fetch_add(1, std::memory_order_relaxed);
    }
    busy_nanos_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                          std::memory_order_relaxed);
}

IoStats
IoDevice::stats() const
{
    IoStats s;
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.read_requests = read_requests_.load(std::memory_order_relaxed);
    s.write_requests = write_requests_.load(std::memory_order_relaxed);
    s.busy_seconds =
        static_cast<double>(busy_nanos_.load(std::memory_order_relaxed)) /
        1e9;
    return s;
}

void
IoDevice::reset_stats()
{
    bytes_read_.store(0, std::memory_order_relaxed);
    bytes_written_.store(0, std::memory_order_relaxed);
    read_requests_.store(0, std::memory_order_relaxed);
    write_requests_.store(0, std::memory_order_relaxed);
    busy_nanos_.store(0, std::memory_order_relaxed);
}

} // namespace noswalker::storage
