/**
 * @file
 * RAID-0 striping device (Fig 12 b/c substrate).
 *
 * Stripes a logical address space over N member devices at a fixed
 * chunk size.  Each member accrues its own modeled busy time; because
 * members serve sub-requests in parallel, the array's busy time is the
 * maximum over members (exposed via stats().busy_seconds).  With the
 * seven-S4610 preset the array is bandwidth-rich but IOPS-poor relative
 * to the NVMe device, which is exactly the regime Fig 12 explores.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/io_device.hpp"
#include "storage/mem_device.hpp"

namespace noswalker::storage {

/** RAID-0 over in-memory members. */
class Raid0Device final : public IoDevice {
  public:
    /**
     * @param num_members  member disk count (paper: 7).
     * @param chunk_bytes  stripe chunk (default 64 KiB).
     * @param member_model cost model of one member device.
     */
    Raid0Device(unsigned num_members, std::uint64_t chunk_bytes,
                SsdModel member_model);

    /** Seven Intel S4610 members matching the paper's array. */
    static std::unique_ptr<Raid0Device> paper_array();

    std::uint64_t size() const override;

    /**
     * Logical request/byte counters of the array with busy time taken as
     * the maximum over members (members serve in parallel).
     */
    IoStats stats() const override;

    /** Aggregate member stats with busy time = max over members. */
    IoStats array_stats() const;

    /** Member count. */
    unsigned num_members() const
    {
        return static_cast<unsigned>(members_.size());
    }

  protected:
    void do_read(std::uint64_t offset, std::uint64_t len,
                 void *buffer) override;
    void do_write(std::uint64_t offset, std::uint64_t len,
                  const void *buffer) override;

  private:
    /** Map logical (offset,len) to per-member sub-requests. */
    template <typename Fn>
    void for_each_chunk(std::uint64_t offset, std::uint64_t len, Fn &&fn);

    std::uint64_t chunk_bytes_;
    std::vector<std::unique_ptr<MemDevice>> members_;
};

} // namespace noswalker::storage
