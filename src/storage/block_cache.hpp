/**
 * @file
 * LRU cache of loaded block buffers — the "cached block region" of
 * Figure 1(a).
 *
 * The paper caps every system's memory *including the page cache* with
 * cgroups, so GraphChi-descended baselines keep recently streamed
 * blocks in memory up to the budget and skip re-reading them.  This
 * cache models exactly that: block-granular, LRU, byte-capacity bound.
 * NosWalker deliberately does not use it — its memory goes to the
 * pre-sample pool instead, which is the architectural contrast the
 * paper draws in Figure 1.
 */
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>

#include "storage/block_reader.hpp"

namespace noswalker::storage {

/** Byte-bounded LRU cache of coarse block buffers. */
class BlockCache {
  public:
    /** Cache holding at most @p capacity_bytes of block data. */
    explicit BlockCache(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
    }

    /**
     * Get @p block's buffer, serving from cache when resident.
     *
     * On a miss the block is loaded through @p reader; if it fits the
     * capacity it is cached (evicting least-recently-used blocks),
     * otherwise it is loaded into @p scratch.  The returned pointer
     * stays valid until the next get() call.
     */
    const BlockBuffer *get(BlockReader &reader,
                           const graph::BlockInfo &block,
                           BlockBuffer &scratch);

    /** Cache hits so far. */
    std::uint64_t hits() const { return hits_; }

    /** Cache misses (loads actually performed). */
    std::uint64_t misses() const { return misses_; }

    /** Bytes currently cached. */
    std::uint64_t used_bytes() const { return used_; }

    /** Drop everything. */
    void clear();

  private:
    struct Entry {
        std::uint32_t block_id;
        BlockBuffer buffer;
    };

    void evict_for(std::uint64_t need, std::uint32_t keep);

    std::uint64_t capacity_;
    std::uint64_t used_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<std::uint32_t, std::list<Entry>::iterator> index_;
};

} // namespace noswalker::storage
