/**
 * @file
 * In-memory backing store with SSD cost accounting.
 *
 * The default experiment device: data lives in RAM (so runs are fast
 * and deterministic) while the SsdModel accounts what the same request
 * stream would cost on the paper's hardware.  Counters and modeled time
 * are identical to FileDevice for the same request sequence.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "storage/io_device.hpp"

namespace noswalker::storage {

/** Byte-vector device; grows on writes past the end. */
class MemDevice final : public IoDevice {
  public:
    /** Empty device with the given cost model. */
    explicit MemDevice(SsdModel model = SsdModel::p4618())
        : IoDevice(model) {}

    /** Device pre-loaded with @p data. */
    MemDevice(std::vector<std::uint8_t> data, SsdModel model)
        : IoDevice(model), data_(std::move(data)) {}

    std::uint64_t size() const override { return data_.size(); }

    /** Direct access to the backing bytes (test fixtures, loaders). */
    std::vector<std::uint8_t> &bytes() { return data_; }
    const std::vector<std::uint8_t> &bytes() const { return data_; }

  protected:
    void do_read(std::uint64_t offset, std::uint64_t len,
                 void *buffer) override;
    void do_write(std::uint64_t offset, std::uint64_t len,
                  const void *buffer) override;

  private:
    std::vector<std::uint8_t> data_;
};

} // namespace noswalker::storage
