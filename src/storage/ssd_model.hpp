/**
 * @file
 * Analytic SSD cost model.
 *
 * Substitute for the paper's physical devices (DESIGN.md §2).  Modern
 * SSDs deliver either high sequential bandwidth or high IOPS but not
 * both (§3.3.1); the standard first-order model captures exactly this:
 *
 *     t(request of len bytes) = max(len / seq_bandwidth, 1 / iops)
 *
 * With the P4618 numbers (3.1 GiB/s, 600k IOPS) a 4 KiB read costs
 * 1/600k s (IOPS bound → 2.4 GiB/s effective, matching the paper) and a
 * multi-MiB read costs len/bw (bandwidth bound).  Devices accumulate the
 * modeled time of every request as "busy seconds".
 */
#pragma once

#include <cstdint>

namespace noswalker::storage {

/** Device performance parameters and the request-time formula. */
struct SsdModel {
    /** Sequential read bandwidth, bytes per second. */
    double seq_bandwidth = 3.1 * (1ULL << 30);
    /** Sustained small-request rate, requests per second. */
    double iops = 600'000.0;
    /** Smallest addressable request (one SSD page). */
    std::uint32_t page_bytes = 4096;
    /**
     * Submission-to-device latency of one request, seconds (queueing +
     * firmware turnaround).  Not part of request_seconds: a deep queue
     * hides it, so only the prefetch-pipeline timeline charges it —
     * once per request at depth 1, amortized across the queue at
     * depth K (DESIGN.md §10).
     */
    double queue_latency = 80e-6;

    /** Modeled seconds for a single request of @p len bytes. */
    double request_seconds(std::uint64_t len) const;

    /** Intel SSD DC P4618 (the paper's NVMe device). */
    static SsdModel p4618();

    /** RAID-0 of seven Intel S4610 (3.4 GiB/s seq, 150k IOPS @4 KiB). */
    static SsdModel raid0_s4610();

    /** Infinitely fast device (unit tests, in-memory baselines). */
    static SsdModel instant();
};

} // namespace noswalker::storage
