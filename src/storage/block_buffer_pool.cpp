#include "storage/block_buffer_pool.hpp"

#include <utility>

namespace noswalker::storage {

BlockBuffer
BlockBufferPool::acquire()
{
    std::lock_guard lock(mutex_);
    if (!free_.empty()) {
        BlockBuffer buffer = std::move(free_.back());
        free_.pop_back();
        ++reused_;
        return buffer;
    }
    ++created_;
    return BlockBuffer{};
}

void
BlockBufferPool::recycle(BlockBuffer &&buffer)
{
    buffer.clear();
    std::lock_guard lock(mutex_);
    if (free_.size() >= max_free_) {
        buffer.release_storage();
        return;
    }
    free_.push_back(std::move(buffer));
}

std::uint64_t
BlockBufferPool::created() const
{
    std::lock_guard lock(mutex_);
    return created_;
}

std::uint64_t
BlockBufferPool::reused() const
{
    std::lock_guard lock(mutex_);
    return reused_;
}

std::size_t
BlockBufferPool::free_count() const
{
    std::lock_guard lock(mutex_);
    return free_.size();
}

} // namespace noswalker::storage
