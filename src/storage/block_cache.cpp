#include "storage/block_cache.hpp"

namespace noswalker::storage {

const BlockBuffer *
BlockCache::get(BlockReader &reader, const graph::BlockInfo &block,
                BlockBuffer &scratch)
{
    const auto it = index_.find(block.id);
    if (it != index_.end()) {
        ++hits_;
        lru_.splice(lru_.begin(), lru_, it->second);
        return &lru_.front().buffer;
    }

    ++misses_;
    BlockBuffer loaded;
    reader.load_coarse(block, loaded);
    const std::uint64_t bytes = loaded.capacity_bytes();
    if (bytes > capacity_) {
        // Too large to cache: hand it back through the scratch buffer.
        scratch = std::move(loaded);
        return &scratch;
    }
    evict_for(bytes, block.id);
    lru_.push_front(Entry{block.id, std::move(loaded)});
    index_[block.id] = lru_.begin();
    used_ += bytes;
    return &lru_.front().buffer;
}

void
BlockCache::evict_for(std::uint64_t need, std::uint32_t keep)
{
    while (used_ + need > capacity_ && !lru_.empty()) {
        auto victim = std::prev(lru_.end());
        if (victim->block_id == keep) {
            break;
        }
        used_ -= victim->buffer.capacity_bytes();
        index_.erase(victim->block_id);
        lru_.erase(victim);
    }
}

void
BlockCache::clear()
{
    lru_.clear();
    index_.clear();
    used_ = 0;
}

} // namespace noswalker::storage
