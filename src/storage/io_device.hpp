/**
 * @file
 * Block I/O device interface with built-in accounting.
 *
 * Every byte any engine moves to or from "disk" flows through an
 * IoDevice, so the per-system I/O comparisons of the paper (Fig 2,
 * Fig 14's normalized I/O lines) fall out of the device counters, and
 * the simulated time of the SsdModel accumulates as busy_seconds.
 */
#pragma once

#include <atomic>
#include <cstdint>

#include "storage/ssd_model.hpp"

namespace noswalker::storage {

/** Immutable snapshot of a device's counters. */
struct IoStats {
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t read_requests = 0;
    std::uint64_t write_requests = 0;
    /** Modeled device-busy time, seconds. */
    double busy_seconds = 0.0;

    IoStats &operator+=(const IoStats &other);
};

/**
 * Abstract random-access byte device.
 *
 * Thread safe with respect to accounting; concrete backends document
 * their data-path thread safety (MemDevice and FileDevice reads are
 * safe concurrently; writes require external ordering per region).
 */
class IoDevice {
  public:
    explicit IoDevice(SsdModel model) : model_(model) {}
    virtual ~IoDevice() = default;

    IoDevice(const IoDevice &) = delete;
    IoDevice &operator=(const IoDevice &) = delete;

    /** Device capacity in bytes (grows on write for MemDevice). */
    virtual std::uint64_t size() const = 0;

    /**
     * Read @p len bytes at @p offset into @p buffer.
     * @throws util::IoError on short or failed reads.
     */
    void read(std::uint64_t offset, std::uint64_t len, void *buffer);

    /** Write @p len bytes at @p offset from @p buffer. */
    void write(std::uint64_t offset, std::uint64_t len, const void *buffer);

    /**
     * Read without touching this device's accounting or cost model:
     * the data path for adapter devices (shard::ShardDevice) that keep
     * a private model over a shared byte store.
     */
    void
    peek(std::uint64_t offset, std::uint64_t len, void *buffer)
    {
        do_read(offset, len, buffer);
    }

    /** The device's cost model. */
    const SsdModel &model() const { return model_; }

    /** Snapshot the accounting counters. */
    virtual IoStats stats() const;

    /** Zero all counters (between experiment phases). */
    void reset_stats();

  protected:
    virtual void do_read(std::uint64_t offset, std::uint64_t len,
                         void *buffer) = 0;
    virtual void do_write(std::uint64_t offset, std::uint64_t len,
                          const void *buffer) = 0;

    /** Account one request without moving data (used by Raid0Device). */
    void account(bool is_write, std::uint64_t len, double seconds);

  private:
    SsdModel model_;
    std::atomic<std::uint64_t> bytes_read_{0};
    std::atomic<std::uint64_t> bytes_written_{0};
    std::atomic<std::uint64_t> read_requests_{0};
    std::atomic<std::uint64_t> write_requests_{0};
    /** Busy time in nanoseconds, atomic for cross-thread accumulation. */
    std::atomic<std::uint64_t> busy_nanos_{0};
};

} // namespace noswalker::storage
