/**
 * @file
 * Coarse- and fine-grained block loading (§3.3.1).
 *
 * Coarse mode streams a whole block in large sequential requests
 * (bandwidth-bound on the SsdModel).  Fine mode loads only the 4 KiB
 * pages that stalled walkers need, following a page bitmap (IOPS-bound)
 * — adjacent marked pages are coalesced into single requests, exactly
 * like issuing one larger NVMe command.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/shared_block_cache.hpp"
#include "util/bitmap.hpp"
#include "util/memory_budget.hpp"

namespace noswalker::storage {

/**
 * An in-memory copy of (part of) one block's edge region.
 *
 * The buffer covers the page-aligned byte span of the block; in fine
 * mode only marked pages hold valid data and `vertex_loaded` reports
 * whether a vertex's record is fully resident.
 */
class BlockBuffer {
  public:
    BlockBuffer() = default;

    /** The block this buffer holds (nullptr when empty). */
    const graph::BlockInfo *info() const { return info_; }

    /** True when the whole block is resident (coarse load). */
    bool complete() const { return complete_; }

    /** Whether vertex @p v's record is fully resident. */
    bool vertex_loaded(const graph::GraphFile &file,
                       graph::VertexId v) const;

    /** Decode vertex @p v. @pre vertex_loaded(file, v). */
    graph::VertexView
    view(const graph::GraphFile &file, graph::VertexId v) const
    {
        return file.decode(v, data_, aligned_begin_);
    }

    /** Bytes currently held by the buffer. */
    std::uint64_t capacity_bytes() const { return data_.size(); }

    /** Device offset of the buffer's first byte. */
    std::uint64_t aligned_begin() const { return aligned_begin_; }

    /** Read-only view of the held bytes. */
    std::span<const std::uint8_t> bytes() const { return data_; }

    /**
     * Detach from the block but retain the storage (and its budget
     * reservation) for the next load — a recycled buffer at its
     * capacity high-water mark never reallocates or re-reserves.
     */
    void clear();

    /** Release the storage and its reservation (full reset). */
    void release_storage();

    /**
     * Attach to @p block, sizing the storage for its page-aligned span.
     * The reservation against @p budget only grows past the high-water
     * mark; shrinking loads reuse the existing allocation untouched.
     */
    void resize_for(const graph::BlockInfo &block,
                    util::MemoryBudget &budget);

    /** Storage-growth events since construction (reuse telemetry). */
    std::uint64_t allocations() const { return allocations_; }

  private:
    friend class BlockReader;

    const graph::BlockInfo *info_ = nullptr;
    std::uint64_t aligned_begin_ = 0;
    std::vector<std::uint8_t> data_;
    util::Bitmap valid_pages_; ///< fine mode: which pages are resident
    bool complete_ = false;
    util::Reservation reservation_;
    std::uint64_t allocations_ = 0;
};

/** Result of one load operation. */
struct LoadResult {
    std::uint64_t bytes_read = 0;
    std::uint64_t requests = 0;
    /** Modeled device time of this load's requests, seconds. */
    double modeled_seconds = 0.0;
    /** True when a shared cache served the load without device I/O. */
    bool from_cache = false;
};

/**
 * Streams blocks of a GraphFile into BlockBuffers through its IoDevice.
 */
class BlockReader {
  public:
    /** Page size for fine-grained mode (one SSD page). */
    static constexpr std::uint32_t kPageBytes = 4096;

    /**
     * @param file       the on-disk graph.
     * @param budget     block-buffer memory is reserved here.
     * @param max_request cap on a single coarse request (default 8 MiB),
     *        mimicking bounded async-I/O submission sizes.
     * @param cache      optional shared block cache: coarse loads are
     *        served from it on a hit and published to it on a miss.
     */
    BlockReader(const graph::GraphFile &file, util::MemoryBudget &budget,
                std::uint64_t max_request = 8ULL << 20,
                SharedBlockCache *cache = nullptr);

    /** Load the whole of @p block into @p out (coarse mode). */
    LoadResult load_coarse(const graph::BlockInfo &block, BlockBuffer &out);

    /**
     * Load only the 4 KiB pages of @p block covering the records of
     * @p needed_vertices (fine mode, §3.3.1).  Vertices outside the
     * block are ignored.
     */
    LoadResult load_fine(const graph::BlockInfo &block,
                         std::span<const graph::VertexId> needed_vertices,
                         BlockBuffer &out);

    /**
     * Narrow a coarse (complete) buffer of @p block to a fine-mode view
     * exposing only the pages covering @p needed_vertices, without any
     * I/O.  Bit-identical residency to a fresh load_fine of the same
     * needed list — used to serve a fine demand from a speculatively
     * coarse-loaded buffer.
     */
    void refine(const graph::BlockInfo &block,
                std::span<const graph::VertexId> needed_vertices,
                BlockBuffer &out) const;

    /** The graph file being read. */
    const graph::GraphFile &file() const { return *file_; }

  private:
    /** Attach @p out to @p block and size its buffer (budgeted). */
    void prepare(const graph::BlockInfo &block, BlockBuffer &out);

    /** Mark in @p out the pages covering each needed vertex's record. */
    void mark_needed_pages(const graph::BlockInfo &block,
                           std::span<const graph::VertexId> needed_vertices,
                           BlockBuffer &out) const;

    const graph::GraphFile *file_;
    util::MemoryBudget *budget_;
    std::uint64_t max_request_;
    SharedBlockCache *cache_;
};

} // namespace noswalker::storage
