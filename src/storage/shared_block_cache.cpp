#include "storage/shared_block_cache.hpp"

namespace noswalker::storage {

std::shared_ptr<const SharedBlockCache::Entry>
SharedBlockCache::find(std::uint32_t block_id)
{
    std::lock_guard lock(mutex_);
    const auto it = index_.find(block_id);
    if (it == index_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second->second;
}

bool
SharedBlockCache::resident(std::uint32_t block_id) const
{
    std::lock_guard lock(mutex_);
    return index_.count(block_id) != 0;
}

void
SharedBlockCache::insert(std::uint32_t block_id,
                         std::uint64_t aligned_begin,
                         std::vector<std::uint8_t> bytes)
{
    const std::uint64_t need = bytes.size();
    if (need == 0 || need > capacity_) {
        return;
    }
    std::lock_guard lock(mutex_);
    if (index_.count(block_id) != 0) {
        return; // someone else published it first
    }
    while (used_ + need > capacity_ && !lru_.empty()) {
        evict_tail();
    }
    if (used_ + need > capacity_) {
        return;
    }
    if (budget_ != nullptr) {
        // The engines need the memory more than the cache does: evict
        // colder blocks to make the reservation fit, else give up.
        bool reserved = budget_->try_reserve(need);
        while (!reserved && !lru_.empty()) {
            evict_tail();
            reserved = budget_->try_reserve(need);
        }
        if (!reserved) {
            return;
        }
    }
    auto entry = std::make_shared<Entry>();
    entry->block_id = block_id;
    entry->aligned_begin = aligned_begin;
    entry->bytes = std::move(bytes);
    entry->reserved_bytes = budget_ != nullptr ? need : 0;
    lru_.emplace_front(block_id, std::move(entry));
    index_[block_id] = lru_.begin();
    used_ += need;
}

void
SharedBlockCache::evict_tail()
{
    const auto &victim = lru_.back();
    const std::uint64_t bytes = victim.second->bytes.size();
    // Release exactly what was reserved at insertion — entries that
    // predate the attached budget were never charged against it.
    const std::uint64_t reserved = victim.second->reserved_bytes;
    index_.erase(victim.first);
    used_ -= bytes;
    if (budget_ != nullptr && reserved != 0) {
        budget_->release(reserved);
    }
    lru_.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
}

void
SharedBlockCache::attach_budget(util::MemoryBudget *budget)
{
    std::lock_guard lock(mutex_);
    budget_ = budget;
}

void
SharedBlockCache::clear()
{
    std::lock_guard lock(mutex_);
    while (!lru_.empty()) {
        evict_tail();
    }
}

std::uint64_t
SharedBlockCache::used_bytes() const
{
    std::lock_guard lock(mutex_);
    return used_;
}

} // namespace noswalker::storage
