/**
 * @file
 * Background block loader (Figure 6 ①), now a depth-K pipeline with
 * completion-order-independent retrieval.
 *
 * NosWalker decouples disk loading from walker processing: a dedicated
 * I/O thread keeps pulling the scheduler's chosen blocks into buffers
 * while the processing thread consumes pre-samples.  Up to `depth`
 * requests may be outstanding at once (bounded queues).  Every request
 * is tagged with a monotonically increasing *ticket* at submission;
 * completed loads land in an internal bank from which the consumer may
 * retrieve them in any order:
 *
 *  - wait()/try_wait() consume the oldest outstanding ticket (FIFO),
 *  - consume_any() consumes the lowest-ticket *completed* load,
 *  - try_consume(block_id) plucks a specific block's completed load
 *    out of the bank even while older, slower loads are still pending.
 *
 * The 0-thread mode (`background = false`) emulates the same pipeline
 * without a thread: submissions park in a pending queue and the
 * consume calls execute them on the spot — try_consume(block) runs
 * every pending request up to and including the target (exactly the
 * work a background thread would have finished by then), banking the
 * earlier completions, so tests can diff 0/1-thread behaviour
 * deterministically.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "graph/partition.hpp"
#include "storage/block_buffer_pool.hpp"
#include "storage/block_reader.hpp"
#include "util/blocking_queue.hpp"

namespace noswalker::storage {

/** Runs a BlockReader on a background thread. */
class AsyncLoader {
  public:
    /** A load order from the scheduler. */
    struct Request {
        const graph::BlockInfo *block = nullptr;
        bool fine = false;
        /** Fine mode: vertices whose pages must be loaded. */
        std::vector<graph::VertexId> needed;
        /** Submission order tag; assigned by submit(). */
        std::uint64_t ticket = 0;
    };

    /** A completed load. */
    struct Response {
        const graph::BlockInfo *block = nullptr;
        bool fine = false;
        BlockBuffer buffer;
        LoadResult result;
        /** Submission order tag of the originating request. */
        std::uint64_t ticket = 0;
        /** Set when the load threw; rethrown by the consumer. */
        std::exception_ptr error;
    };

    /**
     * @param reader     the block reader to drive.
     * @param background spawn the loader thread; false = loads execute
     *                   synchronously inside the consume calls
     *                   (0-thread mode).
     * @param depth      maximum outstanding requests (≥ 1).
     * @param pool       optional buffer pool; loads draw their buffers
     *                   from it so recycled storage is reused.
     */
    explicit AsyncLoader(BlockReader &reader, bool background = true,
                         std::size_t depth = 1,
                         BlockBufferPool *pool = nullptr);

    /** Drains and joins the loader thread. */
    ~AsyncLoader();

    AsyncLoader(const AsyncLoader &) = delete;
    AsyncLoader &operator=(const AsyncLoader &) = delete;

    /** Maximum outstanding requests. */
    std::size_t depth() const { return depth_; }

    /**
     * Queue a load and return its ticket. @pre can_submit().
     */
    std::uint64_t submit(Request request);

    /** True when another request may be submitted. */
    bool can_submit() const { return inflight_ < depth_; }

    /** Submitted loads not yet consumed. */
    std::size_t inflight() const { return inflight_; }

    /** True when at least one submitted load has not been consumed. */
    bool outstanding() const { return inflight_ > 0; }

    /**
     * Wait for the oldest outstanding load and return it; rethrows the
     * load's error, if any.  Equivalent to consume_any() because one
     * loader thread completes requests in ticket order.
     * @pre outstanding().
     */
    Response wait();

    /**
     * Consume the oldest outstanding load if it has completed; in
     * 0-thread mode the oldest pending load executes on the spot.
     * Errors are reported in Response::error (not rethrown).
     * @return nullopt when nothing is outstanding or nothing has
     *         completed yet.
     */
    std::optional<Response> try_wait();

    /**
     * Consume the lowest-ticket completed load, blocking until one
     * completes; rethrows the load's error, if any.  In 0-thread mode
     * the banked completions (from earlier try_consume calls) drain
     * first, then the oldest pending load executes.
     * @pre outstanding().
     */
    Response consume_any();

    /**
     * Retrieve the completed load of @p block_id out of submission
     * order: older, slower loads stay outstanding.  In 0-thread mode
     * every pending load up to and including the target executes (the
     * work a background thread would have finished), with the earlier
     * completions banked for later consume calls.  Errors are reported
     * in Response::error (not rethrown).
     * @return nullopt when no outstanding load matches @p block_id or
     *         the matching load has not completed yet.
     */
    std::optional<Response> try_consume(std::uint32_t block_id);

  private:
    Response execute(Request &request);
    void loop();
    /** Move every already-arrived background completion to the bank. */
    void drain_ready();
    /** Remove and return the banked response with the lowest ticket. */
    Response pop_banked();
    /** Finish consuming @p response (bookkeeping shared by all paths). */
    Response consume(Response response);

    BlockReader *reader_;
    bool background_;
    std::size_t depth_;
    BlockBufferPool *pool_;
    std::size_t inflight_ = 0;
    std::uint64_t next_ticket_ = 0;
    std::deque<Request> pending_; ///< 0-thread mode: FIFO of submissions
    /** Completed-but-unconsumed loads, keyed by ticket (ordered so the
     *  lowest ticket pops first). */
    std::map<std::uint64_t, Response> banked_;
    util::BlockingQueue<Request> requests_;
    util::BlockingQueue<Response> responses_;
    std::thread thread_;
};

} // namespace noswalker::storage
