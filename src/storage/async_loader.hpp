/**
 * @file
 * Background block loader (Figure 6 ①).
 *
 * NosWalker decouples disk loading from walker processing: a dedicated
 * I/O thread keeps pulling the scheduler's chosen blocks into buffers
 * while the processing thread consumes pre-samples.  One request is in
 * flight at a time (the paper allocates "a small number of block
 * buffers"); the processing thread overlaps its work with the next
 * load.
 */
#pragma once

#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "graph/partition.hpp"
#include "storage/block_reader.hpp"
#include "util/blocking_queue.hpp"

namespace noswalker::storage {

/** Runs a BlockReader on a background thread. */
class AsyncLoader {
  public:
    /** A load order from the scheduler. */
    struct Request {
        const graph::BlockInfo *block = nullptr;
        bool fine = false;
        /** Fine mode: vertices whose pages must be loaded. */
        std::vector<graph::VertexId> needed;
    };

    /** A completed load. */
    struct Response {
        const graph::BlockInfo *block = nullptr;
        bool fine = false;
        BlockBuffer buffer;
        LoadResult result;
        /** Set when the load threw; rethrown by the consumer. */
        std::exception_ptr error;
    };

    /**
     * @param reader     the block reader to drive.
     * @param background spawn the loader thread; false = loads execute
     *                   synchronously inside wait() (0-thread mode).
     */
    explicit AsyncLoader(BlockReader &reader, bool background = true);

    /** Drains and joins the loader thread. */
    ~AsyncLoader();

    AsyncLoader(const AsyncLoader &) = delete;
    AsyncLoader &operator=(const AsyncLoader &) = delete;

    /** Queue a load. At most one may be outstanding. */
    void submit(Request request);

    /** True when a submitted load has not been consumed yet. */
    bool outstanding() const { return outstanding_; }

    /**
     * Wait for the outstanding load and return it.
     * @pre outstanding().
     */
    Response wait();

  private:
    Response execute(Request &request);
    void loop();

    BlockReader *reader_;
    bool background_;
    bool outstanding_ = false;
    std::optional<Request> sync_request_;
    util::BlockingQueue<Request> requests_{1};
    util::BlockingQueue<Response> responses_{1};
    std::thread thread_;
};

} // namespace noswalker::storage
