/**
 * @file
 * Background block loader (Figure 6 ①), now a depth-K pipeline.
 *
 * NosWalker decouples disk loading from walker processing: a dedicated
 * I/O thread keeps pulling the scheduler's chosen blocks into buffers
 * while the processing thread consumes pre-samples.  Up to `depth`
 * requests may be outstanding at once (bounded queues); completions are
 * consumed strictly in submission order (FIFO), which keeps the engine's
 * admission order — and therefore walk output — independent of depth.
 *
 * The 0-thread mode (`background = false`) emulates the same depth-K
 * FIFO without a thread: submissions park in a pending queue and each
 * wait()/try_wait() executes the oldest one synchronously, so tests can
 * diff depth 0/1/K behaviour deterministically.
 */
#pragma once

#include <cstddef>
#include <deque>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "graph/partition.hpp"
#include "storage/block_buffer_pool.hpp"
#include "storage/block_reader.hpp"
#include "util/blocking_queue.hpp"

namespace noswalker::storage {

/** Runs a BlockReader on a background thread. */
class AsyncLoader {
  public:
    /** A load order from the scheduler. */
    struct Request {
        const graph::BlockInfo *block = nullptr;
        bool fine = false;
        /** Fine mode: vertices whose pages must be loaded. */
        std::vector<graph::VertexId> needed;
    };

    /** A completed load. */
    struct Response {
        const graph::BlockInfo *block = nullptr;
        bool fine = false;
        BlockBuffer buffer;
        LoadResult result;
        /** Set when the load threw; rethrown by the consumer. */
        std::exception_ptr error;
    };

    /**
     * @param reader     the block reader to drive.
     * @param background spawn the loader thread; false = loads execute
     *                   synchronously inside wait() (0-thread mode).
     * @param depth      maximum outstanding requests (≥ 1).
     * @param pool       optional buffer pool; loads draw their buffers
     *                   from it so recycled storage is reused.
     */
    explicit AsyncLoader(BlockReader &reader, bool background = true,
                         std::size_t depth = 1,
                         BlockBufferPool *pool = nullptr);

    /** Drains and joins the loader thread. */
    ~AsyncLoader();

    AsyncLoader(const AsyncLoader &) = delete;
    AsyncLoader &operator=(const AsyncLoader &) = delete;

    /** Maximum outstanding requests. */
    std::size_t depth() const { return depth_; }

    /** Queue a load. @pre can_submit(). */
    void submit(Request request);

    /** True when another request may be submitted. */
    bool can_submit() const { return inflight_ < depth_; }

    /** Submitted loads not yet consumed. */
    std::size_t inflight() const { return inflight_; }

    /** True when at least one submitted load has not been consumed. */
    bool outstanding() const { return inflight_ > 0; }

    /**
     * Wait for the oldest outstanding load and return it; rethrows the
     * load's error, if any.
     * @pre outstanding().
     */
    Response wait();

    /**
     * Consume the oldest outstanding load if it has completed; in
     * 0-thread mode the oldest pending load executes on the spot.
     * Errors are reported in Response::error (not rethrown).
     * @return nullopt when nothing is outstanding or nothing has
     *         completed yet.
     */
    std::optional<Response> try_wait();

  private:
    Response execute(Request &request);
    void loop();

    BlockReader *reader_;
    bool background_;
    std::size_t depth_;
    BlockBufferPool *pool_;
    std::size_t inflight_ = 0;
    std::deque<Request> pending_; ///< 0-thread mode: FIFO of submissions
    util::BlockingQueue<Request> requests_;
    util::BlockingQueue<Response> responses_;
    std::thread thread_;
};

} // namespace noswalker::storage
