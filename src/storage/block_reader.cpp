#include "storage/block_reader.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace noswalker::storage {

namespace {

std::uint64_t
align_down(std::uint64_t x, std::uint64_t a)
{
    return x / a * a;
}

std::uint64_t
align_up(std::uint64_t x, std::uint64_t a)
{
    return (x + a - 1) / a * a;
}

} // namespace

bool
BlockBuffer::vertex_loaded(const graph::GraphFile &file,
                           graph::VertexId v) const
{
    if (info_ == nullptr || !info_->contains(v)) {
        return false;
    }
    if (complete_) {
        return true;
    }
    const std::uint64_t begin = file.vertex_byte_offset(v);
    const std::uint64_t len = file.vertex_byte_size(v);
    if (len == 0) {
        return true;
    }
    const std::uint64_t first_page =
        (begin - aligned_begin_) / BlockReader::kPageBytes;
    const std::uint64_t last_page =
        (begin + len - 1 - aligned_begin_) / BlockReader::kPageBytes;
    for (std::uint64_t p = first_page; p <= last_page; ++p) {
        if (!valid_pages_.test(p)) {
            return false;
        }
    }
    return true;
}

void
BlockBuffer::clear()
{
    info_ = nullptr;
    data_.clear(); // capacity (and its reservation) is retained
    valid_pages_.resize(0);
    complete_ = false;
}

void
BlockBuffer::release_storage()
{
    clear();
    std::vector<std::uint8_t>().swap(data_);
    reservation_.release();
}

void
BlockBuffer::resize_for(const graph::BlockInfo &block,
                        util::MemoryBudget &budget)
{
    const std::uint64_t aligned_begin =
        align_down(block.byte_begin, BlockReader::kPageBytes);
    const std::uint64_t aligned_end = align_up(
        block.byte_begin + block.byte_size, BlockReader::kPageBytes);
    const std::uint64_t bytes = aligned_end - aligned_begin;
    if (reservation_.budget() != nullptr &&
        reservation_.budget() != &budget) {
        // Buffer migrating between budgets: drop the old charge first.
        release_storage();
    }
    if (bytes > reservation_.bytes()) {
        if (reservation_.budget() == nullptr) {
            reservation_ = util::Reservation(budget, bytes, "block buffer");
        } else {
            reservation_.resize(bytes);
        }
    }
    if (bytes > data_.capacity()) {
        ++allocations_;
    }
    // Stale bytes past the new block's device span are never decoded
    // (every vertex record ends before the device end), so no zeroing.
    data_.resize(bytes);
    info_ = &block;
    aligned_begin_ = aligned_begin;
    valid_pages_.resize(bytes / BlockReader::kPageBytes);
    valid_pages_.reset();
    complete_ = false;
}

BlockReader::BlockReader(const graph::GraphFile &file,
                         util::MemoryBudget &budget,
                         std::uint64_t max_request,
                         SharedBlockCache *cache)
    : file_(&file), budget_(&budget), max_request_(max_request),
      cache_(cache)
{
    NOSWALKER_CHECK(max_request_ >= kPageBytes);
}

void
BlockReader::prepare(const graph::BlockInfo &block, BlockBuffer &out)
{
    out.resize_for(block, *budget_);
}

void
BlockReader::mark_needed_pages(
    const graph::BlockInfo &block,
    std::span<const graph::VertexId> needed_vertices,
    BlockBuffer &out) const
{
    util::Bitmap &pages = out.valid_pages_;
    for (graph::VertexId v : needed_vertices) {
        if (!block.contains(v)) {
            continue;
        }
        const std::uint64_t begin = file_->vertex_byte_offset(v);
        const std::uint64_t len = file_->vertex_byte_size(v);
        if (len == 0) {
            continue;
        }
        const std::uint64_t first_page =
            (begin - out.aligned_begin_) / kPageBytes;
        const std::uint64_t last_page =
            (begin + len - 1 - out.aligned_begin_) / kPageBytes;
        for (std::uint64_t p = first_page; p <= last_page; ++p) {
            pages.set(p);
        }
    }
}

void
BlockReader::refine(const graph::BlockInfo &block,
                    std::span<const graph::VertexId> needed_vertices,
                    BlockBuffer &out) const
{
    NOSWALKER_CHECK(out.info() != nullptr &&
                    out.info()->id == block.id);
    NOSWALKER_CHECK(out.complete_);
    out.complete_ = false;
    out.valid_pages_.reset();
    mark_needed_pages(block, needed_vertices, out);
}

LoadResult
BlockReader::load_coarse(const graph::BlockInfo &block, BlockBuffer &out)
{
    prepare(block, out);
    LoadResult result;
    if (cache_ != nullptr) {
        if (const auto entry = cache_->find(block.id)) {
            // A hit replaces the modeled device read with a memcpy;
            // sizes match because both sides cover the same aligned
            // span of the same block.
            NOSWALKER_CHECK(entry->bytes.size() <= out.data_.size());
            std::copy(entry->bytes.begin(), entry->bytes.end(),
                      out.data_.begin());
            out.complete_ = true;
            result.from_cache = true;
            return result;
        }
    }
    // Clamp to the device end: the last page of the file may be partial.
    const std::uint64_t device_end = file_->device().size();
    std::uint64_t pos = out.aligned_begin_;
    const std::uint64_t end =
        std::min<std::uint64_t>(out.aligned_begin_ + out.data_.size(),
                                device_end);
    while (pos < end) {
        const std::uint64_t len = std::min(max_request_, end - pos);
        file_->device().read(pos, len,
                             out.data_.data() + (pos - out.aligned_begin_));
        result.bytes_read += len;
        ++result.requests;
        result.modeled_seconds +=
            file_->device().model().request_seconds(len);
        pos += len;
    }
    out.complete_ = true;
    if (cache_ != nullptr) {
        cache_->insert(block.id, out.aligned_begin_,
                       std::vector<std::uint8_t>(out.data_.begin(),
                                                 out.data_.end()));
    }
    return result;
}

LoadResult
BlockReader::load_fine(const graph::BlockInfo &block,
                       std::span<const graph::VertexId> needed_vertices,
                       BlockBuffer &out)
{
    prepare(block, out);
    mark_needed_pages(block, needed_vertices, out);
    util::Bitmap &pages = out.valid_pages_;

    LoadResult result;
    if (cache_ != nullptr) {
        if (const auto entry = cache_->find(block.id)) {
            // The cache holds the whole coarse image; serve the marked
            // pages from it with a memcpy instead of device I/O.
            NOSWALKER_CHECK(entry->bytes.size() <= out.data_.size());
            std::copy(entry->bytes.begin(), entry->bytes.end(),
                      out.data_.begin());
            result.from_cache = true;
            return result;
        }
    }

    // Coalesce runs of marked pages into single requests (bounded by
    // max_request_) and read them into place.
    const std::uint64_t device_end = file_->device().size();
    const std::uint64_t num_pages = pages.size();
    std::uint64_t p = 0;
    while (p < num_pages) {
        if (!pages.test(p)) {
            ++p;
            continue;
        }
        std::uint64_t run_end = p + 1;
        while (run_end < num_pages && pages.test(run_end) &&
               (run_end - p) * kPageBytes < max_request_) {
            ++run_end;
        }
        const std::uint64_t off = out.aligned_begin_ + p * kPageBytes;
        std::uint64_t len = (run_end - p) * kPageBytes;
        if (off < device_end) {
            len = std::min(len, device_end - off);
            file_->device().read(off, len,
                                 out.data_.data() + p * kPageBytes);
            result.bytes_read += len;
            ++result.requests;
            result.modeled_seconds +=
                file_->device().model().request_seconds(len);
        }
        p = run_end;
    }
    return result;
}

} // namespace noswalker::storage
