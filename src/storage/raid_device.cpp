#include "storage/raid_device.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace noswalker::storage {

Raid0Device::Raid0Device(unsigned num_members, std::uint64_t chunk_bytes,
                         SsdModel member_model)
    : IoDevice(SsdModel::instant()), chunk_bytes_(chunk_bytes)
{
    if (num_members == 0 || chunk_bytes == 0) {
        throw util::ConfigError("Raid0Device: need members and chunk size");
    }
    members_.reserve(num_members);
    for (unsigned i = 0; i < num_members; ++i) {
        members_.push_back(std::make_unique<MemDevice>(member_model));
    }
}

std::unique_ptr<Raid0Device>
Raid0Device::paper_array()
{
    // Seven S4610: array totals 3.4 GiB/s seq and 150k IOPS (paper
    // numbers); one member contributes a seventh of each.
    SsdModel member;
    member.seq_bandwidth = 3.4 * static_cast<double>(1ULL << 30) / 7.0;
    member.iops = 150'000.0 / 7.0;
    return std::make_unique<Raid0Device>(7, 64 * 1024, member);
}

std::uint64_t
Raid0Device::size() const
{
    std::uint64_t total = 0;
    for (const auto &m : members_) {
        total += m->size();
    }
    return total;
}

IoStats
Raid0Device::stats() const
{
    IoStats logical = IoDevice::stats();
    logical.busy_seconds = array_stats().busy_seconds;
    return logical;
}

IoStats
Raid0Device::array_stats() const
{
    IoStats agg;
    double max_busy = 0.0;
    for (const auto &m : members_) {
        const IoStats s = m->stats();
        agg.bytes_read += s.bytes_read;
        agg.bytes_written += s.bytes_written;
        agg.read_requests += s.read_requests;
        agg.write_requests += s.write_requests;
        max_busy = std::max(max_busy, s.busy_seconds);
    }
    agg.busy_seconds = max_busy;
    return agg;
}

template <typename Fn>
void
Raid0Device::for_each_chunk(std::uint64_t offset, std::uint64_t len, Fn &&fn)
{
    std::uint64_t pos = offset;
    std::uint64_t remaining = len;
    std::uint64_t buf_off = 0;
    while (remaining > 0) {
        const std::uint64_t chunk_index = pos / chunk_bytes_;
        const std::uint64_t within = pos % chunk_bytes_;
        const std::uint64_t member = chunk_index % members_.size();
        const std::uint64_t member_chunk = chunk_index / members_.size();
        const std::uint64_t member_off = member_chunk * chunk_bytes_ + within;
        const std::uint64_t span =
            std::min(remaining, chunk_bytes_ - within);
        fn(member, member_off, buf_off, span);
        pos += span;
        buf_off += span;
        remaining -= span;
    }
}

void
Raid0Device::do_read(std::uint64_t offset, std::uint64_t len, void *buffer)
{
    std::uint8_t *out = static_cast<std::uint8_t *>(buffer);
    for_each_chunk(offset, len,
                   [&](std::uint64_t member, std::uint64_t member_off,
                       std::uint64_t buf_off, std::uint64_t span) {
                       members_[member]->read(member_off, span,
                                              out + buf_off);
                   });
}

void
Raid0Device::do_write(std::uint64_t offset, std::uint64_t len,
                      const void *buffer)
{
    const std::uint8_t *in = static_cast<const std::uint8_t *>(buffer);
    for_each_chunk(offset, len,
                   [&](std::uint64_t member, std::uint64_t member_off,
                       std::uint64_t buf_off, std::uint64_t span) {
                       members_[member]->write(member_off, span,
                                               in + buf_off);
                   });
}

} // namespace noswalker::storage
