#include "service/traffic_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace noswalker::service {

namespace {

/** Pick one element of a small literal set. */
template <typename T>
T
pick(util::Rng &rng, std::initializer_list<T> values)
{
    return values.begin()[rng.next_index(values.size())];
}

bool
close_enough(double a, double b)
{
    const double scale = std::max({std::fabs(a), std::fabs(b), 1.0});
    return std::fabs(a - b) <= 1e-9 * scale;
}

} // namespace

TrafficModel::TrafficModel(const graph::GraphFile &file,
                           const graph::BlockPartition &partition)
    : TrafficModel(file, partition, Options())
{
}

TrafficModel::TrafficModel(const graph::GraphFile &file,
                           const graph::BlockPartition &partition,
                           Options options)
    : file_(&file), partition_(&partition), options_(options)
{
}

TrafficEpisode
TrafficModel::make_episode(std::uint64_t seed) const
{
    util::Rng rng(util::derive_stream(0x7ea4'f1c5'0bad'5eedULL, seed));

    TrafficEpisode ep;
    ep.seed = seed;

    // --- Knob permutation -------------------------------------------------
    ServiceConfig &cfg = ep.config;
    cfg.num_workers = pick(rng, {1u, 2u, 3u});
    cfg.max_batch = pick<std::size_t>(rng, {1, 4, 8});
    cfg.batch_window_seconds = pick(rng, {0.0, 0.0005, 0.002});
    cfg.max_queue = pick<std::size_t>(rng, {4, 16, 256});
    cfg.tenant_max_queue = pick<std::size_t>(rng, {0, 2, 6});
    cfg.step_threads = pick(rng, {1u, 2u});
    cfg.num_shards = pick(rng, {1u, 1u, 2u});
    cfg.plan_window = pick(rng, {0u, 4u});
    cfg.prefetch_depth = pick(rng, {1u, 2u});
    cfg.queue_over_budget = rng.next_bool(0.5);
    // Fast-failing budget waits keep adversarial episodes short.
    cfg.budget_wait_seconds = 0.005;
    cfg.budget_retry_limit = 2;
    cfg.block_bytes = partition_->max_block_bytes();

    // Budget modes: unlimited, generous (everything fits with room to
    // queue), tight (giants starve it, sharded floors can reject).
    const std::uint64_t floor =
        WalkService::min_run_footprint(*file_, *partition_) *
        cfg.num_shards;
    switch (rng.next_index(3)) {
    case 0:
        cfg.memory_budget = 0;
        break;
    case 1:
        cfg.memory_budget =
            floor * cfg.num_workers + (8ULL << 20) +
            rng.next_index(4ULL << 20);
        break;
    default:
        cfg.memory_budget = floor + (64ULL << 10) +
                            rng.next_index(2ULL << 20);
        break;
    }
    if (cfg.memory_budget != 0) {
        cfg.cache_bytes =
            rng.next_bool(0.5) ? cfg.memory_budget / 8 : 0;
    } else {
        cfg.cache_bytes = rng.next_bool(0.5) ? (1ULL << 20) : 0;
    }

    ep.num_clients = 1 + static_cast<unsigned>(rng.next_index(3));

    // --- Event script -----------------------------------------------------
    const std::size_t count =
        options_.min_requests +
        rng.next_index(options_.max_requests - options_.min_requests + 1);
    const graph::VertexId v = file_->num_vertices();

    ep.events.reserve(count + 1);
    for (std::size_t i = 0; i < count; ++i) {
        TrafficEvent ev;
        ev.client = static_cast<unsigned>(rng.next_index(ep.num_clients));
        WalkRequest &r = ev.request;
        r.seed = util::derive_stream(seed, 0x1000 + i);
        // Tenant skew: tenant 0 is hot (half the traffic), the rest of
        // the load spreads over three cold tenants.
        r.tenant = rng.next_bool(0.5) ? 0 : 1 + rng.next_index(3);
        r.priority = static_cast<std::int32_t>(rng.next_index(3)) - 1;
        switch (rng.next_index(3)) {
        case 0:
            r.kind = WalkKind::kEndpoints;
            break;
        case 1:
            r.kind = WalkKind::kPaths;
            break;
        default:
            r.kind = WalkKind::kVisitCounts;
            r.top_k = 4 + static_cast<std::uint32_t>(rng.next_index(12));
            break;
        }
        if (rng.next_bool(options_.malformed_probability)) {
            // Malformed: fails validation, lands kFailed — still a
            // terminal status the conservation sweep must account for.
            if (rng.next_bool(0.5)) {
                r.starts.clear();
            } else {
                r.starts = {v + 7};
            }
            r.walks_per_start = 1;
            r.length = 4;
        } else if (rng.next_bool(options_.giant_probability)) {
            // Budget-starving giant: a paths request whose result
            // buffer estimate rivals the tight budget mode.
            r.kind = WalkKind::kPaths;
            const std::size_t starts =
                32 + rng.next_index(std::uint64_t{96});
            r.starts.reserve(starts);
            for (std::size_t s = 0; s < starts; ++s) {
                r.starts.push_back(
                    static_cast<graph::VertexId>(rng.next_index(v)));
            }
            r.walks_per_start =
                8 + static_cast<std::uint32_t>(rng.next_index(24));
            r.length =
                32 + static_cast<std::uint32_t>(rng.next_index(64));
        } else {
            const std::size_t starts = 1 + rng.next_index(4);
            r.starts.reserve(starts);
            for (std::size_t s = 0; s < starts; ++s) {
                r.starts.push_back(
                    static_cast<graph::VertexId>(rng.next_index(v)));
            }
            r.walks_per_start =
                1 + static_cast<std::uint32_t>(rng.next_index(8));
            r.length =
                2 + static_cast<std::uint32_t>(rng.next_index(14));
        }
        if (rng.next_bool(options_.tight_deadline_probability)) {
            // 10 µs – 1 ms: expires while queued, while blocked on the
            // budget, or not at all — all three paths get exercised.
            r.deadline_seconds =
                1e-5 * static_cast<double>(1 + rng.next_index(100));
        }
        ep.events.push_back(std::move(ev));
    }

    if (rng.next_bool(options_.stop_probability) && ep.events.size() > 2) {
        TrafficEvent stop;
        stop.kind = TrafficEvent::Kind::kStop;
        stop.client =
            static_cast<unsigned>(rng.next_index(ep.num_clients));
        const std::size_t at = 1 + rng.next_index(ep.events.size() - 1);
        ep.events.insert(
            ep.events.begin() + static_cast<std::ptrdiff_t>(at),
            std::move(stop));
        ep.stops_mid_flight = true;
    }
    return ep;
}

EpisodeReport
TrafficModel::run_episode(std::uint64_t seed) const
{
    return run_episode(make_episode(seed));
}

EpisodeReport
TrafficModel::run_episode(const TrafficEpisode &episode) const
{
    EpisodeReport report;
    report.seed = episode.seed;
    report.stopped_mid_flight = episode.stops_mid_flight;

    WalkService service(*file_, *partition_, episode.config);

    // Each client thread plays its slice of the script in order;
    // cross-client interleaving is the adversarial part and is free to
    // vary — every invariant below is interleaving-independent.
    std::vector<std::vector<const TrafficEvent *>> scripts(
        episode.num_clients);
    for (const TrafficEvent &ev : episode.events) {
        scripts[ev.client % episode.num_clients].push_back(&ev);
    }

    std::mutex ticket_mutex;
    std::vector<WalkTicket> tickets;
    tickets.reserve(episode.events.size());

    std::vector<std::thread> clients;
    clients.reserve(scripts.size());
    for (const auto &script : scripts) {
        clients.emplace_back([&service, &script, &ticket_mutex,
                              &tickets] {
            for (const TrafficEvent *ev : script) {
                if (ev->kind == TrafficEvent::Kind::kStop) {
                    service.stop();
                    continue;
                }
                WalkTicket ticket = service.submit(ev->request);
                std::lock_guard lock(ticket_mutex);
                tickets.push_back(std::move(ticket));
            }
        });
    }
    for (std::thread &client : clients) {
        client.join();
    }
    service.stop();

    // Invariant: every submitted request reaches exactly one terminal
    // status — no future may be left hanging after stop().
    for (WalkTicket &ticket : tickets) {
        ++report.submitted;
        if (!ticket.wait_for(options_.ticket_timeout_seconds)) {
            report.violations.push_back(
                "request " + std::to_string(ticket.id()) +
                " never reached a terminal status");
            continue;
        }
        const WalkResult result = ticket.get();
        if (result.ok()) {
            ++report.ok;
        } else {
            ++report.not_ok;
        }
    }

    const auto sweep = check_invariants(service);
    report.violations.insert(report.violations.end(), sweep.begin(),
                             sweep.end());
    if (service.counters().submitted != report.submitted) {
        report.violations.push_back(
            "submitted counter " +
            std::to_string(service.counters().submitted) +
            " != tickets issued " + std::to_string(report.submitted));
    }
    return report;
}

std::vector<std::string>
TrafficModel::check_invariants(const WalkService &service)
{
    std::vector<std::string> violations;

    // 1. The shared budget drains to exactly zero: every reservation
    //    (result buffers, engine pools, cache entries) was returned.
    if (const std::uint64_t used = service.budget().used(); used != 0) {
        violations.push_back("memory budget left non-zero: " +
                             std::to_string(used) + " bytes");
    }

    // 2. Terminal conservation: the terminal counters partition the
    //    submissions — every request got exactly one outcome.
    const WalkService::Counters c = service.counters();
    const std::uint64_t terminal =
        c.completed + c.failed + c.rejected_queue_full +
        c.rejected_tenant_queue + c.rejected_budget + c.expired +
        c.shutdown_dropped;
    if (terminal != c.submitted) {
        violations.push_back(
            "terminal statuses (" + std::to_string(terminal) +
            ") != submitted (" + std::to_string(c.submitted) + ")");
    }

    // 3. Per-tenant stats conserve: summing every tenant's aggregate
    //    reproduces the service-wide aggregate.
    engine::RunStats tenant_sum;
    for (const auto &[tenant, stats] : service.all_tenant_stats()) {
        tenant_sum += stats;
    }
    const engine::RunStats total = service.aggregate_stats();
    const auto check_u64 = [&](const char *name, std::uint64_t a,
                               std::uint64_t b) {
        if (a != b) {
            violations.push_back(
                std::string("tenant-sum ") + name + " (" +
                std::to_string(a) + ") != aggregate (" +
                std::to_string(b) + ")");
        }
    };
    check_u64("walkers", tenant_sum.walkers, total.walkers);
    check_u64("steps", tenant_sum.steps, total.steps);
    check_u64("graph_bytes_read", tenant_sum.graph_bytes_read,
              total.graph_bytes_read);
    check_u64("blocks_loaded", tenant_sum.blocks_loaded,
              total.blocks_loaded);
    check_u64("migrations", tenant_sum.migrations, total.migrations);
    check_u64("peak_memory", tenant_sum.peak_memory, total.peak_memory);
    const auto check_dbl = [&](const char *name, double a, double b) {
        if (!close_enough(a, b)) {
            violations.push_back(std::string("tenant-sum ") + name +
                                 " (" + std::to_string(a) +
                                 ") != aggregate (" + std::to_string(b) +
                                 ")");
        }
    };
    check_dbl("cpu_seconds", tenant_sum.cpu_seconds, total.cpu_seconds);
    check_dbl("io_busy_seconds", tenant_sum.io_busy_seconds,
              total.io_busy_seconds);
    check_dbl("io_wait_seconds", tenant_sum.io_wait_seconds,
              total.io_wait_seconds);

    // 4. Nothing left in the pipeline after close.
    if (const std::size_t depth = service.submit_queue_depth();
        depth != 0) {
        violations.push_back("submission queue left non-empty: " +
                             std::to_string(depth));
    }
    if (const std::size_t depth = service.batch_queue_depth();
        depth != 0) {
        violations.push_back("batch queue left non-empty: " +
                             std::to_string(depth));
    }
    return violations;
}

std::string
TrafficModel::describe(const TrafficEpisode &episode)
{
    std::ostringstream out;
    const ServiceConfig &cfg = episode.config;
    out << "episode seed=" << episode.seed
        << " workers=" << cfg.num_workers
        << " max_batch=" << cfg.max_batch
        << " window=" << cfg.batch_window_seconds
        << " max_queue=" << cfg.max_queue
        << " tenant_max_queue=" << cfg.tenant_max_queue
        << " step_threads=" << cfg.step_threads
        << " shards=" << cfg.num_shards
        << " plan_window=" << cfg.plan_window
        << " prefetch_depth=" << cfg.prefetch_depth
        << " budget=" << cfg.memory_budget
        << " cache=" << cfg.cache_bytes
        << " queue_over_budget=" << cfg.queue_over_budget
        << " clients=" << episode.num_clients << "\n";
    for (const TrafficEvent &ev : episode.events) {
        if (ev.kind == TrafficEvent::Kind::kStop) {
            out << "client " << ev.client << ": stop\n";
            continue;
        }
        const WalkRequest &r = ev.request;
        out << "client " << ev.client << ": submit kind="
            << static_cast<int>(r.kind) << " tenant=" << r.tenant
            << " seed=" << r.seed << " starts=[";
        for (std::size_t i = 0; i < r.starts.size(); ++i) {
            out << (i ? "," : "") << r.starts[i];
        }
        out << "] walks=" << r.walks_per_start << " len=" << r.length
            << " prio=" << r.priority << " deadline="
            << r.deadline_seconds << " top_k=" << r.top_k << "\n";
    }
    return out.str();
}

} // namespace noswalker::service
