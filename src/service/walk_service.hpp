/**
 * @file
 * WalkService: concurrent multi-tenant walk-query serving on top of
 * the NosWalker engine.
 *
 * Architecture (three stages, decoupled by blocking queues):
 *
 *   submit() ──▶ submission queue ──▶ dispatcher ──▶ batch queue ──▶ workers
 *   (any thread)  (bounded; full ⇒     (coalesces      (N threads, each
 *                  reject)              compatible       driving one
 *                                       requests for     NosWalkerEngine
 *                                       up to the        over the shared
 *                                       batching         GraphFile, budget
 *                                       window)          and block cache)
 *
 * Memory: one util::MemoryBudget is shared by every worker engine and
 * the shared block cache.  Admission control rejects requests that can
 * never fit (and, in reject mode, requests that do not fit right now);
 * otherwise workers queue on the budget and retry.
 *
 * Determinism: results are per-request seeded (see ServiceWalkApp), so
 * a request's payload is bit-identical across worker counts, batch
 * compositions, and cache states.  Only the latency/IO accounting
 * varies with load.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "engine/run_stats.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "service/service_config.hpp"
#include "service/walk_request.hpp"
#include "storage/shared_block_cache.hpp"
#include "util/blocking_queue.hpp"
#include "util/memory_budget.hpp"
#include "util/thread_pool.hpp"

namespace noswalker::service {

/** One worker's engine, type-erased from this header (walk_service.cpp). */
class BatchRunner;

/** Concurrent walk-query server over one on-disk graph. */
class WalkService {
  public:
    /** Monotonic service-wide counters (snapshot). */
    struct Counters {
        std::uint64_t submitted = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t rejected_queue_full = 0;
        /** Load-shed by the per-tenant bound (tenant_max_queue). */
        std::uint64_t rejected_tenant_queue = 0;
        std::uint64_t rejected_budget = 0;
        std::uint64_t expired = 0;
        std::uint64_t shutdown_dropped = 0;
        /** Engine runs dispatched. */
        std::uint64_t batches = 0;
        /** Requests that shared a batch with at least one other. */
        std::uint64_t coalesced_requests = 0;
        /** Shared block cache traffic (0 when the cache is off). */
        std::uint64_t cache_hits = 0;
        std::uint64_t cache_misses = 0;
        /** Peak bytes against the shared budget. */
        std::uint64_t budget_peak = 0;
    };

    /**
     * Start the service: spawns the dispatcher and worker threads.
     *
     * @p file and @p partition must outlive the service.
     */
    WalkService(const graph::GraphFile &file,
                const graph::BlockPartition &partition,
                ServiceConfig config);

    /** Graceful stop() + join. */
    ~WalkService();

    WalkService(const WalkService &) = delete;
    WalkService &operator=(const WalkService &) = delete;

    /**
     * Submit a request (thread safe, non-blocking).
     *
     * Always returns a valid ticket; rejected requests resolve
     * immediately with the rejection status.
     */
    WalkTicket submit(WalkRequest request);

    /**
     * Stop accepting requests, drain everything already submitted,
     * and join all threads (idempotent).
     */
    void stop();

    /** Snapshot the service counters. */
    Counters counters() const;

    /** Aggregated per-tenant run stats (RunStats slices summed). */
    engine::RunStats tenant_stats(std::uint64_t tenant) const;

    /** Every tenant's aggregated stats (snapshot). */
    std::unordered_map<std::uint64_t, engine::RunStats>
    all_tenant_stats() const;

    /**
     * Service-wide aggregate of every completed request's stats slice.
     * Invariant (the traffic fuzzer's conservation check): equals the
     * sum of all_tenant_stats() entries at all times.
     */
    engine::RunStats aggregate_stats() const;

    /** Requests sitting in the submission queue (0 after stop()). */
    std::size_t submit_queue_depth() const { return submit_queue_.size(); }

    /** Coalesced batches awaiting a worker (0 after stop()). */
    std::size_t batch_queue_depth() const { return batch_queue_.size(); }

    /**
     * Per-shard modeled-seconds samples: one per shard per sharded
     * batch run (empty when num_shards == 1).  The benches compute
     * per-shard p99 modeled latency from these.
     */
    std::vector<double> shard_modeled_samples() const;

    /** The shared memory budget. */
    const util::MemoryBudget &budget() const { return budget_; }

    /**
     * Smallest shared budget one engine run needs over this graph:
     * CSR index + one coarse block buffer + the minimum walker pool.
     * Requests against a smaller budget are rejected at submission.
     */
    static std::uint64_t
    min_run_footprint(const graph::GraphFile &file,
                      const graph::BlockPartition &partition);

  private:
    using Clock = std::chrono::steady_clock;

    /** A submitted request travelling through the pipeline. */
    struct Pending {
        WalkRequest request;
        std::promise<WalkResult> promise;
        std::uint64_t id = 0;
        Clock::time_point submitted;
        /** Holds a per-tenant in-flight slot that must be returned
         *  when the request reaches its terminal status. */
        bool tenant_slot = false;
    };

    /** A coalesced gang of requests bound for one engine run. */
    struct Batch {
        std::uint64_t id = 0;
        std::vector<Pending> requests;
    };

    /** Requests coalescing toward one batch (dispatcher-private). */
    struct Group {
        std::vector<Pending> requests;
        Clock::time_point opened;
    };

    /** Estimated result-buffer bytes of @p request (budget charge). */
    static std::uint64_t estimate_request_bytes(const WalkRequest &req);

    /** Reject reasons caught before a request reaches the queue. */
    bool validate_request(const WalkRequest &request,
                          std::string *error) const;

    /** Resolve @p pending immediately with @p status (no run). */
    void finish_rejected(Pending pending, WalkStatus status,
                         const std::string &error);

    /** Bump the terminal counter matching @p status. */
    void count_terminal(WalkStatus status);

    /**
     * Try to take an in-flight slot for @p tenant (tenant_max_queue).
     * @return false when the tenant is at its bound (shed the request).
     */
    bool acquire_tenant_slot(std::uint64_t tenant);

    /** Return @p pending's tenant slot, if it holds one. */
    void release_tenant_slot(Pending &pending);

    void dispatcher_loop();
    void flush_group(Group &group);
    void worker_loop(unsigned worker_index);
    void run_batch(Batch &batch, BatchRunner &runner);
    void fail_batch(Batch &batch, WalkStatus status,
                    const std::string &error);

    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    ServiceConfig config_;

    util::MemoryBudget budget_;
    std::unique_ptr<storage::SharedBlockCache> cache_;
    /** One step pool shared by every worker's engine (null when
     *  step_threads == 1); engines serialize their fork-joins on it. */
    std::unique_ptr<util::ThreadPool> step_pool_;
    std::uint64_t min_footprint_ = 0;

    util::BlockingQueue<Pending> submit_queue_;
    util::BlockingQueue<Batch> batch_queue_;

    std::thread dispatcher_;
    std::vector<std::thread> workers_;
    std::once_flag stop_once_;

    std::atomic<std::uint64_t> next_request_id_{1};
    std::atomic<std::uint64_t> next_batch_id_{1};

    // Counters (atomics; snapshot via counters()).
    std::atomic<std::uint64_t> submitted_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> failed_{0};
    std::atomic<std::uint64_t> rejected_queue_full_{0};
    std::atomic<std::uint64_t> rejected_tenant_queue_{0};
    std::atomic<std::uint64_t> rejected_budget_{0};
    std::atomic<std::uint64_t> expired_{0};
    std::atomic<std::uint64_t> shutdown_dropped_{0};
    std::atomic<std::uint64_t> batches_{0};
    std::atomic<std::uint64_t> coalesced_requests_{0};

    mutable std::mutex tenant_mutex_;
    std::unordered_map<std::uint64_t, engine::RunStats> tenant_stats_;
    /** Sum of every completed request's stats slice (conservation
     *  twin of tenant_stats_; updated under tenant_mutex_). */
    engine::RunStats total_stats_;

    /** Per-tenant in-flight request counts (tenant_max_queue > 0). */
    mutable std::mutex tenant_queue_mutex_;
    std::unordered_map<std::uint64_t, std::size_t> tenant_in_flight_;

    mutable std::mutex shard_mutex_;
    std::vector<double> shard_modeled_samples_;
};

} // namespace noswalker::service
