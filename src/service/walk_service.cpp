#include "service/walk_service.hpp"

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <utility>

#include "core/config.hpp"
#include "core/noswalker_engine.hpp"
#include "service/service_app.hpp"
#include "shard/sharded_engine.hpp"
#include "storage/block_reader.hpp"
#include "util/error.hpp"

namespace noswalker::service {

namespace {

double
elapsed_seconds(std::chrono::steady_clock::time_point from,
                std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

void
ServiceConfig::validate() const
{
    if (num_workers == 0) {
        throw util::ConfigError("service: num_workers must be >= 1");
    }
    if (step_threads == 0) {
        throw util::ConfigError("service: step_threads must be >= 1");
    }
    if (prefetch_depth > 64) {
        throw util::ConfigError("service: prefetch_depth must be <= 64");
    }
    if (prefetch_reorder_window > 64) {
        throw util::ConfigError(
            "service: prefetch_reorder_window must be <= 64");
    }
    if (plan_window > 64) {
        throw util::ConfigError("service: plan_window must be <= 64");
    }
    for (const auto &[tenant, weight] : tenant_weights) {
        if (weight <= 0.0 || weight > 1.0) {
            throw util::ConfigError(
                "service: tenant_weights values must be in (0, 1]");
        }
    }
    if (num_shards == 0 || num_shards > 256) {
        throw util::ConfigError(
            "service: num_shards must be in [1, 256]");
    }
    if (max_batch == 0) {
        throw util::ConfigError("service: max_batch must be >= 1");
    }
    if (batch_window_seconds < 0.0) {
        throw util::ConfigError(
            "service: batch_window_seconds must be >= 0");
    }
    if (block_bytes == 0) {
        throw util::ConfigError("service: block_bytes must be > 0");
    }
    if (budget_wait_seconds <= 0.0) {
        throw util::ConfigError(
            "service: budget_wait_seconds must be > 0");
    }
    if (memory_budget != 0 && cache_bytes >= memory_budget) {
        throw util::ConfigError(
            "service: cache_bytes must leave room under memory_budget");
    }
}

const char *
to_string(WalkStatus status)
{
    switch (status) {
    case WalkStatus::kOk:
        return "ok";
    case WalkStatus::kRejectedQueueFull:
        return "rejected-queue-full";
    case WalkStatus::kRejectedTenantQueue:
        return "rejected-tenant-queue";
    case WalkStatus::kRejectedBudget:
        return "rejected-budget";
    case WalkStatus::kDeadlineExpired:
        return "deadline-expired";
    case WalkStatus::kShutdown:
        return "shutdown";
    case WalkStatus::kFailed:
        return "failed";
    }
    return "unknown";
}

/**
 * One worker's reusable engine — plain, or sharded when the config
 * asks for more than one shard.  Lives here so walk_service.hpp does
 * not have to pull the whole engine template in.
 */
class BatchRunner {
  public:
    BatchRunner(const graph::GraphFile &file,
                const graph::BlockPartition &partition,
                const ServiceConfig &config, util::MemoryBudget *budget,
                storage::SharedBlockCache *cache,
                util::ThreadPool *step_pool)
    {
        if (config.num_shards > 1) {
            sharded_ =
                std::make_unique<shard::ShardedEngine<ServiceWalkApp>>(
                    file, partition, engine_config(config));
            sharded_->set_shared_budget(budget);
            sharded_->set_shared_cache(cache);
            sharded_->set_step_pool(step_pool);
        } else {
            engine_ =
                std::make_unique<core::NosWalkerEngine<ServiceWalkApp>>(
                    file, partition, engine_config(config));
            engine_->set_shared_budget(budget);
            engine_->set_shared_cache(cache);
            engine_->set_step_pool(step_pool);
        }
    }

    engine::RunStats
    run(ServiceWalkApp &app, std::uint64_t total_walkers,
        std::uint64_t seed)
    {
        if (sharded_) {
            return sharded_->run(app, total_walkers, seed);
        }
        return engine_->run(app, total_walkers, seed);
    }

    /** Fairness weight of the next run's load plans (DESIGN.md §13). */
    void
    set_plan_weight(double weight)
    {
        if (sharded_) {
            sharded_->set_plan_weight(weight);
        } else {
            engine_->set_plan_weight(weight);
        }
    }

    /** Per-shard lifetime totals of the last run (null when the runner
     *  drives a plain single engine). */
    const std::vector<engine::RunStats> *
    shard_stats() const
    {
        return sharded_ ? &sharded_->shard_stats() : nullptr;
    }

  private:
    static core::EngineConfig
    engine_config(const ServiceConfig &config)
    {
        core::EngineConfig ec;
        // The shared budget is attached explicitly; the engine-local
        // cap is unused but kept consistent for validation/diagnostics.
        ec.memory_budget = config.memory_budget;
        ec.block_bytes = config.block_bytes;
        ec.loader_threads = config.loader_threads;
        ec.max_walkers = config.max_walkers;
        ec.step_threads = config.step_threads;
        ec.prefetch_depth = config.prefetch_depth;
        ec.prefetch_reorder_window = config.prefetch_reorder_window;
        ec.plan_window = config.plan_window;
        ec.num_shards = config.num_shards;
        ec.shard_overlap = config.shard_overlap;
        ec.shard_presample = config.shard_presample;
        return ec;
    }

    std::unique_ptr<core::NosWalkerEngine<ServiceWalkApp>> engine_;
    std::unique_ptr<shard::ShardedEngine<ServiceWalkApp>> sharded_;
};

WalkService::WalkService(const graph::GraphFile &file,
                         const graph::BlockPartition &partition,
                         ServiceConfig config)
    : file_(&file), partition_(&partition), config_(config),
      budget_(config.memory_budget), submit_queue_(config.max_queue),
      batch_queue_(0)
{
    config_.validate();
    if (config_.cache_bytes > 0) {
        cache_ = std::make_unique<storage::SharedBlockCache>(
            config_.cache_bytes,
            budget_.limit() != 0 ? &budget_ : nullptr);
    }
    if (config_.step_threads > 1) {
        step_pool_ =
            std::make_unique<util::ThreadPool>(config_.step_threads - 1);
    }
    // Sharded engines duplicate the floor per shard (each shard holds
    // its own CSR index copy, buffer pair, and minimum walker pool).
    min_footprint_ = min_run_footprint(file, partition) *
                     std::max(1u, config_.num_shards);
    dispatcher_ = std::thread([this] { dispatcher_loop(); });
    workers_.reserve(config_.num_workers);
    for (unsigned i = 0; i < config_.num_workers; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

WalkService::~WalkService() { stop(); }

std::uint64_t
WalkService::min_run_footprint(const graph::GraphFile &file,
                               const graph::BlockPartition &partition)
{
    // Mirrors NosWalkerEngine::setup() floors: the resident CSR index,
    // one coarse block buffer (page-aligned, single-buffer degraded
    // mode), and the 64-walker minimum pool.
    const std::uint64_t page = storage::BlockReader::kPageBytes;
    const std::uint64_t aligned =
        (partition.max_block_bytes() / page + 2) * page;
    return file.index_bytes() + aligned +
           64 * sizeof(engine::Stepped<ServiceWalker>);
}

std::uint64_t
WalkService::estimate_request_bytes(const WalkRequest &req)
{
    const std::uint64_t walks = req.num_walks();
    switch (req.kind) {
    case WalkKind::kEndpoints:
        return walks * sizeof(graph::VertexId);
    case WalkKind::kPaths:
        return walks * ((req.length + 1) * sizeof(graph::VertexId) +
                        sizeof(std::vector<graph::VertexId>));
    case WalkKind::kVisitCounts:
        // Hash-map entries; bounded by distinct visited vertices.
        return std::min<std::uint64_t>(
            walks * req.length,
            std::uint64_t{1} << 24) * 32;
    }
    return walks * sizeof(graph::VertexId);
}

bool
WalkService::validate_request(const WalkRequest &request,
                              std::string *error) const
{
    if (request.starts.empty()) {
        *error = "request has no start vertices";
        return false;
    }
    if (request.walks_per_start == 0) {
        *error = "walks_per_start must be >= 1";
        return false;
    }
    if (request.weighted && !file_->weighted()) {
        *error = "weighted walks require a weighted graph";
        return false;
    }
    for (const graph::VertexId v : request.starts) {
        if (v >= file_->num_vertices()) {
            *error = "start vertex " + std::to_string(v) +
                     " out of range";
            return false;
        }
    }
    return true;
}

void
WalkService::count_terminal(WalkStatus status)
{
    switch (status) {
    case WalkStatus::kOk:
        completed_.fetch_add(1, std::memory_order_relaxed);
        break;
    case WalkStatus::kRejectedQueueFull:
        rejected_queue_full_.fetch_add(1, std::memory_order_relaxed);
        break;
    case WalkStatus::kRejectedTenantQueue:
        rejected_tenant_queue_.fetch_add(1, std::memory_order_relaxed);
        break;
    case WalkStatus::kRejectedBudget:
        rejected_budget_.fetch_add(1, std::memory_order_relaxed);
        break;
    case WalkStatus::kDeadlineExpired:
        expired_.fetch_add(1, std::memory_order_relaxed);
        break;
    case WalkStatus::kShutdown:
        shutdown_dropped_.fetch_add(1, std::memory_order_relaxed);
        break;
    case WalkStatus::kFailed:
        failed_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
}

bool
WalkService::acquire_tenant_slot(std::uint64_t tenant)
{
    if (config_.tenant_max_queue == 0) {
        return true;
    }
    std::lock_guard lock(tenant_queue_mutex_);
    std::size_t &in_flight = tenant_in_flight_[tenant];
    if (in_flight >= config_.tenant_max_queue) {
        return false;
    }
    ++in_flight;
    return true;
}

void
WalkService::release_tenant_slot(Pending &pending)
{
    if (!pending.tenant_slot) {
        return;
    }
    pending.tenant_slot = false;
    std::lock_guard lock(tenant_queue_mutex_);
    std::size_t &in_flight = tenant_in_flight_[pending.request.tenant];
    if (in_flight > 0) {
        --in_flight;
    }
}

void
WalkService::finish_rejected(Pending pending, WalkStatus status,
                             const std::string &error)
{
    release_tenant_slot(pending);
    WalkResult result;
    result.status = status;
    result.error = error;
    count_terminal(status);
    pending.promise.set_value(std::move(result));
}

WalkTicket
WalkService::submit(WalkRequest request)
{
    Pending pending;
    pending.request = std::move(request);
    pending.id = next_request_id_.fetch_add(1, std::memory_order_relaxed);
    pending.submitted = Clock::now();
    const std::uint64_t id = pending.id;
    std::future<WalkResult> future = pending.promise.get_future();
    submitted_.fetch_add(1, std::memory_order_relaxed);

    std::string error;
    if (!validate_request(pending.request, &error)) {
        finish_rejected(std::move(pending), WalkStatus::kFailed, error);
        return WalkTicket(id, std::move(future));
    }

    if (budget_.limit() != 0) {
        const std::uint64_t need =
            min_footprint_ + estimate_request_bytes(pending.request);
        if (need > budget_.limit()) {
            finish_rejected(std::move(pending),
                            WalkStatus::kRejectedBudget,
                            "request needs " + std::to_string(need) +
                                " bytes; budget is " +
                                std::to_string(budget_.limit()));
            return WalkTicket(id, std::move(future));
        }
        if (!config_.queue_over_budget && need > budget_.available()) {
            finish_rejected(std::move(pending),
                            WalkStatus::kRejectedBudget,
                            "budget has no headroom and "
                            "queue_over_budget is off");
            return WalkTicket(id, std::move(future));
        }
    }

    // Per-tenant backpressure: shed before touching the global queue,
    // so one tenant's burst cannot occupy max_queue for everyone.
    if (config_.tenant_max_queue > 0) {
        if (!acquire_tenant_slot(pending.request.tenant)) {
            finish_rejected(std::move(pending),
                            WalkStatus::kRejectedTenantQueue,
                            "tenant " +
                                std::to_string(pending.request.tenant) +
                                " is at its in-flight bound (" +
                                std::to_string(config_.tenant_max_queue) +
                                ")");
            return WalkTicket(id, std::move(future));
        }
        pending.tenant_slot = true;
    }

    const std::uint64_t tenant = pending.request.tenant;
    const bool held_slot = pending.tenant_slot;
    // The outcome is decided under the queue lock, so a close() racing
    // this push can never misreport shutdown as queue-full (or vice
    // versa): kClosed iff the close happened first.
    const util::PushOutcome outcome =
        submit_queue_.try_push_result(std::move(pending));
    if (outcome != util::PushOutcome::kPushed) {
        // try_push_result consumed pending; reconstruct the terminal
        // result (and return the tenant slot it carried).
        if (held_slot) {
            std::lock_guard lock(tenant_queue_mutex_);
            std::size_t &in_flight = tenant_in_flight_[tenant];
            if (in_flight > 0) {
                --in_flight;
            }
        }
        WalkResult result;
        result.status = outcome == util::PushOutcome::kClosed
                            ? WalkStatus::kShutdown
                            : WalkStatus::kRejectedQueueFull;
        result.error = result.status == WalkStatus::kShutdown
                           ? "service stopped"
                           : "submission queue full";
        count_terminal(result.status);
        std::promise<WalkResult> replacement;
        future = replacement.get_future();
        replacement.set_value(std::move(result));
    }
    return WalkTicket(id, std::move(future));
}

void
WalkService::dispatcher_loop()
{
    // One group per compatibility key.  Requests only coalesce when
    // they can share an engine run; today the key is the weighted flag
    // (weighted and unweighted gangs walk the same graph data but are
    // kept apart so a slow weighted batch never delays cheap ones).
    std::map<std::uint64_t, Group> groups;

    const auto window =
        std::chrono::duration<double>(config_.batch_window_seconds);

    for (;;) {
        std::optional<Pending> item;
        if (groups.empty()) {
            item = submit_queue_.pop();
        } else {
            // Wake at the earliest group deadline.
            auto earliest = Clock::time_point::max();
            for (const auto &[key, group] : groups) {
                earliest = std::min(
                    earliest,
                    group.opened +
                        std::chrono::duration_cast<Clock::duration>(
                            window));
            }
            const auto now = Clock::now();
            item = earliest <= now
                       ? submit_queue_.try_pop()
                       : submit_queue_.pop_for(earliest - now);
        }

        if (item) {
            const std::uint64_t key = item->request.weighted ? 1 : 0;
            auto [it, fresh] = groups.try_emplace(key);
            if (fresh) {
                it->second.opened = Clock::now();
            }
            it->second.requests.push_back(std::move(*item));
            if (it->second.requests.size() >= config_.max_batch ||
                config_.batch_window_seconds == 0.0) {
                flush_group(it->second);
                groups.erase(it);
            }
        } else if (submit_queue_.closed()) {
            // Drain whatever was accepted before close, then flush
            // every group and shut the batch pipeline down.
            while (auto leftover = submit_queue_.try_pop()) {
                const std::uint64_t key =
                    leftover->request.weighted ? 1 : 0;
                auto [it, fresh] = groups.try_emplace(key);
                if (fresh) {
                    it->second.opened = Clock::now();
                }
                it->second.requests.push_back(std::move(*leftover));
                if (it->second.requests.size() >= config_.max_batch) {
                    flush_group(it->second);
                    groups.erase(it);
                }
            }
            for (auto &[key, group] : groups) {
                flush_group(group);
            }
            groups.clear();
            batch_queue_.close();
            return;
        }

        // Flush groups whose window has expired.
        const auto now = Clock::now();
        for (auto it = groups.begin(); it != groups.end();) {
            if (elapsed_seconds(it->second.opened, now) >=
                config_.batch_window_seconds) {
                flush_group(it->second);
                it = groups.erase(it);
            } else {
                ++it;
            }
        }
    }
}

void
WalkService::flush_group(Group &group)
{
    if (group.requests.empty()) {
        return;
    }
    Batch batch;
    batch.id = next_batch_id_.fetch_add(1, std::memory_order_relaxed);
    batch.requests = std::move(group.requests);
    group.requests.clear();
    // Best-effort priority: higher-priority requests get the earliest
    // walker ids of the run (generated, and therefore retired, first).
    // Ties keep submission order.  This never changes results — every
    // request's walks are a pure function of its own seed.
    std::stable_sort(batch.requests.begin(), batch.requests.end(),
                     [](const Pending &a, const Pending &b) {
                         return a.request.priority > b.request.priority;
                     });
    batch_queue_.push(std::move(batch));
}

void
WalkService::worker_loop(unsigned worker_index)
{
    (void)worker_index;
    BatchRunner runner(*file_, *partition_, config_, &budget_,
                       cache_.get(), step_pool_.get());
    while (auto batch = batch_queue_.pop()) {
        run_batch(*batch, runner);
    }
}

void
WalkService::fail_batch(Batch &batch, WalkStatus status,
                        const std::string &error)
{
    for (Pending &pending : batch.requests) {
        finish_rejected(std::move(pending), status, error);
    }
    batch.requests.clear();
}

void
WalkService::run_batch(Batch &batch, BatchRunner &runner)
{
    const auto run_start = Clock::now();

    // Expire requests whose deadline passed while queued.
    Batch live;
    live.id = batch.id;
    live.requests.reserve(batch.requests.size());
    for (Pending &pending : batch.requests) {
        const double deadline = pending.request.deadline_seconds;
        if (deadline > 0.0 &&
            elapsed_seconds(pending.submitted, run_start) > deadline) {
            finish_rejected(std::move(pending),
                            WalkStatus::kDeadlineExpired,
                            "deadline passed while queued");
        } else {
            live.requests.push_back(std::move(pending));
        }
    }
    batch.requests.clear();
    if (live.requests.empty()) {
        return;
    }

    auto result_bytes_of = [](const Batch &b) {
        std::uint64_t total = 0;
        for (const Pending &p : b.requests) {
            total += estimate_request_bytes(p.request);
        }
        return total;
    };

    // Charge the result buffers to the shared budget for the lifetime
    // of the run; walkers/buffers are charged by the engine itself.
    // Each wait is clamped to the batch's tightest remaining deadline:
    // a request whose deadline lapses while blocked on the budget is
    // expired here (deadline-expired), never run late.
    std::uint64_t result_bytes = result_bytes_of(live);
    bool charged = false;
    if (budget_.limit() != 0 && result_bytes > 0) {
        for (unsigned attempt = 0;
             attempt <= config_.budget_retry_limit && !charged;
             ++attempt) {
            double wait = config_.budget_wait_seconds;
            const auto now = Clock::now();
            for (const Pending &p : live.requests) {
                const double d = p.request.deadline_seconds;
                if (d > 0.0) {
                    wait = std::min(
                        wait, d - elapsed_seconds(p.submitted, now));
                }
            }
            charged = budget_.reserve_wait(result_bytes,
                                           std::max(wait, 0.0));
            if (charged) {
                break;
            }
            // Expire requests whose deadline lapsed while we blocked;
            // the survivors retry with a smaller reservation.
            const auto after = Clock::now();
            Batch still;
            still.id = live.id;
            still.requests.reserve(live.requests.size());
            for (Pending &p : live.requests) {
                const double d = p.request.deadline_seconds;
                if (d > 0.0 &&
                    elapsed_seconds(p.submitted, after) > d) {
                    finish_rejected(
                        std::move(p), WalkStatus::kDeadlineExpired,
                        "deadline expired waiting for memory");
                } else {
                    still.requests.push_back(std::move(p));
                }
            }
            live.requests = std::move(still.requests);
            if (live.requests.empty()) {
                return;
            }
            result_bytes = result_bytes_of(live);
        }
        if (!charged) {
            fail_batch(live, WalkStatus::kRejectedBudget,
                       "timed out waiting for result-buffer memory");
            return;
        }
    }

    ServiceWalkApp app;
    for (const Pending &pending : live.requests) {
        app.add_request(pending.request);
    }

    // The engine seed only drives scheduling-internal choices; request
    // results depend solely on their own per-request seeds.
    const std::uint64_t engine_seed =
        live.id * 0x9e3779b97f4a7c15ULL + 1;

    // Load plans run at the batch's most-throttled tenant: a weighted
    // tenant must not ride a full-weight batch to extra speculative
    // slots.  Never changes results (§13) — only speculation.
    if (config_.plan_window > 0 && !config_.tenant_weights.empty()) {
        double weight = 1.0;
        for (const Pending &pending : live.requests) {
            weight = std::min(
                weight, config_.tenant_weight(pending.request.tenant));
        }
        runner.set_plan_weight(weight);
    }

    engine::RunStats stats;
    bool ran = false;
    bool budget_starved = false;
    std::string error;
    for (unsigned attempt = 0; attempt <= config_.budget_retry_limit;
         ++attempt) {
        try {
            stats = runner.run(app, app.total_walkers(), engine_seed);
            ran = true;
            break;
        } catch (const util::BudgetExceeded &e) {
            budget_starved = true;
            error = e.what();
            if (attempt == config_.budget_retry_limit) {
                break;
            }
            std::this_thread::sleep_for(std::chrono::duration<double>(
                config_.budget_wait_seconds));
        } catch (const std::exception &e) {
            budget_starved = false;
            error = e.what();
            break;
        }
    }

    if (!ran) {
        if (charged) {
            budget_.release(result_bytes);
        }
        fail_batch(live,
                   budget_starved ? WalkStatus::kRejectedBudget
                                  : WalkStatus::kFailed,
                   error);
        return;
    }

    batches_.fetch_add(1, std::memory_order_relaxed);
    if (live.requests.size() > 1) {
        coalesced_requests_.fetch_add(live.requests.size(),
                                      std::memory_order_relaxed);
    }

    // Per-shard modeled latency samples (sharded runners only): one
    // sample per shard per batch run, for the benches' per-shard p99.
    if (const std::vector<engine::RunStats> *per_shard =
            runner.shard_stats()) {
        std::lock_guard lock(shard_mutex_);
        for (const engine::RunStats &s : *per_shard) {
            shard_modeled_samples_.push_back(s.modeled_seconds());
        }
    }

    std::uint64_t total_steps = 0;
    for (const ServiceWalkApp::Slot &slot : app.slots()) {
        total_steps += slot.steps_taken;
    }
    const double run_seconds = stats.wall_seconds;
    const double batch_modeled = stats.modeled_seconds();
    const auto batch_size =
        static_cast<std::uint32_t>(live.requests.size());

    for (std::size_t i = 0; i < live.requests.size(); ++i) {
        Pending &pending = live.requests[i];
        ServiceWalkApp::Slot &slot = app.slots()[i];

        WalkResult result;
        result.status = WalkStatus::kOk;
        result.batch_id = live.id;
        result.batch_size = batch_size;
        result.wait_seconds =
            elapsed_seconds(pending.submitted, run_start);
        result.run_seconds = run_seconds;
        result.modeled_latency_seconds =
            result.wait_seconds + batch_modeled;

        // Cost slice proportional to this request's share of the
        // batch's steps; walker/step counts are exact.
        const double fraction =
            total_steps > 0
                ? static_cast<double>(slot.steps_taken) /
                      static_cast<double>(total_steps)
                : 1.0 / static_cast<double>(batch_size);
        result.stats = stats.scaled(fraction);
        result.stats.engine = "WalkService";
        result.stats.walkers = slot.num_walks;
        result.stats.steps = slot.steps_taken;

        switch (pending.request.kind) {
        case WalkKind::kEndpoints:
            result.endpoints = std::move(slot.endpoints);
            break;
        case WalkKind::kPaths:
            result.paths = std::move(slot.paths);
            break;
        case WalkKind::kVisitCounts: {
            result.top_visits.assign(slot.visits.begin(),
                                     slot.visits.end());
            std::sort(result.top_visits.begin(), result.top_visits.end(),
                      [](const auto &a, const auto &b) {
                          return a.second != b.second
                                     ? a.second > b.second
                                     : a.first < b.first;
                      });
            if (result.top_visits.size() > pending.request.top_k) {
                result.top_visits.resize(pending.request.top_k);
            }
            break;
        }
        }

        {
            std::lock_guard lock(tenant_mutex_);
            tenant_stats_[pending.request.tenant] += result.stats;
            total_stats_ += result.stats;
        }
        release_tenant_slot(pending);
        count_terminal(WalkStatus::kOk);
        pending.promise.set_value(std::move(result));
    }

    if (charged) {
        budget_.release(result_bytes);
    }
}

void
WalkService::stop()
{
    std::call_once(stop_once_, [this] {
        submit_queue_.close();
        if (dispatcher_.joinable()) {
            dispatcher_.join(); // flushes groups, closes batch_queue_
        }
        for (std::thread &worker : workers_) {
            if (worker.joinable()) {
                worker.join();
            }
        }
        // A stopped service serves nothing: drop cached blocks so
        // their budget reservations drain to zero with everything
        // else (the post-close conservation invariant).
        if (cache_) {
            cache_->clear();
        }
    });
}

WalkService::Counters
WalkService::counters() const
{
    Counters c;
    c.submitted = submitted_.load(std::memory_order_relaxed);
    c.completed = completed_.load(std::memory_order_relaxed);
    c.failed = failed_.load(std::memory_order_relaxed);
    c.rejected_queue_full =
        rejected_queue_full_.load(std::memory_order_relaxed);
    c.rejected_tenant_queue =
        rejected_tenant_queue_.load(std::memory_order_relaxed);
    c.rejected_budget = rejected_budget_.load(std::memory_order_relaxed);
    c.expired = expired_.load(std::memory_order_relaxed);
    c.shutdown_dropped =
        shutdown_dropped_.load(std::memory_order_relaxed);
    c.batches = batches_.load(std::memory_order_relaxed);
    c.coalesced_requests =
        coalesced_requests_.load(std::memory_order_relaxed);
    if (cache_) {
        c.cache_hits = cache_->hits();
        c.cache_misses = cache_->misses();
    }
    c.budget_peak = budget_.peak();
    return c;
}

engine::RunStats
WalkService::tenant_stats(std::uint64_t tenant) const
{
    std::lock_guard lock(tenant_mutex_);
    const auto it = tenant_stats_.find(tenant);
    return it != tenant_stats_.end() ? it->second : engine::RunStats{};
}

std::unordered_map<std::uint64_t, engine::RunStats>
WalkService::all_tenant_stats() const
{
    std::lock_guard lock(tenant_mutex_);
    return tenant_stats_;
}

engine::RunStats
WalkService::aggregate_stats() const
{
    std::lock_guard lock(tenant_mutex_);
    return total_stats_;
}

std::vector<double>
WalkService::shard_modeled_samples() const
{
    std::lock_guard lock(shard_mutex_);
    return shard_modeled_samples_;
}

} // namespace noswalker::service
