/**
 * @file
 * The multi-tenant application one coalesced batch runs as.
 *
 * Every request in a batch becomes a Slot owning a fenced range of the
 * walker id space; generate() maps a walker id to its slot via binary
 * search.  Steps are drawn from per-walker SplitMix64 state carried in
 * the walker record (engine::WalkerAwareApp), which makes each walk a
 * pure function of (request seed, walk index, graph): results are
 * bit-identical no matter how requests were coalesced or how many
 * service workers ran them.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "engine/app.hpp"
#include "graph/graph_file.hpp"
#include "service/walk_request.hpp"
#include "util/rng.hpp"

namespace noswalker::service {

/** Walker with its own random stream (see file comment). */
struct ServiceWalker {
    std::uint64_t id = 0;
    graph::VertexId location = 0;
    std::uint32_t step = 0;
    /** SplitMix64 state advanced once per sampled step. */
    std::uint64_t rng_state = 0;
};

/** One batched engine run over the requests coalesced into it. */
class ServiceWalkApp {
  public:
    using WalkerT = ServiceWalker;

    /** Per-request state and output accumulators.
     *
     * action() may run concurrently on engine step threads, so the
     * shared accumulators are protected: steps_taken is bumped through
     * std::atomic_ref and the visits map behind a per-slot mutex.
     * endpoints/paths need nothing — each walker owns its own element.
     */
    struct Slot {
        const WalkRequest *request = nullptr;
        /** First walker id of this slot (fence; cumulative). */
        std::uint64_t first_walker = 0;
        std::uint64_t num_walks = 0;
        /** Steps actually taken by this slot's walks (dead ends cut
         *  walks short, so this can be below num_walks × length). */
        std::uint64_t steps_taken = 0;

        std::vector<graph::VertexId> endpoints;
        std::vector<std::vector<graph::VertexId>> paths;
        std::unordered_map<graph::VertexId, std::uint64_t> visits;
        /** Guards visits (unique_ptr keeps Slot movable). */
        std::unique_ptr<std::mutex> visits_mutex =
            std::make_unique<std::mutex>();
    };

    /** Append @p request to the batch. @p request must outlive the app. */
    void
    add_request(const WalkRequest &request)
    {
        Slot slot;
        slot.request = &request;
        slot.first_walker = total_walkers_;
        slot.num_walks = request.num_walks();
        if (request.kind == WalkKind::kEndpoints) {
            slot.endpoints.assign(slot.num_walks, graph::kInvalidVertex);
        } else if (request.kind == WalkKind::kPaths) {
            slot.paths.resize(slot.num_walks);
        }
        total_walkers_ += slot.num_walks;
        slots_.push_back(std::move(slot));
        fences_.push_back(total_walkers_);
    }

    /** Total walkers across all slots. */
    std::uint64_t total_walkers() const { return total_walkers_; }

    std::vector<Slot> &slots() { return slots_; }
    const std::vector<Slot> &slots() const { return slots_; }

    WalkerT
    generate(std::uint64_t n)
    {
        Slot &slot = slot_of(n);
        const std::uint64_t k = n - slot.first_walker;
        const WalkRequest &req = *slot.request;
        const auto start =
            req.starts[static_cast<std::size_t>(k / req.walks_per_start)];
        WalkerT w;
        w.id = n;
        w.location = start;
        w.step = 0;
        // Decorrelate per-walk streams: seed ^ golden-ratio-spread walk
        // index, then one mixing round.
        w.rng_state = util::derive_stream(req.seed, k);
        if (req.kind == WalkKind::kEndpoints) {
            slot.endpoints[k] = start;
        } else if (req.kind == WalkKind::kPaths) {
            auto &path = slot.paths[k];
            path.clear();
            path.reserve(req.length + 1);
            path.push_back(start);
        }
        return w;
    }

    /** Anonymous-stream sampling (pre-sample fills; unused here because
     *  walker-aware apps run with pre-sampling disabled). */
    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    /** Per-walker deterministic step (engine::WalkerAwareApp). */
    graph::VertexId
    sample_for(WalkerT &w, const graph::VertexView &view)
    {
        const std::uint64_t z = util::splitmix_next(w.rng_state);
        const Slot &slot = slot_of(w.id);
        if (slot.request->weighted) {
            util::Rng rng(z);
            return view.sample_weighted(rng);
        }
        const std::uint64_t degree = view.degree();
        const auto idx = static_cast<std::size_t>(
            (static_cast<unsigned __int128>(z) * degree) >> 64);
        return view.targets[idx];
    }

    bool
    active(const WalkerT &w) const
    {
        return w.step < slot_of(w.id).request->length;
    }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        Slot &slot = slot_of(w.id);
        const std::uint64_t k = w.id - slot.first_walker;
        w.location = next;
        ++w.step;
        std::atomic_ref<std::uint64_t>(slot.steps_taken)
            .fetch_add(1, std::memory_order_relaxed);
        switch (slot.request->kind) {
        case WalkKind::kEndpoints:
            slot.endpoints[k] = next;
            break;
        case WalkKind::kPaths:
            slot.paths[k].push_back(next);
            break;
        case WalkKind::kVisitCounts: {
            std::lock_guard<std::mutex> lock(*slot.visits_mutex);
            ++slot.visits[next];
            break;
        }
        }
        return true;
    }

  private:
    Slot &
    slot_of(std::uint64_t walker_id)
    {
        return slots_[slot_index(walker_id)];
    }

    const Slot &
    slot_of(std::uint64_t walker_id) const
    {
        return slots_[slot_index(walker_id)];
    }

    std::size_t
    slot_index(std::uint64_t walker_id) const
    {
        // First fence strictly greater than walker_id.
        std::size_t lo = 0, hi = fences_.size();
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            if (fences_[mid] <= walker_id) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

    std::vector<Slot> slots_;
    std::vector<std::uint64_t> fences_; ///< cumulative end walker ids
    std::uint64_t total_walkers_ = 0;
};

static_assert(engine::RandomWalkApp<ServiceWalkApp>);
static_assert(engine::WalkerAwareApp<ServiceWalkApp>);

} // namespace noswalker::service
