/**
 * @file
 * Walk service tunables: worker pool size, request coalescing window,
 * shared memory budget, and admission policy.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

namespace noswalker::service {

/** Tunables of the WalkService. */
struct ServiceConfig {
    /** Worker threads, each driving one NosWalker engine. */
    unsigned num_workers = 2;

    /** Submission queue bound; try_push beyond it rejects (0 = unbounded). */
    std::size_t max_queue = 1024;

    /**
     * Per-tenant backpressure bound: the most requests one tenant may
     * have in flight (admitted to the submission queue but not yet
     * terminal) before further submissions from that tenant are shed
     * with kRejectedTenantQueue (0 = unbounded).  Bounds how much of
     * the global max_queue — and of the dispatcher/worker pipeline —
     * one tenant's burst can occupy, so a noisy tenant cannot starve
     * the rest of admission.
     */
    std::size_t tenant_max_queue = 0;

    /** Max requests coalesced into one engine run. */
    std::size_t max_batch = 16;

    /**
     * Coalescing window: seconds the dispatcher holds an under-full
     * batch open after its first request arrives.  0 dispatches every
     * request alone (no batching).
     */
    double batch_window_seconds = 0.002;

    /**
     * Shared memory budget in bytes across all workers, engines, and
     * the block cache (0 = unlimited).  Admission control rejects
     * requests that can never fit and queues the rest.
     */
    std::uint64_t memory_budget = 0;

    /** Byte capacity of the shared block cache (0 = no cache). */
    std::uint64_t cache_bytes = 0;

    /** Engine block size in bytes. */
    std::uint64_t block_bytes = 1ULL << 20;

    /** Background loader threads per engine (0 = synchronous loads). */
    unsigned loader_threads = 1;

    /**
     * Intra-block stepping threads (≥ 1).  All workers' engines share
     * one persistent util::ThreadPool sized step_threads − 1 (engines
     * serialize on it), so the service never oversubscribes the host
     * with num_workers × step_threads threads.  Results are unchanged
     * by this knob (per-walker streams).
     */
    unsigned step_threads = 1;

    /**
     * Speculative prefetch depth per engine (see
     * EngineConfig::prefetch_depth).  Also sizes each worker's block
     * buffer pool: depth + 1 recycled buffers at the high-water mark.
     * Walk output is depth-independent, so this is purely a
     * latency/memory trade-off per worker.
     */
    unsigned prefetch_depth = 2;

    /**
     * Per-engine reorder window for prefetch consumption (see
     * EngineConfig::prefetch_reorder_window): completed loads that may
     * be served past older outstanding ones.  0 = strict FIFO.
     */
    unsigned prefetch_reorder_window = 2;

    /**
     * Per-engine lookahead window of the block-load planner (see
     * EngineConfig::plan_window; DESIGN.md §13).  0 keeps the greedy
     * top-K nomination.  Never changes request output.
     */
    unsigned plan_window = 4;

    /**
     * Per-tenant fairness weights in (0, 1] gating how many
     * speculative slots a batch's load plans may commit (DESIGN.md
     * §13).  A batch runs at the *minimum* weight of the tenants
     * coalesced into it, so a throttled tenant cannot ride a
     * full-weight batch.  Unlisted tenants run at full weight.  Only
     * consulted while plan_window > 0; never changes request output.
     */
    std::map<std::uint64_t, double> tenant_weights;

    /** The plan weight of @p tenant (1.0 when unlisted). */
    double
    tenant_weight(std::uint64_t tenant) const
    {
        const auto it = tenant_weights.find(tenant);
        return it == tenant_weights.end() ? 1.0 : it->second;
    }

    /** Engine walker-pool cap per run (0 = derive from the budget). */
    std::uint64_t max_walkers = 0;

    /**
     * Graph shards per worker engine (1 = the plain single-engine
     * path).  > 1 dispatches batches onto a shard::ShardedEngine:
     * each shard owns a contiguous block range and a private modeled
     * device, and walkers migrate between shards in batches at round
     * barriers.  Results are bit-identical at every value — request
     * output is a pure function of the request seed (DESIGN.md §11).
     * Note each shard keeps its own CSR index copy, so the minimum
     * footprint scales with the shard count.
     */
    unsigned num_shards = 1;

    /**
     * Overlapped shard migration (num_shards > 1 only; see
     * EngineConfig::shard_overlap, DESIGN.md §11): emigrant
     * consignments are flushed to the exchange as block buckets drain
     * and staged while destination shards still step, so only the
     * residual wire time is charged as migration wait.  Never changes
     * request output — admission order is re-sequenced at the round
     * boundary.
     */
    bool shard_overlap = true;

    /**
     * Deterministic shard-local pre-sampling inside shard rounds (see
     * EngineConfig::shard_presample).  Request output stays a pure
     * function of (request seed, shard plan) — i.e. fixed num_shards —
     * but differs from other shard counts, hence default off.
     */
    bool shard_presample = false;

    /**
     * Over-budget policy: true queues requests until workers free
     * memory; false rejects at submission when the request would not
     * fit right now.
     */
    bool queue_over_budget = true;

    /** Seconds a worker waits for shared-budget headroom per attempt. */
    double budget_wait_seconds = 0.05;

    /** Budget-wait attempts before a batch fails with kRejectedBudget. */
    unsigned budget_retry_limit = 20;

    /** Validate ranges; @throws util::ConfigError on nonsense. */
    void validate() const;
};

} // namespace noswalker::service
