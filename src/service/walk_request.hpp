/**
 * @file
 * The walk service's request/response vocabulary.
 *
 * A WalkRequest asks for a gang of random walks (ThunderRW-style query
 * batching: many short walks per request, many requests coalesced per
 * engine run).  Results come back through a future-based WalkTicket;
 * every request carries its own seed, so its results are a pure
 * function of (graph, request) — independent of batching, scheduling,
 * and the number of service workers.
 */
#pragma once

#include <cstdint>
#include <future>
#include <string>
#include <utility>
#include <vector>

#include "engine/run_stats.hpp"
#include "graph/types.hpp"

namespace noswalker::service {

/** What the caller wants back from its walks. */
enum class WalkKind : std::uint8_t {
    /** Final vertex of every walk (PPR-style endpoint queries). */
    kEndpoints,
    /** Full vertex sequence of every walk (DeepWalk corpus queries). */
    kPaths,
    /** Top-k visited vertices with visit counts (PPR top-k queries). */
    kVisitCounts,
};

/** One walk query: a gang of fixed-length walks from given sources. */
struct WalkRequest {
    WalkKind kind = WalkKind::kEndpoints;
    /** Start vertices; walks_per_start walks begin at each. */
    std::vector<graph::VertexId> starts;
    std::uint32_t walks_per_start = 1;
    /** Steps per walk. */
    std::uint32_t length = 10;
    /** Per-request seed: results are a pure function of (graph, this). */
    std::uint64_t seed = 1;
    /** Weight-proportional steps (requires a weighted graph). */
    bool weighted = false;
    /** kVisitCounts: how many top vertices to return. */
    std::uint32_t top_k = 16;
    /** Best-effort: higher-priority requests are dispatched first. */
    std::int32_t priority = 0;
    /** Seconds after submission until the request expires (0 = never). */
    double deadline_seconds = 0.0;
    /** Tenant for per-tenant accounting (RunStats aggregation). */
    std::uint64_t tenant = 0;

    /** Walks this request will run. */
    std::uint64_t
    num_walks() const
    {
        return static_cast<std::uint64_t>(starts.size()) *
               walks_per_start;
    }
};

/** Terminal state of a request. */
enum class WalkStatus : std::uint8_t {
    kOk,
    /** Submission queue was full. */
    kRejectedQueueFull,
    /** Load-shed: the tenant already had tenant_max_queue requests in
     *  flight (admitted but not yet terminal). */
    kRejectedTenantQueue,
    /** The request can never (or right now, in reject mode) fit the
     *  service memory budget. */
    kRejectedBudget,
    /** The deadline passed before a worker picked the request up. */
    kDeadlineExpired,
    /** The service was stopped before the request ran. */
    kShutdown,
    /** The run failed; see error. */
    kFailed,
};

/** Human-readable status name. */
const char *to_string(WalkStatus status);

/** Everything a completed (or failed) request produces. */
struct WalkResult {
    WalkStatus status = WalkStatus::kFailed;
    std::string error;

    /** kEndpoints: final vertex per walk, indexed by walk number. */
    std::vector<graph::VertexId> endpoints;
    /** kPaths: full sequence per walk (start included). */
    std::vector<std::vector<graph::VertexId>> paths;
    /** kVisitCounts: (vertex, visits), most visited first. */
    std::vector<std::pair<graph::VertexId, std::uint64_t>> top_visits;

    /** This request's slice of its batch's engine run. */
    engine::RunStats stats;

    /** Wall seconds between submission and dispatch to an engine. */
    double wait_seconds = 0.0;
    /** Wall seconds of the batched engine run serving this request. */
    double run_seconds = 0.0;
    /** Modeled end-to-end latency: queue wait + modeled batch run. */
    double modeled_latency_seconds = 0.0;

    /** Engine run this request was coalesced into, and its size. */
    std::uint64_t batch_id = 0;
    std::uint32_t batch_size = 0;

    bool ok() const { return status == WalkStatus::kOk; }
};

/** Future-based handle to a submitted request. */
class WalkTicket {
  public:
    WalkTicket() = default;

    /** Service-assigned request id (0 for a default-constructed ticket). */
    std::uint64_t id() const { return id_; }

    /** Whether a result can still be retrieved. */
    bool valid() const { return future_.valid(); }

    /** Block until the result is ready and move it out (one shot). */
    WalkResult get() { return future_.get(); }

    /** Wait up to @p seconds. @return true when the result is ready. */
    bool
    wait_for(double seconds) const
    {
        return future_.wait_for(std::chrono::duration<double>(
                   seconds)) == std::future_status::ready;
    }

  private:
    friend class WalkService;

    WalkTicket(std::uint64_t id, std::future<WalkResult> future)
        : id_(id), future_(std::move(future))
    {
    }

    std::uint64_t id_ = 0;
    std::future<WalkResult> future_;
};

} // namespace noswalker::service
