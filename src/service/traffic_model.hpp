/**
 * @file
 * Model-based service-traffic fuzzer (CaDiCaL `mobical` style).
 *
 * A TrafficModel expands one 64-bit seed into a fully deterministic
 * *episode*: a ServiceConfig knob permutation (workers, batching,
 * shards, step threads, plan window, queue bounds, budget mode) plus a
 * scripted sequence of client events — tenant-skewed submissions,
 * bursts, budget-starving giants, tight deadlines, malformed requests,
 * and an optional mid-flight stop().  run_episode() drives a fresh
 * WalkService with the script from concurrent client threads, waits
 * for every ticket, and then asserts the service's conservation
 * invariants:
 *
 *   1. the shared MemoryBudget drains to exactly zero,
 *   2. every submitted request reached exactly one terminal status
 *      (terminal counters sum to the submission count, no future left
 *      unresolved),
 *   3. per-tenant RunStats sums equal the service aggregate, and
 *   4. no queue is left non-empty after close.
 *
 * The script is a pure function of the seed, so any violating episode
 * is replayable from its seed alone — the mobical workflow: fuzz with
 * a seed sweep, shrink by rerunning one seed.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "service/service_config.hpp"
#include "service/walk_request.hpp"
#include "service/walk_service.hpp"

namespace noswalker::service {

/** One scripted client action. */
struct TrafficEvent {
    enum class Kind : std::uint8_t {
        /** Submit `request` from client thread `client`. */
        kSubmit,
        /** Call service.stop() mid-flight (at most one per episode). */
        kStop,
    };
    Kind kind = Kind::kSubmit;
    WalkRequest request;
    /** Submitting client thread (bursts share one client). */
    unsigned client = 0;
};

/** A deterministic episode: knobs + the full event script. */
struct TrafficEpisode {
    std::uint64_t seed = 0;
    ServiceConfig config;
    unsigned num_clients = 1;
    std::vector<TrafficEvent> events;
    /** Whether the script contains a kStop event. */
    bool stops_mid_flight = false;
};

/** What one episode did, and whether the invariants held. */
struct EpisodeReport {
    std::uint64_t seed = 0;
    std::uint64_t submitted = 0;
    std::uint64_t ok = 0;
    /** Any non-kOk terminal status (rejections, expiries, shutdown). */
    std::uint64_t not_ok = 0;
    bool stopped_mid_flight = false;
    /** Invariant violations (empty == clean episode). */
    std::vector<std::string> violations;

    bool clean() const { return violations.empty(); }
};

/**
 * Seeded adversarial traffic generator + invariant harness over one
 * on-disk graph.  Thread-compatible: one model may run many episodes
 * sequentially; each episode spins up (and stops) its own service.
 */
class TrafficModel {
  public:
    /** Mix knobs; the defaults cover every adversarial class. */
    struct Options {
        std::size_t min_requests = 16;
        std::size_t max_requests = 56;
        /** Probability the script stops the service mid-flight. */
        double stop_probability = 0.3;
        /** Probability a request is a budget-starving giant. */
        double giant_probability = 0.1;
        /** Probability a request carries a tight (µs–ms) deadline. */
        double tight_deadline_probability = 0.15;
        /** Probability a request is malformed (fails validation). */
        double malformed_probability = 0.05;
        /** Seconds to wait for a ticket before declaring it stuck. */
        double ticket_timeout_seconds = 30.0;
    };

    /** Default mix. */
    TrafficModel(const graph::GraphFile &file,
                 const graph::BlockPartition &partition);

    TrafficModel(const graph::GraphFile &file,
                 const graph::BlockPartition &partition,
                 Options options);

    /** The episode script for @p seed — a pure function of the seed. */
    TrafficEpisode make_episode(std::uint64_t seed) const;

    /** Generate, drive, and check one episode. */
    EpisodeReport run_episode(std::uint64_t seed) const;

    /** Drive and check an explicit (possibly hand-written) episode. */
    EpisodeReport run_episode(const TrafficEpisode &episode) const;

    /**
     * Post-run conservation sweep over a stopped service: budget
     * drained, terminal counters sum to submissions, per-tenant stats
     * equal the aggregate, queues empty.  Also usable outside the
     * fuzzer wherever a service is wound down.
     */
    static std::vector<std::string>
    check_invariants(const WalkService &service);

    /** Human-readable script (mobical-style trace; also the
     *  determinism witness: equal seeds ⇒ equal strings). */
    static std::string describe(const TrafficEpisode &episode);

  private:
    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    Options options_;
};

} // namespace noswalker::service
