#include "shard/migration_cost.hpp"

namespace noswalker::shard {

double
MigrationCostModel::exchange_seconds(std::uint64_t messages,
                                     std::uint64_t batches,
                                     unsigned peers) const
{
    if (peers <= 1 || network_bps <= 0.0) {
        return 0.0;
    }
    const double total_bytes =
        static_cast<double>(messages) * message_bytes;
    const double bytes_per_second = network_bps / 8.0;
    return total_bytes / (bytes_per_second * peers) +
           static_cast<double>(batches) * batch_overhead_seconds /
               peers;
}

} // namespace noswalker::shard
