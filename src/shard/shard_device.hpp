/**
 * @file
 * Per-shard modeled device over a shared byte store.
 *
 * Every shard of a ShardedEngine owns one of these: reads serve their
 * bytes from the base device's payload via the unaccounted peek() path,
 * while requests are charged to this adapter's *private* SsdModel and
 * counters.  N shards over one graph image therefore model N
 * independent devices — the multi-device scale-out the shard-count
 * ablation measures — without duplicating the stored bytes.
 */
#pragma once

#include <cstdint>

#include "storage/io_device.hpp"
#include "util/error.hpp"

namespace noswalker::shard {

/** Read-only IoDevice adapter with a private cost model and counters. */
class ShardDevice final : public storage::IoDevice {
  public:
    /** Adapter over @p base, priced by @p model.  @p base must outlive
     *  this device. */
    ShardDevice(storage::IoDevice &base, storage::SsdModel model)
        : IoDevice(model), base_(&base)
    {
    }

    std::uint64_t size() const override { return base_->size(); }

  protected:
    void
    do_read(std::uint64_t offset, std::uint64_t len,
            void *buffer) override
    {
        base_->peek(offset, len, buffer);
    }

    void
    do_write(std::uint64_t, std::uint64_t, const void *) override
    {
        throw util::IoError("ShardDevice is read-only");
    }

  private:
    storage::IoDevice *base_;
};

} // namespace noswalker::shard
