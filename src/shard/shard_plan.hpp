/**
 * @file
 * Static assignment of the CSR block range to shards.
 *
 * Shards own contiguous block ranges balanced by edge bytes (the same
 * quantity BlockPartition balances blocks by), so each shard's private
 * device serves a near-equal share of the graph.  The plan is a pure
 * function of (partition, num_shards): routing a walker to its owner
 * shard is deterministic and identical on every host.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/partition.hpp"

namespace noswalker::shard {

/** One shard's contiguous block range. */
struct ShardRange {
    std::uint32_t first_block = 0;
    std::uint32_t end_block = 0; ///< one past the last block
    /** Edge bytes owned by the shard. */
    std::uint64_t bytes = 0;

    std::uint32_t
    num_blocks() const
    {
        return end_block - first_block;
    }

    bool
    contains(std::uint32_t block) const
    {
        return block >= first_block && block < end_block;
    }
};

/** Byte-balanced contiguous split of a BlockPartition across shards. */
class ShardPlan {
  public:
    /**
     * Split @p partition into @p num_shards contiguous ranges of
     * near-equal edge bytes.  Clamped: never more shards than blocks,
     * never fewer than one; every shard owns at least one block.
     */
    ShardPlan(const graph::BlockPartition &partition, unsigned num_shards);

    /** Shards actually planned (after clamping to the block count). */
    unsigned
    num_shards() const
    {
        return static_cast<unsigned>(ranges_.size());
    }

    /** Range of shard @p s. */
    const ShardRange &shard(unsigned s) const { return ranges_[s]; }

    /** Owning shard of @p block (O(log num_shards)). */
    unsigned shard_of_block(std::uint32_t block) const;

    /**
     * Locality-aware seed placement: the shard owning the block that
     * holds @p vertex.  A walker seeded here starts on the shard that
     * already has its first edge data, so round 1 begins with zero
     * migrations.  Pure function of (partition, plan, vertex) —
     * identical on every host and at every thread count.
     */
    unsigned assign_walker(const graph::BlockPartition &partition,
                           graph::VertexId vertex) const;

    /**
     * Documented fallback when no partition is at hand (e.g. synthetic
     * load generators): round-robin by walker index.  Spreads load
     * evenly but guarantees nothing about locality — most walkers
     * migrate on their first step.
     */
    unsigned
    assign_walker_round_robin(std::uint64_t walker_index) const
    {
        return static_cast<unsigned>(walker_index % ranges_.size());
    }

  private:
    std::vector<ShardRange> ranges_;
    std::vector<std::uint32_t> first_blocks_; ///< per shard, for lookup
};

} // namespace noswalker::shard
