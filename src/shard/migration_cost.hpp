/**
 * @file
 * Walker-migration cost constants and model, shared between the real
 * shard subsystem (shard::ShardedEngine) and the analytical KnightKing
 * baseline (baselines::ClusterModel).  One header, one set of numbers:
 * the modeled baseline and the implementation can never drift apart on
 * what a walker message costs on the wire.
 */
#pragma once

#include <cstdint>

namespace noswalker::shard {

/** Bytes per walker message on the wire (walker id + vertex + step;
 *  KnightKing's compact walker encoding, paper §5.2). */
inline constexpr std::uint32_t kWalkerMessageBytes = 16;

/** Interconnect bandwidth per peer link, bits per second (the paper's
 *  4-node 10 Gbps Ethernet cluster). */
inline constexpr double kInterconnectBps = 10e9;

/** Fixed per-batch exchange overhead, seconds: one syscall plus
 *  serialization per posted (src,dst) batch. */
inline constexpr double kBatchOverheadSeconds = 20e-6;

/**
 * Cost of exchanging walker batches between peers.  Every peer drives
 * its own full-duplex link and traffic is balanced, so wire time
 * divides by the peer count.
 */
struct MigrationCostModel {
    double network_bps = kInterconnectBps;
    std::uint32_t message_bytes = kWalkerMessageBytes;
    double batch_overhead_seconds = kBatchOverheadSeconds;

    /**
     * Modeled seconds for @p peers peers to exchange @p messages walker
     * messages packed into @p batches batches.  Zero with <= 1 peer
     * (nothing crosses a wire).
     */
    double exchange_seconds(std::uint64_t messages, std::uint64_t batches,
                            unsigned peers) const;

    /**
     * Wire seconds of one flush event: @p messages walker messages in
     * @p batches batches from a single shard.  Same formula as
     * exchange_seconds — kept as a named entry point so overlapped
     * per-flush accounting (DESIGN.md §11) and the barrier path price
     * traffic identically event by event.
     */
    double
    flush_seconds(std::uint64_t messages, std::uint64_t batches,
                  unsigned peers) const
    {
        return exchange_seconds(messages, batches, peers);
    }
};

} // namespace noswalker::shard
