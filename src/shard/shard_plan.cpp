#include "shard/shard_plan.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace noswalker::shard {

ShardPlan::ShardPlan(const graph::BlockPartition &partition,
                     unsigned num_shards)
{
    const std::uint32_t num_blocks = partition.num_blocks();
    if (num_blocks == 0) {
        throw util::ConfigError("ShardPlan: empty partition");
    }
    const unsigned n = std::max(
        1u, std::min<unsigned>(num_shards, num_blocks));

    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b < num_blocks; ++b) {
        total += partition.block(b).byte_size;
    }

    ranges_.reserve(n);
    first_blocks_.reserve(n);
    std::uint32_t begin = 0;
    std::uint64_t cumulative = 0;
    for (unsigned s = 0; s < n; ++s) {
        const std::uint64_t target = (total / n) * (s + 1) +
                                     (total % n) * (s + 1) / n;
        std::uint32_t end = begin;
        std::uint64_t bytes = 0;
        // Take at least one block, then blocks up to the cumulative
        // byte target — but always leave one block for every shard
        // still to come.
        do {
            bytes += partition.block(end).byte_size;
            cumulative += partition.block(end).byte_size;
            ++end;
        } while (end < num_blocks &&
                 num_blocks - end > n - s - 1 && cumulative < target);
        if (s + 1 == n) {
            // Rounding safety: the last shard absorbs the tail.
            for (; end < num_blocks; ++end) {
                bytes += partition.block(end).byte_size;
            }
        }
        ranges_.push_back({begin, end, bytes});
        first_blocks_.push_back(begin);
        begin = end;
    }
}

unsigned
ShardPlan::shard_of_block(std::uint32_t block) const
{
    const auto it = std::upper_bound(first_blocks_.begin(),
                                     first_blocks_.end(), block);
    return static_cast<unsigned>(it - first_blocks_.begin()) - 1;
}

unsigned
ShardPlan::assign_walker(const graph::BlockPartition &partition,
                         graph::VertexId vertex) const
{
    return shard_of_block(partition.block_of(vertex));
}

} // namespace noswalker::shard
