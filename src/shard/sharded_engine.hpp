/**
 * @file
 * Sharded scale-out engine: N NosWalker engines over one graph, each
 * owning a contiguous block range, a private modeled device, and a 1/N
 * slice of the memory budget, stepping concurrently on a fork-join
 * pool (DESIGN.md §11).
 *
 * Execution proceeds in rounds.  Each round, every shard with waiting
 * walkers runs its engine to local quiescence: walkers whose next
 * vertex another shard owns are handed back as emigrants instead of
 * parking.  The emigrants are exchanged as batched per-(src,dst)
 * consignments (MigrationExchange) and become the next round's
 * inboxes.  The round ends when no shard holds a walker.
 *
 * With shard_overlap (the default), shards do not sit on their
 * emigrants until the barrier: the engine flushes each block bucket's
 * emigrants through an EmigrantSink as the bucket drains, the sink
 * posts them to the exchange tagged with a per-shard flush sequence,
 * and opportunistically stages already-posted consignments from other
 * shards while its own engine is still stepping.  The wire time of a
 * flush then overlaps the remainder of the round, and only the
 * residual the stepping could not hide is charged as
 * migration_wait_seconds (the hidden part lands in
 * migration_overlap_seconds).  Staged immigrants are admitted at the
 * round boundary in (dst, src, flush-seq) order, which per (src,dst)
 * pair reconstructs the src shard's outbox order exactly — so the
 * walker set entering round r+1 is byte-identical to the hard-barrier
 * version (shard_overlap = false), and so is every trajectory.
 *
 * Determinism: every walker carries its private SplitMix64 stream
 * (engine::Stepped) across migrations, streams are derived exactly as
 * the plain engine derives them, and pre-sampling — the one mechanism
 * whose output depends on load timing — is off for shard rounds
 * unless shard_presample opts into the deterministic shard-local
 * variant (then output is a pure function of (seed, shard plan)).  By
 * default a trajectory is a pure function of (seed, walker id, graph):
 * endpoints and visit counts are bit-identical across {1, 2, N}
 * shards, any step-thread count, barrier or overlapped migration, and
 * any shard→thread placement.
 *
 * Modeled time: shards run concurrently, so each round contributes the
 * *maximum* of the per-shard I/O / CPU / wait phases; raw counters
 * sum.  Exchanges are priced per flush event by the same
 * MigrationCostModel the KnightKing baseline uses; the k-th of a
 * shard's K flush events gets a hiding window proportional to the
 * round span left after it ((K-1-k)/K), tail flushes (posted at
 * quiescence) get none — which makes barrier mode, whose single post
 * is all tail, degenerate to charging the full exchange cost as wait,
 * exactly as before.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "core/config.hpp"
#include "core/noswalker_engine.hpp"
#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "engine/walker.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "shard/migration_cost.hpp"
#include "shard/migration_exchange.hpp"
#include "shard/shard_device.hpp"
#include "shard/shard_plan.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace noswalker::shard {

/**
 * Partitioned multi-engine walk executor with deterministic batched
 * walker migration.
 *
 * @tparam App  a RandomWalkApp whose state is safe to step from
 *              multiple shard threads at once (per-walker output
 *              slots, atomic shared counters — the same contract as
 *              multi-threaded stepping in the plain engine).
 */
template <engine::RandomWalkApp App>
class ShardedEngine {
  public:
    using WalkerT = typename App::WalkerT;
    using Record = engine::Stepped<WalkerT>;
    using Engine = core::NosWalkerEngine<App>;

    /** Wire cost of barrier exchanges; shared with the KnightKing
     *  baseline via shard/migration_cost.hpp.  Adjust before run(). */
    MigrationCostModel cost_model;

    /**
     * @param file  the on-disk graph (base byte store; each shard
     *              reads it through a private modeled device).
     * @param partition  1-D block partition of @p file.
     * @param config  engine configuration; num_shards picks the shard
     *                count (clamped to the block count), memory_budget
     *                is sliced 1/N per shard.
     */
    ShardedEngine(const graph::GraphFile &file,
                  const graph::BlockPartition &partition,
                  core::EngineConfig config)
        : file_(&file), partition_(&partition), config_(config),
          plan_(partition, std::max(1u, config.num_shards)),
          shard_pool_(plan_.num_shards() - 1)
    {
        config_.validate();
        build_shards();
    }

    /**
     * Share one budget across every shard engine (walk-service mode)
     * instead of the private 1/N slices.  Pass nullptr to revert.
     */
    void
    set_shared_budget(util::MemoryBudget *budget)
    {
        shared_budget_ = budget;
        for (Shard &shard : shards_) {
            shard.engine->set_shared_budget(
                budget != nullptr ? budget : shard.budget.get());
        }
    }

    /** Serve coarse loads through a cache shared across shards. */
    void
    set_shared_cache(storage::SharedBlockCache *cache)
    {
        for (Shard &shard : shards_) {
            shard.engine->set_shared_cache(cache);
        }
    }

    /**
     * Step every shard's blocks on one external pool (the walk
     * service's).  The pool serializes concurrent engines, so shards
     * then interleave stepping instead of running it in parallel —
     * safe, and output-identical (per-walker streams).
     */
    void
    set_step_pool(util::ThreadPool *pool)
    {
        for (Shard &shard : shards_) {
            shard.engine->set_step_pool(pool);
        }
    }

    /** Fairness weight of every shard's load plans (DESIGN.md §13). */
    void
    set_plan_weight(double weight)
    {
        for (Shard &shard : shards_) {
            shard.engine->set_plan_weight(weight);
        }
    }

    /** Shards actually planned (num_shards clamped to the blocks). */
    unsigned num_shards() const { return plan_.num_shards(); }

    /** The block assignment. */
    const ShardPlan &plan() const { return plan_; }

    /** Migration rounds of the last run. */
    std::uint64_t rounds() const { return rounds_; }

    /** Conservation counters of the last run's exchange. */
    const ExchangeCounters &exchange_counters() const { return exchange_; }

    /** Per-shard lifetime totals of the last run (bench reporting). */
    const std::vector<engine::RunStats> &
    shard_stats() const
    {
        return shard_totals_;
    }

    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        return run(app, total_walkers, config_.seed);
    }

    /**
     * Execute @p total_walkers walkers of @p app to completion across
     * the shards, seeding streams from @p seed exactly as the plain
     * engine would.
     */
    engine::RunStats
    run(App &app, std::uint64_t total_walkers, std::uint64_t seed)
    {
        util::Timer wall;
        const unsigned n = plan_.num_shards();
        rounds_ = 0;
        exchange_ = ExchangeCounters{};
        shard_totals_.assign(n, engine::RunStats{});

        engine::RunStats total;
        total.engine = "ShardedNosWalker";
        total.pipelined = true;
        total.io_efficiency = core::kAsyncIoEfficiency;

        // Generate and route every walker up front: the router needs
        // each start vertex, and the record (walker + stream) must be
        // identical to what the plain engine would generate.  Seeding
        // is locality-aware: each walker starts on the shard that owns
        // its start vertex's block (ShardPlan::assign_walker), so
        // round 1 opens with zero migrations.
        std::vector<std::vector<Record>> inbox(n);
        for (std::uint64_t id = 0; id < total_walkers; ++id) {
            Record rec;
            rec.w = app.generate(id);
            rec.rng_state = util::derive_stream(seed, id);
            const unsigned owner = plan_.assign_walker(
                *partition_, engine::waiting_vertex(app, rec.w));
            inbox[owner].push_back(std::move(rec));
        }

        MigrationExchange<Record> exchange;
        std::vector<engine::RunStats> round_stats(n);
        // Per-round, per-shard flush machinery.  events[s] and
        // flush_seq[s] are touched only by shard s's pool thread during
        // the round and read by the orchestrator after the fork-join
        // barrier; staged_ collects consignments drained mid-round by
        // any shard thread and needs the mutex.
        std::vector<std::vector<FlushEvent>> events(n);
        std::vector<std::uint64_t> flush_seq(n, 0);
        std::vector<MigrationBatch<Record>> staged;
        std::mutex staged_mutex;
        const bool overlap = config_.shard_overlap && n > 1;
        if (overlap) {
            for (unsigned s = 0; s < n; ++s) {
                shards_[s].engine->set_emigrant_sink(
                    [this, &app, &exchange, &events, &flush_seq, &staged,
                     &staged_mutex, s](std::vector<Record> &&out) {
                        const FlushEvent e = bucket_and_post(
                            app, exchange, s, std::move(out),
                            flush_seq[s]++, false);
                        if (e.batches > 0) {
                            events[s].push_back(e);
                        }
                        // Stage consignments other shards already
                        // posted while this shard is still stepping.
                        std::vector<MigrationBatch<Record>> drained =
                            exchange.collect();
                        if (!drained.empty()) {
                            std::lock_guard<std::mutex> lock(
                                staged_mutex);
                            staged.insert(
                                staged.end(),
                                std::make_move_iterator(drained.begin()),
                                std::make_move_iterator(drained.end()));
                        }
                    });
            }
        }

        const auto live = [&] {
            for (const std::vector<Record> &box : inbox) {
                if (!box.empty()) {
                    return true;
                }
            }
            return false;
        };

        while (live()) {
            ++rounds_;
            for (engine::RunStats &rs : round_stats) {
                rs = engine::RunStats{};
            }
            for (unsigned s = 0; s < n; ++s) {
                events[s].clear();
                flush_seq[s] = 0;
            }
            // Fork: each shard runs its engine to local quiescence,
            // flushing emigrants through its sink along the way
            // (overlap mode), and posts any residue as a tail flush.
            // The pool's run() is the barrier.
            shard_pool_.run(n, [&](std::size_t s) {
                if (inbox[s].empty()) {
                    return;
                }
                std::vector<Record> records = std::move(inbox[s]);
                inbox[s].clear();
                std::vector<Record> emigrants;
                const ShardRange &range = plan_.shard(
                    static_cast<unsigned>(s));
                round_stats[s] = shards_[s].engine->run_records(
                    app, std::move(records), seed, range.first_block,
                    range.end_block, &emigrants);
                const FlushEvent tail = bucket_and_post(
                    app, exchange, static_cast<std::uint32_t>(s),
                    std::move(emigrants), flush_seq[s]++, true);
                if (tail.batches > 0) {
                    events[s].push_back(tail);
                }
            });
            const double round_span =
                aggregate_round(total, round_stats);
            charge_round_exchange(total, events, round_span, n);

            // Barrier passed: merge the staging pool with whatever is
            // still in the exchange, restore the deterministic
            // admission order, and deliver.  Per (src,dst) pair the
            // seq-ascending concatenation is the src shard's outbox
            // order, so the inboxes are byte-identical to the ones a
            // single barrier post would have produced.
            std::vector<MigrationBatch<Record>> batches =
                exchange.collect();
            {
                std::lock_guard<std::mutex> lock(staged_mutex);
                batches.insert(batches.end(),
                               std::make_move_iterator(staged.begin()),
                               std::make_move_iterator(staged.end()));
                staged.clear();
            }
            std::sort(batches.begin(), batches.end(),
                      MigrationExchange<Record>::admission_order);
            for (MigrationBatch<Record> &batch : batches) {
                std::vector<Record> &dst = inbox[batch.dst];
                dst.insert(dst.end(),
                           std::make_move_iterator(batch.records.begin()),
                           std::make_move_iterator(batch.records.end()));
            }
        }
        if (overlap) {
            for (Shard &shard : shards_) {
                shard.engine->set_emigrant_sink(nullptr);
            }
        }
        exchange.assert_conserved();
        exchange.close();
        exchange_ = exchange.counters();

        finalize_totals(total);
        total.wall_seconds = wall.seconds();
        return total;
    }

  private:
    struct Shard {
        std::unique_ptr<ShardDevice> device;
        std::unique_ptr<graph::GraphFile> file;
        /** Private 1/N budget slice (bypassed in shared-budget mode). */
        std::unique_ptr<util::MemoryBudget> budget;
        std::unique_ptr<Engine> engine;
    };

    void
    build_shards()
    {
        const unsigned n = plan_.num_shards();
        const std::uint64_t slice =
            config_.memory_budget == 0 ? 0 : config_.memory_budget / n;
        core::EngineConfig shard_config = config_;
        shard_config.num_shards = 1;
        // The budget is attached explicitly (slice or shared); the
        // engine-local cap is unused.
        shard_config.memory_budget = 0;
        shards_.reserve(n);
        for (unsigned s = 0; s < n; ++s) {
            Shard shard;
            shard.device = std::make_unique<ShardDevice>(
                file_->device(), file_->device().model());
            shard.file =
                std::make_unique<graph::GraphFile>(*shard.device);
            shard.budget = std::make_unique<util::MemoryBudget>(slice);
            shard.engine = std::make_unique<Engine>(
                *shard.file, *partition_, shard_config);
            shard.engine->set_shared_budget(shard.budget.get());
            shards_.push_back(std::move(shard));
        }
    }

    /** One emigrant flush posted to the exchange: the unit the cost
     *  model prices and windows (DESIGN.md §11). */
    struct FlushEvent {
        std::uint64_t records = 0;
        std::uint64_t batches = 0;
        /** Posted at shard quiescence — nothing left to step behind, so
         *  the event gets no hiding window. */
        bool tail = false;
    };

    /**
     * Bucket @p emigrants by destination shard (in outbox order, via
     * ShardPlan::assign_walker) and post the non-empty batches tagged
     * with flush sequence @p seq.  Runs on the shard's thread; returns
     * the event for the caller's flush log.
     */
    FlushEvent
    bucket_and_post(App &app, MigrationExchange<Record> &exchange,
                    std::uint32_t src, std::vector<Record> emigrants,
                    std::uint64_t seq, bool tail)
    {
        FlushEvent event;
        event.tail = tail;
        if (emigrants.empty()) {
            return event;
        }
        const unsigned n = plan_.num_shards();
        std::vector<std::vector<Record>> by_dst(n);
        for (Record &rec : emigrants) {
            const unsigned owner = plan_.assign_walker(
                *partition_, engine::waiting_vertex(app, rec.w));
            by_dst[owner].push_back(std::move(rec));
        }
        std::vector<MigrationBatch<Record>> out;
        for (std::uint32_t d = 0; d < n; ++d) {
            if (by_dst[d].empty()) {
                continue;
            }
            MigrationBatch<Record> batch;
            batch.src = src;
            batch.dst = d;
            batch.round = rounds_;
            batch.seq = seq;
            event.records += by_dst[d].size();
            batch.records = std::move(by_dst[d]);
            out.push_back(std::move(batch));
        }
        event.batches = out.size();
        exchange.post(std::move(out));
        return event;
    }

    /**
     * Price one round's flush events.  Each event costs
     * flush_seconds(records, batches, n); the k-th (0-indexed) of a
     * shard's K events gets a hiding window of (K-1-k)/K of the round
     * span — flushes posted early in the round have nearly the whole
     * round of stepping left to hide behind, the last one has none —
     * and tail events (posted at quiescence) get no window at all.
     * The hidden portion min(cost, window) lands in
     * migration_overlap_seconds; only the residual is charged as
     * migration_wait_seconds.  Barrier mode posts a single tail event
     * per shard, so everything is residual and the charge equals the
     * old full-cost barrier accounting (the model is linear in records
     * and batches).
     */
    void
    charge_round_exchange(
        engine::RunStats &total,
        const std::vector<std::vector<FlushEvent>> &events,
        double round_span, unsigned n)
    {
        for (const std::vector<FlushEvent> &shard_events : events) {
            const std::size_t count = shard_events.size();
            for (std::size_t k = 0; k < count; ++k) {
                const FlushEvent &e = shard_events[k];
                total.migrations += e.records;
                total.migration_batches += e.batches;
                const double cost = cost_model.flush_seconds(
                    e.records, e.batches, n);
                const double window =
                    e.tail ? 0.0
                           : round_span *
                                 static_cast<double>(count - 1 - k) /
                                 static_cast<double>(count);
                const double hidden = std::min(cost, window);
                total.migration_wait_seconds += cost - hidden;
                total.migration_overlap_seconds += hidden;
            }
        }
    }

    /**
     * Fold one round into @p total: counters sum across shards; the
     * time phases take the per-round maximum (shards run those phases
     * concurrently) and the maxima sum across rounds.  Returns the
     * round span — the modeled seconds the round's stepping occupies,
     * max(io/eff, cpu) + wait, i.e. the budget overlapped flushes can
     * hide behind.
     */
    double
    aggregate_round(engine::RunStats &total,
                    const std::vector<engine::RunStats> &round_stats)
    {
        double cpu = 0.0;
        double io = 0.0;
        double wait = 0.0;
        for (const engine::RunStats &s : round_stats) {
            total.walkers += s.walkers;
            total.steps += s.steps;
            total.graph_bytes_read += s.graph_bytes_read;
            total.graph_read_requests += s.graph_read_requests;
            total.edges_loaded += s.edges_loaded;
            total.swap_bytes += s.swap_bytes;
            total.blocks_loaded += s.blocks_loaded;
            total.fine_loads += s.fine_loads;
            total.cache_hit_blocks += s.cache_hit_blocks;
            total.cache_miss_blocks += s.cache_miss_blocks;
            total.prefetch_hits += s.prefetch_hits;
            total.prefetch_mispredicts += s.prefetch_mispredicts;
            total.planned_loads += s.planned_loads;
            total.plan_rescores += s.plan_rescores;
            total.plan_cache_credits += s.plan_cache_credits;
            total.presample_steps += s.presample_steps;
            total.block_steps += s.block_steps;
            total.stalls += s.stalls;
            total.rejection_trials += s.rejection_trials;
            total.rejection_rejected += s.rejection_rejected;
            cpu = std::max(cpu, s.cpu_seconds);
            io = std::max(io, s.io_busy_seconds);
            wait = std::max(wait, s.io_wait_seconds);
        }
        total.cpu_seconds += cpu;
        total.io_busy_seconds += io;
        total.io_wait_seconds += wait;
        for (std::size_t s = 0; s < round_stats.size(); ++s) {
            shard_totals_[s] += round_stats[s];
        }
        return std::max(io / core::kAsyncIoEfficiency, cpu) + wait;
    }

    void
    finalize_totals(engine::RunStats &total)
    {
        if (shared_budget_ != nullptr) {
            total.peak_memory = shared_budget_->peak();
            return;
        }
        // Private slices are held simultaneously: the footprint is
        // their sum (each slice's peak is monotone across rounds).
        std::uint64_t peak = 0;
        for (const Shard &shard : shards_) {
            peak += shard.budget->peak();
        }
        total.peak_memory = peak;
    }

    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    core::EngineConfig config_;
    ShardPlan plan_;
    /** Fork-join pool for the shard round (distinct from the engines'
     *  step pools: nested run() on one pool would deadlock). */
    util::ThreadPool shard_pool_;
    std::vector<Shard> shards_;
    util::MemoryBudget *shared_budget_ = nullptr;

    std::uint64_t rounds_ = 0;
    ExchangeCounters exchange_;
    std::vector<engine::RunStats> shard_totals_;
};

} // namespace noswalker::shard
