/**
 * @file
 * Batched walker exchange between shards at round barriers.
 *
 * During a round every shard collects its emigrants locally; at the
 * barrier it buckets them into per-(src,dst) batches and posts them
 * all under one lock (BlockingQueue::push_batch).  The orchestrator
 * then drains the queue in one acquisition (pop_all) and sorts the
 * batches by (dst, src), so delivery order — and therefore the next
 * round's admission order — is a pure function of the walk, never of
 * which shard thread reached the barrier first.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/blocking_queue.hpp"

namespace noswalker::shard {

/** One shard-to-shard walker consignment of one round. */
template <typename Record>
struct MigrationBatch {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t round = 0;
    std::vector<Record> records;
};

/** Conservation counters of a MigrationExchange. */
struct ExchangeCounters {
    std::uint64_t posted_records = 0;
    std::uint64_t posted_batches = 0;
    std::uint64_t delivered_records = 0;
    std::uint64_t delivered_batches = 0;
};

/**
 * Multi-producer (shard threads), single-drainer (round orchestrator)
 * exchange.  Unbounded: a round's emigrant volume is already bounded
 * by the shards' walker-pool caps.
 */
template <typename Record>
class MigrationExchange {
  public:
    using Batch = MigrationBatch<Record>;

    MigrationExchange() : queue_(0) {}

    /** Post one shard's outgoing batches (one lock acquisition).
     *  @return false when the exchange was closed (batches dropped). */
    bool
    post(std::vector<Batch> batches)
    {
        std::uint64_t records = 0;
        for (const Batch &b : batches) {
            records += b.records.size();
        }
        const std::uint64_t count = batches.size();
        if (!queue_.push_batch(std::move(batches))) {
            return false;
        }
        posted_records_.fetch_add(records, std::memory_order_relaxed);
        posted_batches_.fetch_add(count, std::memory_order_relaxed);
        return true;
    }

    /**
     * Drain everything posted this round (the caller's barrier
     * guarantees all producers have posted), in deterministic
     * (dst, src) order.
     */
    std::vector<Batch>
    collect()
    {
        std::vector<Batch> all = queue_.pop_all();
        std::sort(all.begin(), all.end(),
                  [](const Batch &a, const Batch &b) {
                      return a.dst != b.dst ? a.dst < b.dst
                                            : a.src < b.src;
                  });
        std::uint64_t records = 0;
        for (const Batch &b : all) {
            records += b.records.size();
        }
        delivered_records_.fetch_add(records, std::memory_order_relaxed);
        delivered_batches_.fetch_add(all.size(),
                                     std::memory_order_relaxed);
        return all;
    }

    /** Fail all future posts (shutdown). */
    void close() { queue_.close(); }

    /** Batches posted but not yet collected (0 after a clean run). */
    std::size_t pending() const { return queue_.size(); }

    ExchangeCounters
    counters() const
    {
        ExchangeCounters c;
        c.posted_records =
            posted_records_.load(std::memory_order_relaxed);
        c.posted_batches =
            posted_batches_.load(std::memory_order_relaxed);
        c.delivered_records =
            delivered_records_.load(std::memory_order_relaxed);
        c.delivered_batches =
            delivered_batches_.load(std::memory_order_relaxed);
        return c;
    }

  private:
    util::BlockingQueue<Batch> queue_;
    std::atomic<std::uint64_t> posted_records_{0};
    std::atomic<std::uint64_t> posted_batches_{0};
    std::atomic<std::uint64_t> delivered_records_{0};
    std::atomic<std::uint64_t> delivered_batches_{0};
};

} // namespace noswalker::shard
