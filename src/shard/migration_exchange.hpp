/**
 * @file
 * Batched walker exchange between shards.
 *
 * Barrier mode: during a round every shard collects its emigrants
 * locally; at the barrier it buckets them into per-(src,dst) batches
 * and posts them all under one lock (BlockingQueue::push_batch).  The
 * orchestrator then drains the queue in one acquisition (pop_all).
 *
 * Overlap mode (DESIGN.md §11): shards post consignments incrementally
 * as block buckets drain — each flush event carries a per-src sequence
 * number — and any shard thread may opportunistically move completed
 * consignments out of the queue mid-round (collect(), non-blocking)
 * into the orchestrator's staging pool.
 *
 * Either way, delivery order — and therefore the next round's
 * admission order — is made a pure function of the walk, never of
 * which shard thread reached the exchange first, by sorting staged
 * batches by (dst, src, seq) before admission: per (src,dst) pair the
 * seq-ascending concatenation reproduces the src shard's outbox order
 * exactly, so the admitted walker sequence is byte-identical to the
 * single-post barrier version.
 *
 * Conservation is tracked per (src,dst) pair: post() and collect()
 * update a pair-flow table, a debug-build assert_conserved() verifies
 * posted == delivered for every pair once the exchange is drained, and
 * pair_flows() exposes the table to tests.
 */
#pragma once

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "util/blocking_queue.hpp"

namespace noswalker::shard {

/** One shard-to-shard walker consignment. */
template <typename Record>
struct MigrationBatch {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint64_t round = 0;
    /** Flush sequence of the posting shard within the round (overlap
     *  mode posts many flushes per round; barrier mode posts one).
     *  Admission sorts by (dst, src, seq) — see the file comment. */
    std::uint64_t seq = 0;
    std::vector<Record> records;
};

/** Conservation counters of a MigrationExchange. */
struct ExchangeCounters {
    std::uint64_t posted_records = 0;
    std::uint64_t posted_batches = 0;
    std::uint64_t delivered_records = 0;
    std::uint64_t delivered_batches = 0;
};

/** Per-(src,dst) slice of the conservation counters. */
struct PairFlow {
    std::uint64_t posted_records = 0;
    std::uint64_t posted_batches = 0;
    std::uint64_t delivered_records = 0;
    std::uint64_t delivered_batches = 0;
};

/**
 * Multi-producer (shard threads), multi-drainer (any shard thread may
 * stage; the round orchestrator admits) exchange.  Unbounded: a
 * round's emigrant volume is already bounded by the shards' walker-
 * pool caps.
 */
template <typename Record>
class MigrationExchange {
  public:
    using Batch = MigrationBatch<Record>;
    using PairKey = std::pair<std::uint32_t, std::uint32_t>;

    MigrationExchange() : queue_(0) {}

    /** Post one shard's outgoing batches (one lock acquisition).
     *  @return false when the exchange was closed (batches dropped). */
    bool
    post(std::vector<Batch> batches)
    {
        std::uint64_t records = 0;
        for (const Batch &b : batches) {
            records += b.records.size();
        }
        const std::uint64_t count = batches.size();
        {
            std::lock_guard<std::mutex> lock(pair_mutex_);
            for (const Batch &b : batches) {
                PairFlow &flow = pair_flows_[{b.src, b.dst}];
                flow.posted_records += b.records.size();
                flow.posted_batches += 1;
            }
        }
        if (!queue_.push_batch(std::move(batches))) {
            return false;
        }
        posted_records_.fetch_add(records, std::memory_order_relaxed);
        posted_batches_.fetch_add(count, std::memory_order_relaxed);
        return true;
    }

    /**
     * Drain everything currently posted, without blocking.  Safe from
     * any thread; the caller owns sequencing the drained batches into
     * admission order — sort by (dst, src, seq), see admission_order().
     */
    std::vector<Batch>
    collect()
    {
        std::vector<Batch> all = queue_.pop_all();
        std::uint64_t records = 0;
        for (const Batch &b : all) {
            records += b.records.size();
        }
        {
            std::lock_guard<std::mutex> lock(pair_mutex_);
            for (const Batch &b : all) {
                PairFlow &flow = pair_flows_[{b.src, b.dst}];
                flow.delivered_records += b.records.size();
                flow.delivered_batches += 1;
            }
        }
        delivered_records_.fetch_add(records, std::memory_order_relaxed);
        delivered_batches_.fetch_add(all.size(),
                                     std::memory_order_relaxed);
        return all;
    }

    /** The deterministic admission order: (dst, src, seq) ascending. */
    static bool
    admission_order(const Batch &a, const Batch &b)
    {
        if (a.dst != b.dst) {
            return a.dst < b.dst;
        }
        if (a.src != b.src) {
            return a.src < b.src;
        }
        return a.seq < b.seq;
    }

    /** Fail all future posts (shutdown). */
    void close() { queue_.close(); }

    /** Batches posted but not yet collected (0 after a clean run). */
    std::size_t pending() const { return queue_.size(); }

    ExchangeCounters
    counters() const
    {
        ExchangeCounters c;
        c.posted_records =
            posted_records_.load(std::memory_order_relaxed);
        c.posted_batches =
            posted_batches_.load(std::memory_order_relaxed);
        c.delivered_records =
            delivered_records_.load(std::memory_order_relaxed);
        c.delivered_batches =
            delivered_batches_.load(std::memory_order_relaxed);
        return c;
    }

    /** Copy of the per-(src,dst) conservation table. */
    std::map<PairKey, PairFlow>
    pair_flows() const
    {
        std::lock_guard<std::mutex> lock(pair_mutex_);
        return pair_flows_;
    }

    /**
     * Debug-build invariant: once the exchange is drained, every
     * record and batch posted for a (src,dst) pair was delivered to
     * it.  A no-op in NDEBUG builds.
     */
    void
    assert_conserved() const
    {
#ifndef NDEBUG
        assert(queue_.size() == 0 &&
               "exchange drained before conservation check");
        std::lock_guard<std::mutex> lock(pair_mutex_);
        for (const auto &[key, flow] : pair_flows_) {
            (void)key;
            assert(flow.posted_records == flow.delivered_records &&
                   "per-pair record conservation");
            assert(flow.posted_batches == flow.delivered_batches &&
                   "per-pair batch conservation");
        }
#endif
    }

  private:
    util::BlockingQueue<Batch> queue_;
    std::atomic<std::uint64_t> posted_records_{0};
    std::atomic<std::uint64_t> posted_batches_{0};
    std::atomic<std::uint64_t> delivered_records_{0};
    std::atomic<std::uint64_t> delivered_batches_{0};
    mutable std::mutex pair_mutex_;
    std::map<PairKey, PairFlow> pair_flows_;
};

} // namespace noswalker::shard
