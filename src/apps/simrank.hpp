/**
 * @file
 * SimRank by random walk meeting time (§4.2 application 2).
 *
 * sim(a, b) is interpreted through the expected time for two walkers
 * started at a and b to meet; the paper runs 2000 walks of length 11
 * from each endpoint of a queried pair.  Walk i of a is paired with
 * walk i of b and the first step at which they coincide contributes
 * C^t to the score (C = decay).
 */
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Pairwise SimRank estimator for one (a, b) query. */
class SimRank {
  public:
    using WalkerT = engine::Walker;

    /**
     * @param a,b             the queried vertex pair.
     * @param walks_per_side  walks from each of a and b (paper: 2000).
     * @param length          walk length (paper: 11).
     */
    SimRank(graph::VertexId a, graph::VertexId b,
            std::uint64_t walks_per_side, std::uint32_t length,
            double decay = 0.6)
        : a_(a), b_(b), walks_per_side_(walks_per_side), length_(length),
          decay_(decay),
          paths_(2 * walks_per_side * (length + 1), graph::kInvalidVertex)
    {
    }

    /** Total walkers (both sides). */
    std::uint64_t total_walkers() const { return 2 * walks_per_side_; }

    WalkerT
    generate(std::uint64_t n)
    {
        // Even ids walk from a, odd ids from b.
        const graph::VertexId start = (n % 2 == 0) ? a_ : b_;
        record(n, 0, start);
        return WalkerT{n, start, 0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        record(w.id, w.step, next);
        return true;
    }

    /**
     * First-meeting SimRank estimate: mean over paired walks of
     * decay^t where t is the first step both walkers are at the same
     * vertex (0 when they never meet within the length).
     */
    double estimate() const;

  private:
    void
    record(std::uint64_t id, std::uint32_t step, graph::VertexId v)
    {
        paths_[id * (length_ + 1) + step] = v;
    }

    graph::VertexId
    at(std::uint64_t id, std::uint32_t step) const
    {
        return paths_[id * (length_ + 1) + step];
    }

    graph::VertexId a_;
    graph::VertexId b_;
    std::uint64_t walks_per_side_;
    std::uint32_t length_;
    double decay_;
    std::vector<graph::VertexId> paths_;
};

inline double
SimRank::estimate() const
{
    double total = 0.0;
    for (std::uint64_t pair = 0; pair < walks_per_side_; ++pair) {
        const std::uint64_t ia = 2 * pair;
        const std::uint64_t ib = 2 * pair + 1;
        for (std::uint32_t t = 1; t <= length_; ++t) {
            const graph::VertexId va = at(ia, t);
            const graph::VertexId vb = at(ib, t);
            if (va == graph::kInvalidVertex ||
                vb == graph::kInvalidVertex) {
                break; // one walk dead-ended
            }
            if (va == vb) {
                total += std::pow(decay_, static_cast<double>(t));
                break;
            }
        }
    }
    return total / static_cast<double>(walks_per_side_);
}

static_assert(engine::RandomWalkApp<SimRank>);

} // namespace noswalker::apps
