/**
 * @file
 * Graphlet Concentration by path sampling (§4.2 application 4).
 *
 * Estimates the triangle concentration: walkers of length 3 sample
 * paths v0→v1→v2(→v3); a sampled 2-path closes into a triangle when
 * the edge v2→v0 exists.  The walk (I/O heavy part) runs out-of-core;
 * the closure test is answered post-hoc against the in-memory
 * reference CSR, documented as an oracle substitution in DESIGN.md.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "graph/csr_graph.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Triangle-concentration estimator via 3-step walks. */
class GraphletConcentration {
  public:
    using WalkerT = engine::Walker;

    /** Paper setting: |V|/100 walkers of length 3, random starts. */
    GraphletConcentration(graph::VertexId num_vertices,
                          std::uint64_t num_walkers,
                          std::uint32_t length = 3, std::uint64_t seed = 7)
        : num_vertices_(num_vertices), num_walkers_(num_walkers),
          length_(length), seed_(seed),
          paths_(num_walkers * (length + 1), graph::kInvalidVertex)
    {
    }

    std::uint64_t total_walkers() const { return num_walkers_; }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(seed_ ^ n);
        const auto start =
            static_cast<graph::VertexId>(mix.next() % num_vertices_);
        paths_[n * (length_ + 1)] = start;
        return WalkerT{n, start, 0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        paths_[w.id * (length_ + 1) + w.step] = next;
        return true;
    }

    /**
     * Fraction of sampled 2-paths (v0,v1,v2) with distinct vertices
     * that close into a triangle, tested against @p reference.
     */
    double
    triangle_concentration(const graph::CsrGraph &reference) const
    {
        std::uint64_t valid = 0;
        std::uint64_t closed = 0;
        for (std::uint64_t n = 0; n < num_walkers_; ++n) {
            const graph::VertexId v0 = paths_[n * (length_ + 1)];
            const graph::VertexId v1 = paths_[n * (length_ + 1) + 1];
            const graph::VertexId v2 = paths_[n * (length_ + 1) + 2];
            if (v1 == graph::kInvalidVertex ||
                v2 == graph::kInvalidVertex) {
                continue; // dead-ended before two steps
            }
            if (v0 == v1 || v1 == v2 || v0 == v2) {
                continue;
            }
            ++valid;
            if (reference.has_edge(v2, v0)) {
                ++closed;
            }
        }
        return valid == 0 ? 0.0
                          : static_cast<double>(closed) /
                                static_cast<double>(valid);
    }

  private:
    graph::VertexId num_vertices_;
    std::uint64_t num_walkers_;
    std::uint32_t length_;
    std::uint64_t seed_;
    std::vector<graph::VertexId> paths_;
};

static_assert(engine::RandomWalkApp<GraphletConcentration>);

} // namespace noswalker::apps
