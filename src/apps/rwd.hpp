/**
 * @file
 * Random Walk Domination (§4.2 application 3): one walker of length 6
 * per vertex; vertices are ranked by how often walks visit them, which
 * approximates the maximum-influence vertex set.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Visit-count collector: one walker per vertex. */
class RandomWalkDomination {
  public:
    using WalkerT = engine::Walker;

    /**
     * @param num_vertices  walker n starts at vertex n.
     * @param length        walk length (paper: 6).
     * @param record_visits accumulate the per-vertex visit counts.
     */
    RandomWalkDomination(graph::VertexId num_vertices, std::uint32_t length,
                         bool record_visits = true)
        : num_vertices_(num_vertices), length_(length),
          record_(record_visits)
    {
        if (record_) {
            visits_.assign(num_vertices, 0);
        }
    }

    /** Total walkers (= |V|). */
    std::uint64_t total_walkers() const { return num_vertices_; }

    WalkerT
    generate(std::uint64_t n)
    {
        return WalkerT{n, static_cast<graph::VertexId>(n % num_vertices_),
                       0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        if (record_) {
            ++visits_[next];
        }
        return true;
    }

    /** Visit count of @p v. @pre record_visits. */
    std::uint32_t visits(graph::VertexId v) const { return visits_[v]; }

    /** The k most-visited vertices (the dominating-set candidates). */
    std::vector<std::pair<graph::VertexId, std::uint32_t>>
    top_k(std::size_t k) const
    {
        std::vector<std::pair<graph::VertexId, std::uint32_t>> out;
        out.reserve(num_vertices_);
        for (graph::VertexId v = 0; v < num_vertices_; ++v) {
            if (visits_[v] > 0) {
                out.emplace_back(v, visits_[v]);
            }
        }
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                  });
        if (out.size() > k) {
            out.resize(k);
        }
        return out;
    }

  private:
    graph::VertexId num_vertices_;
    std::uint32_t length_;
    bool record_;
    std::vector<std::uint32_t> visits_;
};

static_assert(engine::RandomWalkApp<RandomWalkDomination>);

} // namespace noswalker::apps
