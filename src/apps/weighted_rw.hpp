/**
 * @file
 * Weighted random walk (Algorithm 2 of the paper; the K30W workload of
 * §4.4).  Sampling is weight-proportional — O(1) when the graph file
 * carries pre-built alias tables, O(degree) otherwise.
 */
#pragma once

#include <cstdint>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Weight-proportional random walk of fixed length. */
class WeightedRandomWalk {
  public:
    using WalkerT = engine::Walker;

    WeightedRandomWalk(std::uint32_t length, graph::VertexId num_vertices,
                       std::uint64_t seed = 7)
        : length_(length), num_vertices_(num_vertices), seed_(seed)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(seed_ ^ n);
        return WalkerT{
            n, static_cast<graph::VertexId>(mix.next() % num_vertices_),
            0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_weighted(rng);
    }

    /**
     * Step-kernel gather hint (DESIGN.md §12): an alias draw touches
     * one (prob, alias) row pair plus the chosen target; without alias
     * tables the O(degree) prefix scan streams the whole weight array,
     * so warm more of it.
     */
    unsigned
    gather(const WalkerT &, const graph::VertexView &view) const
    {
        if (!view.prob.empty()) {
            unsigned n = util::prefetch_range(
                view.prob.data(), view.prob.size_bytes(), 2);
            n += util::prefetch_range(view.alias.data(),
                                      view.alias.size_bytes(), 2);
            n += util::prefetch_range(view.targets.data(),
                                      view.targets.size_bytes(), 2);
            return n;
        }
        return util::prefetch_range(view.weights.data(),
                                    view.weights.size_bytes(), 4) +
               util::prefetch_range(view.targets.data(),
                                    view.targets.size_bytes(), 2);
    }

    /** Draw-hint refinement: the probe copy makes the alias slot exact
     *  (one row pair + its target) instead of head-line guesses
     *  (DESIGN.md §12). */
    unsigned
    gather(const WalkerT &, const graph::VertexView &view,
           util::Rng probe) const
    {
        return view.prefetch_weighted_draw(probe);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        return true;
    }

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
    std::uint64_t seed_;
};

static_assert(engine::RandomWalkApp<WeightedRandomWalk>);
static_assert(engine::GatherHintApp<WeightedRandomWalk>);
static_assert(engine::DrawHintApp<WeightedRandomWalk>);

} // namespace noswalker::apps
