/**
 * @file
 * Random Walk with Restart (Tong et al., ICDM'06 — the paper's [62,63]).
 *
 * Each step the walker teleports back to its source with probability
 * `restart`, otherwise follows a uniform out-edge; the stationary visit
 * frequencies give RWR proximity scores.  The restart decision lives in
 * Action (it needs no edge data), so pre-sampled edges stay valid: a
 * restart simply consumes no sample.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Fixed-budget random walk with restart from a single source. */
class RandomWalkWithRestart {
  public:
    using WalkerT = engine::Walker;

    /**
     * @param source        query vertex; every walker starts (and
     *                      restarts) here.
     * @param num_walkers   independent walkers.
     * @param steps_each    step budget per walker (restarts included).
     * @param restart       teleport probability (typically 0.15).
     * @param record_visits accumulate proximity counts.
     */
    RandomWalkWithRestart(graph::VertexId source,
                          std::uint64_t num_walkers,
                          std::uint32_t steps_each, double restart = 0.15,
                          bool record_visits = true)
        : source_(source), num_walkers_(num_walkers),
          steps_each_(steps_each), restart_(restart),
          record_(record_visits)
    {
    }

    std::uint64_t total_walkers() const { return num_walkers_; }

    WalkerT
    generate(std::uint64_t n)
    {
        return WalkerT{n, source_, 0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < steps_each_; }

    /**
     * With probability `restart` the walker teleports home and the
     * supplied pre-sample is NOT consumed (returns false); otherwise
     * it moves along the sampled edge.
     */
    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &rng)
    {
        ++w.step;
        if (rng.next_bool(restart_)) {
            w.location = source_;
            note_visit(source_);
            return false; // sample unused: stays in the buffer
        }
        w.location = next;
        note_visit(next);
        return true;
    }

    /** Estimated RWR proximity of @p v (visit share). */
    double
    proximity(graph::VertexId v) const
    {
        const auto it = visits_.find(v);
        if (it == visits_.end()) {
            return 0.0;
        }
        return static_cast<double>(it->second) /
               static_cast<double>(num_walkers_ * steps_each_);
    }

    /** Top-k vertices by proximity. */
    std::vector<std::pair<graph::VertexId, double>>
    top_k(std::size_t k) const
    {
        std::vector<std::pair<graph::VertexId, double>> out;
        out.reserve(visits_.size());
        const double denom =
            static_cast<double>(num_walkers_ * steps_each_);
        for (const auto &[v, c] : visits_) {
            out.emplace_back(v, static_cast<double>(c) / denom);
        }
        std::sort(out.begin(), out.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second ? a.second > b.second
                                                  : a.first < b.first;
                  });
        if (out.size() > k) {
            out.resize(k);
        }
        return out;
    }

  private:
    void
    note_visit(graph::VertexId v)
    {
        if (record_) {
            ++visits_[v];
        }
    }

    graph::VertexId source_;
    std::uint64_t num_walkers_;
    std::uint32_t steps_each_;
    double restart_;
    bool record_;
    std::unordered_map<graph::VertexId, std::uint64_t> visits_;
};

static_assert(engine::RandomWalkApp<RandomWalkWithRestart>);

} // namespace noswalker::apps
