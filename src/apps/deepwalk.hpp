/**
 * @file
 * DeepWalk-style corpus generation.
 *
 * The motivating pipeline of the paper (§2.1): extract a large corpus
 * of random walk sequences to feed a skip-gram embedding trainer.  The
 * sink receives every completed sequence; examples/deepwalk_corpus
 * writes them to a text corpus file.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Walk-sequence generator with a completion callback per sequence. */
class DeepWalk {
  public:
    using WalkerT = engine::Walker;
    using SequenceSink =
        std::function<void(std::uint64_t walker_id,
                           const std::vector<graph::VertexId> &sequence)>;

    /**
     * @param num_vertices     walker n starts at n mod V (DeepWalk
     *                         iterates the vertex set).
     * @param walks_per_vertex corpus passes over the vertex set.
     * @param length           sequence length.
     * @param sink             invoked once per completed sequence.
     */
    DeepWalk(graph::VertexId num_vertices, std::uint32_t walks_per_vertex,
             std::uint32_t length, SequenceSink sink)
        : num_vertices_(num_vertices),
          walks_per_vertex_(walks_per_vertex), length_(length),
          sink_(std::move(sink))
    {
    }

    std::uint64_t
    total_walkers() const
    {
        return static_cast<std::uint64_t>(num_vertices_) *
               walks_per_vertex_;
    }

    WalkerT
    generate(std::uint64_t n)
    {
        const auto start =
            static_cast<graph::VertexId>(n % num_vertices_);
        auto &seq = live_sequences_[n];
        seq.clear();
        seq.reserve(length_ + 1);
        seq.push_back(start);
        return WalkerT{n, start, 0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool
    active(const WalkerT &w) const
    {
        return w.step < length_;
    }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        auto &seq = live_sequences_[w.id];
        seq.push_back(next);
        if (w.step == length_ && sink_) {
            sink_(w.id, seq);
            live_sequences_.erase(w.id);
        }
        return true;
    }

  private:
    graph::VertexId num_vertices_;
    std::uint32_t walks_per_vertex_;
    std::uint32_t length_;
    SequenceSink sink_;
    std::unordered_map<std::uint64_t, std::vector<graph::VertexId>>
        live_sequences_;
};

static_assert(engine::RandomWalkApp<DeepWalk>);

} // namespace noswalker::apps
