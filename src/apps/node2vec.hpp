/**
 * @file
 * Node2Vec second-order random walk (paper §4.5, Appendix A).
 *
 * The transition weight out of v for a walker that arrived from u is
 * 1/p toward u itself (d_ux = 0), 1 toward common neighbours of u
 * (d_ux = 1) and 1/q otherwise (d_ux = 2).  Sampling decouples through
 * rejection sampling: Action records a uniformly pre-sampled candidate
 * x and a trial height h ∈ [0, max(1/p, 1, 1/q)); Rejection accepts x
 * when h falls under x's dynamic weight, which requires only x's
 * adjacency (u ∈ N(x) on an undirected graph ⟺ x ∈ N(u)).
 */
#pragma once

#include <algorithm>
#include <cstdint>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Second-order Node2Vec walk (Algorithm 4). */
class Node2Vec {
  public:
    using WalkerT = engine::SecondOrderWalker;

    /**
     * @param p,q              return / in-out hyper-parameters
     *                         (paper: p = 2, q = 0.5).
     * @param length           accepted steps per walker.
     * @param num_vertices     vertex count.
     * @param walks_per_vertex walkers per start vertex (paper: 10).
     */
    Node2Vec(double p, double q, std::uint32_t length,
             graph::VertexId num_vertices,
             std::uint32_t walks_per_vertex = 10)
        : inv_p_(1.0 / p), inv_q_(1.0 / q), length_(length),
          num_vertices_(num_vertices), walks_per_vertex_(walks_per_vertex)
    {
        h_max_ = std::max({inv_p_, 1.0, inv_q_});
    }

    std::uint64_t
    total_walkers() const
    {
        return static_cast<std::uint64_t>(num_vertices_) *
               walks_per_vertex_;
    }

    WalkerT
    generate(std::uint64_t n)
    {
        WalkerT w;
        w.id = n;
        w.location = static_cast<graph::VertexId>(
            (n / walks_per_vertex_) % num_vertices_);
        w.step = 0;
        w.prev = graph::kInvalidVertex;
        w.candidate = graph::kInvalidVertex;
        return w;
    }

    /** Candidates are drawn uniformly; weights apply at rejection. */
    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    /**
     * Step-kernel gather hint (DESIGN.md §12).  With a trial pending,
     * @p view is the candidate's adjacency and rejection() binary
     * searches it for w.prev — warm the probe points (ends + middle);
     * otherwise the next touch is a uniform candidate draw from the
     * head of the list.
     */
    unsigned
    gather(const WalkerT &w, const graph::VertexView &view) const
    {
        const std::size_t n = view.targets.size();
        if (n == 0) {
            return 0;
        }
        if (w.candidate != graph::kInvalidVertex && view.id == w.candidate &&
            w.prev != graph::kInvalidVertex) {
            util::prefetch_line(&view.targets[0]);
            util::prefetch_line(&view.targets[n / 2]);
            util::prefetch_line(&view.targets[n - 1]);
            return 3;
        }
        return util::prefetch_range(view.targets.data(),
                                    view.targets.size_bytes(), 2);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    /** Record a candidate + trial height (Algorithm 4 lines 8-12). */
    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &rng)
    {
        if (w.candidate != graph::kInvalidVertex) {
            return false; // trial pending; sample not consumed
        }
        w.candidate = next;
        w.h = static_cast<float>(rng.next_double(h_max_));
        return true;
    }

    bool
    has_candidate(const WalkerT &w) const
    {
        return w.candidate != graph::kInvalidVertex;
    }

    graph::VertexId candidate(const WalkerT &w) const
    {
        return w.candidate;
    }

    /**
     * Resolve the trial given the *candidate's* adjacency
     * (Algorithm 4 lines 13-24).  @return true when accepted (= the
     * walker moved one step).
     */
    bool
    rejection(WalkerT &w, const graph::VertexView &candidate_view,
              util::Rng &)
    {
        double weight;
        if (w.prev == graph::kInvalidVertex) {
            weight = h_max_; // first step is uniform: always accept
        } else if (w.candidate == w.prev) {
            weight = inv_p_; // d = 0
        } else if (candidate_view.has_target(w.prev)) {
            weight = 1.0; // d = 1 (undirected: prev ∈ N(candidate))
        } else {
            weight = inv_q_; // d = 2
        }
        const bool accept = w.h <= weight;
        if (accept) {
            w.prev = w.location;
            w.location = w.candidate;
            ++w.step;
        }
        w.candidate = graph::kInvalidVertex;
        return accept;
    }

    double h_max() const { return h_max_; }

  private:
    double inv_p_;
    double inv_q_;
    double h_max_;
    std::uint32_t length_;
    graph::VertexId num_vertices_;
    std::uint32_t walks_per_vertex_;
};

static_assert(engine::SecondOrderApp<Node2Vec>);
static_assert(engine::GatherHintApp<Node2Vec>);

} // namespace noswalker::apps
