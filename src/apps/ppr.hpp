/**
 * @file
 * Personalized PageRank by Monte-Carlo walks (§4.2 application 1).
 *
 * The paper runs 2000 walks of length 10 from every query source; the
 * PPR mass of vertex v w.r.t. source s is estimated from the frequency
 * of v among the walks' visited vertices.
 */
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Monte-Carlo Personalized PageRank over a set of query sources. */
class PersonalizedPageRank {
  public:
    using WalkerT = engine::Walker;

    /**
     * @param sources          query source vertices.
     * @param walks_per_source walkers started from each source.
     * @param length           walk length (paper: 10).
     * @param record_visits    accumulate visit counts for estimates
     *        (off for pure throughput benches).
     */
    PersonalizedPageRank(std::vector<graph::VertexId> sources,
                         std::uint64_t walks_per_source,
                         std::uint32_t length, bool record_visits = false)
        : sources_(std::move(sources)),
          walks_per_source_(walks_per_source), length_(length),
          record_(record_visits)
    {
        if (record_) {
            visit_counts_.resize(sources_.size());
        }
    }

    /** Total walkers this application expects. */
    std::uint64_t
    total_walkers() const
    {
        return sources_.size() * walks_per_source_;
    }

    WalkerT
    generate(std::uint64_t n)
    {
        const std::size_t source_index =
            static_cast<std::size_t>(n / walks_per_source_);
        return WalkerT{n, sources_[source_index], 0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    /** Step-kernel gather hint: uniform sampling touches one random
     *  target slot, so warming the head lines covers the common
     *  low-degree case outright (DESIGN.md §12). */
    unsigned
    gather(const WalkerT &, const graph::VertexView &view) const
    {
        return util::prefetch_range(view.targets.data(),
                                    view.targets.size_bytes(), 2);
    }

    /** Draw-hint refinement: with the probe copy the landing slot is
     *  exact rather than guessed, which matters on the high-degree
     *  vertices where steps concentrate (DESIGN.md §12). */
    unsigned
    gather(const WalkerT &, const graph::VertexView &view,
           util::Rng probe) const
    {
        return view.prefetch_uniform_draw(probe);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        if (record_) {
            const std::size_t source_index =
                static_cast<std::size_t>(w.id / walks_per_source_);
            ++visit_counts_[source_index][next];
        }
        return true;
    }

    /**
     * Estimated PPR of @p v w.r.t. source index @p source_index:
     * visits(v) / total visits.  @pre record_visits was enabled.
     */
    double
    estimate(std::size_t source_index, graph::VertexId v) const
    {
        const auto &counts = visit_counts_[source_index];
        const auto it = counts.find(v);
        if (it == counts.end()) {
            return 0.0;
        }
        return static_cast<double>(it->second) /
               static_cast<double>(walks_per_source_ * length_);
    }

    /** Top-k vertices by estimated PPR for one source. */
    std::vector<std::pair<graph::VertexId, double>>
    top_k(std::size_t source_index, std::size_t k) const;

  private:
    std::vector<graph::VertexId> sources_;
    std::uint64_t walks_per_source_;
    std::uint32_t length_;
    bool record_;
    std::vector<std::unordered_map<graph::VertexId, std::uint32_t>>
        visit_counts_;
};

inline std::vector<std::pair<graph::VertexId, double>>
PersonalizedPageRank::top_k(std::size_t source_index, std::size_t k) const
{
    std::vector<std::pair<graph::VertexId, double>> out;
    const auto &counts = visit_counts_[source_index];
    out.reserve(counts.size());
    const double denom =
        static_cast<double>(walks_per_source_ * length_);
    for (const auto &[v, c] : counts) {
        out.emplace_back(v, static_cast<double>(c) / denom);
    }
    std::sort(out.begin(), out.end(), [](const auto &a, const auto &b) {
        return a.second != b.second ? a.second > b.second
                                    : a.first < b.first;
    });
    if (out.size() > k) {
        out.resize(k);
    }
    return out;
}

static_assert(engine::RandomWalkApp<PersonalizedPageRank>);
static_assert(engine::GatherHintApp<PersonalizedPageRank>);
static_assert(engine::DrawHintApp<PersonalizedPageRank>);

} // namespace noswalker::apps
