/**
 * @file
 * Basic fixed-length unweighted random walk (the paper's Basic-RW
 * kernel, used by Figs 2, 10, 11, 12, 13, 14, 16, 17).
 */
#pragma once

#include <cstdint>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/rng.hpp"

namespace noswalker::apps {

/** Uniform random walk of fixed length. */
class BasicRandomWalk {
  public:
    using WalkerT = engine::Walker;

    /**
     * @param length        steps per walker.
     * @param num_vertices  start vertices are spread over [0, V).
     * @param random_start  true: start vertex is a hash of the walker
     *        id (uniform over V); false: walker n starts at n mod V.
     */
    BasicRandomWalk(std::uint32_t length, graph::VertexId num_vertices,
                    bool random_start = true, std::uint64_t seed = 7)
        : length_(length), num_vertices_(num_vertices),
          random_start_(random_start), seed_(seed)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        graph::VertexId start;
        if (random_start_) {
            util::SplitMix64 mix(seed_ ^ n);
            start = static_cast<graph::VertexId>(mix.next() %
                                                 num_vertices_);
        } else {
            start = static_cast<graph::VertexId>(n % num_vertices_);
        }
        return WalkerT{n, start, 0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    /** Step-kernel draw hint: dry-run the uniform draw on the probe
     *  copy and warm the exact target slot it lands on (DESIGN.md
     *  §12). */
    unsigned
    gather(const WalkerT &, const graph::VertexView &view,
           util::Rng probe) const
    {
        return view.prefetch_uniform_draw(probe);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        return true;
    }

    std::uint32_t length() const { return length_; }

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
    bool random_start_;
    std::uint64_t seed_;
};

static_assert(engine::RandomWalkApp<BasicRandomWalk>);
static_assert(engine::DrawHintApp<BasicRandomWalk>);

} // namespace noswalker::apps
