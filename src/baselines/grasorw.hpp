/**
 * @file
 * GraSorw baseline (Li et al., VLDB'22; paper §4.5, Fig 15).
 *
 * A disk-based system specialised for second-order random walks.  Its
 * headline mechanism is triangular bi-block scheduling: block pairs
 * (i, j) are visited in triangular order with both blocks resident, so
 * a walker whose current vertex lies in one block and whose candidate
 * lies in the other can always be resolved without random I/O.  Walker
 * management is bucket-based with skewed walk storage: buckets beyond
 * the in-memory buffer swap through a spill device.  GraSorw's
 * learning-based load model is out of scope (DESIGN.md §7); the
 * triangular schedule skips empty pairs, which subsumes its main
 * effect.
 */
#pragma once

#include <vector>

#include "baselines/common.hpp"
#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "engine/walker_spill.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace noswalker::baselines {

/** Triangular bi-block second-order out-of-core walker. */
template <engine::SecondOrderApp App>
class GraSorwEngine {
  public:
    using WalkerT = typename App::WalkerT;

    GraSorwEngine(const graph::GraphFile &file,
                  const graph::BlockPartition &partition,
                  std::uint64_t memory_budget, std::uint64_t seed = 42)
        : file_(&file), partition_(&partition),
          memory_budget_(memory_budget), seed_(seed)
    {
    }

    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        engine::RunStats stats;
        stats.engine = "GraSorw";
        stats.pipelined = false;
        stats.io_efficiency = kBufferedIoEfficiency;

        util::MemoryBudget budget(memory_budget_);
        util::Reservation index_rsv(budget, file_->index_bytes(),
                                    "csr index");
        const std::uint64_t page = storage::BlockReader::kPageBytes;
        // Bi-block scheduling keeps two block buffers resident.
        util::Reservation buffer_rsv(
            budget,
            2 * (partition_->max_block_bytes() / page + 2) * page,
            "bi-block buffers");
        // Bucket-based walk management with skewed walk storage: a
        // bounded in-memory buffer, overflow swapped to disk.
        const std::uint64_t buffer_bytes = std::max<std::uint64_t>(
            sizeof(WalkerT),
            budget.limit() == 0
                ? total_walkers * sizeof(WalkerT)
                : static_cast<std::uint64_t>(
                      0.5 * static_cast<double>(budget.available())));
        util::Reservation walkers_rsv(
            budget,
            std::min(buffer_bytes, total_walkers * sizeof(WalkerT)),
            "walker bucket buffer");
        storage::MemDevice swap_device(file_->device().model());
        engine::WalkerSpill spill(
            swap_device, sizeof(WalkerT),
            std::max<std::uint64_t>(1, buffer_bytes / sizeof(WalkerT)),
            partition_->num_blocks());

        util::Rng rng(seed_);
        const std::uint32_t num_blocks = partition_->num_blocks();
        // Bucket key: the block a walker waits on (its candidate's
        // block once a trial is pending, else its location's block).
        std::vector<std::vector<WalkerT>> buckets(num_blocks);
        std::uint64_t live = 0;

        util::Timer cpu;
        double cpu_seconds = 0.0;
        for (std::uint64_t n = 0; n < total_walkers; ++n) {
            WalkerT w = app.generate(n);
            if (!app.active(w) || file_->degree(w.location) == 0) {
                ++stats.walkers;
                continue;
            }
            const std::uint32_t b = partition_->block_of(w.location);
            buckets[b].push_back(w);
            spill.park(b, 1);
            ++live;
        }
        cpu_seconds += cpu.seconds();

        util::MemoryBudget unbudgeted(0);
        storage::BlockReader reader(*file_, unbudgeted);
        storage::BlockBuffer fixed;   // block i of the pair
        storage::BlockBuffer moving;  // block j of the pair
        const storage::IoStats before = file_->device().stats();

        // Triangular sweeps: (0,0) (0,1) ... (0,B-1) (1,1) (1,2) ...
        while (live > 0) {
            bool moved_any = false;
            for (std::uint32_t i = 0; i < num_blocks && live > 0; ++i) {
                bool fixed_loaded = false;
                for (std::uint32_t j = i; j < num_blocks && live > 0;
                     ++j) {
                    if (buckets[i].empty() && buckets[j].empty()) {
                        continue; // skip empty pairs
                    }
                    if (!fixed_loaded) {
                        reader.load_coarse(partition_->block(i), fixed);
                        ++stats.blocks_loaded;
                        fixed_loaded = true;
                    }
                    const storage::BlockBuffer *second = &fixed;
                    if (j != i) {
                        reader.load_coarse(partition_->block(j), moving);
                        ++stats.blocks_loaded;
                        second = &moving;
                    }

                    cpu.reset();
                    process_pair(app, i, j, fixed, *second, buckets, rng,
                                 stats, live, moved_any, spill);
                    cpu_seconds += cpu.seconds();
                }
            }
            // Safety: a full sweep that moved nothing means walkers are
            // unservable (cannot happen on valid graphs).
            if (!moved_any && live > 0) {
                break;
            }
        }

        const storage::IoStats after = file_->device().stats();
        stats.graph_bytes_read = after.bytes_read - before.bytes_read;
        stats.graph_read_requests =
            after.read_requests - before.read_requests;
        stats.edges_loaded =
            stats.graph_bytes_read / file_->record_bytes();
        stats.swap_bytes = spill.swap_bytes();
        stats.io_busy_seconds = after.busy_seconds - before.busy_seconds +
                                swap_device.stats().busy_seconds;
        stats.cpu_seconds = cpu_seconds;
        stats.peak_memory = budget.peak();
        stats.wall_seconds = wall.seconds();
        return stats;
    }

  private:
    /** Advance every walker of buckets i and j as far as the resident
     *  pair allows. */
    void
    process_pair(App &app, std::uint32_t i, std::uint32_t j,
                 const storage::BlockBuffer &bi,
                 const storage::BlockBuffer &bj,
                 std::vector<std::vector<WalkerT>> &buckets,
                 util::Rng &rng, engine::RunStats &stats,
                 std::uint64_t &live, bool &moved_any,
                 engine::WalkerSpill &spill)
    {
        for (const std::uint32_t b : {i, j}) {
            spill.activate(b);
            std::vector<WalkerT> bucket;
            bucket.swap(buckets[b]);
            spill.retire(b, bucket.size());
            for (WalkerT &w : bucket) {
                move_in_pair(app, w, bi, bj, buckets, rng, stats, live,
                             moved_any, spill);
            }
            if (i == j) {
                break;
            }
        }
    }

    const graph::VertexView *
    resident_view(graph::VertexId v, const storage::BlockBuffer &bi,
                  const storage::BlockBuffer &bj,
                  graph::VertexView &scratch) const
    {
        if (bi.info() != nullptr && bi.info()->contains(v)) {
            scratch = bi.view(*file_, v);
            return &scratch;
        }
        if (bj.info() != nullptr && bj.info()->contains(v)) {
            scratch = bj.view(*file_, v);
            return &scratch;
        }
        return nullptr;
    }

    void
    move_in_pair(App &app, WalkerT &w, const storage::BlockBuffer &bi,
                 const storage::BlockBuffer &bj,
                 std::vector<std::vector<WalkerT>> &buckets,
                 util::Rng &rng, engine::RunStats &stats,
                 std::uint64_t &live, bool &moved_any,
                 engine::WalkerSpill &spill)
    {
        graph::VertexView scratch;
        for (;;) {
            if (app.has_candidate(w)) {
                const graph::VertexId c = app.candidate(w);
                const graph::VertexView *view =
                    resident_view(c, bi, bj, scratch);
                if (view == nullptr) {
                    const std::uint32_t b = partition_->block_of(c);
                    buckets[b].push_back(w);
                    spill.park(b, 1);
                    return;
                }
                ++stats.rejection_trials;
                moved_any = true;
                if (app.rejection(w, *view, rng)) {
                    ++stats.steps;
                    ++stats.block_steps;
                } else {
                    ++stats.rejection_rejected;
                }
                if (!app.active(w) || file_->degree(w.location) == 0) {
                    ++stats.walkers;
                    --live;
                    return;
                }
                continue;
            }
            const graph::VertexId v = w.location;
            const graph::VertexView *view =
                resident_view(v, bi, bj, scratch);
            if (view == nullptr) {
                const std::uint32_t b = partition_->block_of(v);
                buckets[b].push_back(w);
                spill.park(b, 1);
                return;
            }
            const graph::VertexId next = app.sample(*view, rng);
            app.action(w, next, rng);
            moved_any = true;
        }
    }

    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    std::uint64_t memory_budget_;
    std::uint64_t seed_;
};

} // namespace noswalker::baselines
