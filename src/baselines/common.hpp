/**
 * @file
 * Constants shared by the baseline reimplementations.
 */
#pragma once

namespace noswalker::baselines {

/**
 * Disk utilisation of GraphChi's buffered, synchronous I/O path.
 * The paper (§4.4) measures 20–30 % for GraphWalker against 70–90 %
 * for NosWalker's async I/O; modeled time divides device busy time by
 * this factor (DESIGN.md §2).
 */
inline constexpr double kBufferedIoEfficiency = 0.25;

} // namespace noswalker::baselines
