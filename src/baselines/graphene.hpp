/**
 * @file
 * Graphene-style baseline (Liu & Huang, FAST'17; paper §5.1, Fig 16).
 *
 * Graphene contributes fine-grained on-demand I/O: it loads only the
 * pages that carry active work, but — unlike GraphWalker — it visits
 * blocks strictly in the order they are stored on disk, with no
 * state-aware prioritisation.  The paper shows this ordering costs up
 * to 80× against NosWalker on sparse-walker workloads.
 *
 * Reproduced behaviour: storage-order sweeps that skip walker-free
 * blocks, page-granular loads covering exactly the resident walkers'
 * vertices, and single-step advancement per visit (GSpMV-style
 * iteration without CLIP re-entry).
 */
#pragma once

#include <vector>

#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "engine/walker_spill.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace noswalker::baselines {

/** On-demand, storage-order out-of-core walker (first order only). */
template <engine::RandomWalkApp App>
class GrapheneEngine {
  public:
    using WalkerT = typename App::WalkerT;
    static_assert(!engine::kIsSecondOrder<App>,
                  "GrapheneEngine supports first-order walks only");

    GrapheneEngine(const graph::GraphFile &file,
                   const graph::BlockPartition &partition,
                   std::uint64_t memory_budget, std::uint64_t seed = 42)
        : file_(&file), partition_(&partition),
          memory_budget_(memory_budget), seed_(seed)
    {
    }

    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        engine::RunStats stats;
        stats.engine = "Graphene";
        stats.pipelined = false;
        // Graphene's own I/O stack is better than GraphChi's buffered
        // path but still synchronous; credit it the midpoint.
        stats.io_efficiency = 0.5;

        util::MemoryBudget budget(memory_budget_);
        util::Reservation index_rsv(budget, file_->index_bytes(),
                                    "csr index");
        const std::uint64_t page = storage::BlockReader::kPageBytes;
        util::Reservation buffer_rsv(
            budget, (partition_->max_block_bytes() / page + 2) * page,
            "block buffer");
        // Bounded walker buffer with disk swap for the overflow, as
        // in the other GraphChi-generation systems.
        const std::uint64_t buffer_bytes = std::max<std::uint64_t>(
            sizeof(WalkerT),
            budget.limit() == 0
                ? total_walkers * sizeof(WalkerT)
                : static_cast<std::uint64_t>(
                      0.5 * static_cast<double>(budget.available())));
        util::Reservation walkers_rsv(
            budget,
            std::min(buffer_bytes, total_walkers * sizeof(WalkerT)),
            "walker buffer");
        storage::MemDevice swap_device(file_->device().model());

        util::Rng rng(seed_);
        const std::uint32_t num_blocks = partition_->num_blocks();
        engine::WalkerSpill spill(
            swap_device, sizeof(WalkerT),
            std::max<std::uint64_t>(1, buffer_bytes / sizeof(WalkerT)),
            num_blocks);
        std::vector<std::vector<WalkerT>> buckets(num_blocks);
        std::uint64_t live = 0;

        util::Timer cpu;
        double cpu_seconds = 0.0;
        for (std::uint64_t n = 0; n < total_walkers; ++n) {
            WalkerT w = app.generate(n);
            if (!app.active(w) || file_->degree(w.location) == 0) {
                ++stats.walkers;
                continue;
            }
            const std::uint32_t b = partition_->block_of(w.location);
            buckets[b].push_back(w);
            spill.park(b, 1);
            ++live;
        }
        cpu_seconds += cpu.seconds();

        util::MemoryBudget unbudgeted(0);
        storage::BlockReader reader(*file_, unbudgeted);
        storage::BlockBuffer buffer;
        std::vector<graph::VertexId> needed;
        const storage::IoStats before = file_->device().stats();

        while (live > 0) {
            for (std::uint32_t b = 0; b < num_blocks && live > 0; ++b) {
                if (buckets[b].empty()) {
                    continue; // on-demand: skip walker-free blocks
                }
                needed.clear();
                for (const WalkerT &w : buckets[b]) {
                    needed.push_back(w.location);
                }
                reader.load_fine(partition_->block(b), needed, buffer);
                ++stats.fine_loads;

                cpu.reset();
                spill.activate(b);
                std::vector<WalkerT> bucket;
                bucket.swap(buckets[b]);
                spill.retire(b, bucket.size());
                for (WalkerT &w : bucket) {
                    const graph::VertexView view =
                        buffer.view(*file_, w.location);
                    const graph::VertexId next = app.sample(view, rng);
                    app.action(w, next, rng);
                    ++stats.steps;
                    ++stats.block_steps;
                    if (!app.active(w) ||
                        file_->degree(w.location) == 0) {
                        ++stats.walkers;
                        --live;
                        continue;
                    }
                    const std::uint32_t nb =
                        partition_->block_of(w.location);
                    buckets[nb].push_back(w);
                    spill.park(nb, 1);
                }
                cpu_seconds += cpu.seconds();
            }
        }

        const storage::IoStats after = file_->device().stats();
        stats.graph_bytes_read = after.bytes_read - before.bytes_read;
        stats.graph_read_requests =
            after.read_requests - before.read_requests;
        stats.edges_loaded =
            stats.graph_bytes_read / file_->record_bytes();
        stats.swap_bytes = spill.swap_bytes();
        stats.io_busy_seconds = after.busy_seconds - before.busy_seconds +
                                swap_device.stats().busy_seconds;
        stats.cpu_seconds = cpu_seconds;
        stats.peak_memory = budget.peak();
        stats.wall_seconds = wall.seconds();
        return stats;
    }

  private:
    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    std::uint64_t memory_budget_;
    std::uint64_t seed_;
};

} // namespace noswalker::baselines
