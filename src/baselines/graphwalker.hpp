/**
 * @file
 * GraphWalker baseline (Wang et al., ATC'20; paper §2.3, Figure 3c).
 *
 * The state-of-the-art out-of-core system NosWalker compares against:
 *  - state-aware I/O: always load the block with the most walkers;
 *  - asynchronous walker updating with CLIP-style re-entry: a walker
 *    moves as many steps as possible while it stays inside the loaded
 *    block;
 *  - a fixed-size in-memory walker buffer whose overflow swaps to disk
 *    (the ≥60 %-of-I/O effect measured in §2.4.2), reproduced through
 *    engine::WalkerSpill with byte-accurate traffic.
 *
 * Second-order applications run the "naive extension" the GraSorw
 * paper describes: a pending candidate parks the walker at the
 * candidate's block and resolves when that block happens to be loaded.
 */
#pragma once

#include <algorithm>
#include <memory>
#include <unordered_set>
#include <vector>

#include "baselines/common.hpp"
#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "engine/walker_spill.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/block_cache.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace noswalker::baselines {

/** Fraction of the post-index budget granted to the walker buffer. */
inline constexpr double kGraphWalkerBufferFraction = 0.5;

/**
 * One record of the Fig 4 long-tail instrumentation: after each block
 * I/O, the number of unterminated walkers and the fraction of the
 * loaded block that was actually accessed (at disk-page granularity).
 */
struct GraphWalkerLoadTrace {
    std::uint64_t io_index = 0;
    std::uint64_t unterminated_walkers = 0;
    double accessed_fraction = 0.0;
};

/** Hottest-block-first out-of-core walker with re-entry and spilling. */
template <engine::RandomWalkApp App>
class GraphWalkerEngine {
  public:
    using WalkerT = typename App::WalkerT;
    static constexpr bool kSecondOrder = engine::kIsSecondOrder<App>;

    /** Collect a per-I/O trace into @p trace (Fig 4 instrumentation). */
    void set_trace(std::vector<GraphWalkerLoadTrace> *trace)
    {
        trace_ = trace;
    }

    GraphWalkerEngine(const graph::GraphFile &file,
                      const graph::BlockPartition &partition,
                      std::uint64_t memory_budget, std::uint64_t seed = 42)
        : file_(&file), partition_(&partition),
          memory_budget_(memory_budget), seed_(seed)
    {
    }

    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        engine::RunStats stats;
        stats.engine = "GraphWalker";
        stats.pipelined = false;
        stats.io_efficiency = kBufferedIoEfficiency;

        util::MemoryBudget budget(memory_budget_);
        util::Reservation index_rsv(budget, file_->index_bytes(),
                                    "csr index");
        const std::uint64_t page = storage::BlockReader::kPageBytes;
        util::Reservation buffer_rsv(
            budget, (partition_->max_block_bytes() / page + 2) * page,
            "block buffer");

        // Fixed-size walker buffer; overflow swaps through the spill
        // device.
        const std::uint64_t buffer_bytes = std::max<std::uint64_t>(
            sizeof(WalkerT),
            budget.limit() == 0
                ? total_walkers * sizeof(WalkerT)
                : static_cast<std::uint64_t>(
                      kGraphWalkerBufferFraction *
                      static_cast<double>(budget.available())));
        util::Reservation walker_rsv(
            budget,
            std::min(buffer_bytes, total_walkers * sizeof(WalkerT)),
            "walker buffer");
        storage::MemDevice swap_device(file_->device().model());
        const std::uint32_t num_blocks = partition_->num_blocks();
        engine::WalkerSpill spill(
            swap_device, sizeof(WalkerT),
            std::max<std::uint64_t>(1, buffer_bytes / sizeof(WalkerT)),
            num_blocks);

        util::Rng rng(seed_);
        std::vector<std::vector<WalkerT>> buckets(num_blocks);
        std::uint64_t live = 0;

        util::Timer cpu;
        double cpu_seconds = 0.0;
        for (std::uint64_t n = 0; n < total_walkers; ++n) {
            WalkerT w = app.generate(n);
            if (!app.active(w) || file_->degree(w.location) == 0) {
                ++stats.walkers;
                continue;
            }
            const std::uint32_t b = partition_->block_of(w.location);
            buckets[b].push_back(w);
            spill.park(b, 1);
            ++live;
        }
        cpu_seconds += cpu.seconds();

        util::MemoryBudget unbudgeted(0);
        storage::BlockReader reader(*file_, unbudgeted);
        storage::BlockBuffer scratch;
        // Remaining budget becomes the page cache (Figure 1a).
        const std::uint64_t cache_bytes =
            budget.limit() == 0 ? file_->edge_region_bytes() + (1 << 20)
                                : budget.available();
        util::Reservation cache_rsv;
        if (budget.limit() != 0) {
            cache_rsv = util::Reservation(budget, cache_bytes,
                                          "page cache");
        }
        storage::BlockCache cache(cache_bytes);
        const storage::IoStats before = file_->device().stats();

        while (live > 0) {
            // State-aware I/O: the block with the most walkers first.
            std::uint32_t hottest = 0;
            std::uint64_t best = 0;
            for (std::uint32_t b = 0; b < num_blocks; ++b) {
                if (buckets[b].size() > best) {
                    best = buckets[b].size();
                    hottest = b;
                }
            }
            if (best == 0) {
                break;
            }
            spill.activate(hottest);
            const storage::BlockBuffer &buffer =
                *cache.get(reader, partition_->block(hottest), scratch);
            ++stats.blocks_loaded;

            cpu.reset();
            std::vector<WalkerT> bucket;
            bucket.swap(buckets[hottest]);
            spill.retire(hottest, bucket.size());
            const graph::BlockInfo &info = partition_->block(hottest);
            accessed_vertices_.clear();
            for (WalkerT &w : bucket) {
                move_in_block(app, w, info, buffer, rng, stats, live,
                              buckets, spill);
            }
            if (trace_ != nullptr) {
                trace_->push_back(make_trace(info, live));
            }
            cpu_seconds += cpu.seconds();
        }

        const storage::IoStats after = file_->device().stats();
        stats.graph_bytes_read = after.bytes_read - before.bytes_read;
        stats.graph_read_requests =
            after.read_requests - before.read_requests;
        stats.edges_loaded =
            stats.graph_bytes_read / file_->record_bytes();
        stats.swap_bytes = spill.swap_bytes();
        stats.io_busy_seconds = after.busy_seconds - before.busy_seconds +
                                swap_device.stats().busy_seconds;
        stats.cpu_seconds = cpu_seconds;
        stats.peak_memory = budget.peak();
        stats.wall_seconds = wall.seconds();
        return stats;
    }

  private:
    /** Move @p w while it stays inside the loaded block (re-entry). */
    void
    move_in_block(App &app, WalkerT &w, const graph::BlockInfo &info,
                  const storage::BlockBuffer &buffer, util::Rng &rng,
                  engine::RunStats &stats, std::uint64_t &live,
                  std::vector<std::vector<WalkerT>> &buckets,
                  engine::WalkerSpill &spill)
    {
        for (;;) {
            if constexpr (kSecondOrder) {
                if (app.has_candidate(w)) {
                    const graph::VertexId c = app.candidate(w);
                    if (!info.contains(c)) {
                        park(w, c, buckets, spill);
                        return;
                    }
                    if (trace_ != nullptr) {
                        accessed_vertices_.insert(c);
                    }
                    ++stats.rejection_trials;
                    if (app.rejection(w, buffer.view(*file_, c), rng)) {
                        ++stats.steps;
                        ++stats.block_steps;
                    } else {
                        ++stats.rejection_rejected;
                    }
                    if (!app.active(w) ||
                        file_->degree(w.location) == 0) {
                        ++stats.walkers;
                        --live;
                        return;
                    }
                    continue;
                }
            }
            const graph::VertexId v = w.location;
            if (!info.contains(v)) {
                park(w, waiting(app, w), buckets, spill);
                return;
            }
            if (trace_ != nullptr) {
                accessed_vertices_.insert(v);
            }
            const graph::VertexView view = buffer.view(*file_, v);
            const graph::VertexId next = app.sample(view, rng);
            app.action(w, next, rng);
            if constexpr (!kSecondOrder) {
                ++stats.steps;
                ++stats.block_steps;
                if (!app.active(w) || file_->degree(w.location) == 0) {
                    ++stats.walkers;
                    --live;
                    return;
                }
            }
        }
    }

    /** Fig 4 point: live walkers + page-granular accessed fraction. */
    GraphWalkerLoadTrace
    make_trace(const graph::BlockInfo &info, std::uint64_t live) const
    {
        GraphWalkerLoadTrace t;
        t.io_index = trace_->size();
        t.unterminated_walkers = live;
        std::unordered_set<std::uint64_t> pages;
        constexpr std::uint64_t kPage = 4096;
        for (const graph::VertexId v : accessed_vertices_) {
            const std::uint64_t begin = file_->vertex_byte_offset(v);
            const std::uint64_t len =
                std::max<std::uint64_t>(1, file_->vertex_byte_size(v));
            for (std::uint64_t p = begin / kPage;
                 p <= (begin + len - 1) / kPage; ++p) {
                pages.insert(p);
            }
        }
        const std::uint64_t block_pages =
            std::max<std::uint64_t>(1, (info.byte_size + kPage - 1) /
                                           kPage);
        t.accessed_fraction =
            std::min(1.0, static_cast<double>(pages.size()) /
                              static_cast<double>(block_pages));
        return t;
    }

    graph::VertexId
    waiting(App &app, const WalkerT &w) const
    {
        if constexpr (kSecondOrder) {
            if (app.has_candidate(w)) {
                return app.candidate(w);
            }
        }
        return w.location;
    }

    void
    park(const WalkerT &w, graph::VertexId at,
         std::vector<std::vector<WalkerT>> &buckets,
         engine::WalkerSpill &spill)
    {
        const std::uint32_t b = partition_->block_of(at);
        buckets[b].push_back(w);
        spill.park(b, 1);
    }

    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    std::uint64_t memory_budget_;
    std::uint64_t seed_;
    std::vector<GraphWalkerLoadTrace> *trace_ = nullptr;
    std::unordered_set<graph::VertexId> accessed_vertices_;
};

} // namespace noswalker::baselines
