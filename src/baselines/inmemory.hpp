/**
 * @file
 * In-memory walk engine (ThunderRW-like; paper §5.2, Fig 17).
 *
 * Loads the entire edge region into memory in large sequential reads,
 * then walks at memory speed.  Reports the load phase (device busy
 * time) and the walk phase (CPU time) separately — the paper's Fig 17
 * "Walk" vs "Total" bars — because ~75 % of ThunderRW's end-to-end time
 * is graph loading, which NosWalker pipelines away.
 */
#pragma once

#include <vector>

#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "graph/graph_file.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace noswalker::baselines {

/** Load-then-walk in-memory engine; handles first and second order. */
template <engine::RandomWalkApp App>
class InMemoryEngine {
  public:
    using WalkerT = typename App::WalkerT;
    static constexpr bool kSecondOrder = engine::kIsSecondOrder<App>;

    /** @param read_chunk  sequential request size for the load phase. */
    InMemoryEngine(const graph::GraphFile &file, std::uint64_t seed = 42,
                   std::uint64_t read_chunk = 8ULL << 20)
        : file_(&file), seed_(seed), read_chunk_(read_chunk)
    {
    }

    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        engine::RunStats stats;
        stats.engine = "InMemory";
        stats.pipelined = false;   // load completes before walking
        stats.io_efficiency = 1.0; // full-bandwidth streaming load

        // Phase 1: stream the whole edge region into memory.
        const storage::IoStats before = file_->device().stats();
        const std::uint64_t begin = file_->edge_region_offset();
        const std::uint64_t bytes = file_->edge_region_bytes();
        raw_.resize(bytes);
        std::uint64_t pos = 0;
        while (pos < bytes) {
            const std::uint64_t len =
                std::min(read_chunk_, bytes - pos);
            file_->device().read(begin + pos, len, raw_.data() + pos);
            pos += len;
        }
        const storage::IoStats after = file_->device().stats();
        stats.graph_bytes_read = after.bytes_read - before.bytes_read;
        stats.graph_read_requests =
            after.read_requests - before.read_requests;
        stats.edges_loaded =
            stats.graph_bytes_read / file_->record_bytes();
        stats.io_busy_seconds = after.busy_seconds - before.busy_seconds;

        // Phase 2: walk entirely in memory.
        util::Timer cpu;
        util::Rng rng(seed_);
        for (std::uint64_t n = 0; n < total_walkers; ++n) {
            WalkerT w = app.generate(n);
            walk_to_completion(app, w, rng, stats);
        }
        stats.cpu_seconds = cpu.seconds();
        stats.wall_seconds = wall.seconds();
        return stats;
    }

  private:
    graph::VertexView
    view(graph::VertexId v) const
    {
        return file_->decode(v, raw_, file_->edge_region_offset());
    }

    void
    walk_to_completion(App &app, WalkerT &w, util::Rng &rng,
                       engine::RunStats &stats)
    {
        for (;;) {
            if constexpr (kSecondOrder) {
                if (app.has_candidate(w)) {
                    ++stats.rejection_trials;
                    if (app.rejection(w, view(app.candidate(w)), rng)) {
                        ++stats.steps;
                    } else {
                        ++stats.rejection_rejected;
                    }
                    if (!app.active(w) ||
                        file_->degree(w.location) == 0) {
                        ++stats.walkers;
                        return;
                    }
                    continue;
                }
            }
            if (!app.active(w) || file_->degree(w.location) == 0) {
                ++stats.walkers;
                return;
            }
            const graph::VertexView vv = view(w.location);
            const graph::VertexId next = app.sample(vv, rng);
            app.action(w, next, rng);
            if constexpr (!kSecondOrder) {
                ++stats.steps;
            }
        }
    }

    const graph::GraphFile *file_;
    std::uint64_t seed_;
    std::uint64_t read_chunk_;
    std::vector<std::uint8_t> raw_;
};

} // namespace noswalker::baselines
