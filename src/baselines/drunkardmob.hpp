/**
 * @file
 * DrunkardMob baseline (Kyrola, RecSys'13; paper §2.2, Figure 3b).
 *
 * The first out-of-core random walk system, built on GraphChi: all
 * walker states are held in memory (its scalability limit — runs whose
 * walker array exceeds the budget fail, as on K31/CW in the paper), and
 * computation proceeds in synchronized epochs that stream every block
 * in storage order, moving each walker residing in the loaded block
 * exactly one step.
 */
#pragma once

#include <vector>

#include "baselines/common.hpp"
#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/block_cache.hpp"
#include "storage/block_reader.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace noswalker::baselines {

/** Iteration-synchronized out-of-core walker (first order only). */
template <engine::RandomWalkApp App>
class DrunkardMobEngine {
  public:
    using WalkerT = typename App::WalkerT;
    static_assert(!engine::kIsSecondOrder<App>,
                  "DrunkardMob supports first-order walks only");

    DrunkardMobEngine(const graph::GraphFile &file,
                      const graph::BlockPartition &partition,
                      std::uint64_t memory_budget, std::uint64_t seed = 42)
        : file_(&file), partition_(&partition),
          memory_budget_(memory_budget), seed_(seed)
    {
    }

    /**
     * Run @p total_walkers to completion.
     * @throws util::BudgetExceeded when the walker array does not fit
     *         (DrunkardMob's documented scalability limit).
     */
    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        engine::RunStats stats;
        stats.engine = "DrunkardMob";
        stats.pipelined = false;
        stats.io_efficiency = kBufferedIoEfficiency;

        util::MemoryBudget budget(memory_budget_);
        util::Reservation index_rsv(budget, file_->index_bytes(),
                                    "csr index");
        const std::uint64_t page = storage::BlockReader::kPageBytes;
        util::Reservation buffer_rsv(
            budget, (partition_->max_block_bytes() / page + 2) * page,
            "block buffer");
        // The defining constraint: every walker state lives in memory.
        util::Reservation walkers_rsv(budget,
                                      total_walkers * sizeof(WalkerT),
                                      "all walker states");

        util::Rng rng(seed_);
        const std::uint32_t num_blocks = partition_->num_blocks();
        std::vector<std::vector<WalkerT>> buckets(num_blocks);
        std::uint64_t live = 0;

        util::Timer cpu;
        double cpu_seconds = 0.0;
        for (std::uint64_t n = 0; n < total_walkers; ++n) {
            WalkerT w = app.generate(n);
            if (!app.active(w) || file_->degree(w.location) == 0) {
                ++stats.walkers;
                continue;
            }
            buckets[partition_->block_of(w.location)].push_back(w);
            ++live;
        }
        cpu_seconds += cpu.seconds();

        util::MemoryBudget unbudgeted(0);
        storage::BlockReader reader(*file_, unbudgeted);
        storage::BlockBuffer scratch;
        // Whatever budget remains acts as the page cache the paper's
        // cgroup setup grants GraphChi-based systems (Figure 1a).
        const std::uint64_t cache_bytes =
            budget.limit() == 0 ? file_->edge_region_bytes() + (1 << 20)
                                : budget.available();
        util::Reservation cache_rsv;
        if (budget.limit() != 0) {
            cache_rsv = util::Reservation(budget, cache_bytes,
                                          "page cache");
        }
        storage::BlockCache cache(cache_bytes);
        const storage::IoStats before = file_->device().stats();

        // Synchronized epochs: stream every block in storage order and
        // advance resident walkers by exactly one step.
        while (live > 0) {
            for (std::uint32_t b = 0; b < num_blocks && live > 0; ++b) {
                const storage::BlockBuffer &buffer =
                    *cache.get(reader, partition_->block(b), scratch);
                ++stats.blocks_loaded;

                cpu.reset();
                std::vector<WalkerT> bucket;
                bucket.swap(buckets[b]);
                for (WalkerT &w : bucket) {
                    const graph::VertexView view =
                        buffer.view(*file_, w.location);
                    const graph::VertexId next = app.sample(view, rng);
                    app.action(w, next, rng);
                    ++stats.steps;
                    ++stats.block_steps;
                    if (!app.active(w) ||
                        file_->degree(w.location) == 0) {
                        ++stats.walkers;
                        --live;
                        continue;
                    }
                    buckets[partition_->block_of(w.location)].push_back(w);
                }
                cpu_seconds += cpu.seconds();
            }
        }

        const storage::IoStats after = file_->device().stats();
        stats.graph_bytes_read = after.bytes_read - before.bytes_read;
        stats.graph_read_requests =
            after.read_requests - before.read_requests;
        stats.edges_loaded =
            stats.graph_bytes_read / file_->record_bytes();
        stats.io_busy_seconds = after.busy_seconds - before.busy_seconds;
        stats.cpu_seconds = cpu_seconds;
        stats.peak_memory = budget.peak();
        stats.wall_seconds = wall.seconds();
        return stats;
    }

  private:
    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    std::uint64_t memory_budget_;
    std::uint64_t seed_;
};

} // namespace noswalker::baselines
