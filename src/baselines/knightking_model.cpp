#include "baselines/knightking_model.hpp"

#include <algorithm>

namespace noswalker::baselines {

double
ClusterModel::network_seconds(std::uint64_t messages) const
{
    if (nodes <= 1 || network_bps <= 0.0) {
        return 0.0;
    }
    const double total_bytes =
        static_cast<double>(messages) * message_bytes;
    // Each of the N nodes drives its own full-duplex link; balanced
    // traffic divides evenly.
    const double bytes_per_second = network_bps / 8.0;
    return total_bytes / (bytes_per_second * nodes);
}

double
ClusterModel::load_seconds(std::uint64_t graph_bytes) const
{
    if (load_bandwidth <= 0.0) {
        return 0.0;
    }
    return static_cast<double>(graph_bytes) /
           (load_bandwidth * std::max(1u, nodes));
}

double
ClusterRunResult::walk_seconds() const
{
    return std::max(compute_seconds, network_seconds);
}

double
ClusterRunResult::total_seconds() const
{
    return walk_seconds() + load_seconds;
}

} // namespace noswalker::baselines
