#include "baselines/knightking_model.hpp"

#include <algorithm>

namespace noswalker::baselines {

double
ClusterModel::network_seconds(std::uint64_t messages) const
{
    // KnightKing streams messages continuously rather than at round
    // barriers, so only the wire term applies (no batch overhead).
    shard::MigrationCostModel wire;
    wire.network_bps = network_bps;
    wire.message_bytes = message_bytes;
    wire.batch_overhead_seconds = 0.0;
    return wire.exchange_seconds(messages, 0, nodes);
}

double
ClusterModel::load_seconds(std::uint64_t graph_bytes) const
{
    if (load_bandwidth <= 0.0) {
        return 0.0;
    }
    return static_cast<double>(graph_bytes) /
           (load_bandwidth * std::max(1u, nodes));
}

double
ClusterRunResult::walk_seconds() const
{
    return std::max(compute_seconds, network_seconds);
}

double
ClusterRunResult::total_seconds() const
{
    return walk_seconds() + load_seconds;
}

} // namespace noswalker::baselines
