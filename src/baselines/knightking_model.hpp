/**
 * @file
 * KnightKing cluster model (Yang et al., SOSP'19; paper §5.2, Fig 17).
 *
 * KnightKing is a distributed in-memory walk engine; the paper compares
 * against a 4-node cluster over 10 Gbps Ethernet.  We model the cluster
 * analytically on top of an in-memory walk: vertices are hash-
 * partitioned across N nodes, every cross-partition step ships one
 * walker message, and per-node load/compute scale by 1/N.  The model
 * captures exactly the terms the figure decomposes — computation,
 * network overhead, and data-loading time.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "graph/graph_file.hpp"
#include "shard/migration_cost.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace noswalker::baselines {

/** Cluster parameters of the KnightKing model.  The wire-cost numbers
 *  come from shard/migration_cost.hpp so the analytical baseline and
 *  the real shard subsystem price a walker message identically. */
struct ClusterModel {
    /** Number of nodes. */
    unsigned nodes = 4;
    /** Network bandwidth per link, bits per second (paper: 10 Gbps). */
    double network_bps = shard::kInterconnectBps;
    /** Bytes per walker message (walker id + vertex + step). */
    std::uint32_t message_bytes = shard::kWalkerMessageBytes;
    /** Per-node disk bandwidth for the initial load, bytes/s. */
    double load_bandwidth = 3.1 * static_cast<double>(1ULL << 30);

    /** Seconds the cluster needs to exchange @p messages messages.
     *  Each node drives its own link; traffic is balanced. */
    double network_seconds(std::uint64_t messages) const;

    /** Seconds to load @p graph_bytes in parallel across nodes. */
    double load_seconds(std::uint64_t graph_bytes) const;
};

/** Result of a modeled cluster run. */
struct ClusterRunResult {
    engine::RunStats stats;
    std::uint64_t cross_partition_messages = 0;
    double compute_seconds = 0.0; ///< per-node walk compute (cpu / N)
    double network_seconds = 0.0;
    double load_seconds = 0.0;

    /** Walk-phase seconds: overlapped compute and messaging. */
    double walk_seconds() const;

    /** End-to-end seconds including the initial load. */
    double total_seconds() const;
};

/**
 * Distributed in-memory walk model.
 *
 * The walk itself executes locally (single address space) so step
 * semantics are identical to every other engine; partition crossings
 * are counted to drive the network model.
 */
template <engine::RandomWalkApp App>
class KnightKingModelEngine {
  public:
    using WalkerT = typename App::WalkerT;
    static constexpr bool kSecondOrder = engine::kIsSecondOrder<App>;

    KnightKingModelEngine(const graph::GraphFile &file, ClusterModel model,
                          std::uint64_t seed = 42)
        : file_(&file), model_(model), seed_(seed)
    {
    }

    ClusterRunResult
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        ClusterRunResult result;
        engine::RunStats &stats = result.stats;
        stats.engine = "KnightKing";
        stats.pipelined = true; // messaging overlaps compute
        stats.io_efficiency = 1.0;

        // Materialize the edge region once (the cluster's collective
        // memory holds the whole graph).
        raw_.resize(file_->edge_region_bytes());
        file_->device().read(file_->edge_region_offset(), raw_.size(),
                             raw_.data());
        stats.graph_bytes_read = raw_.size();
        stats.edges_loaded = raw_.size() / file_->record_bytes();

        util::Timer cpu;
        util::Rng rng(seed_);
        for (std::uint64_t n = 0; n < total_walkers; ++n) {
            WalkerT w = app.generate(n);
            walk(app, w, rng, stats, result.cross_partition_messages);
        }
        const double cpu_seconds = cpu.seconds();

        result.compute_seconds =
            cpu_seconds / static_cast<double>(model_.nodes);
        result.network_seconds =
            model_.network_seconds(result.cross_partition_messages);
        result.load_seconds =
            model_.load_seconds(file_->edge_region_bytes());
        stats.cpu_seconds = result.compute_seconds;
        stats.io_busy_seconds = result.load_seconds;
        stats.wall_seconds = wall.seconds();
        return result;
    }

  private:
    unsigned
    node_of(graph::VertexId v) const
    {
        return static_cast<unsigned>(v % model_.nodes);
    }

    graph::VertexView
    view(graph::VertexId v) const
    {
        return file_->decode(v, raw_, file_->edge_region_offset());
    }

    void
    walk(App &app, WalkerT &w, util::Rng &rng, engine::RunStats &stats,
         std::uint64_t &messages)
    {
        for (;;) {
            if constexpr (kSecondOrder) {
                if (app.has_candidate(w)) {
                    const graph::VertexId c = app.candidate(w);
                    // Rejection executes at the candidate's owner node.
                    if (node_of(w.location) != node_of(c)) {
                        ++messages;
                    }
                    ++stats.rejection_trials;
                    const graph::VertexId from = w.location;
                    if (app.rejection(w, view(c), rng)) {
                        ++stats.steps;
                    } else {
                        ++stats.rejection_rejected;
                        // Rejected trial: the walker state returns to
                        // its current owner.
                        if (node_of(from) != node_of(c)) {
                            ++messages;
                        }
                    }
                    if (!app.active(w) ||
                        file_->degree(w.location) == 0) {
                        ++stats.walkers;
                        return;
                    }
                    continue;
                }
            }
            if (!app.active(w) || file_->degree(w.location) == 0) {
                ++stats.walkers;
                return;
            }
            const graph::VertexId from = w.location;
            const graph::VertexView vv = view(from);
            const graph::VertexId next = app.sample(vv, rng);
            app.action(w, next, rng);
            if constexpr (!kSecondOrder) {
                ++stats.steps;
                if (node_of(from) != node_of(w.location)) {
                    ++messages;
                }
            }
        }
    }

    const graph::GraphFile *file_;
    ClusterModel model_;
    std::uint64_t seed_;
    std::vector<std::uint8_t> raw_;
};

} // namespace noswalker::baselines
