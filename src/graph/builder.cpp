#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace noswalker::graph {

void
GraphBuilder::add_edges(const std::vector<Edge> &edges)
{
    edges_.insert(edges_.end(), edges.begin(), edges.end());
}

CsrGraph
GraphBuilder::build(const BuildOptions &options, bool weighted)
{
    CsrGraph result = build_csr(std::move(edges_), options, weighted);
    edges_.clear();
    return result;
}

CsrGraph
build_csr(std::vector<Edge> edges, const BuildOptions &options, bool weighted)
{
    if (options.symmetrize) {
        const std::size_t n = edges.size();
        edges.reserve(n * 2);
        for (std::size_t i = 0; i < n; ++i) {
            const Edge &e = edges[i];
            if (e.src != e.dst) {
                edges.push_back(Edge{e.dst, e.src, e.weight});
            }
        }
    }
    if (options.remove_self_loops) {
        std::erase_if(edges, [](const Edge &e) { return e.src == e.dst; });
    }

    std::sort(edges.begin(), edges.end(), [](const Edge &a, const Edge &b) {
        return a.src != b.src ? a.src < b.src : a.dst < b.dst;
    });

    if (options.dedup) {
        edges.erase(std::unique(edges.begin(), edges.end(),
                                [](const Edge &a, const Edge &b) {
                                    return a.src == b.src && a.dst == b.dst;
                                }),
                    edges.end());
    }

    VertexId num_vertices = options.num_vertices;
    for (const Edge &e : edges) {
        num_vertices = std::max({num_vertices, e.src + 1, e.dst + 1});
    }

    std::vector<EdgeIndex> offsets(static_cast<std::size_t>(num_vertices) + 1,
                                   0);
    for (const Edge &e : edges) {
        ++offsets[e.src + 1];
    }
    for (std::size_t i = 1; i < offsets.size(); ++i) {
        offsets[i] += offsets[i - 1];
    }

    std::vector<VertexId> targets(edges.size());
    std::vector<Weight> weights;
    if (weighted) {
        weights.resize(edges.size());
    }
    for (std::size_t i = 0; i < edges.size(); ++i) {
        targets[i] = edges[i].dst;
        if (weighted) {
            weights[i] = edges[i].weight;
        }
    }

    CsrGraph graph(std::move(offsets), std::move(targets),
                   std::move(weights));
    graph.set_sorted(true);
    return graph;
}

} // namespace noswalker::graph
