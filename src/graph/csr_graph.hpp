/**
 * @file
 * In-memory CSR graph.
 *
 * The reference representation: generators build it, the on-disk format
 * serializes it, the in-memory baselines (ThunderRW-like, KnightKing
 * model) walk it directly, and tests use it as the ground-truth oracle.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace noswalker::graph {

/**
 * Compressed-sparse-row directed graph, optionally edge-weighted.
 *
 * Invariants: offsets().size() == num_vertices()+1, offsets are
 * non-decreasing, offsets.back() == num_edges(), and weights (when
 * present) parallel the targets array.
 */
class CsrGraph {
  public:
    CsrGraph() = default;

    /**
     * Adopt CSR arrays.
     * @param offsets  per-vertex edge offsets, size V+1.
     * @param targets  edge destination array, size E.
     * @param weights  optional per-edge weights (empty = unweighted).
     */
    CsrGraph(std::vector<EdgeIndex> offsets, std::vector<VertexId> targets,
             std::vector<Weight> weights = {});

    /** Number of vertices. */
    VertexId
    num_vertices() const
    {
        return offsets_.empty() ? 0
                                : static_cast<VertexId>(offsets_.size() - 1);
    }

    /** Number of directed edges. */
    EdgeIndex num_edges() const { return targets_.size(); }

    /** True when per-edge weights are stored. */
    bool weighted() const { return !weights_.empty(); }

    /** Out-degree of @p v. */
    std::uint32_t
    degree(VertexId v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    /** Out-neighbours of @p v. */
    std::span<const VertexId>
    neighbors(VertexId v) const
    {
        return {targets_.data() + offsets_[v], degree(v)};
    }

    /** Weights parallel to neighbors(v); empty when unweighted. */
    std::span<const Weight>
    weights(VertexId v) const
    {
        if (!weighted()) {
            return {};
        }
        return {weights_.data() + offsets_[v], degree(v)};
    }

    /** Raw offsets array (size V+1). */
    const std::vector<EdgeIndex> &offsets() const { return offsets_; }

    /** Raw targets array (size E). */
    const std::vector<VertexId> &targets() const { return targets_; }

    /** Raw weights array (size E or 0). */
    const std::vector<Weight> &all_weights() const { return weights_; }

    /**
     * Whether edge (u,v) exists.  O(degree) scan unless the adjacency is
     * sorted, in which case binary search is used.
     */
    bool has_edge(VertexId u, VertexId v) const;

    /** Mark adjacency lists as sorted (set by the builder). */
    void set_sorted(bool sorted) { sorted_ = sorted; }

    /** True when each adjacency list is ascending. */
    bool sorted() const { return sorted_; }

    /** Size of the CSR payload in bytes (offsets + targets + weights). */
    std::uint64_t csr_bytes() const;

    /** Maximum out-degree over all vertices. */
    std::uint32_t max_degree() const;

    /** Mean out-degree. */
    double average_degree() const;

    /** Validate invariants; throws util::ConfigError on violation. */
    void validate() const;

  private:
    std::vector<EdgeIndex> offsets_;
    std::vector<VertexId> targets_;
    std::vector<Weight> weights_;
    bool sorted_ = false;
};

} // namespace noswalker::graph
