#include "graph/datasets.hpp"

#include "graph/generators.hpp"
#include "util/error.hpp"

namespace noswalker::graph {

const std::vector<DatasetSpec> &
all_datasets()
{
    static const std::vector<DatasetSpec> specs = {
        {DatasetId::kTwitter, "TW'", "Twitter", false, false},
        {DatasetId::kYahoo, "YH'", "YahooWeb", false, false},
        {DatasetId::kKron30, "K30'", "Kron30", false, false},
        {DatasetId::kKron31, "K31'", "Kron31", false, false},
        {DatasetId::kCrawlWeb, "CW'", "CrawlWeb", false, false},
        {DatasetId::kKron30W, "K30W'", "Weighted Kron30", true, true},
        {DatasetId::kG12, "G12'", "G12", false, false},
        {DatasetId::kAlpha27, "a2.7'", "alpha2.7", false, false},
    };
    return specs;
}

const DatasetSpec &
dataset_spec(DatasetId id)
{
    for (const DatasetSpec &spec : all_datasets()) {
        if (spec.id == id) {
            return spec;
        }
    }
    throw util::ConfigError("dataset_spec: unknown dataset id");
}

CsrGraph
build_dataset(DatasetId id, unsigned scale, std::uint64_t seed)
{
    // Size ratios follow Table 1: K31 doubles K30, CW doubles K31,
    // TW/YH are the small in-memory graphs, G12/α2.7 have more
    // vertices than K30 but similar edge volume.
    switch (id) {
      case DatasetId::kTwitter: {
        RmatParams p;
        p.scale = scale - 2;
        p.edge_factor = 24; // Twitter's |E|/|V| ≈ 24
        p.seed = seed;
        return generate_rmat(p);
      }
      case DatasetId::kYahoo: {
        RmatParams p;
        p.scale = scale - 1;
        p.edge_factor = 5; // YahooWeb's |E|/|V| ≈ 4.7
        p.seed = seed + 1;
        return generate_rmat(p);
      }
      case DatasetId::kKron30: {
        RmatParams p;
        p.scale = scale;
        p.edge_factor = 32; // Graph500 default
        p.seed = seed + 2;
        return generate_rmat(p);
      }
      case DatasetId::kKron31: {
        RmatParams p;
        p.scale = scale + 1;
        p.edge_factor = 32;
        p.seed = seed + 3;
        return generate_rmat(p);
      }
      case DatasetId::kCrawlWeb: {
        RmatParams p;
        p.scale = scale + 2;
        p.edge_factor = 36; // CW's |E|/|V| ≈ 37
        p.seed = seed + 4;
        return generate_rmat(p);
      }
      case DatasetId::kKron30W: {
        RmatParams p;
        p.scale = scale;
        p.edge_factor = 32;
        p.seed = seed + 2; // same structure as K30'
        p.weighted = true;
        return generate_rmat(p);
      }
      case DatasetId::kG12: {
        const auto n = static_cast<VertexId>(
            (VertexId{1} << scale) * 27 / 10); // 2.7× K30's vertices
        return generate_uniform(n, 12, seed + 5);
      }
      case DatasetId::kAlpha27: {
        const auto n = static_cast<VertexId>(
            (VertexId{1} << scale) * 42 / 10); // 4.2× K30's vertices
        // min degree 3 gives a mean of ~7, matching the paper's 6.4
        // edges per vertex for alpha2.7.
        return generate_power_law(n, 2.7, 3, 512, seed + 6);
      }
    }
    throw util::ConfigError("build_dataset: unknown dataset id");
}

} // namespace noswalker::graph
