#include "graph/edge_list_io.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "util/error.hpp"

namespace noswalker::graph {

std::vector<Edge>
read_edge_list(std::istream &in, const EdgeListOptions &options)
{
    std::vector<Edge> edges;
    std::string line;
    std::size_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        // Strip comments and blank lines.
        const std::size_t first =
            line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#' ||
            line[first] == '%') {
            continue;
        }
        std::istringstream tokens(line);
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        if (!(tokens >> src >> dst)) {
            throw util::ConfigError(
                "edge list: malformed line " +
                std::to_string(line_number) + ": '" + line + "'");
        }
        Edge edge;
        edge.src = static_cast<VertexId>(src);
        edge.dst = static_cast<VertexId>(dst);
        if (options.weighted) {
            double w = 1.0;
            if (!(tokens >> w)) {
                throw util::ConfigError(
                    "edge list: missing weight on line " +
                    std::to_string(line_number));
            }
            edge.weight = static_cast<Weight>(w);
        }
        edges.push_back(edge);
    }
    return edges;
}

CsrGraph
load_edge_list(const std::string &path, const EdgeListOptions &options)
{
    std::ifstream in(path);
    if (!in) {
        throw util::IoError("edge list: cannot open '" + path + "'");
    }
    return build_csr(read_edge_list(in, options), options.build,
                     options.weighted);
}

void
write_edge_list(const CsrGraph &graph, std::ostream &out)
{
    out << "# noswalker edge list: " << graph.num_vertices()
        << " vertices, " << graph.num_edges() << " edges\n";
    for (VertexId u = 0; u < graph.num_vertices(); ++u) {
        const auto nbrs = graph.neighbors(u);
        const auto weights = graph.weights(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            out << u << ' ' << nbrs[i];
            if (!weights.empty()) {
                out << ' ' << weights[i];
            }
            out << '\n';
        }
    }
}

void
save_edge_list(const CsrGraph &graph, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        throw util::IoError("edge list: cannot create '" + path + "'");
    }
    write_edge_list(graph, out);
}

} // namespace noswalker::graph
