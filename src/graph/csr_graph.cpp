#include "graph/csr_graph.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace noswalker::graph {

CsrGraph::CsrGraph(std::vector<EdgeIndex> offsets,
                   std::vector<VertexId> targets,
                   std::vector<Weight> weights)
    : offsets_(std::move(offsets)), targets_(std::move(targets)),
      weights_(std::move(weights))
{
    validate();
}

bool
CsrGraph::has_edge(VertexId u, VertexId v) const
{
    const auto nbrs = neighbors(u);
    if (sorted_) {
        return std::binary_search(nbrs.begin(), nbrs.end(), v);
    }
    return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::uint64_t
CsrGraph::csr_bytes() const
{
    return offsets_.size() * sizeof(EdgeIndex) +
           targets_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(Weight);
}

std::uint32_t
CsrGraph::max_degree() const
{
    std::uint32_t best = 0;
    for (VertexId v = 0; v < num_vertices(); ++v) {
        best = std::max(best, degree(v));
    }
    return best;
}

double
CsrGraph::average_degree() const
{
    const VertexId v = num_vertices();
    return v == 0 ? 0.0
                  : static_cast<double>(num_edges()) /
                        static_cast<double>(v);
}

void
CsrGraph::validate() const
{
    if (offsets_.empty()) {
        if (!targets_.empty() || !weights_.empty()) {
            throw util::ConfigError("CsrGraph: edges without offsets");
        }
        return;
    }
    if (offsets_.front() != 0) {
        throw util::ConfigError("CsrGraph: offsets must start at 0");
    }
    for (std::size_t i = 1; i < offsets_.size(); ++i) {
        if (offsets_[i] < offsets_[i - 1]) {
            throw util::ConfigError("CsrGraph: offsets must be sorted");
        }
    }
    if (offsets_.back() != targets_.size()) {
        throw util::ConfigError("CsrGraph: offsets/targets size mismatch");
    }
    if (!weights_.empty() && weights_.size() != targets_.size()) {
        throw util::ConfigError("CsrGraph: weights/targets size mismatch");
    }
    const VertexId v = num_vertices();
    for (VertexId t : targets_) {
        if (t >= v) {
            throw util::ConfigError("CsrGraph: target out of range");
        }
    }
}

} // namespace noswalker::graph
