/**
 * @file
 * Fundamental graph types shared across the library.
 */
#pragma once

#include <cstdint>

namespace noswalker::graph {

/** Vertex identifier. 32 bits covers the scaled datasets comfortably. */
using VertexId = std::uint32_t;

/** Index into the global edge array (CSR offsets). */
using EdgeIndex = std::uint64_t;

/** Edge weight for weighted random walks. */
using Weight = float;

/** Sentinel for "no vertex". */
inline constexpr VertexId kInvalidVertex = ~VertexId{0};

/** An edge as produced by builders and generators. */
struct Edge {
    VertexId src = 0;
    VertexId dst = 0;
    Weight weight = 1.0f;

    friend bool
    operator==(const Edge &a, const Edge &b)
    {
        return a.src == b.src && a.dst == b.dst && a.weight == b.weight;
    }
};

} // namespace noswalker::graph
