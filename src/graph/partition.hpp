/**
 * @file
 * 1-D block partition of the on-disk edge region.
 *
 * All evaluated systems stream the graph in blocks of contiguous
 * vertices whose edge records fit a size target (the paper partitions
 * Kron30 into 33 blocks of a few GiB; we scale the block size with the
 * graph).  A block is the unit of coarse-grained loading and of walker
 * bucketing in the baselines; NosWalker additionally subdivides blocks
 * into 4 KiB pages for fine-grained loads (§3.3.1).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_file.hpp"
#include "graph/types.hpp"

namespace noswalker::graph {

/** One block: a contiguous vertex range and its edge-region byte span. */
struct BlockInfo {
    std::uint32_t id = 0;
    VertexId first_vertex = 0;
    VertexId end_vertex = 0; ///< one past the last vertex
    /** Absolute byte offset of the block's first edge record. */
    std::uint64_t byte_begin = 0;
    /** Bytes of edge records in the block. */
    std::uint64_t byte_size = 0;
    /** CSR index of the first edge. */
    EdgeIndex edge_begin = 0;
    /** Number of edges. */
    EdgeIndex num_edges = 0;

    VertexId
    num_vertices() const
    {
        return end_vertex - first_vertex;
    }

    bool
    contains(VertexId v) const
    {
        return v >= first_vertex && v < end_vertex;
    }
};

/**
 * Partition of a GraphFile into blocks of ≤ block_bytes of edge data
 * (a vertex whose record alone exceeds the target gets its own block).
 */
class BlockPartition {
  public:
    /**
     * Partition @p file into blocks of at most @p block_bytes edge
     * bytes.
     */
    BlockPartition(const GraphFile &file, std::uint64_t block_bytes);

    /** Number of blocks. */
    std::uint32_t
    num_blocks() const
    {
        return static_cast<std::uint32_t>(blocks_.size());
    }

    /** Block descriptor @p id. */
    const BlockInfo &block(std::uint32_t id) const { return blocks_[id]; }

    /** All blocks. */
    const std::vector<BlockInfo> &blocks() const { return blocks_; }

    /** Block containing vertex @p v (O(log num_blocks)). */
    std::uint32_t block_of(VertexId v) const;

    /** Largest block in bytes (sizes coarse block buffers). */
    std::uint64_t max_block_bytes() const { return max_block_bytes_; }

    /** The requested block-size target. */
    std::uint64_t target_block_bytes() const { return target_bytes_; }

  private:
    std::vector<BlockInfo> blocks_;
    std::vector<VertexId> firsts_; ///< first_vertex per block, for lookup
    std::uint64_t max_block_bytes_ = 0;
    std::uint64_t target_bytes_ = 0;
};

} // namespace noswalker::graph
