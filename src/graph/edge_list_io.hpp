/**
 * @file
 * Text edge-list import/export.
 *
 * Lets users bring the public datasets the paper evaluates (SNAP/
 * WebGraph-style "u v [w]" lines) into the on-disk format.  Lines
 * starting with '#' or '%' are comments; tokens are whitespace
 * separated; an optional third column is the edge weight.
 */
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace noswalker::graph {

/** Options for text edge-list parsing. */
struct EdgeListOptions {
    /** Treat a third column as the edge weight. */
    bool weighted = false;
    /** Build options forwarded to the CSR builder. */
    BuildOptions build;
};

/**
 * Parse a text edge list from @p in.
 * @throws util::ConfigError on malformed lines (with line number).
 */
std::vector<Edge> read_edge_list(std::istream &in,
                                 const EdgeListOptions &options = {});

/**
 * Load a text edge-list file straight into a CSR graph.
 * @throws util::IoError when the file cannot be opened.
 */
CsrGraph load_edge_list(const std::string &path,
                        const EdgeListOptions &options = {});

/** Write @p graph to @p out as "u v" (or "u v w") lines. */
void write_edge_list(const CsrGraph &graph, std::ostream &out);

/** Write @p graph to a text file at @p path. */
void save_edge_list(const CsrGraph &graph, const std::string &path);

} // namespace noswalker::graph
