/**
 * @file
 * Scaled-down twins of the paper's datasets (Table 1).
 *
 * The originals (Twitter, YahooWeb, Kron30/31, CrawlWeb, K30W, G12,
 * α2.7) reach 128 B edges; the twins keep every structural property the
 * evaluation depends on — degree distribution, weightedness, vertex/
 * edge ratio — at a size a single test machine handles, and every
 * memory budget in the bench harness is expressed as a *fraction* of
 * the twin's size, mirroring the paper's 64 GiB ≈ 12 % setup
 * (DESIGN.md §2).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/csr_graph.hpp"

namespace noswalker::graph {

/** Identifier of one dataset twin. */
enum class DatasetId {
    kTwitter,   ///< TW': RMAT, social-network skew
    kYahoo,     ///< YH': RMAT, sparser web-graph profile
    kKron30,    ///< K30': Graph500 Kronecker, edge factor 32
    kKron31,    ///< K31': Kronecker, one scale larger
    kCrawlWeb,  ///< CW': Kronecker, largest twin
    kKron30W,   ///< K30W': weighted K30' (+ on-disk alias tables)
    kG12,       ///< G12': uniform 12-regular
    kAlpha27,   ///< α2.7': configuration-model power law, α = 2.7
};

/** Descriptor of a twin. */
struct DatasetSpec {
    DatasetId id;
    std::string name;       ///< paper name, primed (e.g. "K30'")
    std::string paper_name; ///< the original (e.g. "Kron30")
    bool weighted = false;
    bool alias_tables = false;
};

/** All eight twins in Table 1 order. */
const std::vector<DatasetSpec> &all_datasets();

/** Spec of one twin. */
const DatasetSpec &dataset_spec(DatasetId id);

/**
 * Build a twin at the given scale knob.
 *
 * @param scale  log2-ish size control: the default (16) yields graphs
 *        of roughly 0.5–4 M edges; tests pass smaller values.
 */
CsrGraph build_dataset(DatasetId id, unsigned scale = 16,
                       std::uint64_t seed = 1);

} // namespace noswalker::graph
