/**
 * @file
 * Synthetic graph generators.
 *
 * These stand in for the paper's datasets (Table 1): Graph500-style
 * Kronecker/R-MAT for the power-law graphs (TW/YH/K30/K31/CW twins), a
 * configuration-model power-law generator for α2.7, and a uniform
 * d-regular generator for G12.  Deterministic toy graphs support tests.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace noswalker::graph {

/** Parameters for the R-MAT / Kronecker generator. */
struct RmatParams {
    /** log2 of the vertex count. */
    unsigned scale = 16;
    /** Edges per vertex. */
    unsigned edge_factor = 16;
    /** Quadrant probabilities; Graph500 uses (0.57, 0.19, 0.19, 0.05). */
    double a = 0.57, b = 0.19, c = 0.19;
    std::uint64_t seed = 1;
    /** Also emit reverse edges. */
    bool symmetrize = false;
    /** Attach uniform(0,1] weights to edges. */
    bool weighted = false;
};

/**
 * Graph500-style Kronecker (R-MAT) graph: 2^scale vertices,
 * edge_factor * 2^scale directed edges, heavy power-law skew.
 */
CsrGraph generate_rmat(const RmatParams &params);

/**
 * Configuration-model graph with power-law degree distribution
 * P(deg = k) ∝ k^-alpha for k in [min_degree, max_degree]
 * (Molloy–Reed / Bollobás stub matching).  alpha = 2.7 reproduces the
 * paper's flat α2.7 dataset.
 */
CsrGraph generate_power_law(VertexId num_vertices, double alpha,
                            std::uint32_t min_degree,
                            std::uint32_t max_degree, std::uint64_t seed,
                            bool weighted = false);

/** Uniform d-regular graph: every vertex has exactly @p degree out-edges
 *  chosen uniformly at random (the paper's G12 with degree = 12). */
CsrGraph generate_uniform(VertexId num_vertices, std::uint32_t degree,
                          std::uint64_t seed, bool weighted = false);

/** Erdős–Rényi G(n, m): @p num_edges uniform random directed edges. */
CsrGraph generate_erdos_renyi(VertexId num_vertices, EdgeIndex num_edges,
                              std::uint64_t seed, bool weighted = false);

/** Directed cycle 0→1→...→n-1→0. */
CsrGraph generate_cycle(VertexId num_vertices);

/** Complete directed graph without self loops. */
CsrGraph generate_complete(VertexId num_vertices);

/** Star: hub 0 points at every other vertex, leaves point back at 0. */
CsrGraph generate_star(VertexId num_vertices);

/**
 * The paper's Figure 3 toy graph: 7 vertices, 2 blocks (v0..v2 / v3..v6),
 * used in worked examples and unit tests.
 */
CsrGraph generate_paper_toy();

} // namespace noswalker::graph
