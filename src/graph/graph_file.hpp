/**
 * @file
 * On-disk graph format.
 *
 * Layout (little endian):
 *
 *   header        48 bytes (magic, V, E, flags, edge-region offset)
 *   offsets       (V+1) × u64  — the CSR index, kept in memory (§3.3.1)
 *   edge region   per vertex, contiguous:
 *                   targets  deg × u32
 *                   weights  deg × f32          (flag kWeighted)
 *                   prob     deg × f32          (flag kAlias)
 *                   alias    deg × u32          (flag kAlias)
 *
 * A vertex's whole record is contiguous, so block loads are a few large
 * sequential reads.  The optional alias-table region reproduces the
 * paper's K30W setup where pre-built alias tables inflate the on-disk
 * weighted graph to ~3× the plain CSR (Table 1: 136 GiB → 384 GiB).
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"
#include "storage/io_device.hpp"
#include "util/alias_table.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"

namespace noswalker::graph {

/**
 * A decoded view of one vertex's on-disk record.
 *
 * Spans point into a block buffer owned by the caller; the view must
 * not outlive that buffer.
 */
struct VertexView {
    VertexId id = kInvalidVertex;
    std::span<const VertexId> targets;
    std::span<const Weight> weights;  ///< empty when unweighted
    std::span<const float> prob;      ///< empty without alias tables
    std::span<const VertexId> alias;  ///< empty without alias tables

    /** Out-degree. */
    std::uint32_t
    degree() const
    {
        return static_cast<std::uint32_t>(targets.size());
    }

    /** Uniform random out-neighbour. @pre degree() > 0. */
    VertexId
    sample_uniform(util::Rng &rng) const
    {
        return targets[rng.next_index(targets.size())];
    }

    /**
     * Weight-proportional random out-neighbour.  O(1) via the stored
     * alias table when present, otherwise O(degree) prefix scan.
     * @pre degree() > 0.
     */
    VertexId sample_weighted(util::Rng &rng) const;

    /** Whether @p v is an out-neighbour (binary search; lists sorted). */
    bool has_target(VertexId v) const;

    /**
     * Hint the leading cache lines of every populated span (targets,
     * weights, alias rows) for an upcoming sample — the step kernel's
     * generic gather stage (DESIGN.md §12).  Decoding a view touches
     * only the in-memory CSR index, so issuing these hints is cheap
     * even when the record itself is cold.
     * @return the number of hints issued (kernel telemetry).
     */
    unsigned
    gather_prefetch(unsigned max_lines = 2) const
    {
        unsigned n = util::prefetch_range(targets.data(),
                                          targets.size_bytes(), max_lines);
        n += util::prefetch_range(weights.data(), weights.size_bytes(),
                                  max_lines);
        n += util::prefetch_range(prob.data(), prob.size_bytes(),
                                  max_lines);
        n += util::prefetch_range(alias.data(), alias.size_bytes(),
                                  max_lines);
        return n;
    }

    /**
     * Dry-run a uniform draw on @p probe — a copy of the exact RNG
     * sample_uniform will consume — and hint the one target slot the
     * draw lands on.  The copy replays the same next_index(), so the
     * prediction is exact at any degree (DESIGN.md §12).
     * @return the number of hints issued.  @pre degree() > 0.
     */
    unsigned
    prefetch_uniform_draw(util::Rng probe) const
    {
        util::prefetch_line(&targets[probe.next_index(targets.size())]);
        return 1;
    }

    /**
     * Dry-run a weighted draw on @p probe.  With an alias table the
     * drawn slot is exact: hint its prob/alias row and the kept-slot
     * target (the aliased target depends on alias[slot]'s value, which
     * this hint is itself fetching).  Without one the prefix scan
     * streams the whole weight span, so fall back to head lines.
     * @pre degree() > 0.
     */
    unsigned
    prefetch_weighted_draw(util::Rng probe, unsigned max_lines = 2) const
    {
        if (!prob.empty()) {
            const std::size_t slot = probe.next_index(targets.size());
            util::prefetch_line(&prob[slot]);
            util::prefetch_line(&alias[slot]);
            util::prefetch_line(&targets[slot]);
            return 3;
        }
        return util::prefetch_range(weights.data(), weights.size_bytes(),
                                    max_lines) +
               util::prefetch_range(targets.data(), targets.size_bytes(),
                                    max_lines);
    }
};

/**
 * Reader for the on-disk format.
 *
 * Construction loads the header and the CSR offsets into memory;
 * engines account that index against their memory budget.  Edge data is
 * never touched here — BlockReader streams it.
 */
class GraphFile {
  public:
    /** Format flags. */
    enum Flags : std::uint64_t {
        kWeighted = 1u << 0,
        kAlias = 1u << 1,
    };

    /**
     * Serialize @p graph into @p device (overwrites from offset 0).
     * @param with_alias also emit per-vertex alias tables (requires a
     *        weighted graph).
     */
    static void write(const CsrGraph &graph, storage::IoDevice &device,
                      bool with_alias = false);

    /**
     * Open a previously written graph.
     * @throws util::IoError on bad magic or truncated file.
     */
    explicit GraphFile(storage::IoDevice &device);

    /** Underlying device. */
    storage::IoDevice &device() const { return *device_; }

    VertexId num_vertices() const { return num_vertices_; }
    EdgeIndex num_edges() const { return num_edges_; }
    bool weighted() const { return (flags_ & kWeighted) != 0; }
    bool has_alias() const { return (flags_ & kAlias) != 0; }

    /** Bytes one edge occupies in the edge region (4, 8 or 16). */
    std::uint32_t record_bytes() const { return record_bytes_; }

    /** Out-degree of @p v. */
    std::uint32_t
    degree(VertexId v) const
    {
        return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    }

    /** CSR edge index of @p v's first edge. */
    EdgeIndex edge_begin(VertexId v) const { return offsets_[v]; }

    /** Absolute byte offset of @p v's record in the file. */
    std::uint64_t
    vertex_byte_offset(VertexId v) const
    {
        return edge_region_offset_ + offsets_[v] * record_bytes_;
    }

    /** Bytes of @p v's record. */
    std::uint64_t
    vertex_byte_size(VertexId v) const
    {
        return static_cast<std::uint64_t>(degree(v)) * record_bytes_;
    }

    /** Absolute byte offset where the edge region starts. */
    std::uint64_t edge_region_offset() const { return edge_region_offset_; }

    /** Total bytes of the edge region. */
    std::uint64_t
    edge_region_bytes() const
    {
        return num_edges_ * record_bytes_;
    }

    /** Total file size (header + index + edge region). */
    std::uint64_t
    file_bytes() const
    {
        return edge_region_offset_ + edge_region_bytes();
    }

    /** In-memory footprint of the CSR index (engines budget this). */
    std::uint64_t
    index_bytes() const
    {
        return offsets_.size() * sizeof(EdgeIndex);
    }

    /** The in-memory CSR offsets. */
    const std::vector<EdgeIndex> &offsets() const { return offsets_; }

    /**
     * Decode vertex @p v's record from @p raw, the bytes of the edge
     * region beginning at absolute file offset @p raw_begin.
     * @pre the record lies fully inside @p raw.
     */
    VertexView decode(VertexId v, std::span<const std::uint8_t> raw,
                      std::uint64_t raw_begin) const;

  private:
    storage::IoDevice *device_;
    VertexId num_vertices_ = 0;
    EdgeIndex num_edges_ = 0;
    std::uint64_t flags_ = 0;
    std::uint32_t record_bytes_ = 0;
    std::uint64_t edge_region_offset_ = 0;
    std::vector<EdgeIndex> offsets_;
};

} // namespace noswalker::graph
