#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>

#include "graph/builder.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace noswalker::graph {

namespace {

/** Draw one R-MAT edge by recursive quadrant descent. */
Edge
rmat_edge(unsigned scale, const RmatParams &p, util::Rng &rng)
{
    VertexId src = 0;
    VertexId dst = 0;
    for (unsigned level = 0; level < scale; ++level) {
        const double r = rng.next_double();
        src <<= 1;
        dst <<= 1;
        if (r < p.a) {
            // top-left: no bits set
        } else if (r < p.a + p.b) {
            dst |= 1;
        } else if (r < p.a + p.b + p.c) {
            src |= 1;
        } else {
            src |= 1;
            dst |= 1;
        }
    }
    return Edge{src, dst, 1.0f};
}

void
attach_weights(std::vector<Edge> &edges, util::Rng &rng)
{
    for (Edge &e : edges) {
        e.weight = static_cast<Weight>(rng.next_double()) + 1e-6f;
    }
}

} // namespace

CsrGraph
generate_rmat(const RmatParams &params)
{
    if (params.a + params.b + params.c >= 1.0) {
        throw util::ConfigError("generate_rmat: a+b+c must be < 1");
    }
    const VertexId n = VertexId{1} << params.scale;
    const EdgeIndex m =
        static_cast<EdgeIndex>(n) * params.edge_factor;

    util::Rng rng(params.seed);
    std::vector<Edge> edges;
    edges.reserve(m);
    for (EdgeIndex i = 0; i < m; ++i) {
        edges.push_back(rmat_edge(params.scale, params, rng));
    }
    if (params.weighted) {
        attach_weights(edges, rng);
    }

    BuildOptions options;
    options.num_vertices = n;
    options.symmetrize = params.symmetrize;
    return build_csr(std::move(edges), options, params.weighted);
}

CsrGraph
generate_power_law(VertexId num_vertices, double alpha,
                   std::uint32_t min_degree, std::uint32_t max_degree,
                   std::uint64_t seed, bool weighted)
{
    if (min_degree == 0 || max_degree < min_degree) {
        throw util::ConfigError("generate_power_law: bad degree range");
    }
    util::Rng rng(seed);

    // Degree distribution P(k) ∝ k^-alpha via inverse-CDF table.
    std::vector<double> cdf;
    cdf.reserve(max_degree - min_degree + 1);
    double total = 0.0;
    for (std::uint32_t k = min_degree; k <= max_degree; ++k) {
        total += std::pow(static_cast<double>(k), -alpha);
        cdf.push_back(total);
    }
    for (double &x : cdf) {
        x /= total;
    }

    std::vector<std::uint32_t> degree(num_vertices);
    EdgeIndex total_edges = 0;
    for (VertexId v = 0; v < num_vertices; ++v) {
        const double r = rng.next_double();
        const auto it = std::lower_bound(cdf.begin(), cdf.end(), r);
        degree[v] =
            min_degree + static_cast<std::uint32_t>(it - cdf.begin());
        total_edges += degree[v];
    }

    // Stub matching: targets drawn proportionally to target degree by
    // shuffling a global stub list (configuration model).
    std::vector<VertexId> stubs;
    stubs.reserve(total_edges);
    for (VertexId v = 0; v < num_vertices; ++v) {
        for (std::uint32_t i = 0; i < degree[v]; ++i) {
            stubs.push_back(v);
        }
    }
    for (std::size_t i = stubs.size(); i > 1; --i) {
        std::swap(stubs[i - 1], stubs[rng.next_index(i)]);
    }

    std::vector<Edge> edges;
    edges.reserve(total_edges);
    std::size_t stub = 0;
    for (VertexId v = 0; v < num_vertices; ++v) {
        for (std::uint32_t i = 0; i < degree[v]; ++i) {
            edges.push_back(Edge{v, stubs[stub++], 1.0f});
        }
    }
    if (weighted) {
        attach_weights(edges, rng);
    }

    BuildOptions options;
    options.num_vertices = num_vertices;
    return build_csr(std::move(edges), options, weighted);
}

CsrGraph
generate_uniform(VertexId num_vertices, std::uint32_t degree,
                 std::uint64_t seed, bool weighted)
{
    if (num_vertices < 2) {
        throw util::ConfigError("generate_uniform: need >= 2 vertices");
    }
    util::Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(num_vertices) * degree);
    for (VertexId v = 0; v < num_vertices; ++v) {
        for (std::uint32_t i = 0; i < degree; ++i) {
            VertexId dst;
            do {
                dst = static_cast<VertexId>(rng.next_index(num_vertices));
            } while (dst == v);
            edges.push_back(Edge{v, dst, 1.0f});
        }
    }
    if (weighted) {
        attach_weights(edges, rng);
    }
    BuildOptions options;
    options.num_vertices = num_vertices;
    return build_csr(std::move(edges), options, weighted);
}

CsrGraph
generate_erdos_renyi(VertexId num_vertices, EdgeIndex num_edges,
                     std::uint64_t seed, bool weighted)
{
    util::Rng rng(seed);
    std::vector<Edge> edges;
    edges.reserve(num_edges);
    for (EdgeIndex i = 0; i < num_edges; ++i) {
        const auto src =
            static_cast<VertexId>(rng.next_index(num_vertices));
        const auto dst =
            static_cast<VertexId>(rng.next_index(num_vertices));
        edges.push_back(Edge{src, dst, 1.0f});
    }
    if (weighted) {
        attach_weights(edges, rng);
    }
    BuildOptions options;
    options.num_vertices = num_vertices;
    return build_csr(std::move(edges), options, weighted);
}

CsrGraph
generate_cycle(VertexId num_vertices)
{
    std::vector<Edge> edges;
    edges.reserve(num_vertices);
    for (VertexId v = 0; v < num_vertices; ++v) {
        edges.push_back(Edge{v, (v + 1) % num_vertices, 1.0f});
    }
    BuildOptions options;
    options.num_vertices = num_vertices;
    return build_csr(std::move(edges), options);
}

CsrGraph
generate_complete(VertexId num_vertices)
{
    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(num_vertices) *
                  (num_vertices - 1));
    for (VertexId u = 0; u < num_vertices; ++u) {
        for (VertexId v = 0; v < num_vertices; ++v) {
            if (u != v) {
                edges.push_back(Edge{u, v, 1.0f});
            }
        }
    }
    BuildOptions options;
    options.num_vertices = num_vertices;
    return build_csr(std::move(edges), options);
}

CsrGraph
generate_star(VertexId num_vertices)
{
    std::vector<Edge> edges;
    for (VertexId v = 1; v < num_vertices; ++v) {
        edges.push_back(Edge{0, v, 1.0f});
        edges.push_back(Edge{v, 0, 1.0f});
    }
    BuildOptions options;
    options.num_vertices = num_vertices;
    return build_csr(std::move(edges), options);
}

CsrGraph
generate_paper_toy()
{
    // Figure 3(a): block A holds v0..v2 and their out-edges, block B the
    // rest.  v0 has the six-edge fanout used in the worked example.
    std::vector<Edge> edges;
    const auto add = [&edges](VertexId u, std::initializer_list<VertexId> vs) {
        for (VertexId v : vs) {
            edges.push_back(Edge{u, v, 1.0f});
        }
    };
    add(0, {0, 1, 2, 3, 4, 5});
    add(1, {0, 2, 4});
    add(2, {0, 3, 5, 6});
    add(3, {1, 2, 6});
    add(4, {0, 3, 5});
    add(5, {2, 4, 6});
    add(6, {0, 1, 5});
    BuildOptions options;
    options.num_vertices = 7;
    return build_csr(std::move(edges), options);
}

} // namespace noswalker::graph
