#include "graph/graph_file.hpp"

#include <algorithm>
#include <cstring>

#include "util/error.hpp"

namespace noswalker::graph {

namespace {

constexpr std::uint64_t kMagic = 0x3146524757534f4eULL; // "NOSWGRF1"
constexpr std::uint64_t kHeaderBytes = 48;

struct Header {
    std::uint64_t magic;
    std::uint64_t num_vertices;
    std::uint64_t num_edges;
    std::uint64_t flags;
    std::uint64_t edge_region_offset;
    std::uint64_t reserved;
};
static_assert(sizeof(Header) == kHeaderBytes);

std::uint32_t
record_bytes_for(std::uint64_t flags)
{
    std::uint32_t bytes = sizeof(VertexId);
    if (flags & GraphFile::kWeighted) {
        bytes += sizeof(Weight);
    }
    if (flags & GraphFile::kAlias) {
        bytes += sizeof(float) + sizeof(VertexId);
    }
    return bytes;
}

} // namespace

VertexId
VertexView::sample_weighted(util::Rng &rng) const
{
    const std::size_t n = targets.size();
    if (!prob.empty()) {
        const std::size_t slot = rng.next_index(n);
        return rng.next_double() < prob[slot] ? targets[slot]
                                              : targets[alias[slot]];
    }
    NOSWALKER_CHECK(!weights.empty());
    double total = 0.0;
    for (Weight w : weights) {
        total += w;
    }
    double r = rng.next_double(total);
    for (std::size_t i = 0; i < n; ++i) {
        r -= weights[i];
        if (r <= 0.0) {
            return targets[i];
        }
    }
    return targets[n - 1];
}

bool
VertexView::has_target(VertexId v) const
{
    return std::binary_search(targets.begin(), targets.end(), v);
}

void
GraphFile::write(const CsrGraph &graph, storage::IoDevice &device,
                 bool with_alias)
{
    if (with_alias && !graph.weighted()) {
        throw util::ConfigError(
            "GraphFile::write: alias tables need a weighted graph");
    }

    std::uint64_t flags = 0;
    if (graph.weighted()) {
        flags |= kWeighted;
    }
    if (with_alias) {
        flags |= kAlias;
    }
    const std::uint32_t rec = record_bytes_for(flags);
    const std::uint64_t index_bytes =
        (static_cast<std::uint64_t>(graph.num_vertices()) + 1) *
        sizeof(EdgeIndex);

    Header header{};
    header.magic = kMagic;
    header.num_vertices = graph.num_vertices();
    header.num_edges = graph.num_edges();
    header.flags = flags;
    header.edge_region_offset = kHeaderBytes + index_bytes;
    device.write(0, sizeof(header), &header);
    device.write(kHeaderBytes, index_bytes, graph.offsets().data());

    // Stream the edge region vertex by vertex, buffering ~4 MiB writes.
    std::vector<std::uint8_t> buffer;
    buffer.reserve(4 << 20);
    std::uint64_t write_pos = header.edge_region_offset;
    const auto flush = [&] {
        if (!buffer.empty()) {
            device.write(write_pos, buffer.size(), buffer.data());
            write_pos += buffer.size();
            buffer.clear();
        }
    };
    const auto append = [&](const void *data, std::size_t len) {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buffer.insert(buffer.end(), p, p + len);
    };

    std::vector<double> alias_weights;
    std::vector<float> prob_out;
    std::vector<VertexId> alias_out;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        const auto nbrs = graph.neighbors(v);
        append(nbrs.data(), nbrs.size_bytes());
        if (graph.weighted()) {
            const auto ws = graph.weights(v);
            append(ws.data(), ws.size_bytes());
            if (with_alias && !nbrs.empty()) {
                alias_weights.assign(ws.begin(), ws.end());
                prob_out.resize(nbrs.size());
                alias_out.resize(nbrs.size());
                util::build_alias_arrays(alias_weights, prob_out, alias_out);
                append(prob_out.data(), prob_out.size() * sizeof(float));
                append(alias_out.data(),
                       alias_out.size() * sizeof(VertexId));
            }
        }
        if (buffer.size() >= (4 << 20)) {
            flush();
        }
    }
    flush();
    (void)rec;
}

GraphFile::GraphFile(storage::IoDevice &device) : device_(&device)
{
    if (device.size() < kHeaderBytes) {
        throw util::IoError("GraphFile: file too small for header");
    }
    Header header{};
    device.read(0, sizeof(header), &header);
    if (header.magic != kMagic) {
        throw util::IoError("GraphFile: bad magic");
    }
    num_vertices_ = static_cast<VertexId>(header.num_vertices);
    num_edges_ = header.num_edges;
    flags_ = header.flags;
    record_bytes_ = record_bytes_for(flags_);
    edge_region_offset_ = header.edge_region_offset;

    offsets_.resize(static_cast<std::size_t>(num_vertices_) + 1);
    const std::uint64_t index_bytes =
        offsets_.size() * sizeof(EdgeIndex);
    if (device.size() < kHeaderBytes + index_bytes) {
        throw util::IoError("GraphFile: truncated index");
    }
    device.read(kHeaderBytes, index_bytes, offsets_.data());
    if (offsets_.back() != num_edges_) {
        throw util::IoError("GraphFile: index/edge-count mismatch");
    }
    if (device.size() < file_bytes()) {
        throw util::IoError("GraphFile: truncated edge region");
    }
}

VertexView
GraphFile::decode(VertexId v, std::span<const std::uint8_t> raw,
                  std::uint64_t raw_begin) const
{
    const std::uint64_t off = vertex_byte_offset(v);
    const std::uint64_t len = vertex_byte_size(v);
    NOSWALKER_CHECK(off >= raw_begin &&
                    off + len <= raw_begin + raw.size());
    const std::uint8_t *base = raw.data() + (off - raw_begin);
    const std::uint32_t deg = degree(v);

    VertexView view;
    view.id = v;
    view.targets = {reinterpret_cast<const VertexId *>(base), deg};
    std::uint64_t pos = static_cast<std::uint64_t>(deg) * sizeof(VertexId);
    if (weighted()) {
        view.weights = {reinterpret_cast<const Weight *>(base + pos), deg};
        pos += static_cast<std::uint64_t>(deg) * sizeof(Weight);
    }
    if (has_alias()) {
        view.prob = {reinterpret_cast<const float *>(base + pos), deg};
        pos += static_cast<std::uint64_t>(deg) * sizeof(float);
        view.alias = {reinterpret_cast<const VertexId *>(base + pos), deg};
    }
    return view;
}

} // namespace noswalker::graph
