#include "graph/partition.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace noswalker::graph {

BlockPartition::BlockPartition(const GraphFile &file,
                               std::uint64_t block_bytes)
    : target_bytes_(block_bytes)
{
    if (block_bytes == 0) {
        throw util::ConfigError("BlockPartition: block_bytes must be > 0");
    }
    const VertexId num_vertices = file.num_vertices();
    VertexId v = 0;
    while (v < num_vertices) {
        BlockInfo info;
        info.id = static_cast<std::uint32_t>(blocks_.size());
        info.first_vertex = v;
        info.edge_begin = file.edge_begin(v);
        info.byte_begin = file.vertex_byte_offset(v);

        std::uint64_t bytes = 0;
        VertexId end = v;
        while (end < num_vertices) {
            const std::uint64_t rec = file.vertex_byte_size(end);
            if (bytes > 0 && bytes + rec > block_bytes) {
                break;
            }
            bytes += rec;
            ++end;
            if (bytes >= block_bytes) {
                break;
            }
        }
        info.end_vertex = end;
        info.byte_size = bytes;
        info.num_edges = file.edge_begin(end) - info.edge_begin;
        blocks_.push_back(info);
        firsts_.push_back(info.first_vertex);
        max_block_bytes_ = std::max(max_block_bytes_, bytes);
        v = end;
    }
    if (blocks_.empty()) {
        // Zero-vertex graph still gets one empty block for uniformity.
        blocks_.push_back(BlockInfo{});
        firsts_.push_back(0);
    }
}

std::uint32_t
BlockPartition::block_of(VertexId v) const
{
    const auto it = std::upper_bound(firsts_.begin(), firsts_.end(), v);
    NOSWALKER_CHECK(it != firsts_.begin());
    return static_cast<std::uint32_t>((it - firsts_.begin()) - 1);
}

} // namespace noswalker::graph
