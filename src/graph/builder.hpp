/**
 * @file
 * Edge-list to CSR builder.
 */
#pragma once

#include <vector>

#include "graph/csr_graph.hpp"
#include "graph/types.hpp"

namespace noswalker::graph {

/** Options controlling CSR construction. */
struct BuildOptions {
    /** Add the reverse of every edge (Node2Vec needs undirected). */
    bool symmetrize = false;
    /** Drop duplicate (src,dst) pairs (keeps the first weight). */
    bool dedup = false;
    /** Drop self loops. */
    bool remove_self_loops = false;
    /**
     * Force the vertex count (0 = max endpoint + 1).  Generators pass
     * the exact count so isolated tail vertices are kept.
     */
    VertexId num_vertices = 0;
};

/**
 * Incremental edge-list builder producing a CsrGraph.
 *
 * Adjacency lists in the result are sorted by destination, which enables
 * binary-search has_edge() — the Node2Vec rejection step depends on it.
 */
class GraphBuilder {
  public:
    GraphBuilder() = default;

    /** Pre-allocate space for @p n edges. */
    void reserve(std::size_t n) { edges_.reserve(n); }

    /** Append a directed edge. */
    void
    add_edge(VertexId src, VertexId dst, Weight weight = 1.0f)
    {
        edges_.push_back(Edge{src, dst, weight});
    }

    /** Append a batch of directed edges. */
    void add_edges(const std::vector<Edge> &edges);

    /** Number of edges accumulated so far. */
    std::size_t size() const { return edges_.size(); }

    /**
     * Build the CSR graph and release the edge list.
     * @param weighted  store per-edge weights in the result.
     */
    CsrGraph build(const BuildOptions &options = {}, bool weighted = false);

  private:
    std::vector<Edge> edges_;
};

/** Convenience: build a CSR straight from an edge vector. */
CsrGraph build_csr(std::vector<Edge> edges, const BuildOptions &options = {},
                   bool weighted = false);

} // namespace noswalker::graph
