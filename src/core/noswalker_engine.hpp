/**
 * @file
 * The NosWalker engine: decoupled, walker-oriented out-of-core random
 * walk processing (paper §3, Algorithm 1/3).
 *
 * Architecture (Figure 6): a background loader thread streams the
 * hottest blocks into block buffers (①); walkers are generated
 * adaptively so their states never touch disk (②); walkers are moved
 * first from the currently loaded block, then from reserved pre-sample
 * buffers (③); and pre-sample buffers are (re)built from each loaded
 * block with visit-history-proportional quotas (④).
 *
 * The Fig 14 breakdown knobs degrade the engine towards the paper's
 * "base implementation": walker_management=false materializes all
 * walkers up front and charges GraphWalker-style swap I/O;
 * shrink_block=false disables fine-grained loads; presample=false
 * disables the pre-sample pool entirely.
 *
 * Second-order applications (SecondOrderApp) run the Appendix A
 * workflow: Action records a candidate + trial height, and the engine
 * resolves the rejection trial once the candidate's adjacency is
 * resident (from the loaded block or a direct low-degree reservation).
 */
#pragma once

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/block_scheduler.hpp"
#include "core/config.hpp"
#include "core/presample_buffer.hpp"
#include "core/walker_pool.hpp"
#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "engine/walker_spill.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/async_loader.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "storage/shared_block_cache.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace noswalker::core {

/** Disk utilisation the async-I/O path achieves (paper §4.4: 70–90 %). */
inline constexpr double kAsyncIoEfficiency = 0.8;

/**
 * Walker-oriented out-of-core random walk engine.
 *
 * @tparam App  a RandomWalkApp (optionally SecondOrderApp).
 */
template <engine::RandomWalkApp App>
class NosWalkerEngine {
  public:
    using WalkerT = typename App::WalkerT;
    static constexpr bool kSecondOrder = engine::kIsSecondOrder<App>;
    static constexpr bool kWalkerAware = engine::kIsWalkerAware<App>;

    /**
     * @param file  the on-disk graph.
     * @param partition  1-D block partition of @p file.
     * @param config  engine configuration (validated here).
     */
    NosWalkerEngine(const graph::GraphFile &file,
                    const graph::BlockPartition &partition,
                    EngineConfig config)
        : file_(&file), partition_(&partition), config_(config)
    {
        config_.validate();
        if constexpr (kWalkerAware) {
            // Shared pre-samples would inject run-wide randomness into
            // per-walker streams; walker-aware apps forgo them.
            config_.presample = false;
        }
    }

    /**
     * Attach a budget shared with other engines (the walk service's
     * admission-control pool).  When set, run() reserves from it
     * instead of a run-local budget, and per-run I/O counters are
     * accumulated locally instead of from shared device deltas.
     * Pass nullptr to detach.
     */
    void set_shared_budget(util::MemoryBudget *budget)
    {
        shared_budget_ = budget;
    }

    /** Serve coarse loads through a cache shared with other engines. */
    void set_shared_cache(storage::SharedBlockCache *cache)
    {
        shared_cache_ = cache;
    }

    /** run() with a per-run seed (per-batch walker injection). */
    engine::RunStats
    run(App &app, std::uint64_t total_walkers, std::uint64_t seed)
    {
        seed_override_ = seed;
        return run(app, total_walkers);
    }

    /**
     * Execute @p total_walkers walkers of @p app to completion.
     *
     * Deterministic for a fixed (config.seed, app, graph).
     */
    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        reset(total_walkers);
        app_ = &app;
        util::MemoryBudget local_budget(
            shared_budget_ != nullptr ? 0 : config_.memory_budget);
        util::MemoryBudget &budget =
            shared_budget_ != nullptr ? *shared_budget_ : local_budget;
        setup(budget, total_walkers);

        storage::BlockReader reader(*file_, unbudgeted_, 8ULL << 20,
                                    shared_cache_);
        storage::AsyncLoader loader(
            reader, config_.loader_threads > 0 && !single_buffer_);
        const storage::IoStats io_before = file_->device().stats();

        App &a = app;
        util::Timer cpu;
        double cpu_seconds = 0.0;

        // Prime the pool so the scheduler has work.
        cpu.reset();
        admit_walkers(a, nullptr);
        cpu_seconds += cpu.seconds();

        while (generated_ < total_ || pool_->live() > 0) {
            const std::uint32_t target = choose_block();
            if (target == BlockScheduler::kNoBlock) {
                // Only in-flight generation remains.
                cpu.reset();
                admit_walkers(a, nullptr);
                cpu_seconds += cpu.seconds();
                continue;
            }
            if (!loader.outstanding()) {
                loader.submit(make_request(target));
            }
            auto response = loader.wait();
            if (response.error) {
                std::rethrow_exception(response.error);
            }

            // Predict and prefetch the next block while we process
            // (only with a second buffer to land it in).
            if (!single_buffer_) {
                const std::uint32_t next =
                    choose_block_excluding(response.block->id);
                if (next != BlockScheduler::kNoBlock) {
                    loader.submit(make_request(next));
                }
            }

            cpu.reset();
            account_load(response);
            if (scheduler_->count(response.block->id) > 0) {
                process_block(a, response);
            } else {
                // Prefetch went stale: walkers left before the load
                // arrived.  The bytes are already on the books, exactly
                // like a mispredicted load on real hardware.
                ++stats_.stalls;
            }
            admit_walkers(a, &response);
            cpu_seconds += cpu.seconds();
        }

        finalize(budget, io_before, cpu_seconds);
        stats_.wall_seconds = wall.seconds();
        return stats_;
    }

  private:
    void
    reset(std::uint64_t total)
    {
        stats_ = engine::RunStats{};
        stats_.engine = "NosWalker";
        stats_.pipelined = true; // set false later in single-buffer mode
        stats_.io_efficiency = kAsyncIoEfficiency;
        rng_ = util::Rng(seed_override_.value_or(config_.seed));
        seed_override_.reset();
        total_ = total;
        generated_ = 0;
        buffers_.clear();
        pool_.reset();
        scheduler_.reset();
        spill_.reset();
        swap_device_.reset();
        presample_bytes_used_ = 0;
        local_io_bytes_ = 0;
        local_io_requests_ = 0;
        local_io_seconds_ = 0.0;
    }

    /** Reserve the fixed memory regions and create the components. */
    void
    setup(util::MemoryBudget &budget, std::uint64_t total)
    {
        // CSR index stays in memory (§3.3.1).
        index_rsv_ = util::Reservation(budget, file_->index_bytes(),
                                       "csr index");

        // Two resident block buffers (current + prefetch) when memory
        // allows; under very tight budgets a second buffer would
        // starve the walker pool and pre-sample pool, so the engine
        // degrades to single-buffer synchronous loading.
        const std::uint64_t page = storage::BlockReader::kPageBytes;
        const std::uint64_t aligned =
            (partition_->max_block_bytes() / page + 2) * page;
        single_buffer_ =
            budget.limit() != 0 &&
            2 * aligned > (budget.available() * 35) / 100;
        buffer_rsv_ = util::Reservation(
            budget, single_buffer_ ? aligned : 2 * aligned,
            "block buffers");

        const std::uint64_t rest = budget.available();
        const std::uint32_t num_blocks = partition_->num_blocks();
        scheduler_ = std::make_unique<BlockScheduler>(
            num_blocks, config_.alpha, file_->edge_region_bytes(),
            static_cast<std::uint32_t>(page));

        if (config_.walker_management) {
            std::uint64_t cap = config_.max_walkers;
            if (cap == 0) {
                const std::uint64_t by_budget =
                    budget.limit() == 0
                        ? std::uint64_t{1} << 18
                        : static_cast<std::uint64_t>(
                              config_.walker_memory_fraction *
                              static_cast<double>(rest)) /
                              sizeof(WalkerT);
                cap = std::max<std::uint64_t>(
                    64, std::min<std::uint64_t>(by_budget,
                                                std::uint64_t{1} << 20));
            }
            cap = std::max<std::uint64_t>(1, std::min(cap, total));
            pool_ = std::make_unique<WalkerPool<WalkerT>>(num_blocks, cap,
                                                          budget);
        } else {
            // Base-implementation mode: all walker states exist up
            // front; only a bounded buffer is memory-resident and the
            // overflow swaps through a dedicated device (§2.4.2).
            const std::uint64_t buffer_bytes = std::max<std::uint64_t>(
                sizeof(WalkerT),
                budget.limit() == 0
                    ? total * sizeof(WalkerT)
                    : static_cast<std::uint64_t>(
                          config_.walker_memory_fraction *
                          static_cast<double>(rest)));
            const std::uint64_t resident_cap =
                std::max<std::uint64_t>(1, buffer_bytes / sizeof(WalkerT));
            pool_ = std::make_unique<WalkerPool<WalkerT>>(
                num_blocks, std::max<std::uint64_t>(total, 1), budget,
                std::min(buffer_bytes, total * sizeof(WalkerT)));
            swap_device_ = std::make_unique<storage::MemDevice>(
                file_->device().model());
            spill_ = std::make_unique<engine::WalkerSpill>(
                *swap_device_, sizeof(WalkerT), resident_cap, num_blocks);
        }

        if (config_.presample) {
            const std::uint64_t ps_total = std::max<std::uint64_t>(
                4096, budget.limit() == 0
                          ? std::uint64_t{64} << 20
                          : static_cast<std::uint64_t>(
                                config_.presample_memory_fraction *
                                static_cast<double>(budget.available())));
            presample_bytes_total_ = ps_total;
            // Hot blocks deserve deep buffers: cap one block at a
            // quarter of the pool and let coldest-buffer eviction
            // arbitrate the rest (§3.3.3).
            presample_per_block_ =
                std::max<std::uint64_t>(4096, ps_total / 4);
        }
        budget_ = &budget;
        stats_.pipelined = !single_buffer_;
    }

    storage::AsyncLoader::Request
    make_request(std::uint32_t block)
    {
        storage::AsyncLoader::Request request;
        request.block = &partition_->block(block);
        request.fine = config_.shrink_block &&
                       scheduler_->fine_mode(pool_->live());
        if (request.fine) {
            request.needed.reserve(pool_->parked(block));
            for (const WalkerT &w : peek_bucket(block)) {
                request.needed.push_back(waiting_vertex_of(w));
            }
        }
        return request;
    }

    std::uint32_t
    choose_block() const
    {
        return scheduler_->hottest();
    }

    std::uint32_t
    choose_block_excluding(std::uint32_t skip) const
    {
        std::uint32_t best = BlockScheduler::kNoBlock;
        std::uint64_t best_count = 0;
        for (std::uint32_t b = 0; b < partition_->num_blocks(); ++b) {
            if (b == skip) {
                continue;
            }
            const std::uint64_t c = scheduler_->count(b);
            if (c > best_count) {
                best_count = c;
                best = b;
            }
        }
        return best;
    }

    void
    account_load(const storage::AsyncLoader::Response &response)
    {
        if (response.fine) {
            ++stats_.fine_loads;
        } else {
            ++stats_.blocks_loaded;
        }
        if (response.result.from_cache) {
            ++stats_.cache_hit_blocks;
        }
        local_io_bytes_ += response.result.bytes_read;
        local_io_requests_ += response.result.requests;
        local_io_seconds_ += response.result.modeled_seconds;
    }

    /** Bucket view without draining it (fine-mode needed lists). */
    const std::vector<WalkerT> &
    peek_bucket(std::uint32_t block) const
    {
        return pool_->bucket_view(block);
    }

    graph::VertexId
    waiting_vertex_of(const WalkerT &w) const
    {
        if constexpr (kSecondOrder) {
            return app_->has_candidate(w) ? app_->candidate(w)
                                          : w.location;
        } else {
            return w.location;
        }
    }

    /** Generate walkers while the pool admits them (Algorithm 1 l.7). */
    void
    admit_walkers(App &app, const storage::AsyncLoader::Response *resp)
    {
        app_ = &app;
        if (!config_.walker_management) {
            // All walkers are materialized once, GraphChi-style.
            while (generated_ < total_) {
                WalkerT w = app.generate(generated_++);
                pool_->admit();
                park(w);
            }
            return;
        }
        while (generated_ < total_ && pool_->can_admit()) {
            WalkerT w = app.generate(generated_++);
            pool_->admit();
            chain_move(app, w, resp);
        }
    }

    /** Park @p w at its waiting block and notify the scheduler. */
    void
    park(const WalkerT &w)
    {
        const std::uint32_t b =
            partition_->block_of(waiting_vertex_of(w));
        pool_->park(b, w);
        scheduler_->add_walker(b);
        if (spill_) {
            spill_->park(b, 1);
        }
    }

    void
    retire_walker()
    {
        pool_->retire();
        ++stats_.walkers;
    }

    /** Build/refill the block's pre-sample buffer from a coarse load. */
    void
    refill_presamples(App &app,
                      const storage::AsyncLoader::Response &response)
    {
        const graph::BlockInfo &block = *response.block;
        PreSampleBuffer::BuildParams params;
        params.max_bytes = presample_per_block_;
        params.base_quota = config_.presamples_per_vertex;
        params.max_quota = config_.max_presamples_per_vertex;
        params.low_degree_cutoff = config_.low_degree_cutoff;

        auto it = buffers_.find(block.id);
        const PreSampleBuffer *previous =
            it != buffers_.end() ? it->second.get() : nullptr;
        // Rebuild only "when it should sample new edges" (§3.3.2):
        // when the buffer is substantially drained or walkers have
        // been stalling on it (unmet demand).  Otherwise the reserved
        // samples stay valid and rebuilding would discard them.
        if (previous != nullptr &&
            previous->consumed_fraction() < 0.3 &&
            previous->stall_count() <
                std::max<std::uint64_t>(64,
                                        previous->slot_count() / 8)) {
            return;
        }

        std::unique_ptr<PreSampleBuffer> fresh;
        for (;;) {
            try {
                fresh = std::make_unique<PreSampleBuffer>(
                    *file_, block, params, previous, *budget_);
                break;
            } catch (const util::BudgetExceeded &) {
                if (!evict_coldest_buffer(block.id)) {
                    return; // cannot fit: skip pre-sampling this block
                }
                // Eviction may have invalidated `previous`.
                const auto again = buffers_.find(block.id);
                previous =
                    again != buffers_.end() ? again->second.get() : nullptr;
            }
        }

        auto sampler = [&](const graph::VertexView &view) {
            return app.sample(view, rng_);
        };
        for (graph::VertexId v = block.first_vertex; v < block.end_vertex;
             ++v) {
            if (fresh->quota(v) == 0) {
                continue;
            }
            fresh->fill_vertex(response.buffer.view(*file_, v), sampler);
        }
        buffers_[block.id] = std::move(fresh);
    }

    /** Drop the buffer of the block with the fewest waiting walkers. */
    bool
    evict_coldest_buffer(std::uint32_t except)
    {
        std::uint32_t victim = BlockScheduler::kNoBlock;
        std::uint64_t coldest = ~std::uint64_t{0};
        for (const auto &[id, buf] : buffers_) {
            if (id == except) {
                continue;
            }
            const std::uint64_t c = scheduler_->count(id);
            if (c < coldest) {
                coldest = c;
                victim = id;
            }
        }
        if (victim == BlockScheduler::kNoBlock) {
            return false;
        }
        buffers_.erase(victim);
        return true;
    }

    PreSampleBuffer *
    find_presamples(std::uint32_t block)
    {
        const auto it = buffers_.find(block);
        return it == buffers_.end() ? nullptr : it->second.get();
    }

    /** Service the freshly loaded block (Algorithm 1 lines 9-12). */
    void
    process_block(App &app, const storage::AsyncLoader::Response &response)
    {
        const std::uint32_t id = response.block->id;
        if (!response.fine && config_.presample) {
            refill_presamples(app, response);
        }
        if (spill_) {
            spill_->activate(id);
        }
        std::vector<WalkerT> bucket = pool_->take_bucket(id);
        scheduler_->remove_walkers(id, bucket.size());
        if (spill_) {
            spill_->retire(id, bucket.size());
        }
        for (WalkerT &w : bucket) {
            chain_move(app, w, &response);
        }
    }

    /**
     * Move @p w as far as in-memory data allows (re-entry + pre-sample
     * chains), then park or retire it.
     */
    void
    chain_move(App &app, WalkerT w,
               const storage::AsyncLoader::Response *resp)
    {
        const storage::BlockBuffer *buf =
            resp != nullptr ? &resp->buffer : nullptr;
        for (;;) {
            if constexpr (kSecondOrder) {
                if (app.has_candidate(w)) {
                    if (!resolve_candidate(app, w, buf)) {
                        park(w);
                        return;
                    }
                    if (!app.active(w)) {
                        retire_walker();
                        return;
                    }
                    continue;
                }
            }
            if (!app.active(w)) {
                retire_walker();
                return;
            }
            const graph::VertexId v = w.location;
            if (file_->degree(v) == 0) {
                // Dead end: the walk cannot continue (no out-edges).
                retire_walker();
                return;
            }
            if (!advance_once(app, w, v, buf)) {
                ++stats_.stalls;
                park(w);
                return;
            }
        }
    }

    /**
     * Try to move @p w one step using resident data.
     *
     * use_loaded_block (§3.3.5) controls the *priority*: when on, the
     * currently loaded block serves the walker before any reserved
     * pre-sample is consumed (so pre-samples are only spent when the
     * block is not resident); when off, pre-samples are consumed
     * eagerly and the block is only a fallback.
     *
     * @return false when neither source can serve vertex @p v.
     */
    bool
    advance_once(App &app, WalkerT &w, graph::VertexId v,
                 const storage::BlockBuffer *buf)
    {
        if (config_.use_loaded_block && move_via_block(app, w, v, buf)) {
            return true;
        }
        if (config_.presample && move_via_presamples(app, w, v)) {
            return true;
        }
        if (!config_.use_loaded_block &&
            move_via_block(app, w, v, buf)) {
            return true;
        }
        return false;
    }

    /** One step from the loaded block's adjacency, if resident. */
    bool
    move_via_block(App &app, WalkerT &w, graph::VertexId v,
                   const storage::BlockBuffer *buf)
    {
        if (buf == nullptr || buf->info() == nullptr ||
            !buf->info()->contains(v) || !buf->vertex_loaded(*file_, v)) {
            return false;
        }
        const graph::VertexView view = buf->view(*file_, v);
        graph::VertexId next;
        if constexpr (kWalkerAware) {
            next = app.sample_for(w, view);
        } else {
            next = app.sample(view, rng_);
        }
        app.action(w, next, rng_);
        ++stats_.block_steps;
        count_step();
        return true;
    }

    /** One step from the reserved pre-samples, if any remain. */
    bool
    move_via_presamples(App &app, WalkerT &w, graph::VertexId v)
    {
        if constexpr (kWalkerAware) {
            // Never reached (the constructor forces presample off), but
            // guard anyway: shared samples would break per-walker
            // determinism.
            return false;
        }
        PreSampleBuffer *ps = find_presamples(partition_->block_of(v));
        if (ps == nullptr) {
            return false;
        }
        if (ps->is_direct(v)) {
            const graph::VertexView view = ps->direct_view(v);
            const graph::VertexId next = app.sample(view, rng_);
            app.action(w, next, rng_);
            ++stats_.presample_steps;
            count_step();
            return true;
        }
        if (ps->has(v)) {
            const graph::VertexId next = ps->top(v);
            if (app.action(w, next, rng_)) {
                ps->pop(v);
            }
            ++stats_.presample_steps;
            count_step();
            return true;
        }
        ps->record_visit(v);
        return false;
    }

    void
    count_step()
    {
        if constexpr (!kSecondOrder) {
            ++stats_.steps;
        }
        // Second-order: a step completes only when a candidate is
        // accepted (counted in resolve_candidate).
    }

    /**
     * Second order: resolve the pending rejection trial of @p w if the
     * candidate's adjacency is resident.
     * @return false when the candidate's data is not available.
     */
    bool
    resolve_candidate(App &app, WalkerT &w,
                      const storage::BlockBuffer *buf)
    {
        static_assert(kSecondOrder);
        const graph::VertexId c = app.candidate(w);
        graph::VertexView view;
        bool have = false;
        if (buf != nullptr && buf->info() != nullptr &&
            buf->info()->contains(c) && buf->vertex_loaded(*file_, c)) {
            view = buf->view(*file_, c);
            have = true;
        } else if (config_.presample) {
            PreSampleBuffer *ps =
                find_presamples(partition_->block_of(c));
            if (ps != nullptr && ps->is_direct(c)) {
                view = ps->direct_view(c);
                have = true;
            }
        }
        if (!have) {
            return false;
        }
        ++stats_.rejection_trials;
        if (app.rejection(w, view, rng_)) {
            ++stats_.steps;
        } else {
            ++stats_.rejection_rejected;
        }
        return true;
    }

    void
    finalize(util::MemoryBudget &budget, const storage::IoStats &before,
             double cpu_seconds)
    {
        if (shared_budget_ != nullptr || shared_cache_ != nullptr) {
            // Device counters are shared with concurrent engines (and
            // cache hits never reach the device), so attribute I/O
            // from this run's own load results.
            stats_.graph_bytes_read = local_io_bytes_;
            stats_.graph_read_requests = local_io_requests_;
            stats_.io_busy_seconds = local_io_seconds_;
        } else {
            const storage::IoStats after = file_->device().stats();
            stats_.graph_bytes_read =
                after.bytes_read - before.bytes_read;
            stats_.graph_read_requests =
                after.read_requests - before.read_requests;
            stats_.io_busy_seconds =
                after.busy_seconds - before.busy_seconds;
        }
        stats_.edges_loaded =
            stats_.graph_bytes_read / file_->record_bytes();
        if (spill_) {
            stats_.swap_bytes = spill_->swap_bytes();
            stats_.io_busy_seconds +=
                swap_device_->stats().busy_seconds;
        }
        stats_.cpu_seconds = cpu_seconds;
        stats_.peak_memory = budget.peak();
        buffers_.clear();
        pool_.reset();
        index_rsv_.release();
        buffer_rsv_.release();
    }

    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    EngineConfig config_;
    App *app_ = nullptr;

    util::Rng rng_{42};
    engine::RunStats stats_;
    std::uint64_t total_ = 0;
    std::uint64_t generated_ = 0;
    std::optional<std::uint64_t> seed_override_;

    util::MemoryBudget *shared_budget_ = nullptr;
    storage::SharedBlockCache *shared_cache_ = nullptr;
    std::uint64_t local_io_bytes_ = 0;
    std::uint64_t local_io_requests_ = 0;
    double local_io_seconds_ = 0.0;

    util::MemoryBudget *budget_ = nullptr;
    util::MemoryBudget unbudgeted_{0};
    bool single_buffer_ = false;
    util::Reservation index_rsv_;
    util::Reservation buffer_rsv_;

    std::unique_ptr<WalkerPool<WalkerT>> pool_;
    std::unique_ptr<BlockScheduler> scheduler_;
    std::unordered_map<std::uint32_t, std::unique_ptr<PreSampleBuffer>>
        buffers_;
    std::uint64_t presample_bytes_total_ = 0;
    std::uint64_t presample_per_block_ = 0;
    std::uint64_t presample_bytes_used_ = 0;

    std::unique_ptr<storage::MemDevice> swap_device_;
    std::unique_ptr<engine::WalkerSpill> spill_;
};

} // namespace noswalker::core
