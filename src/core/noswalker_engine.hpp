/**
 * @file
 * The NosWalker engine: decoupled, walker-oriented out-of-core random
 * walk processing (paper §3, Algorithm 1/3).
 *
 * Architecture (Figure 6): a background loader thread streams the
 * hottest blocks into block buffers (①); walkers are generated
 * adaptively so their states never touch disk (②); walkers are moved
 * first from the currently loaded block, then from reserved pre-sample
 * buffers (③); and pre-sample buffers are (re)built from each loaded
 * block with visit-history-proportional quotas (④).
 *
 * Intra-block compute is parallel: each loaded block's bucket is
 * sharded across `EngineConfig::step_threads` workers on a persistent
 * util::ThreadPool.  Every walker carries a private SplitMix64 stream
 * derived from (run seed, walker id), so trajectories are a pure
 * function of the seed — walk output is bit-identical at 1, 2, or N
 * step threads.  Workers accumulate into thread-local StepDelta
 * records (stats deltas + park buffers) that the scheduler thread
 * merges in worker-index order after the shard barrier, keeping
 * BlockScheduler and WalkerPool single-writer.
 *
 * The Fig 14 breakdown knobs degrade the engine towards the paper's
 * "base implementation": walker_management=false materializes all
 * walkers up front and charges GraphWalker-style swap I/O;
 * shrink_block=false disables fine-grained loads; presample=false
 * disables the pre-sample pool entirely.
 *
 * Second-order applications (SecondOrderApp) run the Appendix A
 * workflow: Action records a candidate + trial height, and the engine
 * resolves the rejection trial once the candidate's adjacency is
 * resident (from the loaded block or a direct low-degree reservation).
 */
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/block_scheduler.hpp"
#include "core/config.hpp"
#include "core/load_planner.hpp"
#include "core/prefetch_pipeline.hpp"
#include "core/presample_buffer.hpp"
#include "core/step_kernel.hpp"
#include "core/walker_pool.hpp"
#include "engine/app.hpp"
#include "engine/run_stats.hpp"
#include "engine/walker.hpp"
#include "engine/walker_spill.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/async_loader.hpp"
#include "storage/block_buffer_pool.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "storage/shared_block_cache.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace noswalker::core {

/** Disk utilisation the async-I/O path achieves (paper §4.4: 70–90 %). */
inline constexpr double kAsyncIoEfficiency = 0.8;

/**
 * Walker-oriented out-of-core random walk engine.
 *
 * @tparam App  a RandomWalkApp (optionally SecondOrderApp).
 */
template <engine::RandomWalkApp App>
class NosWalkerEngine {
  public:
    using WalkerT = typename App::WalkerT;
    using AppT = App;
    /** What the pool parks: the app walker + its sampling stream. */
    using Record = engine::Stepped<WalkerT>;
    static constexpr bool kSecondOrder = engine::kIsSecondOrder<App>;
    static constexpr bool kWalkerAware = engine::kIsWalkerAware<App>;

    /**
     * @param file  the on-disk graph.
     * @param partition  1-D block partition of @p file.
     * @param config  engine configuration (validated here).
     */
    NosWalkerEngine(const graph::GraphFile &file,
                    const graph::BlockPartition &partition,
                    EngineConfig config)
        : file_(&file), partition_(&partition), config_(config)
    {
        config_.validate();
        if constexpr (kWalkerAware) {
            // Shared pre-samples would make a request's output depend
            // on what else shares the run; walker-aware apps forgo
            // them (their contract is batch-composition independence).
            config_.presample = false;
        }
    }

    /**
     * Attach a budget shared with other engines (the walk service's
     * admission-control pool).  When set, run() reserves from it
     * instead of a run-local budget, and per-run I/O counters are
     * accumulated locally instead of from shared device deltas.
     * Pass nullptr to detach.
     */
    void set_shared_budget(util::MemoryBudget *budget)
    {
        shared_budget_ = budget;
    }

    /** Serve coarse loads through a cache shared with other engines. */
    void set_shared_cache(storage::SharedBlockCache *cache)
    {
        shared_cache_ = cache;
    }

    /**
     * Step on a pool shared with other engines (the walk service hands
     * every worker the same pool) instead of hiring a private one.
     * The pool serializes concurrent engines internally.  Pass nullptr
     * to detach; ignored while step_threads == 1.
     */
    void set_step_pool(util::ThreadPool *pool) { external_pool_ = pool; }

    /**
     * Fairness weight of the next run's load plans (walk-service
     * tenants; DESIGN.md §13).  Values in (0, 1] gate the fraction of
     * speculative slots a plan may commit; anything else means full
     * weight.  Never affects walk output — only which bytes are
     * speculated early.
     */
    void set_plan_weight(double weight) { plan_weight_ = weight; }

    /** run() with a per-run seed (per-batch walker injection). */
    engine::RunStats
    run(App &app, std::uint64_t total_walkers, std::uint64_t seed)
    {
        seed_override_ = seed;
        return run(app, total_walkers);
    }

    /** Per-bucket emigrant consignment sink (overlapped shard
     *  migration, DESIGN.md §11).  Invoked on the engine's scheduler
     *  thread at deterministic flush points — after each processed
     *  bucket's merge — with the emigrants accumulated since the last
     *  flush, in outbox order.  Must not re-enter the engine. */
    using EmigrantSink = std::function<void(std::vector<Record> &&)>;

    /**
     * Route shard-mode emigrants through @p sink incrementally instead
     * of accumulating them all in the run_records out-vector; records
     * still pending at quiescence stay in the out-vector (the caller's
     * final flush).  Pass nullptr to restore barrier behaviour.  Only
     * consulted in shard mode; never changes walk output — it only
     * moves already-merged records out of the engine earlier.
     */
    void set_emigrant_sink(EmigrantSink sink)
    {
        emigrant_sink_ = std::move(sink);
    }

    /**
     * Shard-mode entry (one migration round of shard::ShardedEngine):
     * execute exactly the pre-generated @p records, treating only
     * blocks in [@p first_block, @p end_block) as local.  A record
     * whose waiting vertex falls outside the local range is not
     * stepped; it is appended to @p emigrants (with its live RNG
     * stream) for the caller to route to the owning shard.
     *
     * Pre-sampling defaults off for the round: reservoir contents
     * depend on refill timing, which varies with the shard count, and
     * would break the cross-shard bit-identity contract (DESIGN.md
     * §11).  config_.shard_presample re-enables it with shard-local
     * reservoirs whose contents are a pure function of (seed, shard
     * plan).  Per-walker streams are untouched by migration, so each
     * trajectory stays a pure function of (seed, walker id, graph).
     */
    engine::RunStats
    run_records(App &app, std::vector<Record> records, std::uint64_t seed,
                std::uint32_t first_block, std::uint32_t end_block,
                std::vector<Record> *emigrants)
    {
        if (emigrants == nullptr || first_block >= end_block ||
            end_block > partition_->num_blocks()) {
            throw util::ConfigError(
                "run_records: bad shard block range or null emigrants");
        }
        shard_mode_ = true;
        owned_begin_ = first_block;
        owned_end_ = end_block;
        emigrants_out_ = emigrants;
        seed_records_ = std::move(records);
        seed_override_ = seed;
        const std::uint64_t total = seed_records_.size();
        engine::RunStats out;
        try {
            out = run(app, total);
        } catch (...) {
            exit_shard_mode();
            throw;
        }
        exit_shard_mode();
        return out;
    }

    /**
     * Execute @p total_walkers walkers of @p app to completion.
     *
     * Deterministic for a fixed (config.seed, app, graph) — including
     * across step_threads values: per-walker streams make every
     * trajectory independent of thread interleaving.
     */
    engine::RunStats
    run(App &app, std::uint64_t total_walkers)
    {
        util::Timer wall;
        reset(total_walkers);
        app_ = &app;
        util::MemoryBudget local_budget(
            shared_budget_ != nullptr ? 0 : config_.memory_budget);
        util::MemoryBudget &budget =
            shared_budget_ != nullptr ? *shared_budget_ : local_budget;
        setup(budget, total_walkers);

        storage::BlockReader reader(*file_, unbudgeted_, 8ULL << 20,
                                    shared_cache_);
        storage::BlockBufferPool buffer_pool;
        storage::AsyncLoader loader(
            reader, config_.loader_threads > 0 && !single_buffer_,
            std::max<std::size_t>(prefetch_slots_, 1), &buffer_pool);
        PrefetchPipeline pipeline(
            loader, reader, buffer_pool, prefetch_slots_, shared_cache_,
            file_->device().model().queue_latency,
            config_.prefetch_reorder_window);
        const storage::IoStats io_before = file_->device().stats();

        App &a = app;
        util::Timer cpu;
        double cpu_seconds = 0.0;

        // Prime the pool so the scheduler has work.
        cpu.reset();
        admit_walkers(a, nullptr);
        cpu_seconds += cpu.seconds();

        while (generated_ < total_ || pool_->live() > 0) {
            pipeline.poll();
            const std::uint32_t target = choose_block();
            if (target == BlockScheduler::kNoBlock) {
                // Only in-flight generation remains.
                cpu.reset();
                admit_walkers(a, nullptr);
                cpu_seconds += cpu.seconds();
                flush_emigrants();
                continue;
            }
            // The processed block is always the hottest at choice time
            // — a pure function of (seed, app, graph), never of the
            // prefetch depth.  Speculation only changes how its bytes
            // arrive, so walk output is bit-identical at every depth.
            auto response = pipeline.obtain(make_request(target));

            cpu.reset();
            if (scheduler_->count(target) > 0) {
                process_block(a, response);
            } else {
                // Stale load: walkers left before the bytes arrived.
                ++stats_.stalls;
            }
            admit_walkers(a, &response);
            cpu_seconds += cpu.seconds();
            // Per-bucket flush point (§11): every emigrant merged by
            // this iteration ships now, while later buckets still step.
            flush_emigrants();

            pipeline.recycle(std::move(response.buffer));
            pipeline.sweep(*scheduler_);

            // Nominate the lookahead *after* this round's parking: the
            // scheduler counts now decide the next rounds' targets, so
            // the top-K picks are exactly the blocks about to be
            // chosen and the next obtain is served from the pipeline.
            top_up_speculation(pipeline);
        }
        pipeline.finish();

        finalize(budget, io_before, cpu_seconds, pipeline.stats());
        stats_.wall_seconds = wall.seconds();
        return stats_;
    }

  private:
    /** The interleaved cohort stepping loop reuses the engine's private
     *  resolution helpers so per-step semantics live in one place
     *  (DESIGN.md §12). */
    template <typename E>
    friend class StepKernel;

    /**
     * One step worker's private accumulator: stats deltas plus walkers
     * to park.  Merged into the engine's single-writer structures by
     * apply_delta() on the scheduler thread, in worker-index order, so
     * the merge is deterministic.
     */
    struct StepDelta {
        std::uint64_t steps = 0;
        std::uint64_t block_steps = 0;
        std::uint64_t presample_steps = 0;
        std::uint64_t stalls = 0;
        std::uint64_t retired = 0;
        std::uint64_t rejection_trials = 0;
        std::uint64_t rejection_rejected = 0;
        std::uint64_t kernel_cohorts = 0;
        std::uint64_t kernel_prefetches = 0;
        std::uint64_t kernel_scalar_fallbacks = 0;
        std::vector<std::pair<std::uint32_t, Record>> parked;
        /** Shard mode: walkers whose waiting block another shard owns. */
        std::vector<Record> emigrants;
    };

    /**
     * Hand the emigrants accumulated since the last flush to the sink
     * (overlapped shard migration).  Scheduler thread only, after the
     * merge barrier — the records are final and in outbox order.  A
     * no-op without a sink (barrier mode): everything stays in the
     * run_records out-vector for the caller's single post.
     */
    void
    flush_emigrants()
    {
        if (!emigrant_sink_ || emigrants_out_ == nullptr ||
            emigrants_out_->empty()) {
            return;
        }
        std::vector<Record> out;
        out.swap(*emigrants_out_);
        emigrant_sink_(std::move(out));
    }

    void
    exit_shard_mode()
    {
        shard_mode_ = false;
        owned_begin_ = 0;
        owned_end_ = 0;
        emigrants_out_ = nullptr;
        seed_records_.clear();
    }

    /** Whether block @p b is local (always true outside shard mode). */
    bool
    owns_block(std::uint32_t b) const
    {
        return !shard_mode_ || (b >= owned_begin_ && b < owned_end_);
    }

    void
    reset(std::uint64_t total)
    {
        stats_ = engine::RunStats{};
        stats_.engine = "NosWalker";
        stats_.pipelined = true; // set false later in single-buffer mode
        run_seed_ = seed_override_.value_or(config_.seed);
        seed_override_.reset();
        // Shard rounds pre-sample only when shard_presample opts in:
        // reservoir contents vary with the shard count, so the default
        // preserves cross-shard-count bit-identity (§11).
        presample_enabled_ =
            config_.presample &&
            (!shard_mode_ || config_.shard_presample);
        // Domain-separated stream root for pre-sample fills so they
        // never collide with walker streams.
        presample_seed_ =
            util::derive_stream(run_seed_, 0x7072652d73616d70ULL);
        stats_.io_efficiency = kAsyncIoEfficiency;
        total_ = total;
        generated_ = 0;
        buffers_.clear();
        presample_gen_.clear();
        pool_.reset();
        scheduler_.reset();
        spill_.reset();
        swap_device_.reset();
        presample_bytes_used_ = 0;
        presample_bytes_total_ = 0;
        local_io_bytes_ = 0;
        local_io_requests_ = 0;
        local_io_seconds_ = 0.0;
        planner_.reset();
        flow_src_ = BlockScheduler::kNoBlock;
    }

    /** Reserve the fixed memory regions and create the components. */
    void
    setup(util::MemoryBudget &budget, std::uint64_t total)
    {
        // CSR index stays in memory (§3.3.1).
        index_rsv_ = util::Reservation(budget, file_->index_bytes(),
                                       "csr index");

        // Resident block buffers: the depth-independent baseline of
        // two (the block being processed plus one lookahead, as in
        // double buffering), charged once up front — the buffer pool
        // recycles the storage, so the high-water mark is the whole
        // charge.  Extra speculative slots are reserved *last*, from
        // whatever the walker pool and pre-sample pool leave over, so
        // the walker cap and pre-sample sizing — and therefore the
        // walk schedule — never depend on prefetch_depth.
        const std::uint64_t page = storage::BlockReader::kPageBytes;
        const std::uint64_t aligned =
            (partition_->max_block_bytes() / page + 2) * page;
        const std::uint64_t buffer_share = (budget.available() * 35) / 100;
        single_buffer_ =
            budget.limit() != 0 && 2 * aligned > buffer_share;
        buffer_rsv_ = util::Reservation(
            budget, single_buffer_ ? aligned : 2 * aligned,
            "block buffers");

        const std::uint64_t rest = budget.available();
        const std::uint32_t num_blocks = partition_->num_blocks();
        scheduler_ = std::make_unique<BlockScheduler>(
            num_blocks, config_.alpha, file_->edge_region_bytes(),
            static_cast<std::uint32_t>(page));

        if (config_.plan_window > 0) {
            // plan_window == 0 must stay byte-for-byte greedy, so the
            // planner (and its flow bookkeeping) only exists when the
            // window is open (§13).
            LoadPlanner::Options opts;
            opts.window = config_.plan_window;
            opts.tenant_weight = plan_weight_;
            planner_ = std::make_unique<LoadPlanner>(*partition_, opts);
        }

        if (config_.walker_management) {
            std::uint64_t cap = config_.max_walkers;
            if (cap == 0) {
                const std::uint64_t by_budget =
                    budget.limit() == 0
                        ? std::uint64_t{1} << 18
                        : static_cast<std::uint64_t>(
                              config_.walker_memory_fraction *
                              static_cast<double>(rest)) /
                              sizeof(Record);
                cap = std::max<std::uint64_t>(
                    64, std::min<std::uint64_t>(by_budget,
                                                std::uint64_t{1} << 20));
            }
            cap = std::max<std::uint64_t>(1, std::min(cap, total));
            pool_ = std::make_unique<WalkerPool<Record>>(num_blocks, cap,
                                                         budget);
        } else {
            // Base-implementation mode: all walker states exist up
            // front; only a bounded buffer is memory-resident and the
            // overflow swaps through a dedicated device (§2.4.2).
            const std::uint64_t buffer_bytes = std::max<std::uint64_t>(
                sizeof(Record),
                budget.limit() == 0
                    ? total * sizeof(Record)
                    : static_cast<std::uint64_t>(
                          config_.walker_memory_fraction *
                          static_cast<double>(rest)));
            const std::uint64_t resident_cap =
                std::max<std::uint64_t>(1, buffer_bytes / sizeof(Record));
            pool_ = std::make_unique<WalkerPool<Record>>(
                num_blocks, std::max<std::uint64_t>(total, 1), budget,
                std::min(buffer_bytes, total * sizeof(Record)));
            swap_device_ = std::make_unique<storage::MemDevice>(
                file_->device().model());
            // Swap traffic is charged per app-walker state: the stream
            // word is engine bookkeeping, not "vertex data" (§2.4.2).
            spill_ = std::make_unique<engine::WalkerSpill>(
                *swap_device_, sizeof(WalkerT), resident_cap, num_blocks);
        }

        if (presample_enabled_) {
            std::uint64_t ps_total = std::max<std::uint64_t>(
                4096, budget.limit() == 0
                          ? std::uint64_t{64} << 20
                          : static_cast<std::uint64_t>(
                                config_.presample_memory_fraction *
                                static_cast<double>(budget.available())));
            if (budget.limit() != 0) {
                // Never over-claim a nearly spent budget: a too-small
                // pool degrades to skipped fills, not a failed run.
                ps_total = std::min(ps_total, budget.available());
            }
            presample_bytes_total_ = ps_total;
            // Hot blocks deserve deep buffers: cap one block at a
            // quarter of the pool and let coldest-buffer eviction
            // arbitrate the rest (§3.3.3).
            presample_per_block_ =
                std::max<std::uint64_t>(4096, ps_total / 4);
            // Claim the pool share up front and hand the buffers their
            // own accountant: fills then compete only with each other
            // for a cap that is identical at every prefetch depth,
            // never with the speculation buffers on the global budget
            // (§10) — otherwise eviction pressure, pre-sample content,
            // and the walk itself would vary with the depth.
            ps_rsv_ = util::Reservation(budget, ps_total,
                                        "presample pool");
            presample_budget_ =
                std::make_unique<util::MemoryBudget>(ps_total);
        }

        // Speculative lookahead slots beyond the baseline buffer pair,
        // funded strictly from the slack left after the pre-sample
        // pool's up-front claim.  Shrinking the depth never changes
        // walk output — the engine always processes the scheduler's
        // hottest block (§10).
        prefetch_slots_ = 0;
        if (!single_buffer_ && config_.prefetch_depth > 0) {
            prefetch_slots_ = config_.prefetch_depth;
            if (budget.limit() != 0) {
                const std::uint64_t spare = budget.available();
                while (prefetch_slots_ > 1 &&
                       (prefetch_slots_ - 1) * aligned > spare) {
                    --prefetch_slots_;
                }
            }
            if (prefetch_slots_ > 1) {
                spec_rsv_ = util::Reservation(
                    budget, (prefetch_slots_ - 1) * aligned,
                    "speculation buffers");
            }
        }
        budget_ = &budget;
        stats_.pipelined = !single_buffer_;

        if (config_.step_threads > 1) {
            if (external_pool_ != nullptr) {
                step_pool_ = external_pool_;
            } else {
                if (!owned_pool_ ||
                    owned_pool_->hired() != config_.step_threads - 1) {
                    owned_pool_ = std::make_unique<util::ThreadPool>(
                        config_.step_threads - 1);
                }
                step_pool_ = owned_pool_.get();
            }
        } else {
            step_pool_ = nullptr;
        }
    }

    storage::AsyncLoader::Request
    make_request(std::uint32_t block)
    {
        storage::AsyncLoader::Request request;
        request.block = &partition_->block(block);
        request.fine = config_.shrink_block &&
                       scheduler_->fine_mode(pool_->live());
        if (request.fine) {
            request.needed.reserve(pool_->parked(block));
            for (const Record &rec : peek_bucket(block)) {
                request.needed.push_back(waiting_vertex_of(rec));
            }
        }
        return request;
    }

    std::uint32_t
    choose_block() const
    {
        return scheduler_->hottest();
    }

    /**
     * Nominate the next hottest blocks for speculative coarse loads
     * (§10).  Speculation pauses once fine mode fires: a fine needed
     * list must be frozen at choice time, and coarse lookahead of tiny
     * tail buckets would thrash the slots.
     */
    void
    top_up_speculation(PrefetchPipeline &pipeline)
    {
        if (pipeline.depth() == 0 || !pipeline.can_speculate() ||
            (config_.shrink_block && scheduler_->fine_mode_active())) {
            return;
        }
        exclude_scratch_.clear();
        pipeline.collect_covered(exclude_scratch_);
        if (planner_ != nullptr) {
            // Windowed lookahead (§13): score prefetch_depth +
            // plan_window candidates by expected steps-per-byte and
            // commit the best sequence.  The processed block is still
            // always the scheduler's hottest, so planning never
            // changes walk output — only which bytes arrive early.
            const std::vector<std::uint32_t> &picks = planner_->plan(
                *scheduler_, shared_cache_, exclude_scratch_,
                pipeline.depth());
            for (const std::uint32_t next : picks) {
                if (!pipeline.can_speculate()) {
                    break;
                }
                pipeline.speculate(partition_->block(next));
                ++stats_.planned_loads;
            }
            return;
        }
        const std::vector<std::uint32_t> picks =
            scheduler_->top_k_excluding(pipeline.depth(),
                                        exclude_scratch_);
        for (const std::uint32_t next : picks) {
            if (!pipeline.can_speculate()) {
                break;
            }
            pipeline.speculate(partition_->block(next));
        }
    }

    /** Bucket view without draining it (fine-mode needed lists). */
    const std::vector<Record> &
    peek_bucket(std::uint32_t block) const
    {
        return pool_->bucket_view(block);
    }

    graph::VertexId
    waiting_vertex_of(const Record &rec) const
    {
        if constexpr (kSecondOrder) {
            return app_->has_candidate(rec.w) ? app_->candidate(rec.w)
                                              : rec.w.location;
        } else {
            return rec.w.location;
        }
    }

    /** Generate walkers while the pool admits them (Algorithm 1 l.7). */
    void
    admit_walkers(App &app, const storage::AsyncLoader::Response *resp)
    {
        app_ = &app;
        if (!config_.walker_management) {
            // All walkers are materialized once, GraphChi-style.
            while (generated_ < total_) {
                Record rec = next_record(app);
                ++generated_;
                pool_->admit();
                park_now(std::move(rec));
            }
            return;
        }
        std::vector<Record> fresh;
        while (generated_ < total_ && pool_->can_admit()) {
            fresh.clear();
            while (generated_ < total_ && pool_->can_admit()) {
                fresh.push_back(next_record(app));
                ++generated_;
                pool_->admit();
            }
            // Stepping the batch retires some walkers, freeing pool
            // slots for the next admission wave.
            step_records(app, fresh, resp);
        }
    }

    /** Generate walker @p id with its private sampling stream. */
    Record
    make_record(App &app, std::uint64_t id)
    {
        Record rec;
        rec.w = app.generate(id);
        rec.rng_state = util::derive_stream(run_seed_, id);
        return rec;
    }

    /**
     * The next walker to admit: freshly generated, or — in shard mode
     * — the next pre-routed record (generated once by the sharded
     * orchestrator; its stream travels with it across rounds).
     */
    Record
    next_record(App &app)
    {
        if (shard_mode_) {
            return std::move(seed_records_[generated_]);
        }
        return make_record(app, generated_);
    }

    /** Park @p rec at its waiting block (scheduler thread only). */
    void
    park_now(Record rec)
    {
        const std::uint32_t b =
            partition_->block_of(waiting_vertex_of(rec));
        if (!owns_block(b)) {
            // Another shard owns the data; hand the walker (and its
            // live stream) to the round's outbox.  The pool slot is
            // freed but the walker is *not* retired — the destination
            // shard continues it next round.
            emigrants_out_->push_back(std::move(rec));
            pool_->retire_n(1);
            return;
        }
        pool_->park(b, rec);
        scheduler_->add_walker(b);
        if (spill_) {
            spill_->park(b, 1);
        }
    }

    /** Build/refill the block's pre-sample buffer from a coarse load. */
    void
    refill_presamples(App &app,
                      const storage::AsyncLoader::Response &response)
    {
        const graph::BlockInfo &block = *response.block;
        PreSampleBuffer::BuildParams params;
        params.max_bytes = presample_per_block_;
        params.base_quota = config_.presamples_per_vertex;
        params.max_quota = config_.max_presamples_per_vertex;
        params.low_degree_cutoff = config_.low_degree_cutoff;

        auto it = buffers_.find(block.id);
        const PreSampleBuffer *previous =
            it != buffers_.end() ? it->second.get() : nullptr;
        // Rebuild only "when it should sample new edges" (§3.3.2):
        // when the buffer is substantially drained or walkers have
        // been stalling on it (unmet demand).  Otherwise the reserved
        // samples stay valid and rebuilding would discard them.
        if (previous != nullptr &&
            previous->consumed_fraction() < 0.3 &&
            previous->stall_count() <
                std::max<std::uint64_t>(64,
                                        previous->slot_count() / 8)) {
            return;
        }

        // Fills charge the pool's own accountant, never the global
        // budget: eviction pressure here must depend only on the
        // depth-invariant pool cap, not on whatever else (speculation
        // buffers, concurrent tenants) the global budget holds (§10).
        std::unique_ptr<PreSampleBuffer> fresh;
        for (;;) {
            try {
                fresh = std::make_unique<PreSampleBuffer>(
                    *file_, block, params, previous, *presample_budget_);
                break;
            } catch (const util::BudgetExceeded &) {
                if (!evict_coldest_buffer(block.id)) {
                    return; // cannot fit: skip pre-sampling this block
                }
                // Eviction may have invalidated `previous`.
                const auto again = buffers_.find(block.id);
                previous =
                    again != buffers_.end() ? again->second.get() : nullptr;
            }
        }

        fill_buffer(app, response, *fresh);
        buffers_[block.id] = std::move(fresh);

        std::uint64_t now = 0;
        for (const auto &[id, buf] : buffers_) {
            now += buf->memory_bytes();
        }
        presample_bytes_used_ = std::max(presample_bytes_used_, now);
    }

    /**
     * Fill @p fresh from the loaded block, fanned out over the step
     * pool in fixed-size vertex chunks.  Each chunk samples from a
     * stream derived from (run seed, block, generation, chunk), so the
     * buffer contents are independent of the thread count.
     */
    void
    fill_buffer(App &app, const storage::AsyncLoader::Response &response,
                PreSampleBuffer &fresh)
    {
        const graph::BlockInfo &block = *response.block;
        const std::uint64_t gen = ++presample_gen_[block.id];
        const std::uint64_t block_seed = util::derive_stream(
            util::derive_stream(presample_seed_, block.id), gen);
        constexpr graph::VertexId kChunk = 256;
        const graph::VertexId nv = block.num_vertices();
        const std::size_t chunks = (static_cast<std::size_t>(nv) +
                                    kChunk - 1) / kChunk;
        const auto fill_chunk = [&](std::size_t c) {
            util::Rng rng(util::derive_stream(block_seed, c));
            auto sampler = [&](const graph::VertexView &view) {
                return app.sample(view, rng);
            };
            const graph::VertexId begin =
                block.first_vertex +
                static_cast<graph::VertexId>(c) * kChunk;
            const graph::VertexId end =
                std::min(block.end_vertex, begin + kChunk);
            for (graph::VertexId v = begin; v < end; ++v) {
                if (fresh.quota(v) == 0) {
                    continue;
                }
                fresh.fill_vertex(response.buffer.view(*file_, v),
                                  sampler);
            }
        };
        if (step_pool_ != nullptr && chunks > 1) {
            step_pool_->run(chunks, fill_chunk);
        } else {
            for (std::size_t c = 0; c < chunks; ++c) {
                fill_chunk(c);
            }
        }
    }

    /** Drop the buffer of the block with the fewest waiting walkers. */
    bool
    evict_coldest_buffer(std::uint32_t except)
    {
        std::uint32_t victim = BlockScheduler::kNoBlock;
        std::uint64_t coldest = ~std::uint64_t{0};
        for (const auto &[id, buf] : buffers_) {
            if (id == except) {
                continue;
            }
            const std::uint64_t c = scheduler_->count(id);
            if (c < coldest) {
                coldest = c;
                victim = id;
            }
        }
        if (victim == BlockScheduler::kNoBlock) {
            return false;
        }
        buffers_.erase(victim);
        return true;
    }

    PreSampleBuffer *
    find_presamples(std::uint32_t block)
    {
        const auto it = buffers_.find(block);
        return it == buffers_.end() ? nullptr : it->second.get();
    }

    /** Service the freshly loaded block (Algorithm 1 lines 9-12). */
    void
    process_block(App &app, const storage::AsyncLoader::Response &response)
    {
        const std::uint32_t id = response.block->id;
        if (!response.fine && presample_enabled_) {
            refill_presamples(app, response);
        }
        if (spill_) {
            spill_->activate(id);
        }
        std::vector<Record> bucket = pool_->take_bucket(id);
        scheduler_->remove_walkers(id, bucket.size());
        if (spill_) {
            spill_->retire(id, bucket.size());
        }
        // Walkers parked out of this batch flowed *from* this block —
        // the signal the planner's one-step transition estimate feeds
        // on (§13).
        flow_src_ = id;
        step_records(app, bucket, &response);
        flow_src_ = BlockScheduler::kNoBlock;
    }

    /**
     * Shards to split @p n walkers into: enough per shard to amortize
     * the fork-join, a few per thread so uneven chain lengths balance
     * through the pool's dynamic task claim.
     */
    std::size_t
    shard_count(std::size_t n) const
    {
        if (step_pool_ == nullptr) {
            return 1;
        }
        constexpr std::size_t kMinPerShard = 16;
        const std::size_t by_size = (n + kMinPerShard - 1) / kMinPerShard;
        return std::min<std::size_t>(
            by_size, std::size_t{4} * config_.step_threads);
    }

    /**
     * Step every record to its next park/retire point, in parallel
     * when the pool is attached.  Consumes @p records.
     */
    void
    step_records(App &app, std::vector<Record> &records,
                 const storage::AsyncLoader::Response *resp)
    {
        if (records.empty()) {
            return;
        }
        const std::size_t shards = shard_count(records.size());
        if (shards <= 1) {
            StepDelta delta;
            step_span(app, records, 0, records.size(), resp, delta);
            apply_delta(delta);
        } else {
            std::vector<StepDelta> deltas(shards);
            const std::size_t per =
                (records.size() + shards - 1) / shards;
            step_pool_->run(shards, [&](std::size_t s) {
                const std::size_t begin = s * per;
                const std::size_t end =
                    std::min(records.size(), begin + per);
                step_span(app, records, begin, end, resp, deltas[s]);
            });
            // Shard barrier passed: merge in worker-index order so the
            // single-writer structures see a deterministic sequence.
            for (StepDelta &delta : deltas) {
                apply_delta(delta);
            }
        }
        records.clear();
        // Dried reservoirs become visible to the *next* round only:
        // the drying point is then a function of deterministic
        // per-round draw totals, not of thread interleaving (and the
        // sequential path publishes at the same boundary, so output is
        // identical at any step-thread count).
        for (auto &[id, buf] : buffers_) {
            buf->publish_drain();
        }
    }

    /**
     * Step records[begin, end) — one worker shard's span — through the
     * cohort kernel, or the legacy scalar loop when the kernel is off
     * (step_cohort <= 1) or the span is too small to interleave.  Both
     * paths produce bit-identical walk output (DESIGN.md §12).
     */
    void
    step_span(App &app, std::vector<Record> &records, std::size_t begin,
              std::size_t end, const storage::AsyncLoader::Response *resp,
              StepDelta &delta)
    {
        if (begin >= end) {
            return;
        }
        if (config_.step_cohort >= 2 && end - begin >= 2) {
            const storage::BlockBuffer *buf =
                resp != nullptr ? &resp->buffer : nullptr;
            StepKernel<NosWalkerEngine>::run(*this, app, records, begin,
                                             end, buf, delta,
                                             config_.step_cohort);
            return;
        }
        ++delta.kernel_scalar_fallbacks;
        for (std::size_t i = begin; i < end; ++i) {
            chain_move(app, std::move(records[i]), resp, delta);
        }
    }

    /** Fold one worker's delta into the engine (scheduler thread). */
    void
    apply_delta(StepDelta &delta)
    {
        stats_.steps += delta.steps;
        stats_.block_steps += delta.block_steps;
        stats_.presample_steps += delta.presample_steps;
        stats_.stalls += delta.stalls;
        stats_.rejection_trials += delta.rejection_trials;
        stats_.rejection_rejected += delta.rejection_rejected;
        stats_.kernel_cohorts += delta.kernel_cohorts;
        stats_.kernel_prefetches += delta.kernel_prefetches;
        stats_.kernel_scalar_fallbacks += delta.kernel_scalar_fallbacks;
        stats_.walkers += delta.retired;
        // Emigrants free their pool slot without retiring: their walk
        // continues on the owning shard next round.  Worker-index merge
        // order keeps the outbox sequence deterministic.
        pool_->retire_n(delta.retired + delta.emigrants.size());
        for (Record &rec : delta.emigrants) {
            emigrants_out_->push_back(std::move(rec));
        }
        if (planner_ != nullptr) {
            // Single-writer merge point for both the scalar and the
            // cohort-kernel paths: every parked walker is one observed
            // (processed block → waiting block) transition.  Fresh
            // injections (flow_src_ == kNoBlock) are ignored — they
            // are arrivals, not flow.
            planner_->record_exits(flow_src_,
                                   delta.retired +
                                       delta.emigrants.size());
            for (const auto &[block, rec] : delta.parked) {
                planner_->record_flow(flow_src_, block);
            }
        }
        for (auto &[block, rec] : delta.parked) {
            pool_->park(block, rec);
            scheduler_->add_walker(block);
            if (spill_) {
                spill_->park(block, 1);
            }
        }
    }

    /**
     * Move @p rec as far as in-memory data allows (re-entry + pre-
     * sample chains), then record its park or retirement in @p delta.
     * Runs on step workers: touches only read-only engine state, the
     * walker itself, pre-sample atomics, and @p delta.
     */
    void
    chain_move(App &app, Record rec,
               const storage::AsyncLoader::Response *resp,
               StepDelta &delta)
    {
        const storage::BlockBuffer *buf =
            resp != nullptr ? &resp->buffer : nullptr;
        for (;;) {
            if constexpr (kSecondOrder) {
                if (app.has_candidate(rec.w)) {
                    if (!resolve_candidate(app, rec, buf, delta)) {
                        park_into(std::move(rec), delta);
                        return;
                    }
                    if (!app.active(rec.w)) {
                        ++delta.retired;
                        return;
                    }
                    continue;
                }
            }
            if (!app.active(rec.w)) {
                ++delta.retired;
                return;
            }
            const graph::VertexId v = rec.w.location;
            if (file_->degree(v) == 0) {
                // Dead end: the walk cannot continue (no out-edges).
                ++delta.retired;
                return;
            }
            if (!advance_once(app, rec, v, buf, delta)) {
                if (park_into(std::move(rec), delta)) {
                    ++delta.stalls;
                }
                return;
            }
        }
    }

    /**
     * Defer parking to the post-barrier merge (thread-local buffer).
     * @return false when the walker emigrated instead of parking: its
     *         waiting block belongs to another shard.
     */
    bool
    park_into(Record rec, StepDelta &delta)
    {
        const std::uint32_t b =
            partition_->block_of(waiting_vertex_of(rec));
        if (!owns_block(b)) {
            delta.emigrants.push_back(std::move(rec));
            return false;
        }
        delta.parked.emplace_back(b, std::move(rec));
        return true;
    }

    /**
     * Try to move @p rec one step using resident data.
     *
     * use_loaded_block (§3.3.5) controls the *priority*: when on, the
     * currently loaded block serves the walker before any reserved
     * pre-sample is consumed (so pre-samples are only spent when the
     * block is not resident); when off, pre-samples are consumed
     * eagerly and the block is only a fallback.
     *
     * @return false when neither source can serve vertex @p v.
     */
    bool
    advance_once(App &app, Record &rec, graph::VertexId v,
                 const storage::BlockBuffer *buf, StepDelta &delta)
    {
        if (config_.use_loaded_block &&
            move_via_block(app, rec, v, buf, delta)) {
            return true;
        }
        if (presample_enabled_ &&
            move_via_presamples(app, rec, v, delta)) {
            return true;
        }
        if (!config_.use_loaded_block &&
            move_via_block(app, rec, v, buf, delta)) {
            return true;
        }
        return false;
    }

    /** One step from the loaded block's adjacency, if resident. */
    bool
    move_via_block(App &app, Record &rec, graph::VertexId v,
                   const storage::BlockBuffer *buf, StepDelta &delta)
    {
        if (buf == nullptr || buf->info() == nullptr ||
            !buf->info()->contains(v) || !buf->vertex_loaded(*file_, v)) {
            return false;
        }
        const graph::VertexView view = buf->view(*file_, v);
        util::Rng rng(util::splitmix_next(rec.rng_state));
        graph::VertexId next;
        if constexpr (kWalkerAware) {
            next = app.sample_for(rec.w, view);
        } else {
            next = app.sample(view, rng);
        }
        app.action(rec.w, next, rng);
        ++delta.block_steps;
        count_step(delta);
        return true;
    }

    /** One step from the reserved pre-samples, if the buffer holds
     *  this generation's reservoir for @p v. */
    bool
    move_via_presamples(App &app, Record &rec, graph::VertexId v,
                        StepDelta &delta)
    {
        if constexpr (kWalkerAware) {
            // Never reached (the constructor forces presample off), but
            // guard anyway: shared samples would break the walker-aware
            // batch-composition-independence contract.
            return false;
        }
        PreSampleBuffer *ps = find_presamples(partition_->block_of(v));
        if (ps == nullptr) {
            return false;
        }
        if (ps->is_direct(v)) {
            const graph::VertexView view = ps->direct_view(v);
            util::Rng rng(util::splitmix_next(rec.rng_state));
            const graph::VertexId next = app.sample(view, rng);
            app.action(rec.w, next, rng);
            ++delta.presample_steps;
            count_step(delta);
            return true;
        }
        if (ps->has(v)) {
            // The walker's own stream picks the slot, so the step is
            // identical no matter which thread executes it.
            util::Rng rng(util::splitmix_next(rec.rng_state));
            const graph::VertexId next = ps->sample(v, rng);
            if (app.action(rec.w, next, rng)) {
                ps->consume(v);
            }
            ++delta.presample_steps;
            count_step(delta);
            return true;
        }
        ps->record_visit(v);
        return false;
    }

    void
    count_step(StepDelta &delta)
    {
        if constexpr (!kSecondOrder) {
            ++delta.steps;
        }
        // Second-order: a step completes only when a candidate is
        // accepted (counted in resolve_candidate).
    }

    /**
     * Second order: resolve the pending rejection trial of @p rec if
     * the candidate's adjacency is resident.
     * @return false when the candidate's data is not available.
     */
    bool
    resolve_candidate(App &app, Record &rec,
                      const storage::BlockBuffer *buf, StepDelta &delta)
    {
        static_assert(kSecondOrder);
        const graph::VertexId c = app.candidate(rec.w);
        graph::VertexView view;
        bool have = false;
        if (buf != nullptr && buf->info() != nullptr &&
            buf->info()->contains(c) && buf->vertex_loaded(*file_, c)) {
            view = buf->view(*file_, c);
            have = true;
        } else if (presample_enabled_) {
            PreSampleBuffer *ps =
                find_presamples(partition_->block_of(c));
            if (ps != nullptr && ps->is_direct(c)) {
                view = ps->direct_view(c);
                have = true;
            }
        }
        if (!have) {
            return false;
        }
        ++delta.rejection_trials;
        util::Rng rng(util::splitmix_next(rec.rng_state));
        if (app.rejection(rec.w, view, rng)) {
            ++delta.steps;
        } else {
            ++delta.rejection_rejected;
        }
        return true;
    }

    void
    finalize(util::MemoryBudget &budget, const storage::IoStats &before,
             double cpu_seconds, const PrefetchPipeline::Stats &pipeline)
    {
        // The pipeline accounts every consumed response — including
        // speculative loads demoted unprocessed — so its totals are
        // the run's I/O attribution.
        stats_.blocks_loaded = pipeline.coarse_loads;
        stats_.fine_loads = pipeline.fine_loads;
        stats_.cache_hit_blocks = pipeline.cache_hit_loads;
        // Every coarse load probes the attached cache, so the misses
        // are exactly the coarse loads that were not hits (fine loads
        // bypass the cache).  Without a cache there is nothing to miss.
        stats_.cache_miss_blocks =
            shared_cache_ != nullptr
                ? pipeline.coarse_loads - pipeline.cache_hit_loads
                : 0;
        stats_.prefetch_hits = pipeline.prefetch_hits;
        stats_.prefetch_mispredicts = pipeline.prefetch_mispredicts;
        if (planner_ != nullptr) {
            stats_.plan_rescores = planner_->stats().plan_rescores;
            stats_.plan_cache_credits =
                planner_->stats().plan_cache_credits;
        }
        stats_.io_wait_seconds = pipeline.io_wait_seconds;
        local_io_bytes_ = pipeline.bytes_read;
        local_io_requests_ = pipeline.read_requests;
        local_io_seconds_ = pipeline.modeled_io_seconds;
        if (shared_budget_ != nullptr || shared_cache_ != nullptr) {
            // Device counters are shared with concurrent engines (and
            // cache hits never reach the device), so attribute I/O
            // from this run's own load results.
            stats_.graph_bytes_read = local_io_bytes_;
            stats_.graph_read_requests = local_io_requests_;
            stats_.io_busy_seconds = local_io_seconds_;
        } else {
            const storage::IoStats after = file_->device().stats();
            stats_.graph_bytes_read =
                after.bytes_read - before.bytes_read;
            stats_.graph_read_requests =
                after.read_requests - before.read_requests;
            stats_.io_busy_seconds =
                after.busy_seconds - before.busy_seconds;
        }
        stats_.edges_loaded =
            stats_.graph_bytes_read / file_->record_bytes();
        if (spill_) {
            stats_.swap_bytes = spill_->swap_bytes();
            stats_.io_busy_seconds +=
                swap_device_->stats().busy_seconds;
        }
        stats_.cpu_seconds = cpu_seconds;
        stats_.peak_memory = budget.peak();
        stats_.presample_bytes_used = presample_bytes_used_;
        stats_.presample_bytes_total = presample_bytes_total_;
        buffers_.clear();
        pool_.reset();
        index_rsv_.release();
        buffer_rsv_.release();
        spec_rsv_.release();
        ps_rsv_.release();
    }

    const graph::GraphFile *file_;
    const graph::BlockPartition *partition_;
    EngineConfig config_;
    App *app_ = nullptr;

    engine::RunStats stats_;
    std::uint64_t total_ = 0;
    std::uint64_t generated_ = 0;
    std::uint64_t run_seed_ = 0;
    std::uint64_t presample_seed_ = 0;
    std::optional<std::uint64_t> seed_override_;

    /** Shard-mode round state (run_records; DESIGN.md §11). */
    bool shard_mode_ = false;
    std::uint32_t owned_begin_ = 0;
    std::uint32_t owned_end_ = 0;
    std::vector<Record> *emigrants_out_ = nullptr;
    /** Per-bucket consignment sink (overlap mode; null = barrier). */
    EmigrantSink emigrant_sink_;
    /** Pre-routed records to admit instead of generating (shard mode). */
    std::vector<Record> seed_records_;
    /** config_.presample, forced off for shard rounds (reset()). */
    bool presample_enabled_ = false;

    util::MemoryBudget *shared_budget_ = nullptr;
    storage::SharedBlockCache *shared_cache_ = nullptr;
    std::uint64_t local_io_bytes_ = 0;
    std::uint64_t local_io_requests_ = 0;
    double local_io_seconds_ = 0.0;

    util::MemoryBudget *budget_ = nullptr;
    util::MemoryBudget unbudgeted_{0};
    bool single_buffer_ = false;
    /** Speculative lookahead slots after budget auto-shrink (§10). */
    std::size_t prefetch_slots_ = 0;
    /** Scratch for top_up_speculation's exclusion list. */
    std::vector<std::uint32_t> exclude_scratch_;
    util::Reservation index_rsv_;
    util::Reservation buffer_rsv_;
    /** Extra speculation buffers beyond the baseline pair (§10). */
    util::Reservation spec_rsv_;
    /** Up-front global claim backing the pre-sample pool (§10). */
    util::Reservation ps_rsv_;

    /** Persistent private step pool (survives reset/finalize so the
     *  hire cost is paid once per engine, not per run). */
    std::unique_ptr<util::ThreadPool> owned_pool_;
    util::ThreadPool *external_pool_ = nullptr;
    util::ThreadPool *step_pool_ = nullptr;

    std::unique_ptr<WalkerPool<Record>> pool_;
    std::unique_ptr<BlockScheduler> scheduler_;
    /** Lookahead block-load planner; null when plan_window == 0 so the
     *  greedy nomination path stays byte-for-byte untouched (§13). */
    std::unique_ptr<LoadPlanner> planner_;
    /** Block whose bucket the walkers being merged were stepped from
     *  (kNoBlock during fresh-injection admission). */
    std::uint32_t flow_src_ = BlockScheduler::kNoBlock;
    /** Tenant fairness weight applied to the next run's plans (§13). */
    double plan_weight_ = 1.0;
    /** The pool's accountant; its cap never varies with prefetch
     *  depth (§10).  Declared before buffers_ so the buffers' RAII
     *  reservations release against a live budget on destruction. */
    std::unique_ptr<util::MemoryBudget> presample_budget_;
    std::unordered_map<std::uint32_t, std::unique_ptr<PreSampleBuffer>>
        buffers_;
    /** Rebuild generation per block (names the fill streams). */
    std::unordered_map<std::uint32_t, std::uint64_t> presample_gen_;
    std::uint64_t presample_bytes_total_ = 0;
    std::uint64_t presample_per_block_ = 0;
    std::uint64_t presample_bytes_used_ = 0;

    std::unique_ptr<storage::MemDevice> swap_device_;
    std::unique_ptr<engine::WalkerSpill> spill_;
};

} // namespace noswalker::core
