/**
 * @file
 * Bounded walker pool with per-block parking (§2.4.2).
 *
 * Walkers live by value in per-block buckets; the pool only bounds how
 * many are live at once.  With dynamic walker management the bound is
 * small and no state ever touches disk; the engine generates a new
 * walker whenever one retires, which is what keeps walker-state I/O at
 * zero.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "util/error.hpp"
#include "util/memory_budget.hpp"

namespace noswalker::core {

/** Per-block buckets of live walkers with a global live-count bound. */
template <typename WalkerT>
class WalkerPool {
  public:
    /**
     * @param num_blocks     parking buckets (one per graph block).
     * @param capacity       max live walkers.
     * @param budget         pool storage is reserved here.
     * @param reserve_bytes  bytes to charge the budget; defaults to
     *        capacity × sizeof(WalkerT).  The spill-emulating mode
     *        passes only the in-memory buffer share — the remainder is
     *        "on disk" and its traffic is charged via WalkerSpill.
     */
    WalkerPool(std::uint32_t num_blocks, std::uint64_t capacity,
               util::MemoryBudget &budget, std::uint64_t reserve_bytes = 0)
        : capacity_(capacity),
          reservation_(budget,
                       reserve_bytes == 0 ? capacity * sizeof(WalkerT)
                                          : reserve_bytes,
                       "walker pool"),
          buckets_(num_blocks)
    {
        NOSWALKER_CHECK(capacity_ > 0);
    }

    /** Max live walkers. */
    std::uint64_t capacity() const { return capacity_; }

    /** Live walkers right now (parked + in flight). */
    std::uint64_t live() const { return live_; }

    /** Whether another walker may be admitted. */
    bool can_admit() const { return live_ < capacity_; }

    /** Admit a walker that the caller is about to move (in flight). */
    void
    admit()
    {
        NOSWALKER_CHECK(live_ < capacity_);
        ++live_;
    }

    /** Park @p w in @p block's bucket until that block is serviced. */
    void
    park(std::uint32_t block, const WalkerT &w)
    {
        buckets_[block].push_back(w);
    }

    /** Retire one in-flight walker (terminated or dead-ended). */
    void
    retire()
    {
        NOSWALKER_CHECK(live_ > 0);
        --live_;
    }

    /** Retire @p n in-flight walkers at once (parallel-step merge). */
    void
    retire_n(std::uint64_t n)
    {
        NOSWALKER_CHECK(live_ >= n);
        live_ -= n;
    }

    /** Walkers currently parked in @p block. */
    std::uint64_t
    parked(std::uint32_t block) const
    {
        return buckets_[block].size();
    }

    /** Read-only view of @p block's bucket (fine-mode needed lists). */
    const std::vector<WalkerT> &
    bucket_view(std::uint32_t block) const
    {
        return buckets_[block];
    }

    /**
     * Move block @p block's bucket out for processing.  The caller owns
     * the returned walkers (they become in-flight) and re-parks or
     * retires each one.
     */
    std::vector<WalkerT>
    take_bucket(std::uint32_t block)
    {
        std::vector<WalkerT> out;
        out.swap(buckets_[block]);
        return out;
    }

    /** Total parked walkers over all buckets. */
    std::uint64_t
    total_parked() const
    {
        std::uint64_t n = 0;
        for (const auto &b : buckets_) {
            n += b.size();
        }
        return n;
    }

  private:
    std::uint64_t capacity_;
    std::uint64_t live_ = 0;
    util::Reservation reservation_;
    std::vector<std::vector<WalkerT>> buckets_;
};

} // namespace noswalker::core
