#include "core/presample_buffer.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace noswalker::core {

PreSampleBuffer::PreSampleBuffer(const graph::GraphFile &file,
                                 const graph::BlockInfo &block,
                                 const BuildParams &params,
                                 const PreSampleBuffer *previous,
                                 util::MemoryBudget &budget)
    : block_id_(block.id), first_vertex_(block.first_vertex),
      weighted_(file.weighted())
{
    const graph::VertexId nv = block.num_vertices();
    idx_.assign(static_cast<std::size_t>(nv) + 1, 0);
    // Atomics are neither copyable nor movable element-wise; construct
    // a fresh zero-initialized vector and move the buffer in.
    cnt_ = std::vector<std::atomic<std::uint32_t>>(nv);
    snap_.assign(nv, 0);
    direct_.assign(nv, 0);
    filled_.assign(nv, 0);

    const std::uint64_t meta_bytes =
        idx_.capacity() * sizeof(std::uint32_t) +
        cnt_.capacity() * sizeof(std::atomic<std::uint32_t>) +
        snap_.capacity() * sizeof(std::uint32_t) +
        direct_.capacity() + filled_.capacity();
    const std::uint32_t slot_bytes =
        sizeof(graph::VertexId) +
        (weighted_ ? sizeof(graph::Weight) : 0u);

    if (params.max_bytes <= meta_bytes) {
        throw util::BudgetExceeded("PreSampleBuffer: cap below meta size");
    }
    const std::uint64_t slot_budget =
        (params.max_bytes - meta_bytes) / slot_bytes;

    // Pass 1: mandatory direct reservations for low-degree vertices and
    // history weights for the rest.
    std::uint64_t direct_slots = 0;
    std::uint64_t total_weight = 0;
    std::vector<std::uint32_t> weight(nv, 0);
    for (graph::VertexId v = block.first_vertex; v < block.end_vertex;
         ++v) {
        const std::uint32_t deg = file.degree(v);
        const std::size_t i = index_of(v);
        if (deg == 0) {
            continue;
        }
        if (deg <= params.low_degree_cutoff) {
            direct_[i] = 1;
            direct_slots += deg;
        } else {
            const std::uint32_t hist =
                previous != nullptr &&
                        previous->first_vertex_ == first_vertex_
                    ? previous->cnt_[i].load(std::memory_order_relaxed)
                    : 0;
            weight[i] = 1 + hist;
            total_weight += weight[i];
        }
    }

    // Pass 2: demand-driven quotas — base_quota scaled by the visit
    // history (§3.3.2: quota ≈ proportional to cnt), clamped to the
    // per-vertex cap.  A byte-budget overshoot is corrected below.
    (void)total_weight;
    std::uint64_t pos = 0;
    for (graph::VertexId v = block.first_vertex; v < block.end_vertex;
         ++v) {
        const std::size_t i = index_of(v);
        idx_[i] = static_cast<std::uint32_t>(pos);
        const std::uint32_t deg = file.degree(v);
        std::uint32_t slots = 0;
        if (deg == 0) {
            slots = 0;
        } else if (direct_[i]) {
            slots = deg;
        } else {
            const std::uint64_t want =
                static_cast<std::uint64_t>(params.base_quota) *
                weight[i];
            slots = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
                want, params.base_quota, params.max_quota));
        }
        pos += slots;
    }
    idx_[nv] = static_cast<std::uint32_t>(pos);

    // If rounding overshot the slot budget, scale down uniformly by
    // truncating per-vertex quotas (rare; keeps the byte cap honest).
    if (pos > slot_budget) {
        const double scale = static_cast<double>(slot_budget) /
                             static_cast<double>(pos);
        std::uint64_t new_pos = 0;
        std::vector<std::uint32_t> new_idx(idx_.size());
        for (graph::VertexId v = 0; v < nv; ++v) {
            new_idx[v] = static_cast<std::uint32_t>(new_pos);
            std::uint32_t slots = idx_[v + 1] - idx_[v];
            if (!direct_[v]) {
                slots = static_cast<std::uint32_t>(
                    static_cast<double>(slots) * scale);
            }
            new_pos += slots;
        }
        new_idx[nv] = static_cast<std::uint32_t>(new_pos);
        idx_ = std::move(new_idx);
        pos = new_pos;
    }

    edges_.assign(pos, graph::kInvalidVertex);
    if (weighted_) {
        dweights_.assign(pos, 0.0f);
    }

    const std::uint64_t total_bytes =
        meta_bytes + edges_.capacity() * sizeof(graph::VertexId) +
        dweights_.capacity() * sizeof(graph::Weight);
    reservation_ =
        util::Reservation(budget, total_bytes, "presample buffer");
}

graph::VertexView
PreSampleBuffer::direct_view(graph::VertexId v) const
{
    const std::size_t i = index_of(v);
    NOSWALKER_CHECK(filled_[i] && direct_[i]);
    const std::uint32_t begin = idx_[i];
    const std::uint32_t n = idx_[i + 1] - begin;
    graph::VertexView view;
    view.id = v;
    view.targets = {edges_.data() + begin, n};
    if (weighted_) {
        view.weights = {dweights_.data() + begin, n};
    }
    return view;
}

} // namespace noswalker::core
