/**
 * @file
 * Compact pre-sampled-edge buffer (§3.3.2 — §3.3.4).
 *
 * One buffer serves one coarse block's vertex range.  Layout mirrors
 * the paper's Figure 8: a meta array of (idx, cnt) per vertex and a
 * flat edges array holding each vertex's pre-sampled destinations
 * contiguously.  cnt counts consumed samples *and* stall visits, so it
 * doubles as the visit-frequency estimate the rebuild step uses to
 * reallocate quotas proportionally.
 *
 * Low-degree vertices (§3.3.4) get their full edge list "reserved"
 * instead of samples: their slots hold the real adjacency (plus weights
 * on weighted graphs) and never run dry — the engine re-samples from
 * the reserved view on every visit.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"

namespace noswalker::core {

/** Per-block pre-sample store. */
class PreSampleBuffer {
  public:
    /** Allocation inputs for (re)building a buffer. */
    struct BuildParams {
        /** Byte cap for this buffer (meta + slots). */
        std::uint64_t max_bytes = 0;
        /** Baseline samples per (visited) vertex. */
        std::uint32_t base_quota = 4;
        /** Cap on samples for one vertex. */
        std::uint32_t max_quota = 64;
        /** Degree at or below which edges are reserved directly. */
        std::uint32_t low_degree_cutoff = 2;
    };

    /**
     * Plan the allocation for @p block of @p file.
     *
     * @param previous  the block's previous buffer generation (or null);
     *                  its cnt values weight the new quotas.
     * @param budget    the buffer's memory is reserved here.
     * @throws util::BudgetExceeded when even the meta array cannot fit.
     *
     * After construction the buffer is *planned but unfilled*: the
     * engine streams the block once and calls fill_vertex per vertex.
     */
    PreSampleBuffer(const graph::GraphFile &file,
                    const graph::BlockInfo &block, const BuildParams &params,
                    const PreSampleBuffer *previous,
                    util::MemoryBudget &budget);

    /** Block this buffer serves. */
    std::uint32_t block_id() const { return block_id_; }

    /** First vertex of the served range. */
    graph::VertexId first_vertex() const { return first_vertex_; }

    /** Vertices in the served range. */
    graph::VertexId
    num_vertices() const
    {
        return static_cast<graph::VertexId>(idx_.size() - 1);
    }

    /** Slots allocated to @p v (0 when none). */
    std::uint32_t
    quota(graph::VertexId v) const
    {
        const std::size_t i = index_of(v);
        return idx_[i + 1] - idx_[i];
    }

    /**
     * Fill vertex @p v's slots from its loaded adjacency.
     * Direct vertices copy edges (and weights); sampled vertices invoke
     * @p sampler quota times.  @p sampler is `app.sample` bound to rng.
     */
    template <typename Sampler>
    void
    fill_vertex(const graph::VertexView &view, Sampler &&sampler)
    {
        const std::size_t i = index_of(view.id);
        const std::uint32_t slots = idx_[i + 1] - idx_[i];
        if (slots == 0) {
            return;
        }
        cnt_[i] = 0;
        filled_[i] = 1;
        graph::VertexId *out = edges_.data() + idx_[i];
        if (direct_[i]) {
            for (std::uint32_t k = 0; k < slots; ++k) {
                out[k] = view.targets[k];
            }
            if (!dweights_.empty() && !view.weights.empty()) {
                graph::Weight *w = dweights_.data() + idx_[i];
                for (std::uint32_t k = 0; k < slots; ++k) {
                    w[k] = view.weights[k];
                }
            }
        } else {
            for (std::uint32_t k = 0; k < slots; ++k) {
                out[k] = sampler(view);
            }
        }
    }

    /** True when @p v has been filled and holds an unconsumed sample
     *  (or is direct, in which case it never runs dry). */
    bool
    has(graph::VertexId v) const
    {
        const std::size_t i = index_of(v);
        if (!filled_[i]) {
            return false;
        }
        if (direct_[i]) {
            return true;
        }
        return idx_[i] + cnt_[i] < idx_[i + 1];
    }

    /** True when @p v's full edge list is reserved (§3.3.4). */
    bool
    is_direct(graph::VertexId v) const
    {
        const std::size_t i = index_of(v);
        return filled_[i] && direct_[i];
    }

    /**
     * Reserved-edge view of a direct vertex (targets + weights when the
     * graph is weighted).  @pre is_direct(v).
     */
    graph::VertexView direct_view(graph::VertexId v) const;

    /** Next pre-sample of @p v. @pre has(v) && !is_direct(v). */
    graph::VertexId
    top(graph::VertexId v) const
    {
        const std::size_t i = index_of(v);
        return edges_[idx_[i] + cnt_[i]];
    }

    /** Consume the sample top(v) returned. */
    void
    pop(graph::VertexId v)
    {
        ++cnt_[index_of(v)];
        ++consumed_;
    }

    /** Fraction of allocated (non-direct) slots consumed so far. */
    double
    consumed_fraction() const
    {
        const std::uint64_t slots = edges_.size();
        return slots == 0 ? 1.0
                          : static_cast<double>(consumed_) /
                                static_cast<double>(slots);
    }

    /** Record a visit that found no sample (stall); feeds the history. */
    void
    record_visit(graph::VertexId v)
    {
        ++cnt_[index_of(v)];
        ++stalled_;
    }

    /** Stall visits since this buffer generation was built — the
     *  unmet-demand signal the engine's rebuild heuristic uses. */
    std::uint64_t stall_count() const { return stalled_; }

    /** Total slots allocated in this generation. */
    std::uint64_t slot_count() const { return edges_.size(); }

    /** Visit/consumption history of @p v (the rebuild weight). */
    std::uint32_t
    visits(graph::VertexId v) const
    {
        return cnt_[index_of(v)];
    }

    /** Bytes reserved against the budget. */
    std::uint64_t memory_bytes() const { return reservation_.bytes(); }

  private:
    std::size_t
    index_of(graph::VertexId v) const
    {
        return static_cast<std::size_t>(v - first_vertex_);
    }

    std::uint32_t block_id_ = 0;
    graph::VertexId first_vertex_ = 0;
    bool weighted_ = false;
    std::vector<std::uint32_t> idx_;     ///< size nv+1
    std::vector<std::uint32_t> cnt_;     ///< consumed + stall visits
    std::vector<std::uint8_t> direct_;   ///< full-edge reservation flag
    std::vector<std::uint8_t> filled_;   ///< fill_vertex completed
    std::vector<graph::VertexId> edges_; ///< slot storage
    std::vector<graph::Weight> dweights_; ///< weights for direct slots
    std::uint64_t consumed_ = 0; ///< total pops (drain estimate)
    std::uint64_t stalled_ = 0;  ///< stall visits since build
    util::Reservation reservation_;
};

} // namespace noswalker::core
