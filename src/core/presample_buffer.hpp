/**
 * @file
 * Compact pre-sampled-edge buffer (§3.3.2 — §3.3.4).
 *
 * One buffer serves one coarse block's vertex range.  Layout mirrors
 * the paper's Figure 8: a meta array of (idx, cnt) per vertex and a
 * flat edges array holding each vertex's pre-sampled destinations
 * contiguously.  cnt counts consumed samples *and* stall visits, so it
 * doubles as the visit-frequency estimate the rebuild step uses to
 * reallocate quotas proportionally.
 *
 * Consumption model: a filled vertex's slots form a bootstrap
 * reservoir for the current buffer generation — each walker draws a
 * slot *with replacement* using its own deterministic RNG stream, and
 * consume() advances an atomic per-vertex cursor.  Drawing from the
 * walker's stream instead of handing out slots in arrival order is
 * what makes walk output independent of how walkers interleave across
 * step threads.  Drying is *snapshot-published*: has() compares the
 * vertex's quota against a drain snapshot that publish_drain() copies
 * from the live cursors, and the engine publishes only at shard
 * barriers (between step rounds).  Every walker in a round therefore
 * sees the same availability state — the round in which a vertex runs
 * dry depends on deterministic per-round draw totals, never on thread
 * interleaving — while a dried vertex still stalls walkers until its
 * block reloads and a fresh generation re-samples it, bounding how
 * long any reservoir can serve (the paper's §3.3.2 consume-once queue
 * gives the same bound; the with-replacement + snapshot variant trades
 * a small per-round overshoot for thread-count determinism; see
 * DESIGN.md).
 *
 * Low-degree vertices (§3.3.4) get their full edge list "reserved"
 * instead of samples: their slots hold the real adjacency (plus weights
 * on weighted graphs) and never run dry — the engine re-samples from
 * the reserved view on every visit.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "graph/types.hpp"
#include "util/memory_budget.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"

namespace noswalker::core {

/** Per-block pre-sample store. */
class PreSampleBuffer {
  public:
    /** Allocation inputs for (re)building a buffer. */
    struct BuildParams {
        /** Byte cap for this buffer (meta + slots). */
        std::uint64_t max_bytes = 0;
        /** Baseline samples per (visited) vertex. */
        std::uint32_t base_quota = 4;
        /** Cap on samples for one vertex. */
        std::uint32_t max_quota = 64;
        /** Degree at or below which edges are reserved directly. */
        std::uint32_t low_degree_cutoff = 2;
    };

    /**
     * Plan the allocation for @p block of @p file.
     *
     * @param previous  the block's previous buffer generation (or null);
     *                  its cnt values weight the new quotas.
     * @param budget    the buffer's memory is reserved here.
     * @throws util::BudgetExceeded when even the meta array cannot fit.
     *
     * After construction the buffer is *planned but unfilled*: the
     * engine streams the block once and calls fill_vertex per vertex
     * (different vertices may be filled from different threads).
     */
    PreSampleBuffer(const graph::GraphFile &file,
                    const graph::BlockInfo &block, const BuildParams &params,
                    const PreSampleBuffer *previous,
                    util::MemoryBudget &budget);

    /** Block this buffer serves. */
    std::uint32_t block_id() const { return block_id_; }

    /** First vertex of the served range. */
    graph::VertexId first_vertex() const { return first_vertex_; }

    /** Vertices in the served range. */
    graph::VertexId
    num_vertices() const
    {
        return static_cast<graph::VertexId>(idx_.size() - 1);
    }

    /** Slots allocated to @p v (0 when none). */
    std::uint32_t
    quota(graph::VertexId v) const
    {
        const std::size_t i = index_of(v);
        return idx_[i + 1] - idx_[i];
    }

    /**
     * Fill vertex @p v's slots from its loaded adjacency.
     * Direct vertices copy edges (and weights); sampled vertices invoke
     * @p sampler quota times.  @p sampler is `app.sample` bound to an
     * rng.  Thread safe across *distinct* vertices (disjoint ranges).
     */
    template <typename Sampler>
    void
    fill_vertex(const graph::VertexView &view, Sampler &&sampler)
    {
        const std::size_t i = index_of(view.id);
        const std::uint32_t slots = idx_[i + 1] - idx_[i];
        if (slots == 0) {
            return;
        }
        cnt_[i].store(0, std::memory_order_relaxed);
        filled_[i] = 1;
        graph::VertexId *out = edges_.data() + idx_[i];
        if (direct_[i]) {
            for (std::uint32_t k = 0; k < slots; ++k) {
                out[k] = view.targets[k];
            }
            if (!dweights_.empty() && !view.weights.empty()) {
                graph::Weight *w = dweights_.data() + idx_[i];
                for (std::uint32_t k = 0; k < slots; ++k) {
                    w[k] = view.weights[k];
                }
            }
        } else {
            for (std::uint32_t k = 0; k < slots; ++k) {
                out[k] = sampler(view);
            }
        }
    }

    /**
     * True when @p v can serve a draw: filled this generation and not
     * yet dry *as of the last published drain snapshot*.  Direct
     * vertices never dry (they hold the real adjacency, §3.3.4).
     */
    bool
    has(graph::VertexId v) const
    {
        const std::size_t i = index_of(v);
        if (filled_[i] == 0) {
            return false;
        }
        if (direct_[i]) {
            return true;
        }
        return snap_[i] < idx_[i + 1] - idx_[i];
    }

    /**
     * Publish the live consumption cursors into the drain snapshot
     * has() consults.  Scheduler thread only, between step rounds: the
     * pool's fork-join barrier orders these plain writes against the
     * workers' reads, and round-granular visibility is what keeps the
     * drying point identical at any step-thread count.
     */
    void
    publish_drain()
    {
        for (std::size_t i = 0; i < snap_.size(); ++i) {
            snap_[i] = cnt_[i].load(std::memory_order_relaxed);
        }
    }

    /** True when @p v's full edge list is reserved (§3.3.4). */
    bool
    is_direct(graph::VertexId v) const
    {
        const std::size_t i = index_of(v);
        return filled_[i] && direct_[i];
    }

    /**
     * Reserved-edge view of a direct vertex (targets + weights when the
     * graph is weighted).  @pre is_direct(v).
     */
    graph::VertexView direct_view(graph::VertexId v) const;

    /**
     * Draw one pre-sample of @p v using the walker's own stream.
     * @pre has(v) && !is_direct(v).
     */
    graph::VertexId
    sample(graph::VertexId v, util::Rng &rng) const
    {
        const std::size_t i = index_of(v);
        const std::uint32_t begin = idx_[i];
        const std::uint32_t n = idx_[i + 1] - begin;
        return edges_[begin + rng.next_index(n)];
    }

    /**
     * Hint @p v's slot storage ahead of a sample()/direct_view() draw
     * — the step kernel's gather stage for pre-sample-served lanes
     * (DESIGN.md §12).  Pure read hint; never touches cursors.
     * @return the number of hints issued.
     */
    unsigned
    prefetch_slots(graph::VertexId v, unsigned max_lines = 2) const
    {
        const std::size_t i = index_of(v);
        const std::uint32_t begin = idx_[i];
        const std::uint32_t slots = idx_[i + 1] - begin;
        if (slots == 0) {
            return 0;
        }
        return util::prefetch_range(
            edges_.data() + begin,
            std::size_t{slots} * sizeof(graph::VertexId), max_lines);
    }

    /**
     * Exact-slot variant of prefetch_slots: dry-run the draw on
     * @p probe — a copy of the exact per-event stream sample() will
     * consume — and hint the one slot it lands on (DESIGN.md §12).
     * Pure read hint; never touches cursors.
     * @return the number of hints issued.  @pre has(v) && !is_direct(v).
     */
    unsigned
    prefetch_draw(graph::VertexId v, util::Rng probe) const
    {
        const std::size_t i = index_of(v);
        const std::uint32_t begin = idx_[i];
        const std::uint32_t n = idx_[i + 1] - begin;
        util::prefetch_line(&edges_[begin + probe.next_index(n)]);
        return 1;
    }

    /** Account one consumed draw of @p v (thread safe). */
    void
    consume(graph::VertexId v)
    {
        cnt_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
        consumed_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Fraction of allocated (non-direct) slots consumed so far (may
     *  exceed 1: draws are with replacement). */
    double
    consumed_fraction() const
    {
        const std::uint64_t slots = edges_.size();
        return slots == 0
                   ? 1.0
                   : static_cast<double>(
                         consumed_.load(std::memory_order_relaxed)) /
                         static_cast<double>(slots);
    }

    /** Record a visit that found no sample (stall); feeds the history.
     *  Thread safe. */
    void
    record_visit(graph::VertexId v)
    {
        cnt_[index_of(v)].fetch_add(1, std::memory_order_relaxed);
        stalled_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Stall visits since this buffer generation was built — the
     *  unmet-demand signal the engine's rebuild heuristic uses. */
    std::uint64_t
    stall_count() const
    {
        return stalled_.load(std::memory_order_relaxed);
    }

    /** Total slots allocated in this generation. */
    std::uint64_t slot_count() const { return edges_.size(); }

    /** Visit/consumption history of @p v (the rebuild weight). */
    std::uint32_t
    visits(graph::VertexId v) const
    {
        return cnt_[index_of(v)].load(std::memory_order_relaxed);
    }

    /** Bytes reserved against the budget. */
    std::uint64_t memory_bytes() const { return reservation_.bytes(); }

  private:
    std::size_t
    index_of(graph::VertexId v) const
    {
        return static_cast<std::size_t>(v - first_vertex_);
    }

    std::uint32_t block_id_ = 0;
    graph::VertexId first_vertex_ = 0;
    bool weighted_ = false;
    std::vector<std::uint32_t> idx_; ///< size nv+1
    /** Consumed draws + stall visits per vertex (atomic cursors). */
    std::vector<std::atomic<std::uint32_t>> cnt_;
    /** Drain snapshot has() reads (see publish_drain). */
    std::vector<std::uint32_t> snap_;
    std::vector<std::uint8_t> direct_;   ///< full-edge reservation flag
    std::vector<std::uint8_t> filled_;   ///< fill_vertex completed
    std::vector<graph::VertexId> edges_; ///< slot storage
    std::vector<graph::Weight> dweights_; ///< weights for direct slots
    std::atomic<std::uint64_t> consumed_{0}; ///< total draws (drain estimate)
    std::atomic<std::uint64_t> stalled_{0};  ///< stall visits since build
    util::Reservation reservation_;
};

} // namespace noswalker::core
