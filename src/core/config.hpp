/**
 * @file
 * NosWalker engine configuration, including the optimization knobs the
 * paper's breakdown study (Fig 14) toggles one by one.
 */
#pragma once

#include <cstdint>

namespace noswalker::core {

/** Tunables of the NosWalker engine. */
struct EngineConfig {
    /** Memory cap in bytes (0 = unlimited). */
    std::uint64_t memory_budget = 0;

    /** Target coarse block size in bytes of edge data. */
    std::uint64_t block_bytes = 1ULL << 20;

    /**
     * Walkers kept live in memory (0 = derive from the budget).  The
     * paper keeps this "no need to be much larger than the number of
     * threads"; larger pools raise step concurrency per loaded block.
     */
    std::uint64_t max_walkers = 0;

    /** Base pre-samples per vertex before history reweighting. */
    std::uint32_t presamples_per_vertex = 4;

    /** Hard cap on pre-samples one vertex may be allocated.  Hubs are
     *  visited orders of magnitude more often than the mean, so the
     *  cap is generous; the buffer byte budget is the real bound. */
    std::uint32_t max_presamples_per_vertex = 1024;

    /**
     * Degree at or below which a vertex's full edge list is reserved
     * instead of pre-samples (§3.3.4; the paper uses 1–4 by graph size).
     */
    std::uint32_t low_degree_cutoff = 2;

    /** Walker-distribution unevenness factor for the fine-mode switch
     *  α·|Wa|·4KiB < S_G (§3.3.1; paper default 4). */
    double alpha = 4.0;

    /** Fraction of post-index budget granted to the walker pool.  The
     *  paper's walker pools "initially occupy most of the memory". */
    double walker_memory_fraction = 0.5;

    /** Fraction of the budget left after the walker pool reserved for
     *  pre-sample buffers.  A binding cap: the pool charges its own
     *  sub-budget of this size so eviction pressure never depends on
     *  other reservations, e.g. speculation buffers (DESIGN.md §10). */
    double presample_memory_fraction = 0.85;

    /** Master seed; every run is a deterministic function of it. */
    std::uint64_t seed = 42;

    /** Background loader threads (0 = load synchronously). */
    unsigned loader_threads = 1;

    /**
     * Intra-block stepping threads (≥ 1).  Each loaded block's bucket
     * is sharded across this many workers on a persistent pool; walk
     * output is bit-identical at any value because every walker samples
     * from a private stream derived from (seed, walker id).
     */
    unsigned step_threads = 1;

    /**
     * Speculative prefetch depth: up to this many lookahead block
     * loads in flight beyond the one being processed (0 = demand
     * loading only).  Depth never changes walk output — the engine
     * always processes the scheduler's hottest block; speculation only
     * changes how its bytes arrive (DESIGN.md §10).  Auto-shrinks
     * under tight budgets so buffers stay within the block-buffer
     * share.
     */
    unsigned prefetch_depth = 2;

    /**
     * Interleaved step-kernel cohort size (DESIGN.md §12): each worker
     * shard's walkers are stepped through a ring of this many lanes,
     * with software prefetches issued for every lane's next data
     * source (CSR offsets, adjacency lines, alias rows, pre-sample
     * slots) one stage before the draw — the miss of one walker hides
     * behind useful work on the rest of the cohort (ThunderRW-style
     * step interleaving).  0 or 1 = the legacy one-walker-at-a-time
     * scalar loop.  Walk output is bit-identical at every value:
     * per-walker streams make each trajectory independent of how
     * walkers interleave, and outcomes are folded back in walker-index
     * order.
     */
    unsigned step_cohort = 16;

    /**
     * Graph shards executed concurrently by shard::ShardedEngine (1 =
     * the plain single-engine path).  Each shard owns a contiguous
     * block range, a private modeled device, and a 1/N slice of the
     * memory budget; walkers crossing a shard boundary migrate in
     * batches at deterministic round barriers.  Output is bit-identical
     * at every value (DESIGN.md §11); note the sharded path runs with
     * pre-sampling off, so compare shard counts against each other,
     * not against a presampling single-engine run.
     */
    unsigned num_shards = 1;

    /**
     * Overlapped shard migration (DESIGN.md §11): shards flush
     * emigrant consignments to the exchange incrementally as block
     * buckets drain (instead of one post at the round barrier), and
     * completed consignments are staged while the destination shard is
     * still stepping — so the wire time overlaps with the remainder of
     * the round, and only the residual the stepping could not hide is
     * charged as migration_wait_seconds (the hidden portion is
     * reported in migration_overlap_seconds).  Staged immigrants are
     * admitted at the round boundary in (dst, src, flush-seq) order,
     * so the walker set entering round r+1 — and therefore walk output
     * — is byte-identical to the hard-barrier version (false).
     */
    bool shard_overlap = true;

    /**
     * Re-enable pre-sampling inside shard rounds (DESIGN.md §11).
     * Shard reservoirs are filled from shard-owned blocks with streams
     * derived from (seed, block id, rebuild generation), and drying is
     * snapshot-published at step-round barriers, so with this on walk
     * output is still a pure function of (seed, shard plan): identical
     * across step-thread counts and across barrier/overlapped
     * migration.  It is *not* identical across different shard counts
     * — each plan partitions the visit history differently — which is
     * why the default stays off (the cross-shard-count bit-identity
     * contract of num_shards).
     */
    bool shard_presample = false;

    /**
     * Lookahead window of the block-load planner (DESIGN.md §13): at
     * each nomination point the planner scores the next
     * prefetch_depth + plan_window hottest candidates by expected
     * walker-steps-per-byte — propagating each committed pick's bucket
     * drain one step along the measured block-to-block walker flow,
     * and discounting blocks resident in the shared cache — and
     * commits the best sequence to the depth-K pipeline.  0 keeps the
     * greedy top-K nomination byte for byte.  Like prefetch_depth,
     * the window never changes walk output: the engine always
     * processes the scheduler's hottest block; planning only decides
     * which bytes arrive early.
     */
    unsigned plan_window = 4;

    /**
     * Completed prefetch loads that may be consumed out of submission
     * order, past older still-outstanding loads (0 = strict FIFO
     * consumption; >= prefetch_depth = fully out of order).  Purely a
     * stall-accounting/latency knob: byte-arrival order changes, the
     * processed-block schedule — and therefore walk output — does not
     * (DESIGN.md §10).
     */
    unsigned prefetch_reorder_window = 2;

    // --- Fig 14 breakdown knobs (all on = full NosWalker) ---

    /** Optimization (1): dynamic walker generation, no state swapping. */
    bool walker_management = true;

    /** Optimization (2): adaptive fine-grained block mode. */
    bool shrink_block = true;

    /** Optimization (3): decoupled pre-sampling. */
    bool presample = true;

    /** §3.3.5: serve walkers from the currently loaded block first. */
    bool use_loaded_block = true;

    /** Validate ranges; @throws util::ConfigError on nonsense. */
    void validate() const;

    /** The full system. */
    static EngineConfig full(std::uint64_t memory_budget,
                             std::uint64_t block_bytes);

    /** The breakdown "base implementation" (§4.4): GraphWalker-like
     *  workflow on NosWalker's async-I/O substrate, all knobs off. */
    static EngineConfig base_implementation(std::uint64_t memory_budget,
                                            std::uint64_t block_bytes);
};

} // namespace noswalker::core
