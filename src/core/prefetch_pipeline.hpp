/**
 * @file
 * Depth-K speculative block prefetching (DESIGN.md §10).
 *
 * Sits between the engine's deterministic admission loop and the
 * AsyncLoader.  The engine always *processes* the scheduler's hottest
 * block — speculation only changes how that block's bytes arrive: from
 * the speculation stash, from an already-completed load, by draining
 * the loader, or by a demand load as a last resort.  Because delivery
 * never alters which block is processed next, walk output is
 * bit-identical at every prefetch depth.
 *
 * Speculative loads are coarse-only and stop once the sticky fine-mode
 * switch fires (a fine needed-list frozen at speculation time would
 * diverge from the choice-time list and change residency).  A coarse
 * speculative buffer can still serve a fine demand: BlockReader::refine
 * masks its residency down to the choice-time needed list, which is
 * bit-identical to a fresh fine load.
 *
 * A speculatively loaded block whose walker bucket drained before it
 * was chosen is *demoted*, never discarded: its bytes are published to
 * the shared block cache (when attached and the block had recent
 * scheduler heat — a stale block would only dilute hot service
 * tenants) and parked in a bounded stash for a later re-steer;
 * `prefetch_mispredicts` counts each demotion and
 * `filtered_demotions` the ones the admission filter kept out of the
 * shared cache.
 *
 * Completion consumption is out-of-order behind a bounded *reorder
 * window*: every request is ticketed, per-request modeled completion
 * times are fixed in submission order (requests serialize on the
 * modeled device), but a demand for an already-completed block is
 * served even while an older, slower load is still outstanding.  The
 * window bounds the bypass: all but the newest `reorder_window` older
 * unconsumed loads must pass the consumer (their completion times are
 * charged) before a newer block may be served.  `reorder_window = 0`
 * recovers strict FIFO consumption; `reorder_window >= depth` is fully
 * out of order.
 *
 * Stall accounting runs on a modeled timeline: the clock advances only
 * when the engine blocks on a load (compute is modeled as fully
 * overlapped), a request completes at
 * max(device_free, submit + queue_latency) + request_seconds, and
 * cache hits complete at submission.  io_wait_seconds is therefore a
 * deterministic, machine-independent function of the run — at depth 1
 * every load pays the queue latency; at depth K the latency amortizes
 * across the queue, and the reorder window keeps one slow fine-mode
 * load at the head from stalling completed loads behind it.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "core/block_scheduler.hpp"
#include "storage/async_loader.hpp"
#include "storage/block_buffer_pool.hpp"
#include "storage/block_reader.hpp"
#include "storage/shared_block_cache.hpp"

namespace noswalker::core {

/** Drives an AsyncLoader as a depth-K speculative prefetch pipeline. */
class PrefetchPipeline {
  public:
    /** Sweeps of scheduler heat a demoted block may be stale before the
     *  admission filter keeps it out of the shared cache. */
    static constexpr std::uint64_t kAdmissionSweeps = 8;

    /** Aggregated pipeline counters (folded into RunStats). */
    struct Stats {
        /** Demands served from a speculative load (stash/admitted/FIFO). */
        std::uint64_t prefetch_hits = 0;
        /** Speculative loads demoted unprocessed (bucket drained). */
        std::uint64_t prefetch_mispredicts = 0;
        /** Demotions the admission filter kept out of the shared cache
         *  (no scheduler heat within kAdmissionSweeps sweeps). */
        std::uint64_t filtered_demotions = 0;
        std::uint64_t speculative_loads = 0;
        std::uint64_t demand_loads = 0;
        /** Per-response totals of every consumed load (incl. demoted). */
        std::uint64_t coarse_loads = 0;
        std::uint64_t fine_loads = 0;
        /** Coarse loads served from the SharedBlockCache.  Coarse
         *  only, so `coarse_loads - cache_hit_loads` is the device
         *  (miss) count; fine-mode page reads are below block
         *  granularity and keep their own accounting. */
        std::uint64_t cache_hit_loads = 0;
        std::uint64_t bytes_read = 0;
        std::uint64_t read_requests = 0;
        double modeled_io_seconds = 0.0;
        /** Modeled seconds the consumer was blocked on loads. */
        double io_wait_seconds = 0.0;
    };

    /**
     * @param loader  the depth-K loader to drive (its depth bounds the
     *        outstanding set; must be ≥ max(1, depth)).
     * @param reader  used to refine coarse buffers for fine demands.
     * @param pool    consumed buffers are recycled here.
     * @param depth   speculative slots (0 = demand loading only).
     * @param cache   optional shared cache demoted loads publish to.
     * @param queue_latency  per-request submission latency, seconds.
     * @param reorder_window  completed loads that may be consumed past
     *        older outstanding ones (0 = strict FIFO consumption).
     */
    PrefetchPipeline(storage::AsyncLoader &loader,
                     storage::BlockReader &reader,
                     storage::BlockBufferPool &pool, std::size_t depth,
                     storage::SharedBlockCache *cache,
                     double queue_latency,
                     std::size_t reorder_window = 0);

    ~PrefetchPipeline();

    PrefetchPipeline(const PrefetchPipeline &) = delete;
    PrefetchPipeline &operator=(const PrefetchPipeline &) = delete;

    /** Speculative slots (0 = speculation disabled). */
    std::size_t depth() const { return depth_; }

    /** Reorder window (0 = strict FIFO consumption). */
    std::size_t reorder_window() const { return window_; }

    /**
     * True when another speculative load may start: a slot is free
     * across in-flight + completed + stashed speculation (the
     * conservation bound keeping live buffers ≤ depth + 1).
     */
    bool can_speculate() const;

    /** Whether @p block is covered by speculation in any state. */
    bool covers(std::uint32_t block) const;

    /** Append every covered block id to @p out. */
    void collect_covered(std::vector<std::uint32_t> &out) const;

    /** Start a speculative coarse load of @p block. @pre can_speculate(). */
    void speculate(const graph::BlockInfo &block);

    /** Bank completed loads without blocking (call between rounds). */
    void poll();

    /**
     * Deliver the block of @p demand, preferring speculative results
     * over issuing the demand load.  Blocking waits charge the modeled
     * io-wait clock, subject to the reorder window.  A coarse
     * speculative result serving a fine demand is refined to the
     * demand's needed list.
     */
    storage::AsyncLoader::Response
    obtain(storage::AsyncLoader::Request demand);

    /**
     * Demote completed speculative loads whose walker bucket drained
     * (count == 0 in @p scheduler): publish to the shared cache when
     * the block had scheduler heat within the last kAdmissionSweeps
     * sweeps (else count a filtered demotion), park in the stash, and
     * count a mispredict.
     */
    void sweep(const BlockScheduler &scheduler);

    /**
     * Drain and recycle everything still owned by the pipeline;
     * leftover speculation counts as mispredicted.  Call once at the
     * end of the run (the destructor also calls it).
     */
    void finish();

    /** Return a consumed response's buffer to the pool. */
    void recycle(storage::BlockBuffer &&buffer);

    const Stats &stats() const { return stats_; }

  private:
    /** A completed load waiting to be chosen. */
    struct Parked {
        storage::AsyncLoader::Response response;
        /** Modeled completion time on the pipeline clock. */
        double ready_at = 0.0;
        /** Submission ticket (consumption-order accounting). */
        std::uint64_t seq = 0;
        /** False only for the demand load of the serving obtain(). */
        bool speculative = true;
    };

    struct Inflight {
        std::uint32_t block = 0;
        double submitted = 0.0;
        std::uint64_t seq = 0;
        bool speculative = true;
    };

    /**
     * A submitted load that has not yet passed the consumer — served,
     * or charged as part of a window prefix.  Demotion does *not*
     * remove an entry: whether a mispredicted load must be waited out
     * under FIFO discipline is decided by the window rule, never by
     * (arrival-order-dependent) demotion timing, keeping the modeled
     * accounting identical across loader threading modes.
     */
    struct Unconsumed {
        std::uint64_t seq = 0;
        std::uint32_t block = 0;
        /** Modeled completion time; valid once banked. */
        double ready_at = 0.0;
        bool banked = false;
    };

    /**
     * Consume the oldest outstanding load (blocking) and bank it in
     * the admitted set without charging the io-wait clock.
     */
    void bank_next_blocking();

    /** Bank one already-completed response for the in-flight head. */
    void bank_response(storage::AsyncLoader::Response response);

    /**
     * Enforce the reorder window before serving seq @p seq: all but
     * the newest window_ older unconsumed loads pass the consumer,
     * charging their modeled completion times.
     */
    void apply_window_charges(std::uint64_t seq);

    /** Drop @p seq from the unconsumed ordering (it was served). */
    void forget_unconsumed(std::uint64_t seq);

    /** Record the modeled completion time of ticket @p seq. */
    void record_ready(std::uint64_t seq, double ready_at);

    /** Modeled completion time of @p response submitted at @p submitted. */
    double finish_time(const storage::AsyncLoader::Response &response,
                       double submitted);

    /** Fold @p response's load result into the consumed-I/O totals. */
    void account(const storage::AsyncLoader::Response &response);

    /** Charge the io-wait clock up to @p ready_at. */
    void charge_wait(double ready_at);

    /** Adapt a speculative result to @p demand (coarse → fine). */
    storage::AsyncLoader::Response
    adapt(storage::AsyncLoader::Response response,
          const storage::AsyncLoader::Request &demand);

    storage::AsyncLoader *loader_;
    storage::BlockReader *reader_;
    storage::BlockBufferPool *pool_;
    std::size_t depth_;
    storage::SharedBlockCache *cache_;
    double queue_latency_;
    std::size_t window_;

    std::deque<Inflight> inflight_;
    /** Submission-ordered loads not yet served or demoted; the reorder
     *  window is enforced against this sequence. */
    std::deque<Unconsumed> unconsumed_;
    /** Ordered maps: sweep/finish iterate deterministically. */
    std::map<std::uint32_t, Parked> admitted_;
    std::map<std::uint32_t, Parked> stash_;

    /** Sweep epoch and last sweep each block had scheduler heat, for
     *  the demotion admission filter. */
    std::uint64_t sweep_epoch_ = 0;
    std::map<std::uint32_t, std::uint64_t> last_hot_;

    /** Modeled pipeline clock (advances only on blocking waits). */
    double now_ = 0.0;
    /** Modeled time the (serial) device frees up. */
    double device_free_ = 0.0;

    Stats stats_;
};

} // namespace noswalker::core
