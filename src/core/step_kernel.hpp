/**
 * @file
 * Interleaved cohort step kernel (DESIGN.md §12).
 *
 * The scalar inner loop (NosWalkerEngine::chain_move) walks one record
 * at a time: every step issues a dependent chain of cold reads — the
 * CSR offset entry, then the adjacency/alias lines, then the sampled
 * target — and the core stalls on each miss.  ThunderRW showed 3–5× on
 * exactly this loop shape from *step interleaving*: keep a small
 * cohort of walkers in flight and hide one walker's miss behind useful
 * work on the others.
 *
 * This kernel rotates a worker shard's records through a ring of
 * `EngineConfig::step_cohort` lanes.  Each rotation is two stages:
 *
 *   1. **resolve + gather** — for every lane, decide which resident
 *      source will serve the walker's next event (the loaded block, a
 *      pre-sample reservoir, a direct low-degree reservation, or a
 *      second-order candidate's adjacency) by replaying chain_move's
 *      exact decision tree, then issue software prefetches for the
 *      bytes the draw will touch.  The event's RNG is constructed here
 *      (one stage early — same per-walker stream order), so draw-hint
 *      apps can dry-run the draw on a copy and name the *exact* line
 *      sample() will read (DrawHintApp); other apps fall back to
 *      head-line hints (GatherHintApp / gather_prefetch).  Resolution
 *      is *pure* apart from the walker's own rng_state advance: it
 *      reads only per-round immutable state (block residency,
 *      published drain snapshots, CSR degrees), so no lane's
 *      resolution depends on another lane's progress.
 *   2. **sample + advance** — consume the prefetched lines: draw from
 *      the walker's private stream, apply the app action, and either
 *      keep the lane (the walker can move again next rotation) or bank
 *      its outcome and refill the lane with the next pending record.
 *
 * Bit-identity with the scalar path holds by construction: each
 * walker's own event sequence (decision tree + RNG draws) is executed
 * by the same code in the same per-walker order; the only cross-walker
 * state touched mid-round is commutative atomics that are never read
 * back before the round barrier (DESIGN.md §9); and retired / parked /
 * emigrant outcomes are banked per input slot, then folded into the
 * StepDelta in walker-index order — exactly the sequence the scalar
 * loop would have produced — so the engine's deterministic worker-order
 * merge is untouched.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/presample_buffer.hpp"
#include "engine/app.hpp"
#include "graph/graph_file.hpp"
#include "storage/block_reader.hpp"
#include "util/prefetch.hpp"
#include "util/rng.hpp"

namespace noswalker::core {

/**
 * The interleaved stepping loop over one worker shard's records.
 *
 * @tparam E  the owning NosWalkerEngine instantiation (friend access:
 *            the kernel reuses the engine's resolution helpers and
 *            StepDelta so the per-step semantics live in one place).
 */
template <typename E>
class StepKernel {
  public:
    using App = typename E::AppT;
    using Record = typename E::Record;
    using Delta = typename E::StepDelta;

    /**
     * Step records[begin, end) to their park/retire points through a
     * @p cohort-lane ring, accumulating into @p delta.  Consumes the
     * records.  Runs on step workers under the same contract as
     * chain_move: reads engine state, writes only @p delta, the
     * walkers themselves, and pre-sample atomics.
     */
    static void
    run(E &eng, App &app, std::vector<Record> &records, std::size_t begin,
        std::size_t end, const storage::BlockBuffer *buf, Delta &delta,
        unsigned cohort)
    {
        const std::size_t n = end - begin;
        const std::size_t width =
            n < static_cast<std::size_t>(cohort)
                ? n
                : static_cast<std::size_t>(cohort);
        std::vector<Outcome> outcomes(n);
        std::vector<Lane> lanes(width);

        std::size_t next = begin;
        std::size_t live = 0;
        for (Lane &lane : lanes) {
            admit(eng, lane, records, next, begin, delta);
            ++live;
        }

        // Distance the resolve stage runs ahead of the execute point.
        // Small on purpose: each resolved lane has 2-4 prefetches in
        // flight, and a core tracks only ~10-12 outstanding fills —
        // resolving the whole ring up front (the naive two-phase shape)
        // would drop most hints at larger cohort sizes.
        constexpr std::size_t kLookahead = 4;

        while (live > 0) {
            ++delta.kernel_cohorts;
            // One rotation, software-pipelined: prime a resolve window
            // of kLookahead lanes, then march — execute the lane whose
            // prefetches have had the longest to land, resolve the next
            // unresolved lane behind it.  Every live lane is resolved
            // exactly once before it executes; resolution reads only
            // per-round immutable state (residency, degrees, drain
            // snapshots), so executing lane i never perturbs lane j's
            // resolution and per-walker step order is untouched.
            std::size_t ahead = 0;
            while (ahead < width && ahead < kLookahead) {
                if (lanes[ahead].live) {
                    resolve(eng, app, buf, lanes[ahead], delta);
                }
                ++ahead;
            }
            for (std::size_t i = 0; i < width; ++i) {
                Lane &lane = lanes[i];
                if (lane.live &&
                    !execute(eng, app, lane, delta, outcomes)) {
                    // Lane finished: bank done, pull the next pending
                    // record into the freed lane (resolved next
                    // rotation).
                    if (next < end) {
                        admit(eng, lane, records, next, begin, delta);
                    } else {
                        lane.live = false;
                        --live;
                    }
                }
                if (ahead < width) {
                    if (lanes[ahead].live) {
                        resolve(eng, app, buf, lanes[ahead], delta);
                    }
                    ++ahead;
                }
            }
        }

        // Fold the banked outcomes in walker-index order: the exact
        // parked/emigrant sequence the scalar loop produces, so the
        // downstream worker-order merge stays deterministic.
        for (Outcome &o : outcomes) {
            switch (o.tag) {
            case Outcome::Tag::kNone:
            case Outcome::Tag::kRetired:
                break;
            case Outcome::Tag::kParked:
                delta.parked.emplace_back(o.block, std::move(o.rec));
                break;
            case Outcome::Tag::kEmigrant:
                delta.emigrants.push_back(std::move(o.rec));
                break;
            }
        }
    }

  private:
    /** Which resident source serves the lane's next event. */
    enum class Source : std::uint8_t {
        kUnresolved,
        kBlock,     ///< adjacency from the loaded block buffer
        kPsSample,  ///< reserved pre-sample reservoir draw
        kPsDirect,  ///< low-degree direct reservation view
        kCandidate, ///< second-order rejection trial, view resident
        kRetire,    ///< walker done (inactive or dead end)
        kStall,     ///< no resident source: park or emigrate
    };

    struct Lane {
        std::size_t index = 0; ///< outcome slot (input position)
        Record rec{};
        Source source = Source::kUnresolved;
        graph::VertexView view{};
        PreSampleBuffer *ps = nullptr;
        graph::VertexId v = 0;
        /**
         * The event's RNG, constructed at *resolve* time for sampling
         * sources.  Per-walker stream order is unchanged (resolve and
         * execute of one event are adjacent in the walker's own
         * sequence), and having the generator a stage early lets the
         * gather hooks dry-run the draw on a copy and prefetch the
         * exact line sample() will read (DrawHintApp).
         */
        util::Rng rng{};
        bool ps_visit = false;    ///< record_visit(v) owed on execute
        bool count_stall = false; ///< advance stall (not candidate park)
        bool live = false;
    };

    /** Banked per-walker terminal outcome, folded in input order. */
    struct Outcome {
        enum class Tag : std::uint8_t {
            kNone,
            kRetired,
            kParked,
            kEmigrant,
        };
        Tag tag = Tag::kNone;
        std::uint32_t block = 0;
        Record rec{};
    };

    /** Load records[next] into @p lane and warm its CSR offset entry. */
    static void
    admit(E &eng, Lane &lane, std::vector<Record> &records,
          std::size_t &next, std::size_t begin, Delta &delta)
    {
        lane.index = next - begin;
        lane.rec = std::move(records[next]);
        ++next;
        lane.live = true;
        lane.source = Source::kUnresolved;
        const graph::VertexId v = eng.waiting_vertex_of(lane.rec);
        delta.kernel_prefetches += util::prefetch_range(
            eng.file_->offsets().data() + v, 2 * sizeof(graph::EdgeIndex),
            2);
    }

    static bool
    block_has(const E &eng, const storage::BlockBuffer *buf,
              graph::VertexId v)
    {
        return buf != nullptr && buf->info() != nullptr &&
               buf->info()->contains(v) &&
               buf->vertex_loaded(*eng.file_, v);
    }

    /**
     * App-refined (or generic) prefetch of what the draw will read.
     * @p rng is the event's already-constructed generator; draw-hint
     * apps get a copy to dry-run the draw against, so the hint names
     * the exact line rather than the span's head.
     */
    static void
    gather(const App &app, const Record &rec,
           const graph::VertexView &view, const util::Rng &rng,
           Delta &delta)
    {
        if constexpr (engine::kHasDrawHint<App>) {
            delta.kernel_prefetches += app.gather(rec.w, view, rng);
        } else if constexpr (engine::kHasGatherHint<App>) {
            delta.kernel_prefetches += app.gather(rec.w, view);
        } else {
            delta.kernel_prefetches += view.gather_prefetch();
        }
    }

    /**
     * Stage 1 for one lane: chain_move's decision tree, split from its
     * side effects.  Reads only per-round immutable state, so the
     * resolution is independent of the other lanes' stage-2 progress.
     */
    static void
    resolve(E &eng, App &app, const storage::BlockBuffer *buf, Lane &lane,
            Delta &delta)
    {
        Record &rec = lane.rec;
        lane.ps = nullptr;
        lane.ps_visit = false;
        lane.count_stall = false;
        if constexpr (E::kSecondOrder) {
            if (app.has_candidate(rec.w)) {
                const graph::VertexId c = app.candidate(rec.w);
                if (block_has(eng, buf, c)) {
                    lane.source = Source::kCandidate;
                    lane.view = buf->view(*eng.file_, c);
                    lane.rng =
                        util::Rng(util::splitmix_next(rec.rng_state));
                    gather(app, rec, lane.view, lane.rng, delta);
                    return;
                }
                if (eng.presample_enabled_) {
                    PreSampleBuffer *ps = eng.find_presamples(
                        eng.partition_->block_of(c));
                    if (ps != nullptr && ps->is_direct(c)) {
                        lane.source = Source::kCandidate;
                        lane.view = ps->direct_view(c);
                        lane.rng =
                            util::Rng(util::splitmix_next(rec.rng_state));
                        gather(app, rec, lane.view, lane.rng, delta);
                        return;
                    }
                }
                lane.source = Source::kStall; // candidate park: no stall
                return;
            }
        }
        if (!app.active(rec.w)) {
            lane.source = Source::kRetire;
            return;
        }
        const graph::VertexId v = rec.w.location;
        lane.v = v;
        if (eng.file_->degree(v) == 0) {
            lane.source = Source::kRetire;
            return;
        }
        const bool in_block = block_has(eng, buf, v);
        if (eng.config_.use_loaded_block && in_block) {
            lane.source = Source::kBlock;
            lane.view = buf->view(*eng.file_, v);
            lane.rng = util::Rng(util::splitmix_next(rec.rng_state));
            gather(app, rec, lane.view, lane.rng, delta);
            return;
        }
        if constexpr (!E::kWalkerAware) {
            if (eng.presample_enabled_) {
                PreSampleBuffer *ps =
                    eng.find_presamples(eng.partition_->block_of(v));
                if (ps != nullptr) {
                    if (ps->is_direct(v)) {
                        lane.source = Source::kPsDirect;
                        lane.view = ps->direct_view(v);
                        lane.rng =
                            util::Rng(util::splitmix_next(rec.rng_state));
                        gather(app, rec, lane.view, lane.rng, delta);
                        return;
                    }
                    if (ps->has(v)) {
                        lane.source = Source::kPsSample;
                        lane.ps = ps;
                        lane.rng =
                            util::Rng(util::splitmix_next(rec.rng_state));
                        delta.kernel_prefetches +=
                            ps->prefetch_draw(v, lane.rng);
                        return;
                    }
                    // Dry reservoir: the stage-2 visit feeds the
                    // rebuild history exactly as the scalar path does,
                    // whether or not the block then serves the step.
                    lane.ps = ps;
                    lane.ps_visit = true;
                }
            }
        }
        if (!eng.config_.use_loaded_block && in_block) {
            lane.source = Source::kBlock;
            lane.view = buf->view(*eng.file_, v);
            lane.rng = util::Rng(util::splitmix_next(rec.rng_state));
            gather(app, rec, lane.view, lane.rng, delta);
            return;
        }
        lane.source = Source::kStall;
        lane.count_stall = true;
        return;
    }

    static void
    count_step(Delta &delta)
    {
        if constexpr (!E::kSecondOrder) {
            ++delta.steps;
        }
    }

    /**
     * The walker just advanced: warm the CSR offset entry of wherever
     * it landed, so the *next* rotation's resolve (degree check + view
     * construction) doesn't take the miss.  admit() covers only a
     * lane's first rotation; this covers every subsequent one.
     */
    static void
    warm_next(E &eng, const Record &rec, Delta &delta)
    {
        delta.kernel_prefetches += util::prefetch_range(
            eng.file_->offsets().data() + rec.w.location,
            2 * sizeof(graph::EdgeIndex), 2);
    }

    /**
     * Stage 2 for one lane: the side effects of one chain_move
     * iteration against the resolved source.
     * @return true when the walker stays in the lane (moved a step).
     */
    static bool
    execute(E &eng, App &app, Lane &lane, Delta &delta,
            std::vector<Outcome> &outcomes)
    {
        Record &rec = lane.rec;
        switch (lane.source) {
        case Source::kRetire:
            ++delta.retired;
            outcomes[lane.index].tag = Outcome::Tag::kRetired;
            return false;
        case Source::kCandidate:
            if constexpr (E::kSecondOrder) {
                ++delta.rejection_trials;
                util::Rng &rng = lane.rng;
                if (app.rejection(rec.w, lane.view, rng)) {
                    ++delta.steps;
                } else {
                    ++delta.rejection_rejected;
                }
                if (!app.active(rec.w)) {
                    ++delta.retired;
                    outcomes[lane.index].tag = Outcome::Tag::kRetired;
                    return false;
                }
            }
            return true;
        case Source::kBlock: {
            if (lane.ps_visit) {
                lane.ps->record_visit(lane.v);
            }
            util::Rng &rng = lane.rng;
            graph::VertexId next;
            if constexpr (E::kWalkerAware) {
                next = app.sample_for(rec.w, lane.view);
            } else {
                next = app.sample(lane.view, rng);
            }
            app.action(rec.w, next, rng);
            ++delta.block_steps;
            count_step(delta);
            warm_next(eng, rec, delta);
            return true;
        }
        case Source::kPsDirect: {
            util::Rng &rng = lane.rng;
            const graph::VertexId next = app.sample(lane.view, rng);
            app.action(rec.w, next, rng);
            ++delta.presample_steps;
            count_step(delta);
            warm_next(eng, rec, delta);
            return true;
        }
        case Source::kPsSample: {
            util::Rng &rng = lane.rng;
            const graph::VertexId next = lane.ps->sample(lane.v, rng);
            if (app.action(rec.w, next, rng)) {
                lane.ps->consume(lane.v);
            }
            ++delta.presample_steps;
            count_step(delta);
            warm_next(eng, rec, delta);
            return true;
        }
        case Source::kStall: {
            if (lane.ps_visit) {
                lane.ps->record_visit(lane.v);
            }
            const std::uint32_t b =
                eng.partition_->block_of(eng.waiting_vertex_of(rec));
            Outcome &o = outcomes[lane.index];
            if (!eng.owns_block(b)) {
                o.tag = Outcome::Tag::kEmigrant;
            } else {
                o.tag = Outcome::Tag::kParked;
                o.block = b;
                if (lane.count_stall) {
                    ++delta.stalls;
                }
            }
            o.rec = std::move(rec);
            return false;
        }
        case Source::kUnresolved:
            break;
        }
        return false; // unreachable: every live lane is resolved
    }
};

} // namespace noswalker::core
