#include "core/prefetch_pipeline.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/error.hpp"

namespace noswalker::core {

PrefetchPipeline::PrefetchPipeline(storage::AsyncLoader &loader,
                                   storage::BlockReader &reader,
                                   storage::BlockBufferPool &pool,
                                   std::size_t depth,
                                   storage::SharedBlockCache *cache,
                                   double queue_latency,
                                   std::size_t reorder_window)
    : loader_(&loader), reader_(&reader), pool_(&pool), depth_(depth),
      cache_(cache), queue_latency_(queue_latency),
      window_(reorder_window)
{
    NOSWALKER_CHECK(loader.depth() >= std::max<std::size_t>(depth, 1));
}

PrefetchPipeline::~PrefetchPipeline()
{
    try {
        finish();
    } catch (...) {
        // Teardown after an error: leftover loads may rethrow; the
        // original exception is already propagating.
    }
}

bool
PrefetchPipeline::can_speculate() const
{
    return inflight_.size() + admitted_.size() + stash_.size() < depth_ &&
           loader_->can_submit();
}

bool
PrefetchPipeline::covers(std::uint32_t block) const
{
    if (admitted_.count(block) != 0 || stash_.count(block) != 0) {
        return true;
    }
    for (const Inflight &f : inflight_) {
        if (f.block == block) {
            return true;
        }
    }
    return false;
}

void
PrefetchPipeline::collect_covered(std::vector<std::uint32_t> &out) const
{
    for (const Inflight &f : inflight_) {
        out.push_back(f.block);
    }
    for (const auto &[id, parked] : admitted_) {
        out.push_back(id);
    }
    for (const auto &[id, parked] : stash_) {
        out.push_back(id);
    }
}

void
PrefetchPipeline::speculate(const graph::BlockInfo &block)
{
    NOSWALKER_CHECK(can_speculate());
    NOSWALKER_CHECK(!covers(block.id));
    storage::AsyncLoader::Request request;
    request.block = &block;
    request.fine = false;
    ++stats_.speculative_loads;
    // The scheduler picked this block as hot just now: remember the
    // heat for the demotion admission filter.
    last_hot_[block.id] = sweep_epoch_;
    const double submitted = now_;
    const std::uint64_t seq = loader_->submit(std::move(request));
    inflight_.push_back({block.id, submitted, seq, true});
    unconsumed_.push_back({seq, block.id, 0.0, false});
}

double
PrefetchPipeline::finish_time(const storage::AsyncLoader::Response &response,
                              double submitted)
{
    if (response.result.from_cache || response.result.requests == 0) {
        // No device traffic: the load completes at submission.
        return submitted;
    }
    const double done = std::max(device_free_, submitted + queue_latency_) +
                        response.result.modeled_seconds;
    device_free_ = done;
    return done;
}

void
PrefetchPipeline::account(const storage::AsyncLoader::Response &response)
{
    if (response.fine) {
        ++stats_.fine_loads;
    } else {
        ++stats_.coarse_loads;
        if (response.result.from_cache) {
            ++stats_.cache_hit_loads;
        }
    }
    stats_.bytes_read += response.result.bytes_read;
    stats_.read_requests += response.result.requests;
    stats_.modeled_io_seconds += response.result.modeled_seconds;
}

void
PrefetchPipeline::charge_wait(double ready_at)
{
    if (ready_at > now_) {
        stats_.io_wait_seconds += ready_at - now_;
        now_ = ready_at;
    }
}

void
PrefetchPipeline::record_ready(std::uint64_t seq, double ready_at)
{
    for (Unconsumed &u : unconsumed_) {
        if (u.seq == seq) {
            u.ready_at = ready_at;
            u.banked = true;
            return;
        }
    }
}

void
PrefetchPipeline::forget_unconsumed(std::uint64_t seq)
{
    for (auto it = unconsumed_.begin(); it != unconsumed_.end(); ++it) {
        if (it->seq == seq) {
            unconsumed_.erase(it);
            return;
        }
    }
}

void
PrefetchPipeline::apply_window_charges(std::uint64_t seq)
{
    // Entries are ticket-ordered, so the loads this serve would bypass
    // form a prefix of the deque.
    std::size_t older = 0;
    while (older < unconsumed_.size() && unconsumed_[older].seq < seq) {
        ++older;
    }
    if (older <= window_) {
        return;
    }
    // FIFO discipline for all but the newest window_ of them: they
    // pass the consumer first, so their modeled completion times are
    // charged.  Each has necessarily been banked already — the serial
    // loader completes requests in ticket order and the newer target
    // is in hand — so the ready times are known.
    std::size_t passes = older - window_;
    while (passes-- > 0) {
        const Unconsumed front = unconsumed_.front();
        unconsumed_.pop_front();
        NOSWALKER_CHECK(front.banked);
        charge_wait(front.ready_at);
    }
}

void
PrefetchPipeline::bank_response(storage::AsyncLoader::Response response)
{
    NOSWALKER_CHECK(!inflight_.empty());
    const Inflight head = inflight_.front();
    inflight_.pop_front();
    NOSWALKER_CHECK(response.block != nullptr &&
                    response.block->id == head.block &&
                    response.ticket == head.seq);
    // Banked without charging the clock: the consumer is not blocked
    // on this load.  The reorder window decides at serve time whether
    // its completion must be waited out before a newer block.
    const double ready = finish_time(response, head.submitted);
    account(response);
    record_ready(head.seq, ready);
    admitted_.emplace(head.block, Parked{std::move(response), ready,
                                         head.seq, head.speculative});
}

void
PrefetchPipeline::bank_next_blocking()
{
    bank_response(loader_->consume_any());
}

void
PrefetchPipeline::poll()
{
    while (!inflight_.empty()) {
        auto response = loader_->try_wait();
        if (!response.has_value()) {
            return;
        }
        if (response->error) {
            std::rethrow_exception(response->error);
        }
        bank_response(std::move(*response));
    }
}

storage::AsyncLoader::Response
PrefetchPipeline::adapt(storage::AsyncLoader::Response response,
                        const storage::AsyncLoader::Request &demand)
{
    if (demand.fine && !response.fine) {
        reader_->refine(*demand.block, demand.needed, response.buffer);
        response.fine = true;
    }
    return response;
}

storage::AsyncLoader::Response
PrefetchPipeline::obtain(storage::AsyncLoader::Request demand)
{
    NOSWALKER_CHECK(demand.block != nullptr);
    const std::uint32_t id = demand.block->id;

    if (const auto it = stash_.find(id); it != stash_.end()) {
        Parked parked = std::move(it->second);
        stash_.erase(it);
        apply_window_charges(parked.seq);
        forget_unconsumed(parked.seq);
        charge_wait(parked.ready_at);
        ++stats_.prefetch_hits;
        return adapt(std::move(parked.response), demand);
    }
    if (const auto it = admitted_.find(id); it != admitted_.end()) {
        Parked parked = std::move(it->second);
        admitted_.erase(it);
        apply_window_charges(parked.seq);
        forget_unconsumed(parked.seq);
        charge_wait(parked.ready_at);
        ++stats_.prefetch_hits;
        return adapt(std::move(parked.response), demand);
    }

    const bool speculated = std::any_of(
        inflight_.begin(), inflight_.end(),
        [id](const Inflight &f) { return f.block == id; });
    if (!speculated) {
        ++stats_.demand_loads;
        // All loader slots may be occupied by speculation: bank the
        // oldest completion(s) until one frees up.  No charge — the
        // window rule below decides what must be waited out.
        while (!loader_->can_submit()) {
            bank_next_blocking();
        }
        const double submitted = now_;
        const std::uint64_t seq = loader_->submit(std::move(demand));
        inflight_.push_back({id, submitted, seq, false});
        unconsumed_.push_back({seq, id, 0.0, false});
    }

    // Bring the target's completion into hand.  Fast path: it already
    // completed — pluck it out of submission order.  The loads ahead
    // of it have then necessarily completed too (the serial loader
    // finishes requests in ticket order), so bank them first, keeping
    // the modeled device timeline in submission order.
    Parked parked;
    if (auto ready = loader_->try_consume(id); ready.has_value()) {
        if (ready->error) {
            std::rethrow_exception(ready->error);
        }
        while (!inflight_.empty() && inflight_.front().block != id) {
            auto older = loader_->try_wait();
            NOSWALKER_CHECK(older.has_value());
            if (older->error) {
                std::rethrow_exception(older->error);
            }
            bank_response(std::move(*older));
        }
        NOSWALKER_CHECK(!inflight_.empty());
        const Inflight head = inflight_.front();
        inflight_.pop_front();
        NOSWALKER_CHECK(ready->block->id == head.block &&
                        ready->ticket == head.seq);
        const double at = finish_time(*ready, head.submitted);
        account(*ready);
        record_ready(head.seq, at);
        parked =
            Parked{std::move(*ready), at, head.seq, head.speculative};
    } else {
        // The target is still loading: bank completions in ticket
        // order (blocking) until it lands.
        while (admitted_.find(id) == admitted_.end()) {
            bank_next_blocking();
        }
        auto it = admitted_.find(id);
        parked = std::move(it->second);
        admitted_.erase(it);
    }
    apply_window_charges(parked.seq);
    forget_unconsumed(parked.seq);
    charge_wait(parked.ready_at);
    if (parked.speculative) {
        // `demand` is intact here: it was only moved on the
        // demand-load path, whose load delivers its own fine list.
        ++stats_.prefetch_hits;
        return adapt(std::move(parked.response), demand);
    }
    return std::move(parked.response);
}

void
PrefetchPipeline::sweep(const BlockScheduler &scheduler)
{
    ++sweep_epoch_;
    for (auto it = admitted_.begin(); it != admitted_.end();) {
        if (scheduler.count(it->first) != 0) {
            last_hot_[it->first] = sweep_epoch_;
            ++it;
            continue;
        }
        // Misprediction: the bucket drained before the block was
        // chosen.  Demote — publish the coarse bytes to the shared
        // cache and park the buffer in the stash for a re-steer.  The
        // unconsumed entry stays: FIFO accounting for the bypassed
        // load is the window rule's decision, not demotion's.
        ++stats_.prefetch_mispredicts;
        Parked parked = std::move(it->second);
        it = admitted_.erase(it);
        const storage::BlockBuffer &buffer = parked.response.buffer;
        const std::uint32_t id = parked.response.block->id;
        if (cache_ != nullptr && buffer.complete()) {
            const auto hot = last_hot_.find(id);
            if (hot != last_hot_.end() &&
                sweep_epoch_ - hot->second <= kAdmissionSweeps) {
                const auto bytes = buffer.bytes();
                cache_->insert(id, buffer.aligned_begin(),
                               std::vector<std::uint8_t>(bytes.begin(),
                                                         bytes.end()));
            } else {
                // Stale speculation: publishing would only dilute hot
                // service tenants.
                ++stats_.filtered_demotions;
            }
        }
        if (stash_.size() >= std::max<std::size_t>(depth_, 1)) {
            auto victim = stash_.begin();
            recycle(std::move(victim->second.response.buffer));
            stash_.erase(victim);
        }
        stash_.emplace(id, std::move(parked));
    }
}

void
PrefetchPipeline::finish()
{
    while (!inflight_.empty()) {
        // End of run: leftover speculation is consumed (the I/O really
        // happened) but the consumer is not waiting on it — account it
        // without charging the io-wait clock.
        const Inflight head = inflight_.front();
        inflight_.pop_front();
        storage::AsyncLoader::Response response = loader_->consume_any();
        NOSWALKER_CHECK(response.block != nullptr &&
                        response.block->id == head.block &&
                        response.ticket == head.seq);
        finish_time(response, head.submitted);
        account(response);
        ++stats_.prefetch_mispredicts;
        recycle(std::move(response.buffer));
    }
    for (auto &[id, parked] : admitted_) {
        ++stats_.prefetch_mispredicts;
        recycle(std::move(parked.response.buffer));
    }
    admitted_.clear();
    for (auto &[id, parked] : stash_) {
        // Already counted as mispredicted when demoted.
        recycle(std::move(parked.response.buffer));
    }
    stash_.clear();
    unconsumed_.clear();
    last_hot_.clear();
}

void
PrefetchPipeline::recycle(storage::BlockBuffer &&buffer)
{
    pool_->recycle(std::move(buffer));
}

} // namespace noswalker::core
