#include "core/prefetch_pipeline.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "util/error.hpp"

namespace noswalker::core {

PrefetchPipeline::PrefetchPipeline(storage::AsyncLoader &loader,
                                   storage::BlockReader &reader,
                                   storage::BlockBufferPool &pool,
                                   std::size_t depth,
                                   storage::SharedBlockCache *cache,
                                   double queue_latency)
    : loader_(&loader), reader_(&reader), pool_(&pool), depth_(depth),
      cache_(cache), queue_latency_(queue_latency)
{
    NOSWALKER_CHECK(loader.depth() >= std::max<std::size_t>(depth, 1));
}

PrefetchPipeline::~PrefetchPipeline()
{
    try {
        finish();
    } catch (...) {
        // Teardown after an error: leftover loads may rethrow; the
        // original exception is already propagating.
    }
}

bool
PrefetchPipeline::can_speculate() const
{
    return inflight_.size() + admitted_.size() + stash_.size() < depth_ &&
           loader_->can_submit();
}

bool
PrefetchPipeline::covers(std::uint32_t block) const
{
    if (admitted_.count(block) != 0 || stash_.count(block) != 0) {
        return true;
    }
    for (const Inflight &f : inflight_) {
        if (f.block == block) {
            return true;
        }
    }
    return false;
}

void
PrefetchPipeline::collect_covered(std::vector<std::uint32_t> &out) const
{
    for (const Inflight &f : inflight_) {
        out.push_back(f.block);
    }
    for (const auto &[id, parked] : admitted_) {
        out.push_back(id);
    }
    for (const auto &[id, parked] : stash_) {
        out.push_back(id);
    }
}

void
PrefetchPipeline::speculate(const graph::BlockInfo &block)
{
    NOSWALKER_CHECK(can_speculate());
    NOSWALKER_CHECK(!covers(block.id));
    storage::AsyncLoader::Request request;
    request.block = &block;
    request.fine = false;
    inflight_.push_back({block.id, now_});
    ++stats_.speculative_loads;
    loader_->submit(std::move(request));
}

double
PrefetchPipeline::finish_time(const storage::AsyncLoader::Response &response,
                              double submitted)
{
    if (response.result.from_cache || response.result.requests == 0) {
        // No device traffic: the load completes at submission.
        return submitted;
    }
    const double done = std::max(device_free_, submitted + queue_latency_) +
                        response.result.modeled_seconds;
    device_free_ = done;
    return done;
}

void
PrefetchPipeline::account(const storage::AsyncLoader::Response &response)
{
    if (response.fine) {
        ++stats_.fine_loads;
    } else {
        ++stats_.coarse_loads;
    }
    if (response.result.from_cache) {
        ++stats_.cache_hit_loads;
    }
    stats_.bytes_read += response.result.bytes_read;
    stats_.read_requests += response.result.requests;
    stats_.modeled_io_seconds += response.result.modeled_seconds;
}

void
PrefetchPipeline::charge_wait(double ready_at)
{
    if (ready_at > now_) {
        stats_.io_wait_seconds += ready_at - now_;
        now_ = ready_at;
    }
}

PrefetchPipeline::Parked
PrefetchPipeline::consume_blocking()
{
    NOSWALKER_CHECK(!inflight_.empty());
    const Inflight head = inflight_.front();
    inflight_.pop_front();
    storage::AsyncLoader::Response response = loader_->wait();
    NOSWALKER_CHECK(response.block != nullptr &&
                    response.block->id == head.block);
    const double ready = finish_time(response, head.submitted);
    charge_wait(ready);
    account(response);
    return Parked{std::move(response), ready};
}

void
PrefetchPipeline::poll()
{
    while (!inflight_.empty()) {
        auto response = loader_->try_wait();
        if (!response.has_value()) {
            return;
        }
        if (response->error) {
            std::rethrow_exception(response->error);
        }
        const Inflight head = inflight_.front();
        inflight_.pop_front();
        NOSWALKER_CHECK(response->block != nullptr &&
                        response->block->id == head.block);
        // Banked without charging the clock: the consumer was not
        // blocked.  The modeled completion may still lie in the future;
        // obtain() charges the remainder when the block is chosen.
        const double ready = finish_time(*response, head.submitted);
        account(*response);
        admitted_.emplace(head.block,
                          Parked{std::move(*response), ready});
    }
}

storage::AsyncLoader::Response
PrefetchPipeline::adapt(storage::AsyncLoader::Response response,
                        const storage::AsyncLoader::Request &demand)
{
    if (demand.fine && !response.fine) {
        reader_->refine(*demand.block, demand.needed, response.buffer);
        response.fine = true;
    }
    return response;
}

storage::AsyncLoader::Response
PrefetchPipeline::obtain(storage::AsyncLoader::Request demand)
{
    NOSWALKER_CHECK(demand.block != nullptr);
    const std::uint32_t id = demand.block->id;

    if (const auto it = stash_.find(id); it != stash_.end()) {
        Parked parked = std::move(it->second);
        stash_.erase(it);
        charge_wait(parked.ready_at);
        ++stats_.prefetch_hits;
        return adapt(std::move(parked.response), demand);
    }
    if (const auto it = admitted_.find(id); it != admitted_.end()) {
        Parked parked = std::move(it->second);
        admitted_.erase(it);
        charge_wait(parked.ready_at);
        ++stats_.prefetch_hits;
        return adapt(std::move(parked.response), demand);
    }

    const bool speculated = std::any_of(
        inflight_.begin(), inflight_.end(),
        [id](const Inflight &f) { return f.block == id; });
    if (!speculated) {
        ++stats_.demand_loads;
        // All loader slots may be occupied by speculation; drain the
        // FIFO head(s) into the admitted set until one frees up.
        while (!loader_->can_submit()) {
            Parked parked = consume_blocking();
            const std::uint32_t done = parked.response.block->id;
            admitted_.emplace(done, std::move(parked));
        }
        inflight_.push_back({id, now_});
        loader_->submit(std::move(demand));
    }
    for (;;) {
        Parked parked = consume_blocking();
        if (parked.response.block->id == id) {
            if (speculated) {
                // `demand` is intact here: it was only moved on the
                // demand-load path, which delivers its own fine list.
                ++stats_.prefetch_hits;
                return adapt(std::move(parked.response), demand);
            }
            return std::move(parked.response);
        }
        // A speculative load ahead of the target in the FIFO: bank it.
        const std::uint32_t done = parked.response.block->id;
        admitted_.emplace(done, std::move(parked));
    }
}

void
PrefetchPipeline::sweep(const BlockScheduler &scheduler)
{
    for (auto it = admitted_.begin(); it != admitted_.end();) {
        if (scheduler.count(it->first) != 0) {
            ++it;
            continue;
        }
        // Misprediction: the bucket drained before the block was
        // chosen.  Demote — publish the coarse bytes to the shared
        // cache and park the buffer in the stash for a re-steer.
        ++stats_.prefetch_mispredicts;
        Parked parked = std::move(it->second);
        it = admitted_.erase(it);
        const storage::BlockBuffer &buffer = parked.response.buffer;
        const std::uint32_t id = parked.response.block->id;
        if (cache_ != nullptr && buffer.complete()) {
            const auto bytes = buffer.bytes();
            cache_->insert(id, buffer.aligned_begin(),
                           std::vector<std::uint8_t>(bytes.begin(),
                                                     bytes.end()));
        }
        if (stash_.size() >= std::max<std::size_t>(depth_, 1)) {
            auto victim = stash_.begin();
            recycle(std::move(victim->second.response.buffer));
            stash_.erase(victim);
        }
        stash_.emplace(id, std::move(parked));
    }
}

void
PrefetchPipeline::finish()
{
    while (!inflight_.empty()) {
        // End of run: leftover speculation is consumed (the I/O really
        // happened) but the consumer is not waiting on it — account it
        // without charging the io-wait clock.
        const Inflight head = inflight_.front();
        inflight_.pop_front();
        storage::AsyncLoader::Response response = loader_->wait();
        NOSWALKER_CHECK(response.block != nullptr &&
                        response.block->id == head.block);
        finish_time(response, head.submitted);
        account(response);
        ++stats_.prefetch_mispredicts;
        recycle(std::move(response.buffer));
    }
    for (auto &[id, parked] : admitted_) {
        ++stats_.prefetch_mispredicts;
        recycle(std::move(parked.response.buffer));
    }
    admitted_.clear();
    for (auto &[id, parked] : stash_) {
        // Already counted as mispredicted when demoted.
        recycle(std::move(parked.response.buffer));
    }
    stash_.clear();
}

void
PrefetchPipeline::recycle(storage::BlockBuffer &&buffer)
{
    pool_->recycle(std::move(buffer));
}

} // namespace noswalker::core
