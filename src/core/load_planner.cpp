#include "core/load_planner.hpp"

#include <algorithm>

namespace noswalker::core {

LoadPlanner::LoadPlanner(const graph::BlockPartition &partition,
                         Options options)
    : partition_(&partition), options_(options),
      flow_(partition.num_blocks()), flow_total_(partition.num_blocks(), 0)
{
    set_tenant_weight(options.tenant_weight);
}

void
LoadPlanner::set_tenant_weight(double weight)
{
    options_.tenant_weight =
        weight > 0.0 && weight <= 1.0 ? weight : 1.0;
}

void
LoadPlanner::record_flow(std::uint32_t src, std::uint32_t dst,
                         std::uint64_t n)
{
    if (src == BlockScheduler::kNoBlock || n == 0) {
        return;
    }
    auto &edges = flow_[src];
    const auto it = std::find_if(
        edges.begin(), edges.end(),
        [dst](const auto &e) { return e.first == dst; });
    if (it != edges.end()) {
        it->second += n;
    } else {
        edges.emplace_back(dst, n);
    }
    flow_total_[src] += n;
}

void
LoadPlanner::record_exits(std::uint32_t src, std::uint64_t n)
{
    if (src == BlockScheduler::kNoBlock || n == 0) {
        return;
    }
    flow_total_[src] += n;
}

const std::vector<std::uint32_t> &
LoadPlanner::plan(const BlockScheduler &scheduler,
                  const storage::SharedBlockCache *cache,
                  std::span<const std::uint32_t> exclude,
                  std::size_t max_loads)
{
    if (options_.window == 0 || max_loads == 0) {
        // Greedy passthrough: exactly the depth-K nomination the
        // engine used before the planner existed.
        picks_ = scheduler.top_k_excluding(max_loads, exclude);
        return picks_;
    }

    // Fairness: a low-weight tenant commits fewer speculative slots,
    // so its mispredicted bytes cannot crowd another tenant's demand
    // loads off the shared device.  Scaling the *scores* instead would
    // be a no-op (a uniform factor never changes an argmax).
    const std::size_t commit = std::min(
        max_loads,
        std::max<std::size_t>(
            1, static_cast<std::size_t>(options_.tenant_weight *
                                        static_cast<double>(max_loads))));

    // Candidate pool: the greedy top-K plus `window` slack entries.
    // top_k_excluding orders by heat with the documented lowest-id
    // tie-break, so the pool itself is deterministic.
    candidates_ =
        scheduler.top_k_excluding(max_loads + options_.window, exclude);
    picks_.clear();
    const std::size_t num_live = candidates_.size();

    // Extend the pool with flow successors: blocks holding no parked
    // walkers *yet* that the measured flow says the upcoming drains
    // will heat.  The greedy nomination can never see these — top-K
    // only ranks live buckets — yet they are exactly the loads that
    // hide device latency when a concentrated walk marches into fresh
    // blocks.  The walk is seeded from the already-committed loads
    // (the exclude list: their drains are the heat the pipeline will
    // see by the time new picks are consumed) and then traverses the
    // pool itself, so a chain b+1 → b+2 → b+3 unrolls to the window
    // depth.  Successors enter at zero expected heat and are committed
    // only if the drain seeding below lifts them over a live
    // candidate.
    const auto pooled = [this](std::uint32_t id) {
        return std::find(candidates_.begin(), candidates_.end(), id) !=
               candidates_.end();
    };
    const auto append_successors = [&](std::uint32_t src,
                                       std::size_t &extras) {
        successors_ = flow_[src];
        // Heaviest edge first; equal weights resolve to the lower
        // destination id to keep the pool deterministic.
        std::sort(successors_.begin(), successors_.end(),
                  [](const auto &a, const auto &b) {
                      return a.second != b.second
                                 ? a.second > b.second
                                 : a.first < b.first;
                  });
        const double total = static_cast<double>(flow_total_[src]);
        for (const auto &[dst, n] : successors_) {
            if (extras >= options_.window) {
                break;
            }
            // A diffuse source spreads its leavers thin: no single
            // destination is likely enough to bet a device read on.
            if (static_cast<double>(n) <
                kMinSuccessorProbability * total) {
                break;
            }
            if (pooled(dst) ||
                std::find(exclude.begin(), exclude.end(), dst) !=
                    exclude.end()) {
                continue;
            }
            candidates_.push_back(dst);
            ++extras;
        }
    };
    std::size_t extras = 0;
    for (const std::uint32_t covered : exclude) {
        if (extras >= options_.window) {
            break;
        }
        if (covered < flow_.size()) {
            append_successors(covered, extras);
        }
    }
    for (std::size_t i = 0;
         i < candidates_.size() && extras < options_.window; ++i) {
        append_successors(candidates_[i], extras);
    }
    if (candidates_.empty()) {
        return picks_;
    }

    expected_.resize(candidates_.size());
    resident_.assign(candidates_.size(), false);
    taken_.assign(candidates_.size(), false);
    live_.assign(candidates_.size(), false);
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
        expected_[i] =
            static_cast<double>(scheduler.count(candidates_[i]));
        resident_[i] =
            cache != nullptr && cache->resident(candidates_[i]);
        live_[i] = i < num_live;
    }

    // Drain the already-committed loads into the pool: by the time a
    // new pick is consumed, every covered load before it has drained
    // its bucket one step along the measured flow (the "expected heat
    // after planned loads drain" term).
    for (const std::uint32_t covered : exclude) {
        if (covered >= flow_.size() || flow_total_[covered] == 0) {
            continue;
        }
        const double outflow =
            static_cast<double>(scheduler.count(covered));
        if (outflow <= 0.0) {
            continue;
        }
        ++stats_.plan_rescores;
        const double total = static_cast<double>(flow_total_[covered]);
        for (const auto &[dst, n] : flow_[covered]) {
            for (std::size_t i = 0; i < candidates_.size(); ++i) {
                if (candidates_[i] == dst) {
                    expected_[i] +=
                        outflow * static_cast<double>(n) / total;
                    break;
                }
            }
        }
    }

    // Commit in expected-demand order.  Blocks are cut to one byte
    // budget, so across non-resident candidates steps-per-byte order
    // is expected-heat order — which is also the scheduler's demand
    // order, keeping the speculation queue aligned with the near-FIFO
    // consumption window.  A resident pick's cost collapses by
    // kCachedCostFraction: its load completes at submission with no
    // device traffic, and the plan banks a cache credit recording how
    // much of the window the cache subsidized.
    while (picks_.size() < commit) {
        // Two tiers: every live bucket commits before any zero-heat
        // successor — a successor never displaces a load the scheduler
        // is certain to demand, so the plan's coverage is a superset
        // of greedy's for the same slot count.
        std::size_t best = candidates_.size();
        for (const bool want_live : {true, false}) {
            for (std::size_t i = 0; i < candidates_.size(); ++i) {
                if (taken_[i] || live_[i] != want_live ||
                    expected_[i] <= 0.0) {
                    continue;
                }
                // Strict > plus the explicit id comparison resolves
                // equal expected heat toward the lower block id — the
                // same contract the scheduler's demand order documents.
                if (best == candidates_.size() ||
                    expected_[i] > expected_[best] ||
                    (expected_[i] == expected_[best] &&
                     candidates_[i] < candidates_[best])) {
                    best = i;
                }
            }
            if (best != candidates_.size()) {
                break;
            }
        }
        if (best == candidates_.size()) {
            break;
        }
        taken_[best] = true;
        const std::uint32_t picked = candidates_[best];
        if (resident_[best]) {
            ++stats_.plan_cache_credits;
        }
        picks_.push_back(picked);

        // Model the pick draining its bucket: walkers redistribute one
        // step along the measured flow, heating the blocks they will
        // park in by the time this load is consumed.
        if (flow_total_[picked] > 0) {
            ++stats_.plan_rescores;
            const double outflow = expected_[best];
            const double total =
                static_cast<double>(flow_total_[picked]);
            for (const auto &[dst, n] : flow_[picked]) {
                for (std::size_t i = 0; i < candidates_.size(); ++i) {
                    if (!taken_[i] && candidates_[i] == dst) {
                        expected_[i] +=
                            outflow * static_cast<double>(n) / total;
                        break;
                    }
                }
            }
        }
    }
    return picks_;
}

} // namespace noswalker::core
