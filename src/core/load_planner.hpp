/**
 * @file
 * Lookahead window block-load planner (DESIGN.md §13).
 *
 * The greedy hottest-bucket policy nominates the next speculative
 * loads from the scheduler's *current* top-K — but by the time the
 * last of K lookahead loads is consumed, the earlier ones have drained
 * their buckets and reshaped the heat landscape.  GraSorw's trapezoid
 * study (PAPERS.md) shows that for out-of-core walks the *order* of
 * block loads, not just the next pick, dominates I/O volume.  The
 * LoadPlanner therefore scores the next W candidate loads
 * (W = EngineConfig::plan_window) by expected walker-steps-per-byte:
 *
 *   score(b) = expected_heat(b) / cost_bytes(b)
 *
 * expected_heat starts at the scheduler's live bucket count and, after
 * each committed pick, is propagated one step along the measured
 * block-to-block walker flow (maintained incrementally as walkers
 * park), so later picks are ranked by the heat they will have when
 * their load is consumed, not the heat they have now.  The candidate
 * pool is the scheduler's top (K + W) live buckets *plus their flow
 * successors* — blocks holding no parked walkers yet that the flow
 * table predicts the upcoming drains will heat.  Greedy nomination
 * can never see those (top-K only ranks live buckets); they are
 * exactly the loads that hide device latency when a concentrated walk
 * marches into fresh blocks.  Successors are admitted only when the
 * chain edge carries at least kMinSuccessorProbability of the source's
 * observed leavers, and are committed only into slots left over after
 * every live candidate — the plan's coverage is a superset of
 * greedy's, never a gamble against it.  cost_bytes is the device read
 * the load will issue.  The partitioner cuts blocks to one fixed byte budget,
 * so across non-resident candidates the denominator is uniform and
 * score order equals expected-heat order — which is also the
 * scheduler's demand order, keeping the speculation queue consistent
 * with the near-FIFO consumption window (§11).  A SharedBlockCache-
 * resident pick's cost collapses to the modeled cached-read fraction
 * (its load completes at submission with no device traffic); the plan
 * banks a *cache credit* for it, recording how much of the window the
 * cache subsidized.  Per-tenant fairness weights gate how many of the
 * available speculative slots a plan may commit, so one tenant's
 * mispredicted bytes cannot monopolize the shared device.
 *
 * Determinism: plan() is a pure function of (scheduler counts, flow
 * table, cache residency, exclusions) with ties broken toward the
 * lowest block id — the same contract BlockScheduler::hottest()
 * documents.  The planner only chooses *speculative* loads; the block
 * the engine processes is always the scheduler's hottest, so walk
 * output is bit-identical at every plan window (§10's argument,
 * unchanged).  window = 0 returns the scheduler's top-K verbatim: the
 * greedy path, byte for byte.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/block_scheduler.hpp"
#include "graph/partition.hpp"
#include "storage/shared_block_cache.hpp"

namespace noswalker::core {

/** Windowed lookahead scheduler for speculative block loads. */
class LoadPlanner {
  public:
    /** Modeled cost of consuming a cache-resident block, as a fraction
     *  of re-reading its bytes from the device (one memcpy vs a
     *  multi-millisecond SSD read).  Small enough that a resident
     *  candidate always outscores a non-resident one, i.e. it never
     *  needs one of the scarce speculative slots. */
    static constexpr double kCachedCostFraction = 0.125;

    /** Minimum chain-edge probability (flow n / total leavers) for a
     *  zero-heat flow successor to enter the candidate pool.  A
     *  concentrated walk marching through consecutive blocks carries
     *  p ≈ 1 on its chain edge; a diffuse walk spreads p below this
     *  across many destinations, where speculating on cold blocks only
     *  wastes device reads (the walkers retire or scatter before the
     *  load is demanded). */
    static constexpr double kMinSuccessorProbability = 0.5;

    struct Options {
        /** Lookahead window W (0 = greedy top-K passthrough). */
        std::size_t window = 4;
        /** Fairness weight in (0, 1]: fraction of the available
         *  speculative slots a plan may commit (≥ 1 slot). */
        double tenant_weight = 1.0;
    };

    /** Planner counters (folded into RunStats). */
    struct Stats {
        /** One-step flow propagations applied while planning. */
        std::uint64_t plan_rescores = 0;
        /** Committed picks whose load the SharedBlockCache will serve
         *  with no device traffic (cost discounted to the cached
         *  fraction). */
        std::uint64_t plan_cache_credits = 0;
    };

    LoadPlanner(const graph::BlockPartition &partition, Options options);

    /** Replace the fairness weight (values outside (0,1] are clamped). */
    void set_tenant_weight(double weight);

    std::size_t window() const { return options_.window; }

    /**
     * Record that @p n walkers left block @p src and parked in @p dst
     * (called as deltas merge, so the table is deterministic).  A
     * src of BlockScheduler::kNoBlock — fresh injections with no
     * source block — is ignored.
     */
    void record_flow(std::uint32_t src, std::uint32_t dst,
                     std::uint64_t n = 1);

    /**
     * Record @p n walkers leaving @p src without parking anywhere
     * (retired, or emigrated to another shard).  They dilute the
     * transition estimate's denominator so flow fractions stay
     * probabilities, not inflated redistributions.
     */
    void record_exits(std::uint32_t src, std::uint64_t n);

    /**
     * Plan the next up to @p max_loads speculative loads, best score
     * first, excluding every id in @p exclude.
     *
     * window == 0 returns scheduler.top_k_excluding verbatim (the
     * greedy path).  Otherwise candidates are the top
     * (max_loads + window) hottest buckets plus up to `window` of
     * their flow successors; candidates are committed one at a time by
     * expected score, and each commit propagates the block's expected
     * drain one step along the recorded flow before the next pick.
     * Ties break toward the lowest block id.  Deterministic for fixed
     * inputs.  The returned reference is valid until the next plan()
     * call.
     */
    const std::vector<std::uint32_t> &
    plan(const BlockScheduler &scheduler,
         const storage::SharedBlockCache *cache,
         std::span<const std::uint32_t> exclude, std::size_t max_loads);

    const Stats &stats() const { return stats_; }

  private:
    const graph::BlockPartition *partition_;
    Options options_;

    /** flow_[src] = (dst, walkers observed moving src → dst) pairs in
     *  first-observation order.  Flat vectors, not maps: record_flow
     *  runs once per parked walker on the merge path, so it must not
     *  allocate per call; insertion order is deterministic because
     *  deltas merge in worker-index order. */
    std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>>
        flow_;
    /** Total walkers observed leaving each source (incl. exits). */
    std::vector<std::uint64_t> flow_total_;

    /** plan() scratch, reused across calls to stay allocation-free on
     *  the scheduler thread's hot loop. */
    std::vector<std::uint32_t> picks_;
    std::vector<std::uint32_t> candidates_;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> successors_;
    std::vector<double> expected_;
    std::vector<bool> resident_;
    std::vector<bool> taken_;
    std::vector<bool> live_;

    Stats stats_;
};

} // namespace noswalker::core
