#include "core/config.hpp"

#include "util/error.hpp"

namespace noswalker::core {

void
EngineConfig::validate() const
{
    if (block_bytes == 0) {
        throw util::ConfigError("EngineConfig: block_bytes must be > 0");
    }
    if (alpha <= 0.0) {
        throw util::ConfigError("EngineConfig: alpha must be positive");
    }
    if (presamples_per_vertex == 0 ||
        max_presamples_per_vertex < presamples_per_vertex) {
        throw util::ConfigError("EngineConfig: bad pre-sample quotas");
    }
    if (step_threads == 0) {
        throw util::ConfigError("EngineConfig: step_threads must be >= 1");
    }
    if (prefetch_depth > 64) {
        throw util::ConfigError(
            "EngineConfig: prefetch_depth must be <= 64");
    }
    if (prefetch_reorder_window > 64) {
        throw util::ConfigError(
            "EngineConfig: prefetch_reorder_window must be <= 64");
    }
    if (plan_window > 64) {
        throw util::ConfigError(
            "EngineConfig: plan_window must be <= 64");
    }
    if (step_cohort > 1024) {
        throw util::ConfigError(
            "EngineConfig: step_cohort must be <= 1024");
    }
    if (num_shards == 0 || num_shards > 256) {
        throw util::ConfigError(
            "EngineConfig: num_shards must be in [1, 256]");
    }
    // The fractions apply sequentially (pool from the post-index
    // remainder, pre-samples from what is left after the pool), so
    // each only needs to be a valid fraction on its own.
    if (walker_memory_fraction <= 0.0 || walker_memory_fraction >= 1.0 ||
        presample_memory_fraction < 0.0 ||
        presample_memory_fraction >= 1.0) {
        throw util::ConfigError("EngineConfig: bad memory fractions");
    }
}

EngineConfig
EngineConfig::full(std::uint64_t memory_budget, std::uint64_t block_bytes)
{
    EngineConfig cfg;
    cfg.memory_budget = memory_budget;
    cfg.block_bytes = block_bytes;
    return cfg;
}

EngineConfig
EngineConfig::base_implementation(std::uint64_t memory_budget,
                                  std::uint64_t block_bytes)
{
    EngineConfig cfg;
    cfg.memory_budget = memory_budget;
    cfg.block_bytes = block_bytes;
    cfg.walker_management = false;
    cfg.shrink_block = false;
    cfg.presample = false;
    return cfg;
}

} // namespace noswalker::core
