/**
 * @file
 * Walker-count block scheduler with the adaptive-granularity switch.
 *
 * Chooses the hottest block (most waiting walkers) for the next load —
 * the same state-aware policy GraphWalker introduced — and decides when
 * to flip from coarse sequential loads to fine-grained 4 KiB loads
 * using the paper's rule α·|Wa|·4KiB < S_G (§3.3.1).  The flip is
 * sticky: walker counts only shrink, so once fine mode starts it stays.
 */
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace noswalker::core {

/** Tracks per-block walker counts and picks the next block to load. */
class BlockScheduler {
  public:
    /** Sentinel returned by hottest() when no block has walkers. */
    static constexpr std::uint32_t kNoBlock = ~std::uint32_t{0};

    /**
     * @param num_blocks      blocks in the partition.
     * @param alpha           unevenness factor of the fine-mode rule.
     * @param graph_bytes     S_G, total edge-region bytes.
     * @param page_bytes      fine block size (4 KiB).
     */
    BlockScheduler(std::uint32_t num_blocks, double alpha,
                   std::uint64_t graph_bytes, std::uint32_t page_bytes);

    /** A walker is now waiting in @p block. */
    void
    add_walker(std::uint32_t block)
    {
        ++counts_[block];
    }

    /** A walker left @p block (moved on or retired). */
    void remove_walker(std::uint32_t block);

    /**
     * Remove @p n walkers from @p block at once.  Removing more than
     * are waiting asserts in debug builds and clamps to zero in
     * release builds — an underflow wrap would make the bucket the
     * hottest block forever.
     */
    void remove_walkers(std::uint32_t block, std::uint64_t n);

    /** Waiting walkers in @p block. */
    std::uint64_t count(std::uint32_t block) const
    {
        return counts_[block];
    }

    /**
     * Block with the most waiting walkers, or kNoBlock.
     *
     * Tie-break contract: equal counts resolve toward the LOWEST block
     * id.  This is a stated invariant, not an implementation accident —
     * the processed-block schedule, the prefetch nomination, and the
     * LoadPlanner's scoring (DESIGN.md §13) all rely on it for
     * bit-identical walk output across plan windows, thread counts,
     * and shard counts.
     */
    std::uint32_t hottest() const;

    /**
     * Hottest block other than @p skip (the prefetch predictor asks
     * "what comes after the block currently being processed?").
     * Pass kNoBlock to skip nothing.
     */
    std::uint32_t hottest_excluding(std::uint32_t skip) const;

    /**
     * The up to @p k hottest blocks with waiting walkers, hottest
     * first, excluding every id in @p skip.  The depth-K prefetch
     * pipeline uses this to nominate the next speculative loads, and
     * the LoadPlanner builds its candidate pool from it.
     *
     * Same tie-break contract as hottest(): equal counts resolve
     * toward the lowest block id, at every rank of the result.
     */
    std::vector<std::uint32_t>
    top_k_excluding(std::size_t k,
                    std::span<const std::uint32_t> skip) const;

    /**
     * Whether the engine should use fine-grained loads given the
     * number of active walkers.  Sticky once triggered.
     */
    bool fine_mode(std::uint64_t active_walkers);

    /** True once the sticky fine-mode switch has fired. */
    bool fine_mode_active() const { return fine_; }

  private:
    std::vector<std::uint64_t> counts_;
    double alpha_;
    std::uint64_t graph_bytes_;
    std::uint32_t page_bytes_;
    bool fine_ = false;
};

} // namespace noswalker::core
