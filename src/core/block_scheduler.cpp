#include "core/block_scheduler.hpp"

#include <algorithm>
#include <cassert>

#include "util/error.hpp"

namespace noswalker::core {

BlockScheduler::BlockScheduler(std::uint32_t num_blocks, double alpha,
                               std::uint64_t graph_bytes,
                               std::uint32_t page_bytes)
    : counts_(num_blocks, 0), alpha_(alpha), graph_bytes_(graph_bytes),
      page_bytes_(page_bytes)
{
}

void
BlockScheduler::remove_walker(std::uint32_t block)
{
    NOSWALKER_CHECK(counts_[block] > 0);
    --counts_[block];
}

void
BlockScheduler::remove_walkers(std::uint32_t block, std::uint64_t n)
{
    assert(counts_[block] >= n);
    // Clamp rather than wrap: an underflowing subtraction would turn
    // the bucket into a ~2^64 "hottest" block and wedge the schedule
    // on it forever in release builds.
    counts_[block] -= std::min(counts_[block], n);
}

std::uint32_t
BlockScheduler::hottest() const
{
    return hottest_excluding(kNoBlock);
}

std::uint32_t
BlockScheduler::hottest_excluding(std::uint32_t skip) const
{
    std::uint32_t best = kNoBlock;
    std::uint64_t best_count = 0;
    for (std::uint32_t b = 0; b < counts_.size(); ++b) {
        if (b == skip) {
            continue;
        }
        if (counts_[b] > best_count) {
            best_count = counts_[b];
            best = b;
        }
    }
    return best;
}

std::vector<std::uint32_t>
BlockScheduler::top_k_excluding(std::size_t k,
                                std::span<const std::uint32_t> skip) const
{
    std::vector<std::uint32_t> picks;
    if (k == 0) {
        return picks;
    }
    picks.reserve(k);
    // Selection by repeated max scan: k is the prefetch depth (a small
    // constant), so O(k·B) beats sorting all B blocks.
    while (picks.size() < k) {
        std::uint32_t best = kNoBlock;
        std::uint64_t best_count = 0;
        for (std::uint32_t b = 0; b < counts_.size(); ++b) {
            if (counts_[b] <= best_count) {
                continue;
            }
            const auto excluded = [&](std::uint32_t id) {
                for (std::uint32_t s : skip) {
                    if (s == id) {
                        return true;
                    }
                }
                for (std::uint32_t p : picks) {
                    if (p == id) {
                        return true;
                    }
                }
                return false;
            };
            if (excluded(b)) {
                continue;
            }
            best_count = counts_[b];
            best = b;
        }
        if (best == kNoBlock) {
            break;
        }
        picks.push_back(best);
    }
    return picks;
}

bool
BlockScheduler::fine_mode(std::uint64_t active_walkers)
{
    if (!fine_) {
        const double lhs = alpha_ * static_cast<double>(active_walkers) *
                           static_cast<double>(page_bytes_);
        if (lhs < static_cast<double>(graph_bytes_)) {
            fine_ = true;
        }
    }
    return fine_;
}

} // namespace noswalker::core
