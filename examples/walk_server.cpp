/**
 * @file
 * Walk server: the service layer end to end.
 *
 *  1. generate a Kronecker graph and serialize it,
 *  2. start a WalkService (4 workers, shared budget + block cache),
 *  3. fire three concurrent "clients" at it — an endpoint tenant, a
 *     path-corpus tenant, and a top-k visit tenant,
 *  4. print each tenant's aggregated stats and the service counters.
 *
 * Build & run:  ./build/examples/walk_server
 */
#include <cstdio>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "service/walk_service.hpp"
#include "storage/mem_device.hpp"

int
main()
{
    using namespace noswalker;

    // 1. The graph, serialized to the on-disk format.
    graph::RmatParams params;
    params.scale = 14;
    params.edge_factor = 16;
    params.seed = 2023;
    const graph::CsrGraph g = graph::generate_rmat(params);
    storage::MemDevice device(storage::SsdModel::p4618());
    graph::GraphFile::write(g, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(file, file.edge_region_bytes() / 32);
    std::printf("graph: %u vertices, %llu edges, %u blocks\n",
                g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()),
                partition.num_blocks());

    // 2. The service: 4 workers under one shared budget, with a block
    //    cache so concurrent tenants share hot-block loads.
    service::ServiceConfig cfg;
    cfg.num_workers = 4;
    cfg.max_batch = 8;
    cfg.batch_window_seconds = 0.001;
    cfg.memory_budget = file.file_bytes() * 2;
    cfg.cache_bytes = file.file_bytes() / 2;
    cfg.block_bytes = partition.target_block_bytes();
    service::WalkService svc(file, partition, cfg);

    // 3. Three concurrent clients, one tenant each.
    auto client = [&](std::uint64_t tenant, service::WalkKind kind,
                      int queries) {
        std::vector<service::WalkTicket> tickets;
        for (int q = 0; q < queries; ++q) {
            service::WalkRequest r;
            r.kind = kind;
            r.tenant = tenant;
            r.seed = tenant * 1000 + q;
            r.length = 12;
            r.starts = {static_cast<graph::VertexId>(
                (q * 131 + tenant) % file.num_vertices())};
            r.walks_per_start = kind == service::WalkKind::kPaths ? 4 : 32;
            tickets.push_back(svc.submit(r));
        }
        std::uint64_t ok = 0;
        for (auto &t : tickets) {
            ok += t.get().ok() ? 1 : 0;
        }
        std::printf("tenant %llu: %llu/%d queries ok\n",
                    static_cast<unsigned long long>(tenant),
                    static_cast<unsigned long long>(ok), queries);
    };
    std::vector<std::thread> clients;
    clients.emplace_back(client, 1, service::WalkKind::kEndpoints, 24);
    clients.emplace_back(client, 2, service::WalkKind::kPaths, 24);
    clients.emplace_back(client, 3, service::WalkKind::kVisitCounts, 24);
    for (std::thread &t : clients) {
        t.join();
    }
    svc.stop();

    // 4. Per-tenant accounting + service counters.
    for (std::uint64_t tenant : {1, 2, 3}) {
        const engine::RunStats stats = svc.tenant_stats(tenant);
        std::printf("\ntenant %llu: %llu walks, %llu steps, "
                    "%.1f MiB read (modeled %.3f s of device time)\n",
                    static_cast<unsigned long long>(tenant),
                    static_cast<unsigned long long>(stats.walkers),
                    static_cast<unsigned long long>(stats.steps),
                    static_cast<double>(stats.graph_bytes_read) /
                        (1024.0 * 1024.0),
                    stats.io_busy_seconds);
    }
    const auto c = svc.counters();
    std::printf("\nservice: %llu submitted, %llu completed, "
                "%llu batches (%llu coalesced), %llu cache hits, "
                "peak budget %.1f MiB\n",
                static_cast<unsigned long long>(c.submitted),
                static_cast<unsigned long long>(c.completed),
                static_cast<unsigned long long>(c.batches),
                static_cast<unsigned long long>(c.coalesced_requests),
                static_cast<unsigned long long>(c.cache_hits),
                static_cast<double>(c.budget_peak) / (1024.0 * 1024.0));
    return 0;
}
