/**
 * @file
 * Second-order Node2Vec walk generation (paper §4.5, Appendix A).
 *
 * Demonstrates the rejection-sampling programming model: the engine
 * pre-samples candidate destinations uniformly, and the Rejection hook
 * resolves each trial once the candidate's adjacency is resident —
 * no random I/O for the second-order weights.
 *
 * Usage: node2vec_walks [p] [q]
 */
#include <cstdio>
#include <cstdlib>

#include "apps/node2vec.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/mem_device.hpp"

int
main(int argc, char **argv)
{
    using namespace noswalker;

    const double p = argc > 1 ? std::atof(argv[1]) : 2.0;
    const double q = argc > 2 ? std::atof(argv[2]) : 0.5;

    // Node2Vec operates on an undirected graph: symmetrize an RMAT.
    graph::RmatParams params;
    params.scale = 13;
    params.edge_factor = 16;
    params.seed = 99;
    params.symmetrize = true;
    const graph::CsrGraph g = graph::generate_rmat(params);

    storage::MemDevice device(storage::SsdModel::p4618());
    graph::GraphFile::write(g, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(
        file, std::max<std::uint64_t>(16 * 1024,
                                      file.edge_region_bytes() / 32));

    std::printf("Node2Vec: p=%.2f q=%.2f, 2 walkers/vertex, length 10, "
                "on %u vertices / %llu (undirected) edges\n",
                p, q, file.num_vertices(),
                static_cast<unsigned long long>(file.num_edges()));

    apps::Node2Vec app(p, q, /*length=*/10, file.num_vertices(),
                       /*walks_per_vertex=*/2);
    core::EngineConfig config = core::EngineConfig::full(
        file.file_bytes() / 4, partition.target_block_bytes());
    core::NosWalkerEngine<apps::Node2Vec> engine(file, partition,
                                                 config);
    const engine::RunStats stats =
        engine.run(app, app.total_walkers());

    std::printf("\n%s\n", stats.to_string().c_str());
    std::printf("\nrejection sampling: %llu trials, %llu rejected "
                "(%.1f%% acceptance; E[trials/step] = %.2f, Eq. 3 "
                "predicts a small constant)\n",
                static_cast<unsigned long long>(stats.rejection_trials),
                static_cast<unsigned long long>(
                    stats.rejection_rejected),
                100.0 *
                    (1.0 - static_cast<double>(stats.rejection_rejected) /
                               static_cast<double>(
                                   stats.rejection_trials)),
                static_cast<double>(stats.rejection_trials) /
                    static_cast<double>(stats.steps));
    return 0;
}
