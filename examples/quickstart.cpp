/**
 * @file
 * Quickstart: the smallest end-to-end NosWalker program.
 *
 *  1. generate a power-law graph,
 *  2. serialize it to the on-disk format (here: an in-memory device
 *     with the NVMe cost model; swap in storage::FileDevice for a
 *     real file),
 *  3. partition it into blocks,
 *  4. run one million basic random-walk steps under a 25 % memory
 *     budget,
 *  5. print the run statistics.
 *
 * Build & run:  ./build/examples/quickstart
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/mem_device.hpp"

int
main()
{
    using namespace noswalker;

    // 1. A Graph500-style Kronecker graph: 2^14 vertices, 2^18 edges.
    graph::RmatParams params;
    params.scale = 14;
    params.edge_factor = 16;
    params.seed = 2023;
    const graph::CsrGraph g = graph::generate_rmat(params);
    std::printf("graph: %u vertices, %llu edges\n", g.num_vertices(),
                static_cast<unsigned long long>(g.num_edges()));

    // 2. Serialize to the on-disk format.
    storage::MemDevice device(storage::SsdModel::p4618());
    graph::GraphFile::write(g, device);
    graph::GraphFile file(device);

    // 3. Partition the edge region into ~32 blocks.
    graph::BlockPartition partition(file,
                                    file.edge_region_bytes() / 32);
    std::printf("on-disk: %llu bytes in %u blocks\n",
                static_cast<unsigned long long>(file.file_bytes()),
                partition.num_blocks());

    // 4. Run: 100k walkers of length 10 under a 25 % budget.
    apps::BasicRandomWalk app(/*length=*/10, file.num_vertices());
    core::EngineConfig config = core::EngineConfig::full(
        file.file_bytes() / 4, partition.target_block_bytes());
    core::NosWalkerEngine<apps::BasicRandomWalk> engine(file, partition,
                                                        config);
    const engine::RunStats stats = engine.run(app, 100'000);

    // 5. Report.
    std::printf("%s\n", stats.to_string().c_str());
    std::printf("\nedges loaded per step: %.2f (lower is better; "
                "the paper's Fig 2 shows 6.4 for NosWalker vs 23/32 "
                "for GraphWalker/DrunkardMob)\n",
                stats.edges_per_step());
    return 0;
}
