/**
 * @file
 * DeepWalk corpus generation — the paper's motivating pipeline (§2.1):
 * extract a large corpus of random walk sequences from a graph that is
 * larger than memory, to be fed to a skip-gram embedding trainer.
 *
 * Writes one space-separated vertex sequence per line to
 * deepwalk_corpus.txt (the format word2vec-style trainers consume).
 *
 * Usage: deepwalk_corpus [walks_per_vertex] [walk_length]
 */
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "apps/deepwalk.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/mem_device.hpp"

int
main(int argc, char **argv)
{
    using namespace noswalker;

    const std::uint32_t walks_per_vertex =
        argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 2;
    const std::uint32_t length =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 20;

    // The Twitter twin: a socially-skewed graph (see Table 1).
    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kTwitter, 13);
    storage::MemDevice device(storage::SsdModel::p4618());
    graph::GraphFile::write(g, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(
        file, std::max<std::uint64_t>(16 * 1024,
                                      file.edge_region_bytes() / 32));

    std::ofstream corpus("deepwalk_corpus.txt");
    std::uint64_t sequences = 0;
    apps::DeepWalk app(
        file.num_vertices(), walks_per_vertex, length,
        [&](std::uint64_t, const std::vector<graph::VertexId> &seq) {
            for (std::size_t i = 0; i < seq.size(); ++i) {
                corpus << seq[i] << (i + 1 < seq.size() ? ' ' : '\n');
            }
            ++sequences;
        });

    core::EngineConfig config = core::EngineConfig::full(
        file.file_bytes() / 4, partition.target_block_bytes());
    core::NosWalkerEngine<apps::DeepWalk> engine(file, partition,
                                                 config);
    const engine::RunStats stats =
        engine.run(app, app.total_walkers());

    std::printf("wrote %llu sequences (%llu steps) to "
                "deepwalk_corpus.txt\n",
                static_cast<unsigned long long>(sequences),
                static_cast<unsigned long long>(stats.steps));
    std::printf("graph I/O: %llu bytes in %llu requests, modeled "
                "%.3f s\n",
                static_cast<unsigned long long>(stats.graph_bytes_read),
                static_cast<unsigned long long>(
                    stats.graph_read_requests),
                stats.modeled_seconds());
    return 0;
}
