/**
 * @file
 * Personalized PageRank queries (§4.2 application 1): approximate the
 * PPR vector of a query vertex with 2000 Monte-Carlo walks of length
 * 10 and print the top-10 ranked vertices, comparing NosWalker's
 * result against an in-memory reference run to show they agree.
 *
 * Usage: ppr_topk [source_vertex]
 */
#include <cstdio>
#include <cstdlib>

#include "apps/ppr.hpp"
#include "baselines/inmemory.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/mem_device.hpp"

int
main(int argc, char **argv)
{
    using namespace noswalker;

    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kKron30, 13);
    storage::MemDevice device(storage::SsdModel::p4618());
    graph::GraphFile::write(g, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(
        file, std::max<std::uint64_t>(16 * 1024,
                                      file.edge_region_bytes() / 32));

    graph::VertexId source = 0;
    if (argc > 1) {
        source = static_cast<graph::VertexId>(std::atoll(argv[1])) %
                 file.num_vertices();
    } else {
        // Default: the highest-degree vertex.
        for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
            if (g.degree(v) > g.degree(source)) {
                source = v;
            }
        }
    }
    std::printf("PPR query from vertex %u (degree %u), 2000 walks of "
                "length 10\n",
                source, g.degree(source));

    // Out-of-core run under a 20 % budget.
    apps::PersonalizedPageRank app({source}, 2000, 10,
                                   /*record_visits=*/true);
    core::EngineConfig config = core::EngineConfig::full(
        file.file_bytes() / 5, partition.target_block_bytes());
    core::NosWalkerEngine<apps::PersonalizedPageRank> engine(
        file, partition, config);
    const engine::RunStats stats =
        engine.run(app, app.total_walkers());

    // In-memory reference for comparison.
    apps::PersonalizedPageRank ref({source}, 2000, 10, true);
    baselines::InMemoryEngine<apps::PersonalizedPageRank> ref_engine(
        file, /*seed=*/7);
    ref_engine.run(ref, ref.total_walkers());

    std::printf("\n%-8s%-12s%-12s\n", "vertex", "ppr(nosw)", "ppr(ref)");
    for (const auto &[v, score] : app.top_k(0, 10)) {
        std::printf("%-8u%-12.5f%-12.5f\n", v, score,
                    ref.estimate(0, v));
    }
    std::printf("\nout-of-core run: %.3f modeled seconds, %llu bytes "
                "of graph I/O, peak memory %llu bytes (budget %llu)\n",
                stats.modeled_seconds(),
                static_cast<unsigned long long>(stats.graph_bytes_read),
                static_cast<unsigned long long>(stats.peak_memory),
                static_cast<unsigned long long>(file.file_bytes() / 5));
    return 0;
}
