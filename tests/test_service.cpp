/**
 * @file
 * Walk service tests: per-request determinism independent of worker
 * count and batching, admission control, request coalescing, deadline
 * and shutdown handling, and per-tenant accounting.
 */
#include <gtest/gtest.h>

#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "service/walk_service.hpp"
#include "storage/mem_device.hpp"

namespace noswalker::service {
namespace {

struct Fixture {
    graph::CsrGraph graph;
    storage::MemDevice device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;

    Fixture(graph::CsrGraph g, std::uint64_t block_bytes)
        : graph(std::move(g))
    {
        graph::GraphFile::write(graph, device);
        file = std::make_unique<graph::GraphFile>(device);
        partition =
            std::make_unique<graph::BlockPartition>(*file, block_bytes);
    }
};

graph::CsrGraph
skewed_graph()
{
    return graph::generate_rmat({.scale = 9,
                                 .edge_factor = 8,
                                 .a = 0.57,
                                 .b = 0.19,
                                 .c = 0.19,
                                 .seed = 21,
                                 .symmetrize = false,
                                 .weighted = false});
}

/** A mixed workload exercising every request kind. */
std::vector<WalkRequest>
canned_requests(graph::VertexId num_vertices)
{
    std::vector<WalkRequest> requests;
    for (int i = 0; i < 12; ++i) {
        WalkRequest r;
        r.seed = 1000 + 37 * static_cast<std::uint64_t>(i);
        r.length = 6 + static_cast<std::uint32_t>(i % 5);
        r.tenant = static_cast<std::uint64_t>(i % 2);
        switch (i % 3) {
        case 0:
            r.kind = WalkKind::kEndpoints;
            r.starts = {static_cast<graph::VertexId>((1 + i) %
                                                     num_vertices),
                        static_cast<graph::VertexId>((7 + 3 * i) %
                                                     num_vertices)};
            r.walks_per_start = 3;
            break;
        case 1:
            r.kind = WalkKind::kPaths;
            r.starts = {static_cast<graph::VertexId>((5 + 11 * i) %
                                                     num_vertices)};
            r.walks_per_start = 2;
            break;
        default:
            r.kind = WalkKind::kVisitCounts;
            r.starts = {static_cast<graph::VertexId>((13 * i) %
                                                     num_vertices)};
            r.walks_per_start = 20;
            r.top_k = 8;
            break;
        }
        requests.push_back(std::move(r));
    }
    return requests;
}

/** Submit @p requests to a fresh service and collect all results. */
std::vector<WalkResult>
run_all(Fixture &fixture, ServiceConfig config,
        const std::vector<WalkRequest> &requests)
{
    WalkService service(*fixture.file, *fixture.partition, config);
    std::vector<WalkTicket> tickets;
    tickets.reserve(requests.size());
    for (const WalkRequest &request : requests) {
        tickets.push_back(service.submit(request));
    }
    std::vector<WalkResult> results;
    results.reserve(tickets.size());
    for (WalkTicket &ticket : tickets) {
        results.push_back(ticket.get());
    }
    return results;
}

TEST(WalkService, ResultsBitIdenticalAcrossWorkerCountsAndBatching)
{
    Fixture s(skewed_graph(), 4096);
    const auto requests = canned_requests(s.file->num_vertices());

    ServiceConfig base;
    base.cache_bytes = 1ULL << 20;
    base.batch_window_seconds = 0.002;

    ServiceConfig solo = base;
    solo.num_workers = 1;
    solo.max_batch = 1;
    const auto reference = run_all(s, solo, requests);

    for (const auto &[workers, batch] :
         {std::pair<unsigned, std::size_t>{2, 4}, {8, 8}}) {
        ServiceConfig cfg = base;
        cfg.num_workers = workers;
        cfg.max_batch = batch;
        const auto results = run_all(s, cfg, requests);
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_EQ(results[i].status, WalkStatus::kOk)
                << "request " << i << ": " << results[i].error;
            EXPECT_EQ(results[i].endpoints, reference[i].endpoints)
                << "request " << i << " at " << workers << " workers";
            EXPECT_EQ(results[i].paths, reference[i].paths)
                << "request " << i << " at " << workers << " workers";
            EXPECT_EQ(results[i].top_visits, reference[i].top_visits)
                << "request " << i << " at " << workers << " workers";
            EXPECT_EQ(results[i].stats.walkers,
                      reference[i].stats.walkers);
            EXPECT_EQ(results[i].stats.steps, reference[i].stats.steps);
        }
    }
}

TEST(WalkService, ShardedBackendMatchesPlainServiceBitForBit)
{
    // Per-walker streams make every request's output a pure function
    // of its own seed, so a service running sharded engines must
    // reproduce the single-engine service exactly — including the
    // per-request walker/step accounting.
    Fixture s(skewed_graph(), 4096);
    const auto requests = canned_requests(s.file->num_vertices());

    ServiceConfig base;
    base.cache_bytes = 1ULL << 20;
    base.batch_window_seconds = 0.002;
    base.num_workers = 2;
    base.max_batch = 4;

    ServiceConfig plain = base;
    plain.num_shards = 1;
    const auto reference = run_all(s, plain, requests);

    for (const unsigned shards : {2u, 4u}) {
        ServiceConfig cfg = base;
        cfg.num_shards = shards;
        const auto results = run_all(s, cfg, requests);
        ASSERT_EQ(results.size(), reference.size());
        for (std::size_t i = 0; i < results.size(); ++i) {
            ASSERT_EQ(results[i].status, WalkStatus::kOk)
                << "request " << i << ": " << results[i].error;
            EXPECT_EQ(results[i].endpoints, reference[i].endpoints)
                << "request " << i << " at " << shards << " shards";
            EXPECT_EQ(results[i].paths, reference[i].paths)
                << "request " << i << " at " << shards << " shards";
            EXPECT_EQ(results[i].top_visits, reference[i].top_visits)
                << "request " << i << " at " << shards << " shards";
            EXPECT_EQ(results[i].stats.walkers,
                      reference[i].stats.walkers);
            EXPECT_EQ(results[i].stats.steps, reference[i].stats.steps);
        }
    }
}

TEST(WalkService, ShardedServiceScalesMinFootprint)
{
    // Each shard holds its own CSR index copy and buffers, so the
    // admission floor multiplies by the shard count: a budget that
    // admits one engine can reject a four-shard configuration.
    Fixture s(graph::generate_uniform(1000, 8, 5), 4096);
    const std::uint64_t floor_one =
        WalkService::min_run_footprint(*s.file, *s.partition);

    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.num_shards = 4;
    cfg.cache_bytes = 0;
    cfg.memory_budget = floor_one * 2; // enough for 1 shard, not 4

    WalkService service(*s.file, *s.partition, cfg);
    WalkRequest request;
    request.starts = {1};
    const WalkResult result = service.submit(request).get();
    EXPECT_EQ(result.status, WalkStatus::kRejectedBudget);
    EXPECT_EQ(service.counters().rejected_budget, 1u);
}

TEST(WalkService, PathsFollowRealEdges)
{
    Fixture s(skewed_graph(), 4096);
    WalkRequest request;
    request.kind = WalkKind::kPaths;
    request.starts = {3, 9, 27};
    request.walks_per_start = 4;
    request.length = 10;
    request.seed = 7;

    ServiceConfig cfg;
    cfg.num_workers = 2;
    WalkService service(*s.file, *s.partition, cfg);
    WalkResult result = service.submit(request).get();
    ASSERT_TRUE(result.ok()) << result.error;
    ASSERT_EQ(result.paths.size(), request.num_walks());
    for (const auto &path : result.paths) {
        ASSERT_FALSE(path.empty());
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            ASSERT_TRUE(s.graph.has_edge(path[i], path[i + 1]))
                << path[i] << "->" << path[i + 1] << " is not an edge";
        }
    }
}

TEST(WalkService, TinyBudgetRejectsAtSubmission)
{
    Fixture s(graph::generate_uniform(1000, 8, 5), 4096);
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.memory_budget = 1024; // below any run's fixed footprint

    WalkService service(*s.file, *s.partition, cfg);
    WalkRequest request;
    request.starts = {1};
    const WalkResult result = service.submit(request).get();
    EXPECT_EQ(result.status, WalkStatus::kRejectedBudget);
    EXPECT_FALSE(result.error.empty());
    EXPECT_EQ(service.counters().rejected_budget, 1u);
    EXPECT_EQ(service.counters().completed, 0u);
}

TEST(WalkService, BatchingWindowCoalescesCompatibleRequests)
{
    Fixture s(graph::generate_uniform(1000, 8, 5), 4096);

    // One worker, generous window, max_batch 8: eight quick
    // submissions must land in exactly one engine run.
    {
        ServiceConfig cfg;
        cfg.num_workers = 1;
        cfg.max_batch = 8;
        cfg.batch_window_seconds = 0.5;
        WalkService service(*s.file, *s.partition, cfg);
        std::vector<WalkTicket> tickets;
        for (int i = 0; i < 8; ++i) {
            WalkRequest request;
            request.starts = {static_cast<graph::VertexId>(i)};
            request.walks_per_start = 2;
            request.length = 4;
            request.seed = 50 + static_cast<std::uint64_t>(i);
            tickets.push_back(service.submit(request));
        }
        std::uint64_t batch_id = 0;
        for (WalkTicket &ticket : tickets) {
            const WalkResult result = ticket.get();
            ASSERT_TRUE(result.ok()) << result.error;
            EXPECT_EQ(result.batch_size, 8u);
            if (batch_id == 0) {
                batch_id = result.batch_id;
            }
            EXPECT_EQ(result.batch_id, batch_id);
        }
        EXPECT_EQ(service.counters().batches, 1u);
        EXPECT_EQ(service.counters().coalesced_requests, 8u);
    }

    // max_batch 2 splits six submissions into exactly three runs.
    {
        ServiceConfig cfg;
        cfg.num_workers = 1;
        cfg.max_batch = 2;
        cfg.batch_window_seconds = 0.5;
        WalkService service(*s.file, *s.partition, cfg);
        std::vector<WalkTicket> tickets;
        for (int i = 0; i < 6; ++i) {
            WalkRequest request;
            request.starts = {static_cast<graph::VertexId>(10 + i)};
            request.length = 4;
            request.seed = 90 + static_cast<std::uint64_t>(i);
            tickets.push_back(service.submit(request));
        }
        for (WalkTicket &ticket : tickets) {
            const WalkResult result = ticket.get();
            ASSERT_TRUE(result.ok()) << result.error;
            EXPECT_EQ(result.batch_size, 2u);
        }
        EXPECT_EQ(service.counters().batches, 3u);
        EXPECT_EQ(service.counters().coalesced_requests, 6u);
    }
}

TEST(WalkService, ExactStepAccountingOnRegularGraph)
{
    // Every vertex has out-degree 8, so no walk dies early and the
    // per-request stats slices carry exact walker/step counts.
    Fixture s(graph::generate_uniform(1000, 8, 5), 4096);
    ServiceConfig cfg;
    cfg.num_workers = 2;
    WalkService service(*s.file, *s.partition, cfg);

    WalkRequest request;
    request.kind = WalkKind::kEndpoints;
    request.starts = {1, 2, 3};
    request.walks_per_start = 5;
    request.length = 7;
    request.tenant = 42;

    WalkResult a = service.submit(request).get();
    request.seed = 2;
    WalkResult b = service.submit(request).get();
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.stats.walkers, 15u);
    EXPECT_EQ(a.stats.steps, 15u * 7);

    const engine::RunStats tenant = service.tenant_stats(42);
    EXPECT_EQ(tenant.walkers, 30u);
    EXPECT_EQ(tenant.steps, 30u * 7);
    EXPECT_EQ(service.tenant_stats(7).walkers, 0u);
}

TEST(WalkService, DeadlineExpiresWhileQueued)
{
    Fixture s(graph::generate_uniform(1000, 8, 5), 4096);
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.batch_window_seconds = 0.05; // guarantees > 1 µs queue time
    WalkService service(*s.file, *s.partition, cfg);

    WalkRequest request;
    request.starts = {1};
    request.deadline_seconds = 1e-6;
    const WalkResult result = service.submit(request).get();
    EXPECT_EQ(result.status, WalkStatus::kDeadlineExpired);
    EXPECT_EQ(service.counters().expired, 1u);
}

TEST(WalkService, DeadlineEnforcedAcrossBudgetWait)
{
    // Regression: a request whose deadline expired while its worker
    // was blocked in budget_.reserve_wait used to run anyway (the wait
    // ignored the deadline).  Pin the scenario: worker A's big batch
    // holds most of the budget, worker B's request blocks on the
    // result-buffer reservation past its own deadline — it must come
    // back deadline-expired, not kOk (or burn the full retry budget).
    Fixture s(graph::generate_uniform(2000, 8, 5), 4096);

    ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.batch_window_seconds = 0.0; // dispatch each request alone
    // Room for one giant's result buffer, never two at once.
    cfg.memory_budget =
        WalkService::min_run_footprint(*s.file, *s.partition) +
        (10ULL << 20);
    cfg.cache_bytes = 0;
    cfg.budget_wait_seconds = 0.25;
    cfg.budget_retry_limit = 20;
    WalkService service(*s.file, *s.partition, cfg);

    // ~4 MiB of path buffers and ~1M steps: holds the budget while it
    // runs, and runs far longer than the victim's deadline.
    WalkRequest hog;
    hog.kind = WalkKind::kPaths;
    hog.starts.resize(1200);
    for (std::size_t i = 0; i < hog.starts.size(); ++i) {
        hog.starts[i] = static_cast<graph::VertexId>(i);
    }
    hog.walks_per_start = 8;
    hog.length = 100;
    hog.seed = 5;
    WalkTicket hog_ticket = service.submit(hog);

    // Wait until the hog's ~4 MiB result reservation is actually held
    // before submitting the victim, so the victim deterministically
    // blocks behind it.
    const auto spin_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (service.budget().used() < (3ULL << 20) &&
           std::chrono::steady_clock::now() < spin_deadline) {
        std::this_thread::yield();
    }
    ASSERT_GE(service.budget().used(), 3ULL << 20)
        << "hog never charged the budget";

    // The victim's ~8 MiB reservation cannot coexist with the hog's
    // ~4 MiB under the ~10.5 MiB limit, so its worker blocks in
    // reserve_wait until the deadline lapses.
    WalkRequest victim = hog;
    victim.starts.resize(2400);
    for (std::size_t i = 0; i < victim.starts.size(); ++i) {
        victim.starts[i] = static_cast<graph::VertexId>(i % 2000);
    }
    victim.seed = 6;
    victim.deadline_seconds = 0.01;
    const WalkResult result = service.submit(victim).get();
    EXPECT_EQ(result.status, WalkStatus::kDeadlineExpired)
        << to_string(result.status) << ": " << result.error;
    EXPECT_EQ(service.counters().expired, 1u);

    EXPECT_EQ(hog_ticket.get().status, WalkStatus::kOk);
    service.stop();
    EXPECT_EQ(service.budget().used(), 0u);
}

TEST(WalkService, ShutdownUnderLoadConservesEverything)
{
    // N client threads hammer submit() while stop() runs: every
    // request must get exactly one terminal status, the budget must
    // drain to zero, and no queue may be left non-empty.
    Fixture s(graph::generate_uniform(1000, 8, 5), 4096);
    ServiceConfig cfg;
    cfg.num_workers = 2;
    cfg.max_queue = 16;
    cfg.max_batch = 4;
    cfg.batch_window_seconds = 0.001;
    cfg.memory_budget =
        WalkService::min_run_footprint(*s.file, *s.partition) * 2 +
        (8ULL << 20);
    WalkService service(*s.file, *s.partition, cfg);

    constexpr int kThreads = 4;
    constexpr int kPerThread = 30;
    std::mutex ticket_mutex;
    std::vector<WalkTicket> tickets;
    std::vector<std::thread> clients;
    for (int t = 0; t < kThreads; ++t) {
        clients.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i) {
                WalkRequest r;
                r.starts = {static_cast<graph::VertexId>(
                    (t * kPerThread + i) % 1000)};
                r.walks_per_start = 2;
                r.length = 6;
                r.seed = 1 + static_cast<std::uint64_t>(
                                 t * kPerThread + i);
                r.tenant = static_cast<std::uint64_t>(t);
                WalkTicket ticket = service.submit(r);
                std::lock_guard lock(ticket_mutex);
                tickets.push_back(std::move(ticket));
            }
        });
    }
    // Stop mid-flight, racing the submitters.
    std::thread stopper([&] { service.stop(); });
    for (std::thread &client : clients) {
        client.join();
    }
    stopper.join();

    ASSERT_EQ(tickets.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    std::uint64_t terminal = 0;
    for (WalkTicket &ticket : tickets) {
        ASSERT_TRUE(ticket.wait_for(30.0))
            << "request " << ticket.id() << " never resolved";
        const WalkResult result = ticket.get();
        (void)result.status; // any terminal status is legal here
        ++terminal;
    }
    EXPECT_EQ(terminal, static_cast<std::uint64_t>(kThreads *
                                                   kPerThread));

    const WalkService::Counters c = service.counters();
    EXPECT_EQ(c.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(c.submitted, c.completed + c.failed +
                               c.rejected_queue_full +
                               c.rejected_tenant_queue +
                               c.rejected_budget + c.expired +
                               c.shutdown_dropped);
    EXPECT_EQ(service.budget().used(), 0u);
    EXPECT_EQ(service.submit_queue_depth(), 0u);
    EXPECT_EQ(service.batch_queue_depth(), 0u);
}

TEST(WalkService, MalformedRequestsFailFast)
{
    Fixture s(graph::generate_uniform(100, 8, 5), 4096);
    WalkService service(*s.file, *s.partition, ServiceConfig{});

    WalkRequest empty;
    EXPECT_EQ(service.submit(empty).get().status, WalkStatus::kFailed);

    WalkRequest out_of_range;
    out_of_range.starts = {1000};
    EXPECT_EQ(service.submit(out_of_range).get().status,
              WalkStatus::kFailed);

    WalkRequest weighted;
    weighted.starts = {1};
    weighted.weighted = true; // graph is unweighted
    EXPECT_EQ(service.submit(weighted).get().status,
              WalkStatus::kFailed);

    EXPECT_EQ(service.counters().failed, 3u);
}

TEST(WalkService, SubmitAfterStopReturnsShutdown)
{
    Fixture s(graph::generate_uniform(100, 8, 5), 4096);
    WalkService service(*s.file, *s.partition, ServiceConfig{});
    service.stop();
    WalkRequest request;
    request.starts = {1};
    const WalkResult result = service.submit(request).get();
    EXPECT_EQ(result.status, WalkStatus::kShutdown);
    // The rejection reason must be deterministic: a post-stop submit
    // is shutdown, never misreported as a full queue.
    EXPECT_EQ(service.counters().shutdown_dropped, 1u);
    EXPECT_EQ(service.counters().rejected_queue_full, 0u);
}

TEST(WalkService, SharedCacheServesRepeatedRequests)
{
    Fixture s(skewed_graph(), 4096);
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.cache_bytes = 8ULL << 20;
    WalkService service(*s.file, *s.partition, cfg);

    WalkRequest request;
    request.starts = {3, 5, 7};
    request.walks_per_start = 10;
    request.length = 12;
    const WalkResult first = service.submit(request).get();
    ASSERT_TRUE(first.ok());
    request.seed = 2;
    const WalkResult second = service.submit(request).get();
    ASSERT_TRUE(second.ok());

    EXPECT_GT(service.counters().cache_hits, 0u);
    // Identical walks regardless of cache state: same seed re-run.
    request.seed = 1;
    const WalkResult third = service.submit(request).get();
    ASSERT_TRUE(third.ok());
    EXPECT_EQ(third.endpoints, first.endpoints);
}

} // namespace
} // namespace noswalker::service
