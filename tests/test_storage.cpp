/**
 * @file
 * Unit tests for the storage substrate: SSD cost model, devices,
 * RAID-0 striping, block reader, async loader.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/async_loader.hpp"
#include "storage/block_reader.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "storage/raid_device.hpp"
#include "storage/ssd_model.hpp"
#include "util/error.hpp"

namespace noswalker::storage {
namespace {

TEST(SsdModel, SmallRequestsAreIopsBound)
{
    const SsdModel m = SsdModel::p4618();
    // A 4 KiB read costs 1/600k s: IOPS bound.
    EXPECT_DOUBLE_EQ(m.request_seconds(4096), 1.0 / 600000.0);
    // Effective 4 KiB bandwidth ≈ 2.4 GiB/s, matching §3.3.1.
    const double eff_bw = 4096.0 / m.request_seconds(4096);
    EXPECT_NEAR(eff_bw / (1ULL << 30), 2.4, 0.2);
}

TEST(SsdModel, LargeRequestsAreBandwidthBound)
{
    const SsdModel m = SsdModel::p4618();
    const std::uint64_t len = 8ULL << 20;
    EXPECT_DOUBLE_EQ(m.request_seconds(len),
                     static_cast<double>(len) / m.seq_bandwidth);
}

TEST(SsdModel, RaidPresetFlipsTheTradeoff)
{
    const SsdModel nvme = SsdModel::p4618();
    const SsdModel raid = SsdModel::raid0_s4610();
    // RAID: slightly more sequential bandwidth, far fewer IOPS.
    EXPECT_GT(raid.seq_bandwidth, nvme.seq_bandwidth);
    EXPECT_LT(raid.iops, nvme.iops);
    EXPECT_GT(raid.request_seconds(4096), nvme.request_seconds(4096));
}

TEST(SsdModel, InstantIsFree)
{
    const SsdModel m = SsdModel::instant();
    EXPECT_DOUBLE_EQ(m.request_seconds(1ULL << 30), 0.0);
}

TEST(MemDevice, WriteThenRead)
{
    MemDevice dev;
    const std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
    dev.write(10, data.size(), data.data());
    EXPECT_EQ(dev.size(), 15u);
    std::vector<std::uint8_t> out(5);
    dev.read(10, 5, out.data());
    EXPECT_EQ(out, data);
}

TEST(MemDevice, ReadPastEndThrows)
{
    MemDevice dev;
    std::uint8_t b = 0;
    dev.write(0, 1, &b);
    std::uint8_t out[4];
    EXPECT_THROW(dev.read(0, 4, out), util::IoError);
}

TEST(MemDevice, StatsAccounting)
{
    MemDevice dev(SsdModel::p4618());
    std::vector<std::uint8_t> buf(8192, 7);
    dev.write(0, buf.size(), buf.data());
    dev.read(0, 4096, buf.data());
    dev.read(4096, 4096, buf.data());
    const IoStats s = dev.stats();
    EXPECT_EQ(s.bytes_written, 8192u);
    EXPECT_EQ(s.write_requests, 1u);
    EXPECT_EQ(s.bytes_read, 8192u);
    EXPECT_EQ(s.read_requests, 2u);
    // One bandwidth-bound 8 KiB write plus two IOPS-bound reads.
    const SsdModel m = SsdModel::p4618();
    // Busy time is accumulated in integer nanoseconds: allow the
    // per-request quantization error.
    EXPECT_NEAR(s.busy_seconds,
                m.request_seconds(8192) + 2.0 / 600000.0, 1e-8);
    dev.reset_stats();
    EXPECT_EQ(dev.stats().bytes_read, 0u);
}

TEST(IoStats, Accumulate)
{
    IoStats a{100, 50, 2, 1, 0.5};
    IoStats b{10, 5, 1, 1, 0.25};
    a += b;
    EXPECT_EQ(a.bytes_read, 110u);
    EXPECT_EQ(a.bytes_written, 55u);
    EXPECT_EQ(a.read_requests, 3u);
    EXPECT_EQ(a.write_requests, 2u);
    EXPECT_DOUBLE_EQ(a.busy_seconds, 0.75);
}

TEST(FileDevice, RoundTripAndPersistence)
{
    const std::string path = testing::TempDir() + "noswalker_filedev.bin";
    {
        FileDevice dev(path);
        const std::vector<std::uint8_t> data = {9, 8, 7};
        dev.write(100, data.size(), data.data());
        dev.sync();
        EXPECT_EQ(dev.size(), 103u);
    }
    {
        FileDevice dev(path);
        std::vector<std::uint8_t> out(3);
        dev.read(100, 3, out.data());
        EXPECT_EQ(out, (std::vector<std::uint8_t>{9, 8, 7}));
    }
    std::remove(path.c_str());
}

TEST(FileDevice, UnopenablePathThrows)
{
    EXPECT_THROW(FileDevice("/nonexistent-dir/x/y/z.bin"),
                 util::IoError);
}

TEST(FileDevice, ShortReadThrows)
{
    const std::string path = testing::TempDir() + "noswalker_short.bin";
    FileDevice dev(path);
    std::uint8_t b = 1;
    dev.write(0, 1, &b);
    std::uint8_t out[16];
    EXPECT_THROW(dev.read(0, 16, out), util::IoError);
    std::remove(path.c_str());
}

TEST(Raid0, StripeRoundTrip)
{
    Raid0Device raid(3, 16, SsdModel::instant());
    std::vector<std::uint8_t> data(200);
    std::iota(data.begin(), data.end(), 0);
    raid.write(5, data.size(), data.data());
    std::vector<std::uint8_t> out(200);
    raid.read(5, out.size(), out.data());
    EXPECT_EQ(out, data);
}

TEST(Raid0, MembersShareTheBytes)
{
    Raid0Device raid(4, 16, SsdModel::p4618());
    std::vector<std::uint8_t> data(16 * 8, 3); // 8 full chunks
    raid.write(0, data.size(), data.data());
    const IoStats agg = raid.array_stats();
    EXPECT_EQ(agg.bytes_written, data.size());
    EXPECT_EQ(agg.write_requests, 8u); // one request per chunk
}

TEST(Raid0, StatsUseMaxMemberBusy)
{
    Raid0Device raid(2, 4096, SsdModel::p4618());
    std::vector<std::uint8_t> data(8192, 1);
    raid.write(0, data.size(), data.data());
    raid.read(0, 8192, data.data()); // one chunk per member
    const IoStats s = raid.stats();
    EXPECT_EQ(s.bytes_read, 8192u);
    // Parallel members: busy = one 4 KiB request, not two.
    EXPECT_NEAR(s.busy_seconds, raid.array_stats().busy_seconds, 1e-12);
    EXPECT_LT(s.busy_seconds, 2.1 / 600000.0);
}

TEST(Raid0, PaperArrayPreset)
{
    auto raid = Raid0Device::paper_array();
    EXPECT_EQ(raid->num_members(), 7u);
}

TEST(Raid0, RejectsZeroMembers)
{
    EXPECT_THROW(Raid0Device(0, 16, SsdModel::instant()),
                 util::ConfigError);
}

class BlockReaderTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat({.scale = 8,
                                       .edge_factor = 8,
                                       .a = 0.57,
                                       .b = 0.19,
                                       .c = 0.19,
                                       .seed = 2,
                                       .symmetrize = false,
                                       .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ =
            std::make_unique<graph::BlockPartition>(*file_, 2048);
    }

    graph::CsrGraph graph_;
    MemDevice device_{SsdModel::p4618()};
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
    util::MemoryBudget budget_{0};
};

TEST_F(BlockReaderTest, CoarseLoadDecodesAllVertices)
{
    BlockReader reader(*file_, budget_);
    BlockBuffer buffer;
    for (const graph::BlockInfo &block : partition_->blocks()) {
        const LoadResult r = reader.load_coarse(block, buffer);
        EXPECT_GT(r.bytes_read, 0u);
        EXPECT_TRUE(buffer.complete());
        for (graph::VertexId v = block.first_vertex;
             v < block.end_vertex; ++v) {
            ASSERT_TRUE(buffer.vertex_loaded(*file_, v));
            const graph::VertexView view = buffer.view(*file_, v);
            ASSERT_EQ(view.degree(), graph_.degree(v));
            const auto ref = graph_.neighbors(v);
            for (std::uint32_t i = 0; i < view.degree(); ++i) {
                ASSERT_EQ(view.targets[i], ref[i]);
            }
        }
    }
}

TEST_F(BlockReaderTest, CoarseRespectsMaxRequest)
{
    BlockReader reader(*file_, budget_, 4096);
    BlockBuffer buffer;
    const graph::BlockInfo &block = partition_->block(0);
    const LoadResult r = reader.load_coarse(block, buffer);
    EXPECT_GE(r.requests, block.byte_size / 4096);
    const IoStats s = device_.stats();
    EXPECT_GE(s.read_requests, r.requests);
}

TEST_F(BlockReaderTest, FineLoadsOnlyNeededPages)
{
    BlockReader reader(*file_, budget_);
    // Pick one vertex with edges from block 0.
    const graph::BlockInfo &block = partition_->block(0);
    graph::VertexId target = block.first_vertex;
    while (file_->degree(target) == 0) {
        ++target;
    }
    BlockBuffer buffer;
    const std::vector<graph::VertexId> needed = {target};
    const LoadResult r = reader.load_fine(block, needed, buffer);
    EXPECT_FALSE(buffer.complete());
    EXPECT_TRUE(buffer.vertex_loaded(*file_, target));
    // Fine loads are page-granular and far smaller than the block.
    EXPECT_EQ(r.bytes_read % BlockReader::kPageBytes, 0u);
    EXPECT_LE(r.bytes_read,
              file_->vertex_byte_size(target) +
                  2 * BlockReader::kPageBytes);
    // Decoded view matches the reference graph.
    const graph::VertexView view = buffer.view(*file_, target);
    const auto ref = graph_.neighbors(target);
    ASSERT_EQ(view.degree(), ref.size());
    for (std::uint32_t i = 0; i < view.degree(); ++i) {
        EXPECT_EQ(view.targets[i], ref[i]);
    }
}

TEST_F(BlockReaderTest, FineCoalescesAdjacentPages)
{
    BlockReader reader(*file_, budget_);
    const graph::BlockInfo &block = partition_->block(0);
    // Ask for every vertex: all pages marked => one coalesced request
    // per max_request span.
    std::vector<graph::VertexId> all;
    for (graph::VertexId v = block.first_vertex; v < block.end_vertex;
         ++v) {
        all.push_back(v);
    }
    BlockBuffer buffer;
    const LoadResult r = reader.load_fine(block, all, buffer);
    // Whole block in few requests (coalesced), not one per page.
    EXPECT_LE(r.requests, 2u);
    EXPECT_GE(r.bytes_read, block.byte_size);
}

TEST_F(BlockReaderTest, FineIgnoresForeignVertices)
{
    ASSERT_GT(partition_->num_blocks(), 1u);
    BlockReader reader(*file_, budget_);
    const graph::BlockInfo &block = partition_->block(0);
    const graph::BlockInfo &other = partition_->block(1);
    BlockBuffer buffer;
    const std::vector<graph::VertexId> needed = {other.first_vertex};
    const LoadResult r = reader.load_fine(block, needed, buffer);
    EXPECT_EQ(r.bytes_read, 0u);
    EXPECT_FALSE(buffer.vertex_loaded(*file_, other.first_vertex));
}

TEST_F(BlockReaderTest, BufferMemoryIsBudgeted)
{
    util::MemoryBudget tight(1024); // smaller than any aligned block
    BlockReader reader(*file_, tight);
    BlockBuffer buffer;
    EXPECT_THROW(reader.load_coarse(partition_->block(0), buffer),
                 util::BudgetExceeded);
}

TEST_F(BlockReaderTest, AsyncLoaderBackground)
{
    BlockReader reader(*file_, budget_);
    AsyncLoader loader(reader, true);
    AsyncLoader::Request req;
    req.block = &partition_->block(0);
    loader.submit(std::move(req));
    EXPECT_TRUE(loader.outstanding());
    AsyncLoader::Response resp = loader.wait();
    EXPECT_FALSE(loader.outstanding());
    EXPECT_EQ(resp.block->id, 0u);
    EXPECT_TRUE(resp.buffer.complete());
}

TEST_F(BlockReaderTest, AsyncLoaderSynchronousMode)
{
    BlockReader reader(*file_, budget_);
    AsyncLoader loader(reader, false);
    AsyncLoader::Request req;
    req.block = &partition_->block(0);
    req.fine = true;
    req.needed = {partition_->block(0).first_vertex};
    loader.submit(std::move(req));
    AsyncLoader::Response resp = loader.wait();
    EXPECT_TRUE(resp.fine);
}

TEST_F(BlockReaderTest, AsyncLoaderPropagatesErrors)
{
    util::MemoryBudget tight(16);
    BlockReader reader(*file_, tight);
    AsyncLoader loader(reader, true);
    AsyncLoader::Request req;
    req.block = &partition_->block(0);
    loader.submit(std::move(req));
    EXPECT_THROW(loader.wait(), util::BudgetExceeded);
}

TEST_F(BlockReaderTest, AbandonedPrefetchShutsDownCleanly)
{
    BlockReader reader(*file_, budget_);
    {
        AsyncLoader loader(reader, true);
        AsyncLoader::Request req;
        req.block = &partition_->block(0);
        loader.submit(std::move(req));
        // Destroy without wait(): loader must join without deadlock.
    }
    SUCCEED();
}

} // namespace
} // namespace noswalker::storage
