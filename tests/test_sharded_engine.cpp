/**
 * @file
 * The tentpole guarantee of the shard subsystem (DESIGN.md §11): walk
 * output is bit-identical across {1,2,4} shards × {1,8} step threads —
 * trajectories are pure functions of (seed, walker id, graph), and the
 * per-walker stream travels with the walker through every migration.
 *
 * Also covered: migration conservation (every walker posted across a
 * shard boundary is delivered; none leak at close), budget slicing,
 * and the modeled multi-device speedup on an I/O-bound run.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/node2vec.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "shard/shard_plan.hpp"
#include "shard/sharded_engine.hpp"
#include "storage/mem_device.hpp"
#include "util/rng.hpp"

namespace noswalker {
namespace {

/** First-order uniform walk recording endpoints + visit counts.
 *  Thread safe the way service apps are: per-walker endpoint slots,
 *  atomic visit counters — shards may step it concurrently. */
class ShardRecordingWalk {
  public:
    using WalkerT = engine::Walker;

    ShardRecordingWalk(std::uint32_t length, graph::VertexId num_vertices,
                       std::uint64_t num_walkers)
        : endpoints(num_walkers, graph::kInvalidVertex),
          visits(num_vertices), length_(length),
          num_vertices_(num_vertices)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(n * 31 + 5);
        return WalkerT{
            n, static_cast<graph::VertexId>(mix.next() % num_vertices_),
            0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        endpoints[w.id] = next;
        visits[next].fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    std::vector<graph::VertexId> endpoints;
    std::vector<std::atomic<std::uint32_t>> visits;

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
};

static_assert(engine::RandomWalkApp<ShardRecordingWalk>);

/** Node2Vec wrapper recording the endpoint of every accepted move. */
class ShardRecordingNode2Vec {
  public:
    using WalkerT = apps::Node2Vec::WalkerT;

    ShardRecordingNode2Vec(double p, double q, std::uint32_t length,
                           graph::VertexId num_vertices,
                           std::uint32_t walks_per_vertex)
        : inner_(p, q, length, num_vertices, walks_per_vertex)
    {
        endpoints.assign(inner_.total_walkers(), graph::kInvalidVertex);
    }

    std::uint64_t total_walkers() const { return inner_.total_walkers(); }

    WalkerT generate(std::uint64_t n) { return inner_.generate(n); }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return inner_.sample(view, rng);
    }

    bool active(const WalkerT &w) const { return inner_.active(w); }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &rng)
    {
        return inner_.action(w, next, rng);
    }

    bool has_candidate(const WalkerT &w) const
    {
        return inner_.has_candidate(w);
    }

    graph::VertexId candidate(const WalkerT &w) const
    {
        return inner_.candidate(w);
    }

    bool
    rejection(WalkerT &w, const graph::VertexView &view, util::Rng &rng)
    {
        const bool accepted = inner_.rejection(w, view, rng);
        if (accepted) {
            endpoints[w.id] = w.location;
        }
        return accepted;
    }

    std::vector<graph::VertexId> endpoints;

  private:
    apps::Node2Vec inner_;
};

static_assert(engine::SecondOrderApp<ShardRecordingNode2Vec>);

class ShardedEngineTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat(
            {.scale = 9, .edge_factor = 8, .a = 0.57, .b = 0.19,
             .c = 0.19, .seed = 23, .symmetrize = true,
             .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, file_->edge_region_bytes() / 8);
    }

    core::EngineConfig
    config(unsigned shards, unsigned threads) const
    {
        core::EngineConfig cfg =
            core::EngineConfig::full(0, partition_->max_block_bytes());
        cfg.num_shards = shards;
        cfg.step_threads = threads;
        return cfg;
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(ShardedEngineTest, PlanIsContiguousAndByteBalanced)
{
    const shard::ShardPlan plan(*partition_, 4);
    ASSERT_EQ(plan.num_shards(), 4u);
    std::uint32_t next = 0;
    for (unsigned s = 0; s < plan.num_shards(); ++s) {
        const shard::ShardRange &range = plan.shard(s);
        EXPECT_EQ(range.first_block, next);
        EXPECT_GT(range.end_block, range.first_block);
        next = range.end_block;
        for (std::uint32_t b = range.first_block; b < range.end_block;
             ++b) {
            EXPECT_EQ(plan.shard_of_block(b), s);
        }
    }
    EXPECT_EQ(next, partition_->num_blocks());

    // More shards than blocks clamps, never throws.
    const shard::ShardPlan clamped(*partition_, 1000);
    EXPECT_EQ(clamped.num_shards(), partition_->num_blocks());
}

TEST_F(ShardedEngineTest, BasicWalkBitIdenticalAcrossShardsAndThreads)
{
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    for (const unsigned shards : {1u, 2u, 4u}) {
        for (const unsigned threads : {1u, 8u}) {
            ShardRecordingWalk app(kLength, file_->num_vertices(),
                                   kWalkers);
            shard::ShardedEngine<ShardRecordingWalk> eng(
                *file_, *partition_, config(shards, threads));
            const auto stats = eng.run(app, kWalkers);
            endpoints.push_back(app.endpoints);
            std::vector<std::uint32_t> v(app.visits.size());
            for (std::size_t i = 0; i < v.size(); ++i) {
                v[i] = app.visits[i].load();
            }
            visits.push_back(std::move(v));
            steps.push_back(stats.steps);
            if (shards == 1) {
                EXPECT_EQ(stats.migrations, 0u);
                EXPECT_EQ(stats.migration_wait_seconds, 0.0);
            }
        }
    }
    EXPECT_GT(steps[0], 0u);
    EXPECT_LE(steps[0], kWalkers * kLength);
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "config " << t;
    }
}

TEST_F(ShardedEngineTest, MatchesPlainEngineWithPresampleOff)
{
    // The 1-shard sharded path must reproduce the plain engine
    // exactly (shard rounds run with pre-sampling off, so compare
    // against a presample-off plain run).
    constexpr std::uint64_t kWalkers = 400;
    constexpr std::uint32_t kLength = 16;

    ShardRecordingWalk plain_app(kLength, file_->num_vertices(),
                                 kWalkers);
    core::EngineConfig plain_cfg = config(1, 1);
    plain_cfg.presample = false;
    core::NosWalkerEngine<ShardRecordingWalk> plain(*file_, *partition_,
                                                    plain_cfg);
    plain.run(plain_app, kWalkers);

    for (const unsigned shards : {1u, 4u}) {
        ShardRecordingWalk app(kLength, file_->num_vertices(), kWalkers);
        shard::ShardedEngine<ShardRecordingWalk> eng(
            *file_, *partition_, config(shards, 2));
        eng.run(app, kWalkers);
        EXPECT_EQ(app.endpoints, plain_app.endpoints)
            << shards << " shards";
    }
}

TEST_F(ShardedEngineTest, Node2VecBitIdenticalAcrossShardsAndThreads)
{
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    std::vector<std::uint64_t> trials;
    for (const unsigned shards : {1u, 2u, 4u}) {
        for (const unsigned threads : {1u, 8u}) {
            ShardRecordingNode2Vec app(2.0, 0.5, 12,
                                       file_->num_vertices(), 2);
            shard::ShardedEngine<ShardRecordingNode2Vec> eng(
                *file_, *partition_, config(shards, threads));
            const auto stats = eng.run(app, app.total_walkers());
            endpoints.push_back(app.endpoints);
            steps.push_back(stats.steps);
            trials.push_back(stats.rejection_trials);
        }
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(trials[t], trials[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
    }
}

TEST_F(ShardedEngineTest, MigrationConservationNoLeaksAtClose)
{
    constexpr std::uint64_t kWalkers = 500;
    constexpr std::uint32_t kLength = 20;
    ShardRecordingWalk app(kLength, file_->num_vertices(), kWalkers);
    shard::ShardedEngine<ShardRecordingWalk> eng(*file_, *partition_,
                                                 config(4, 2));
    const auto stats = eng.run(app, kWalkers);

    // Every generated walker retires exactly once, on some shard.
    EXPECT_EQ(stats.walkers, kWalkers);

    // Conservation: walkers out == walkers in, and the exchange is
    // fully drained at close.
    const shard::ExchangeCounters &xc = eng.exchange_counters();
    EXPECT_EQ(xc.posted_records, xc.delivered_records);
    EXPECT_EQ(xc.posted_batches, xc.delivered_batches);
    EXPECT_EQ(stats.migrations, xc.delivered_records);
    EXPECT_EQ(stats.migration_batches, xc.delivered_batches);

    // An rmat graph at 4 shards crosses boundaries constantly.
    EXPECT_GT(stats.migrations, 0u);
    EXPECT_GT(stats.migration_batches, 0u);
    EXPECT_GT(stats.migration_wait_seconds, 0.0);
    EXPECT_GT(eng.rounds(), 1u);

    // Per-shard totals cover exactly the global retirements/steps.
    std::uint64_t shard_walkers = 0;
    std::uint64_t shard_steps = 0;
    for (const engine::RunStats &s : eng.shard_stats()) {
        shard_walkers += s.walkers;
        shard_steps += s.steps;
    }
    EXPECT_EQ(shard_walkers, kWalkers);
    EXPECT_EQ(shard_steps, stats.steps);
}

TEST_F(ShardedEngineTest, SlicedBudgetMatchesUnbudgetedRun)
{
    constexpr std::uint64_t kWalkers = 300;
    constexpr std::uint32_t kLength = 12;

    ShardRecordingWalk free_app(kLength, file_->num_vertices(),
                                kWalkers);
    shard::ShardedEngine<ShardRecordingWalk> free_eng(
        *file_, *partition_, config(2, 2));
    free_eng.run(free_app, kWalkers);

    ShardRecordingWalk tight_app(kLength, file_->num_vertices(),
                                 kWalkers);
    core::EngineConfig tight = config(2, 2);
    // Each shard gets a genuinely bounded 1/N slice that still clears
    // the per-engine floor.
    tight.memory_budget =
        2 * testing_support::tight_budget(*file_, *partition_);
    shard::ShardedEngine<ShardRecordingWalk> tight_eng(
        *file_, *partition_, tight);
    const auto stats = tight_eng.run(tight_app, kWalkers);

    EXPECT_EQ(tight_app.endpoints, free_app.endpoints);
    EXPECT_GT(stats.peak_memory, 0u);
    EXPECT_LE(stats.peak_memory, tight.memory_budget);
}

TEST_F(ShardedEngineTest, RerunRepeatsAcrossPlacements)
{
    // Shard→thread placement inside the fork-join pool is dynamic;
    // repeated runs of one engine must still agree bit for bit.
    constexpr std::uint64_t kWalkers = 300;
    ShardRecordingWalk a(10, file_->num_vertices(), kWalkers);
    ShardRecordingWalk b(10, file_->num_vertices(), kWalkers);
    shard::ShardedEngine<ShardRecordingWalk> eng(*file_, *partition_,
                                                 config(4, 2));
    eng.run(a, kWalkers);
    eng.run(b, kWalkers);
    EXPECT_EQ(a.endpoints, b.endpoints);
}

TEST_F(ShardedEngineTest, ModeledSpeedupWithPrivateDevices)
{
    // On an I/O-bound run (device bandwidth scaled down to the paper's
    // regime) the per-round I/O maximum shrinks as shards split the
    // byte volume across private modeled devices.
    storage::SsdModel slow = storage::SsdModel::p4618();
    slow.seq_bandwidth /= 2048.0;
    slow.iops /= 2048.0;
    storage::MemDevice slow_device(slow);
    graph::GraphFile::write(graph_, slow_device);
    graph::GraphFile slow_file(slow_device);
    graph::BlockPartition slow_partition(
        slow_file, slow_file.edge_region_bytes() / 8);

    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 16;
    std::vector<double> modeled;
    std::vector<graph::VertexId> reference;
    for (const unsigned shards : {1u, 4u}) {
        ShardRecordingWalk app(kLength, slow_file.num_vertices(),
                               kWalkers);
        core::EngineConfig cfg = core::EngineConfig::full(
            0, slow_partition.max_block_bytes());
        cfg.num_shards = shards;
        shard::ShardedEngine<ShardRecordingWalk> eng(
            slow_file, slow_partition, cfg);
        const auto stats = eng.run(app, kWalkers);
        modeled.push_back(stats.modeled_seconds());
        if (reference.empty()) {
            reference = app.endpoints;
        } else {
            EXPECT_EQ(app.endpoints, reference);
        }
    }
    EXPECT_LT(modeled[1], modeled[0]);
}

} // namespace
} // namespace noswalker
