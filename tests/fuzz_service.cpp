/**
 * @file
 * Model-based service-traffic fuzzing (CaDiCaL `mobical` style): seeded
 * deterministic episodes drive WalkService with adversarial mixes —
 * tenant skew, bursts, budget-starving giants, tight deadlines,
 * mid-flight stop(), knob permutations — and every episode must leave
 * the service conserving walkers, bytes, and per-tenant stats (see
 * service/traffic_model.hpp for the four invariants).
 *
 * Suites: FuzzService (the wide seed sweep, full builds), TrafficModel
 * (generator determinism + a reduced sweep small enough for TSan), and
 * Backpressure (per-tenant bounded sub-queues, tenant_max_queue).
 */
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "service/traffic_model.hpp"
#include "service/walk_service.hpp"
#include "storage/mem_device.hpp"

namespace noswalker::service {
namespace {

struct Fixture {
    graph::CsrGraph graph;
    storage::MemDevice device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;

    explicit Fixture(graph::CsrGraph g, std::uint64_t block_bytes = 4096)
        : graph(std::move(g))
    {
        graph::GraphFile::write(graph, device);
        file = std::make_unique<graph::GraphFile>(device);
        partition =
            std::make_unique<graph::BlockPartition>(*file, block_bytes);
    }
};

Fixture &
shared_fixture()
{
    static Fixture fixture(graph::generate_uniform(600, 6, 11));
    return fixture;
}

std::string
joined(const std::vector<std::string> &violations)
{
    std::string out;
    for (const std::string &v : violations) {
        out += v;
        out += "; ";
    }
    return out;
}

TEST(FuzzService, FiftySeededEpisodesHoldInvariants)
{
    Fixture &s = shared_fixture();
    TrafficModel model(*s.file, *s.partition);
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const EpisodeReport report = model.run_episode(seed);
        EXPECT_TRUE(report.clean())
            << "seed " << seed << ": " << joined(report.violations)
            << "\nreplay script:\n"
            << TrafficModel::describe(model.make_episode(seed));
        EXPECT_EQ(report.submitted, report.ok + report.not_ok);
    }
}

TEST(TrafficModel, ScriptIsAPureFunctionOfTheSeed)
{
    Fixture &s = shared_fixture();
    TrafficModel model(*s.file, *s.partition);
    for (const std::uint64_t seed : {3ULL, 17ULL, 40ULL}) {
        const std::string first =
            TrafficModel::describe(model.make_episode(seed));
        const std::string second =
            TrafficModel::describe(model.make_episode(seed));
        EXPECT_EQ(first, second) << "seed " << seed;
        EXPECT_FALSE(first.empty());
    }
    EXPECT_NE(TrafficModel::describe(model.make_episode(3)),
              TrafficModel::describe(model.make_episode(4)));
}

TEST(TrafficModel, CoversAdversarialClassesAcrossSeeds)
{
    // The sweep is only as strong as its mix: over a modest seed range
    // the generator must produce every adversarial ingredient.
    Fixture &s = shared_fixture();
    TrafficModel model(*s.file, *s.partition);
    bool saw_stop = false, saw_deadline = false, saw_giant = false,
         saw_malformed = false, saw_tenant_bound = false,
         saw_tight_budget = false, saw_shards = false;
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        const TrafficEpisode ep = model.make_episode(seed);
        saw_stop |= ep.stops_mid_flight;
        saw_tenant_bound |= ep.config.tenant_max_queue > 0;
        saw_shards |= ep.config.num_shards > 1;
        // "Tight" = at most ~2 MiB of headroom over the run floor —
        // well under a single giant's result buffer ("generous" mode
        // starts at floor + 8 MiB, so the classes separate cleanly).
        const std::uint64_t floor =
            WalkService::min_run_footprint(*s.file, *s.partition) *
            ep.config.num_shards;
        saw_tight_budget |=
            ep.config.memory_budget != 0 &&
            ep.config.memory_budget < floor + (4ULL << 20);
        for (const TrafficEvent &ev : ep.events) {
            if (ev.kind != TrafficEvent::Kind::kSubmit) {
                continue;
            }
            saw_deadline |= ev.request.deadline_seconds > 0.0;
            saw_giant |= ev.request.num_walks() > 500;
            saw_malformed |=
                ev.request.starts.empty() ||
                (!ev.request.starts.empty() &&
                 ev.request.starts.front() >= s.file->num_vertices());
        }
    }
    EXPECT_TRUE(saw_stop);
    EXPECT_TRUE(saw_deadline);
    EXPECT_TRUE(saw_giant);
    EXPECT_TRUE(saw_malformed);
    EXPECT_TRUE(saw_tenant_bound);
    EXPECT_TRUE(saw_tight_budget);
    EXPECT_TRUE(saw_shards);
}

TEST(TrafficModel, ReducedSeedSweepHoldsInvariants)
{
    // The TSan-sized sweep (the tier-1 filter runs this suite under
    // ThreadSanitizer; the 50-seed sweep stays in the full build).
    Fixture &s = shared_fixture();
    TrafficModel model(*s.file, *s.partition);
    for (std::uint64_t seed = 101; seed <= 105; ++seed) {
        const EpisodeReport report = model.run_episode(seed);
        EXPECT_TRUE(report.clean())
            << "seed " << seed << ": " << joined(report.violations);
    }
}

TEST(TrafficModel, MidFlightStopEpisodeConserves)
{
    // Hand-written episode pinning the hardest class: concurrent
    // clients racing a mid-flight stop() on a bounded queue.
    Fixture &s = shared_fixture();
    TrafficModel model(*s.file, *s.partition);

    TrafficEpisode ep;
    ep.seed = 0;
    ep.num_clients = 3;
    ep.config.num_workers = 2;
    ep.config.max_queue = 8;
    ep.config.max_batch = 4;
    ep.config.batch_window_seconds = 0.001;
    for (int i = 0; i < 24; ++i) {
        TrafficEvent ev;
        ev.client = static_cast<unsigned>(i % 3);
        ev.request.starts = {static_cast<graph::VertexId>(i % 600)};
        ev.request.walks_per_start = 2;
        ev.request.length = 6;
        ev.request.seed = 700 + static_cast<std::uint64_t>(i);
        ev.request.tenant = static_cast<std::uint64_t>(i % 2);
        ep.events.push_back(std::move(ev));
    }
    TrafficEvent stop;
    stop.kind = TrafficEvent::Kind::kStop;
    stop.client = 1;
    ep.events.insert(ep.events.begin() + 8, std::move(stop));
    ep.stops_mid_flight = true;

    const EpisodeReport report = model.run_episode(ep);
    EXPECT_TRUE(report.clean()) << joined(report.violations);
    EXPECT_EQ(report.submitted, 24u);
}

TEST(Backpressure, TenantBurstShedsBeyondItsBound)
{
    // A long coalescing window keeps admitted requests non-terminal
    // while the burst arrives, so the shed decision is deterministic:
    // the first tenant_max_queue submissions are admitted, the rest of
    // that tenant's burst is shed — and another tenant still gets in.
    Fixture &s = shared_fixture();
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.max_batch = 16;
    cfg.batch_window_seconds = 0.3;
    cfg.max_queue = 64;
    cfg.tenant_max_queue = 2;
    WalkService service(*s.file, *s.partition, cfg);

    std::vector<WalkTicket> burst;
    for (int i = 0; i < 8; ++i) {
        WalkRequest r;
        r.starts = {static_cast<graph::VertexId>(i)};
        r.length = 4;
        r.seed = 300 + static_cast<std::uint64_t>(i);
        r.tenant = 7;
        burst.push_back(service.submit(r));
    }
    std::vector<WalkTicket> other;
    for (int i = 0; i < 2; ++i) {
        WalkRequest r;
        r.starts = {static_cast<graph::VertexId>(100 + i)};
        r.length = 4;
        r.seed = 400 + static_cast<std::uint64_t>(i);
        r.tenant = 8;
        other.push_back(service.submit(r));
    }

    unsigned ok = 0, shed = 0;
    for (WalkTicket &ticket : burst) {
        const WalkResult result = ticket.get();
        if (result.status == WalkStatus::kOk) {
            ++ok;
        } else {
            EXPECT_EQ(result.status, WalkStatus::kRejectedTenantQueue);
            EXPECT_FALSE(result.error.empty());
            ++shed;
        }
    }
    EXPECT_EQ(ok, 2u);
    EXPECT_EQ(shed, 6u);
    for (WalkTicket &ticket : other) {
        EXPECT_EQ(ticket.get().status, WalkStatus::kOk)
            << "other tenants must not be punished for tenant 7's burst";
    }
    const WalkService::Counters c = service.counters();
    EXPECT_EQ(c.rejected_tenant_queue, 6u);
    EXPECT_EQ(c.completed, 4u);
    EXPECT_EQ(c.rejected_queue_full, 0u);
}

TEST(Backpressure, SlotsAreReturnedWhenRequestsRetire)
{
    // After a burst drains, the tenant is under its bound again: new
    // submissions are admitted — the in-flight count is a live bound,
    // not a lifetime quota.
    Fixture &s = shared_fixture();
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.batch_window_seconds = 0.0;
    cfg.tenant_max_queue = 2;
    WalkService service(*s.file, *s.partition, cfg);

    for (int round = 0; round < 3; ++round) {
        WalkRequest r;
        r.starts = {static_cast<graph::VertexId>(5 + round)};
        r.length = 4;
        r.seed = 500 + static_cast<std::uint64_t>(round);
        r.tenant = 3;
        EXPECT_EQ(service.submit(r).get().status, WalkStatus::kOk)
            << "round " << round;
    }
    EXPECT_EQ(service.counters().rejected_tenant_queue, 0u);
}

TEST(Backpressure, ZeroBoundDisablesShedding)
{
    Fixture &s = shared_fixture();
    ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.max_batch = 32;
    cfg.batch_window_seconds = 0.2;
    cfg.tenant_max_queue = 0; // default: unbounded per tenant
    WalkService service(*s.file, *s.partition, cfg);

    std::vector<WalkTicket> tickets;
    for (int i = 0; i < 12; ++i) {
        WalkRequest r;
        r.starts = {static_cast<graph::VertexId>(i)};
        r.length = 3;
        r.seed = 600 + static_cast<std::uint64_t>(i);
        r.tenant = 9;
        tickets.push_back(service.submit(r));
    }
    for (WalkTicket &ticket : tickets) {
        EXPECT_EQ(ticket.get().status, WalkStatus::kOk);
    }
    EXPECT_EQ(service.counters().rejected_tenant_queue, 0u);
}

} // namespace
} // namespace noswalker::service
