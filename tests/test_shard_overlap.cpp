/**
 * @file
 * Overlapped shard migration and shard-local pre-sampling (DESIGN.md
 * §11, "overlapped exchange").
 *
 * The load-bearing guarantee: flipping shard_overlap never changes
 * walk output.  Per (src,dst) pair the seq-ascending concatenation of
 * per-bucket flushes is exactly the barrier mode's single-batch
 * content, and admission sorts staged consignments by (dst, src, seq),
 * so the walker set entering every round is byte-identical in both
 * modes — verified here bit for bit across {1,2,4} shards × {1,8}
 * step threads for first-order and node2vec walks.
 *
 * Also covered: the modeled accounting (overlap hides wire time behind
 * stepping: wait strictly lower, hidden portion visible, modeled time
 * no worse), the exchange's deterministic admission order and per-pair
 * conservation counters, locality-aware seeding, and the deterministic
 * shard-local pre-sampling knob with the drying-regression
 * distribution check.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "apps/node2vec.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "shard/migration_exchange.hpp"
#include "shard/shard_plan.hpp"
#include "shard/sharded_engine.hpp"
#include "storage/mem_device.hpp"
#include "util/rng.hpp"

namespace noswalker {
namespace {

/** First-order uniform walk recording endpoints + visit counts; thread
 *  safe for concurrent shard stepping (per-walker slots, atomics). */
class OverlapRecordingWalk {
  public:
    using WalkerT = engine::Walker;

    OverlapRecordingWalk(std::uint32_t length,
                         graph::VertexId num_vertices,
                         std::uint64_t num_walkers)
        : endpoints(num_walkers, graph::kInvalidVertex),
          visits(num_vertices), length_(length),
          num_vertices_(num_vertices)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(n * 31 + 5);
        return WalkerT{
            n, static_cast<graph::VertexId>(mix.next() % num_vertices_),
            0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        endpoints[w.id] = next;
        visits[next].fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    std::vector<graph::VertexId> endpoints;
    std::vector<std::atomic<std::uint32_t>> visits;

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
};

static_assert(engine::RandomWalkApp<OverlapRecordingWalk>);

/** Node2Vec wrapper recording the endpoint of every accepted move. */
class OverlapRecordingNode2Vec {
  public:
    using WalkerT = apps::Node2Vec::WalkerT;

    OverlapRecordingNode2Vec(double p, double q, std::uint32_t length,
                             graph::VertexId num_vertices,
                             std::uint32_t walks_per_vertex)
        : inner_(p, q, length, num_vertices, walks_per_vertex)
    {
        endpoints.assign(inner_.total_walkers(), graph::kInvalidVertex);
    }

    std::uint64_t total_walkers() const { return inner_.total_walkers(); }

    WalkerT generate(std::uint64_t n) { return inner_.generate(n); }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return inner_.sample(view, rng);
    }

    bool active(const WalkerT &w) const { return inner_.active(w); }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &rng)
    {
        return inner_.action(w, next, rng);
    }

    bool has_candidate(const WalkerT &w) const
    {
        return inner_.has_candidate(w);
    }

    graph::VertexId candidate(const WalkerT &w) const
    {
        return inner_.candidate(w);
    }

    bool
    rejection(WalkerT &w, const graph::VertexView &view, util::Rng &rng)
    {
        const bool accepted = inner_.rejection(w, view, rng);
        if (accepted) {
            endpoints[w.id] = w.location;
        }
        return accepted;
    }

    std::vector<graph::VertexId> endpoints;

  private:
    apps::Node2Vec inner_;
};

static_assert(engine::SecondOrderApp<OverlapRecordingNode2Vec>);

class MigrationOverlapTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat(
            {.scale = 9, .edge_factor = 8, .a = 0.57, .b = 0.19,
             .c = 0.19, .seed = 23, .symmetrize = true,
             .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, file_->edge_region_bytes() / 8);
    }

    core::EngineConfig
    config(unsigned shards, unsigned threads, bool overlap) const
    {
        core::EngineConfig cfg =
            core::EngineConfig::full(0, partition_->max_block_bytes());
        cfg.num_shards = shards;
        cfg.step_threads = threads;
        cfg.shard_overlap = overlap;
        return cfg;
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(MigrationOverlapTest, BasicWalkBitIdenticalBarrierVsOverlapped)
{
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    for (const bool overlap : {false, true}) {
        for (const unsigned shards : {1u, 2u, 4u}) {
            for (const unsigned threads : {1u, 8u}) {
                OverlapRecordingWalk app(kLength, file_->num_vertices(),
                                         kWalkers);
                shard::ShardedEngine<OverlapRecordingWalk> eng(
                    *file_, *partition_,
                    config(shards, threads, overlap));
                const auto stats = eng.run(app, kWalkers);
                endpoints.push_back(app.endpoints);
                std::vector<std::uint32_t> v(app.visits.size());
                for (std::size_t i = 0; i < v.size(); ++i) {
                    v[i] = app.visits[i].load();
                }
                visits.push_back(std::move(v));
                steps.push_back(stats.steps);
            }
        }
    }
    EXPECT_GT(steps[0], 0u);
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "config " << t;
    }
}

TEST_F(MigrationOverlapTest, Node2VecBitIdenticalBarrierVsOverlapped)
{
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    std::vector<std::uint64_t> trials;
    for (const bool overlap : {false, true}) {
        for (const unsigned shards : {1u, 2u, 4u}) {
            for (const unsigned threads : {1u, 8u}) {
                OverlapRecordingNode2Vec app(2.0, 0.5, 12,
                                             file_->num_vertices(), 2);
                shard::ShardedEngine<OverlapRecordingNode2Vec> eng(
                    *file_, *partition_,
                    config(shards, threads, overlap));
                const auto stats = eng.run(app, app.total_walkers());
                endpoints.push_back(app.endpoints);
                steps.push_back(stats.steps);
                trials.push_back(stats.rejection_trials);
            }
        }
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(trials[t], trials[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
    }
}

TEST_F(MigrationOverlapTest, OverlapHidesWaitOnSlowDevice)
{
    // I/O-bound regime: the round span is long, so per-bucket flushes
    // have plenty of stepping to hide behind.
    storage::SsdModel slow = storage::SsdModel::p4618();
    slow.seq_bandwidth /= 2048.0;
    slow.iops /= 2048.0;
    storage::MemDevice slow_device(slow);
    graph::GraphFile::write(graph_, slow_device);
    graph::GraphFile slow_file(slow_device);
    graph::BlockPartition slow_partition(
        slow_file, slow_file.edge_region_bytes() / 8);

    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 16;

    engine::RunStats by_mode[2];
    std::vector<graph::VertexId> reference;
    for (const bool overlap : {false, true}) {
        OverlapRecordingWalk app(kLength, slow_file.num_vertices(),
                                 kWalkers);
        core::EngineConfig cfg = core::EngineConfig::full(
            0, slow_partition.max_block_bytes());
        cfg.num_shards = 4;
        cfg.step_threads = 2;
        cfg.shard_overlap = overlap;
        shard::ShardedEngine<OverlapRecordingWalk> eng(
            slow_file, slow_partition, cfg);
        by_mode[overlap ? 1 : 0] = eng.run(app, kWalkers);
        if (reference.empty()) {
            reference = app.endpoints;
        } else {
            EXPECT_EQ(app.endpoints, reference);
        }
    }
    const engine::RunStats &barrier = by_mode[0];
    const engine::RunStats &overlapped = by_mode[1];

    // Same walk, same traffic.
    EXPECT_EQ(overlapped.migrations, barrier.migrations);
    EXPECT_GT(barrier.migrations, 0u);

    // Barrier mode hides nothing; overlap hides a visible portion and
    // charges strictly less wait, so the modeled total can only drop.
    EXPECT_EQ(barrier.migration_overlap_seconds, 0.0);
    EXPECT_GT(overlapped.migration_overlap_seconds, 0.0);
    EXPECT_LT(overlapped.migration_wait_seconds,
              barrier.migration_wait_seconds);
    EXPECT_LE(overlapped.modeled_seconds(), barrier.modeled_seconds());
}

TEST_F(MigrationOverlapTest, StagedAdmissionOrderIsDeterministic)
{
    // Post consignments in a scrambled arrival order (as concurrent
    // shard threads would) and check the admission sort restores the
    // (dst, src, seq) sequence — per (src,dst) pair, flush order.
    shard::MigrationExchange<int> exchange;
    using Batch = shard::MigrationBatch<int>;
    std::vector<Batch> posted;
    const auto mk = [](std::uint32_t src, std::uint32_t dst,
                       std::uint64_t seq, std::vector<int> recs) {
        Batch b;
        b.src = src;
        b.dst = dst;
        b.seq = seq;
        b.records = std::move(recs);
        return b;
    };
    posted.push_back(mk(2, 0, 1, {20, 21}));
    posted.push_back(mk(1, 1, 0, {10}));
    posted.push_back(mk(2, 0, 0, {22}));
    posted.push_back(mk(0, 1, 2, {1, 2}));
    posted.push_back(mk(0, 1, 0, {3}));
    exchange.post(std::move(posted));

    std::vector<Batch> staged = exchange.collect();
    std::sort(staged.begin(), staged.end(),
              shard::MigrationExchange<int>::admission_order);

    ASSERT_EQ(staged.size(), 5u);
    // dst 0: src 2 in seq order 0, 1.
    EXPECT_EQ(staged[0].records, (std::vector<int>{22}));
    EXPECT_EQ(staged[1].records, (std::vector<int>{20, 21}));
    // dst 1: src 0 (seq 0 then 2), then src 1.
    EXPECT_EQ(staged[2].records, (std::vector<int>{3}));
    EXPECT_EQ(staged[3].records, (std::vector<int>{1, 2}));
    EXPECT_EQ(staged[4].records, (std::vector<int>{10}));

    exchange.assert_conserved();
}

TEST_F(MigrationOverlapTest, PairwiseConservationCounters)
{
    // Direct exchange check: per-(src,dst) flows balance.
    shard::MigrationExchange<int> exchange;
    using Batch = shard::MigrationBatch<int>;
    std::vector<Batch> first;
    first.push_back({.src = 0, .dst = 1, .records = {1, 2, 3}});
    first.push_back({.src = 0, .dst = 2, .records = {4}});
    exchange.post(std::move(first));
    std::vector<Batch> second;
    second.push_back({.src = 2, .dst = 1, .records = {5, 6}});
    exchange.post(std::move(second));
    (void)exchange.collect();
    exchange.assert_conserved();

    const auto flows = exchange.pair_flows();
    ASSERT_EQ(flows.size(), 3u);
    const auto &f01 = flows.at({0u, 1u});
    EXPECT_EQ(f01.posted_records, 3u);
    EXPECT_EQ(f01.delivered_records, 3u);
    EXPECT_EQ(f01.posted_batches, 1u);
    EXPECT_EQ(f01.delivered_batches, 1u);
    const auto &f21 = flows.at({2u, 1u});
    EXPECT_EQ(f21.posted_records, 2u);
    EXPECT_EQ(f21.delivered_records, 2u);

    // End to end: a 4-shard overlapped run balances every pair too.
    OverlapRecordingWalk app(20, file_->num_vertices(), 500);
    shard::ShardedEngine<OverlapRecordingWalk> eng(
        *file_, *partition_, config(4, 2, true));
    const auto stats = eng.run(app, 500);
    EXPECT_GT(stats.migrations, 0u);
    const shard::ExchangeCounters &xc = eng.exchange_counters();
    EXPECT_EQ(xc.posted_records, xc.delivered_records);
    EXPECT_EQ(xc.posted_batches, xc.delivered_batches);
    EXPECT_EQ(stats.migrations, xc.delivered_records);
}

TEST_F(MigrationOverlapTest, LocalitySeedingStartsWalkersOnOwnerShard)
{
    const shard::ShardPlan plan(*partition_, 4);
    for (graph::VertexId v = 0; v < file_->num_vertices(); v += 7) {
        EXPECT_EQ(plan.assign_walker(*partition_, v),
                  plan.shard_of_block(partition_->block_of(v)));
    }
    // Documented fallback spreads by index, no locality promise.
    for (std::uint64_t i = 0; i < 16; ++i) {
        EXPECT_EQ(plan.assign_walker_round_robin(i),
                  i % plan.num_shards());
    }

    // Zero-length walkers retire where they were seeded: locality
    // seeding means round 1 exists and nothing ever migrates.
    OverlapRecordingWalk app(0, file_->num_vertices(), 400);
    shard::ShardedEngine<OverlapRecordingWalk> eng(
        *file_, *partition_, config(4, 2, true));
    const auto stats = eng.run(app, 400);
    EXPECT_EQ(stats.migrations, 0u);
    EXPECT_EQ(stats.migration_wait_seconds, 0.0);
    EXPECT_EQ(eng.rounds(), 1u);
    EXPECT_EQ(stats.walkers, 400u);
}

class ShardPresampleTest : public MigrationOverlapTest {};

TEST_F(ShardPresampleTest, DeterministicAcrossThreadsAndOverlapModes)
{
    // With shard_presample on, output is a pure function of
    // (seed, shard plan): fixing the shard count, every thread count
    // and both migration modes agree bit for bit — and pre-samples
    // actually serve steps.
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    for (const bool overlap : {false, true}) {
        for (const unsigned threads : {1u, 8u}) {
            OverlapRecordingWalk app(kLength, file_->num_vertices(),
                                     kWalkers);
            core::EngineConfig cfg = config(2, threads, overlap);
            cfg.shard_presample = true;
            shard::ShardedEngine<OverlapRecordingWalk> eng(
                *file_, *partition_, cfg);
            const auto stats = eng.run(app, kWalkers);
            endpoints.push_back(app.endpoints);
            steps.push_back(stats.steps);
            EXPECT_GT(stats.presample_steps, 0u)
                << "shard presample never kicked in";
        }
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
    }
}

TEST_F(ShardPresampleTest, OffByDefaultInShardRounds)
{
    // The cross-shard-count bit-identity contract of num_shards
    // requires the default to keep pre-sampling out of shard rounds.
    OverlapRecordingWalk app(16, file_->num_vertices(), 400);
    shard::ShardedEngine<OverlapRecordingWalk> eng(
        *file_, *partition_, config(2, 2, true));
    const auto stats = eng.run(app, 400);
    EXPECT_EQ(stats.presample_steps, 0u);
}

TEST_F(ShardPresampleTest, EndpointDistributionUniformOnComplete)
{
    // Drying-regression mirror (PR 2): pre-sample reservoirs must not
    // skew the walk distribution as they drain.  Complete graph of 8,
    // many walkers through sharded engines with shard_presample on —
    // endpoints stay uniform.
    graph::CsrGraph complete = graph::generate_complete(8);
    storage::MemDevice dev;
    graph::GraphFile::write(complete, dev);
    graph::GraphFile file(dev);
    // Small blocks so the plan can actually split into 2 shards.
    graph::BlockPartition partition(file, 64);
    ASSERT_GE(partition.num_blocks(), 2u);

    constexpr std::uint64_t kWalkers = 4000;
    OverlapRecordingWalk app(4, 8, kWalkers);
    core::EngineConfig cfg = core::EngineConfig::full(0, 64);
    cfg.num_shards = 2;
    cfg.shard_presample = true;
    cfg.seed = 99;
    shard::ShardedEngine<OverlapRecordingWalk> eng(file, partition, cfg);
    const auto stats = eng.run(app, kWalkers);
    EXPECT_GT(stats.presample_steps, 0u);

    std::vector<int> counts(8, 0);
    for (const graph::VertexId v : app.endpoints) {
        ASSERT_NE(v, graph::kInvalidVertex);
        ++counts[v];
    }
    const double n = static_cast<double>(kWalkers);
    double chi2 = 0.0;
    for (const int c : counts) {
        const double expected = n / 8.0;
        chi2 += (c - expected) * (c - expected) / expected;
    }
    // 7 dof, alpha = 0.001 => 24.32; loose cap for mixing effects.
    EXPECT_LT(chi2, 40.0);
}

} // namespace
} // namespace noswalker
