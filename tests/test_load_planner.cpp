/**
 * @file
 * LoadPlanner suite (DESIGN.md §13).
 *
 * Tentpole guarantee: walk output is bit-identical at every plan
 * window × step-thread count × shard count — the engine always
 * processes the scheduler's hottest block; planning only decides which
 * bytes arrive early — and plan_window = 0 is the greedy top-K
 * nomination byte for byte.
 *
 * Unit coverage: greedy passthrough, lowest-id tie-breaks, one-step
 * flow propagation reordering picks, cache-residency cost credits,
 * tenant-weight commit gating, the new RunStats counters' fold/scale
 * round trip, and the service surfacing per-tenant cache hit/miss
 * counters (satellite: SharedBlockCache accounting per tenant).
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/block_scheduler.hpp"
#include "core/load_planner.hpp"
#include "core/noswalker_engine.hpp"
#include "engine/run_stats.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "service/walk_service.hpp"
#include "shard/sharded_engine.hpp"
#include "storage/mem_device.hpp"
#include "storage/shared_block_cache.hpp"

namespace noswalker {
namespace {

using testing_support::ConcurrentRecordingWalk;
using testing_support::RecordingNode2Vec;

/** Uniform-degree graph → every block has the same byte size, so the
 *  unit tests can stage exact score ties. */
class LoadPlannerUnitTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_uniform(/*num_vertices=*/512,
                                         /*degree=*/8, /*seed=*/7);
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, file_->edge_region_bytes() / 8);
        ASSERT_GE(partition_->num_blocks(), 6u);
        // The tie-break tests need exact score ties at equal heat.
        for (std::uint32_t b = 1; b < 6; ++b) {
            ASSERT_EQ(partition_->block(b).byte_size,
                      partition_->block(0).byte_size)
                << "uniform graph must partition into equal blocks";
        }
    }

    core::BlockScheduler
    scheduler() const
    {
        return core::BlockScheduler(partition_->num_blocks(), 4.0,
                                    file_->edge_region_bytes(), 4096);
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(LoadPlannerUnitTest, WindowZeroIsGreedyTopKPassthrough)
{
    core::BlockScheduler sched = scheduler();
    sched.add_walker(3);
    sched.add_walker(3);
    sched.add_walker(1);
    sched.add_walker(5);

    core::LoadPlanner planner(*partition_, {.window = 0});
    const auto greedy = sched.top_k_excluding(3, {});
    EXPECT_EQ(planner.plan(sched, nullptr, {}, 3), greedy);
    EXPECT_EQ(planner.stats().plan_rescores, 0u);
    EXPECT_EQ(planner.stats().plan_cache_credits, 0u);
}

TEST_F(LoadPlannerUnitTest, EqualScoresBreakTiesTowardLowestBlockId)
{
    core::BlockScheduler sched = scheduler();
    // Equal heat, equal bytes: pure ties at every rank.
    sched.add_walker(4);
    sched.add_walker(2);
    sched.add_walker(5);

    core::LoadPlanner planner(*partition_, {.window = 4});
    const std::vector<std::uint32_t> want = {2, 4, 5};
    EXPECT_EQ(planner.plan(sched, nullptr, {}, 3), want);
}

TEST_F(LoadPlannerUnitTest, FlowPropagationPromotesDownstreamBlock)
{
    core::BlockScheduler sched = scheduler();
    for (int i = 0; i < 10; ++i) {
        sched.add_walker(1);
    }
    for (int i = 0; i < 5; ++i) {
        sched.add_walker(2);
    }
    for (int i = 0; i < 4; ++i) {
        sched.add_walker(3);
    }

    // Without flow history the plan is heat order: 1, 2, 3.
    {
        core::LoadPlanner cold(*partition_, {.window = 2});
        const std::vector<std::uint32_t> want = {1, 2, 3};
        EXPECT_EQ(cold.plan(sched, nullptr, {}, 3), want);
        EXPECT_EQ(cold.stats().plan_rescores, 0u);
    }

    // Walkers overwhelmingly flow 1 → 3: after committing block 1, its
    // 10 expected walkers drain onto block 3 (expected 4 + 10 = 14),
    // lifting it over block 2.
    core::LoadPlanner planner(*partition_, {.window = 2});
    planner.record_flow(1, 3, 90);
    planner.record_exits(1, 10);
    const std::vector<std::uint32_t> want = {1, 3, 2};
    EXPECT_EQ(planner.plan(sched, nullptr, {}, 3), want);
    EXPECT_GE(planner.stats().plan_rescores, 1u);
}

TEST_F(LoadPlannerUnitTest, FreshInjectionsCarryNoFlow)
{
    core::LoadPlanner planner(*partition_, {.window = 2});
    // kNoBlock sources (fresh walkers) must not build a flow table.
    planner.record_flow(core::BlockScheduler::kNoBlock, 2, 100);
    planner.record_exits(core::BlockScheduler::kNoBlock, 50);
    core::BlockScheduler sched = scheduler();
    sched.add_walker(1);
    sched.add_walker(1);
    sched.add_walker(2);
    const std::vector<std::uint32_t> want = {1, 2};
    EXPECT_EQ(planner.plan(sched, nullptr, {}, 2), want);
    EXPECT_EQ(planner.stats().plan_rescores, 0u);
}

TEST_F(LoadPlannerUnitTest, CacheResidencyDiscountsCostAndCounts)
{
    core::BlockScheduler sched = scheduler();
    for (int i = 0; i < 10; ++i) {
        sched.add_walker(1);
    }
    for (int i = 0; i < 5; ++i) {
        sched.add_walker(2);
    }

    storage::SharedBlockCache cache(1ULL << 20);
    cache.insert(2, 0, std::vector<std::uint8_t>(64, 0xAB));
    ASSERT_TRUE(cache.resident(2));
    ASSERT_FALSE(cache.resident(1));

    // Resident block 2 stays in the plan — covering it keeps the
    // speculation queue aligned with the demand order, and its load
    // completes at submission with no device traffic — but the plan
    // banks a credit recording that the cache subsidized the slot.
    core::LoadPlanner planner(*partition_, {.window = 2});
    const std::vector<std::uint32_t> want = {1, 2};
    EXPECT_EQ(planner.plan(sched, &cache, {}, 2), want);
    EXPECT_EQ(planner.stats().plan_cache_credits, 1u);

    // Same landscape, no cache: same picks, nothing credited.
    core::LoadPlanner uncached(*partition_, {.window = 2});
    EXPECT_EQ(uncached.plan(sched, nullptr, {}, 2), want);
    EXPECT_EQ(uncached.stats().plan_cache_credits, 0u);
}

TEST_F(LoadPlannerUnitTest, FlowSuccessorEntersPoolAtZeroHeat)
{
    // Block 3 holds no parked walkers, so the greedy top-K can never
    // nominate it — but the recorded flow says block 1's drain lands
    // there, and the propagation lifts it into the plan.  This is the
    // lookahead greedy cannot express: covering the block a
    // concentrated walk is about to march into.
    core::BlockScheduler sched = scheduler();
    for (int i = 0; i < 10; ++i) {
        sched.add_walker(1);
    }
    ASSERT_EQ(sched.count(3), 0u);

    core::LoadPlanner planner(*partition_, {.window = 2});
    planner.record_flow(1, 3, 95);
    planner.record_exits(1, 5);
    const std::vector<std::uint32_t> want = {1, 3};
    EXPECT_EQ(planner.plan(sched, nullptr, {}, 2), want);
    EXPECT_GE(planner.stats().plan_rescores, 1u);

    // Greedy passthrough at the same state only sees the live bucket.
    core::LoadPlanner greedy(*partition_, {.window = 0});
    EXPECT_EQ(greedy.plan(sched, nullptr, {}, 2).size(), 1u);
}

TEST_F(LoadPlannerUnitTest, TenantWeightGatesCommittedSlots)
{
    core::BlockScheduler sched = scheduler();
    for (std::uint32_t b = 0; b < 6; ++b) {
        sched.add_walker(b);
    }

    core::LoadPlanner half(*partition_, {.window = 4,
                                         .tenant_weight = 0.5});
    EXPECT_EQ(half.plan(sched, nullptr, {}, 4).size(), 2u);

    // A weight never commits zero slots...
    core::LoadPlanner tiny(*partition_, {.window = 4,
                                         .tenant_weight = 0.01});
    EXPECT_EQ(tiny.plan(sched, nullptr, {}, 4).size(), 1u);

    // ...and out-of-range weights clamp to full weight.
    core::LoadPlanner full(*partition_, {.window = 4,
                                         .tenant_weight = 7.0});
    EXPECT_EQ(full.plan(sched, nullptr, {}, 4).size(), 4u);
    full.set_tenant_weight(-2.0);
    EXPECT_EQ(full.plan(sched, nullptr, {}, 4).size(), 4u);
}

TEST(RunStatsPlanner, CountersFoldAndScale)
{
    engine::RunStats a;
    a.planned_loads = 10;
    a.plan_rescores = 6;
    a.plan_cache_credits = 4;
    a.cache_miss_blocks = 8;
    engine::RunStats b;
    b.planned_loads = 2;
    b.plan_rescores = 1;
    b.plan_cache_credits = 3;
    b.cache_miss_blocks = 2;
    a += b;
    EXPECT_EQ(a.planned_loads, 12u);
    EXPECT_EQ(a.plan_rescores, 7u);
    EXPECT_EQ(a.plan_cache_credits, 7u);
    EXPECT_EQ(a.cache_miss_blocks, 10u);

    const engine::RunStats half = a.scaled(0.5);
    EXPECT_EQ(half.planned_loads, 6u);
    EXPECT_EQ(half.plan_rescores, 4u); // 3.5 rounds to 4
    EXPECT_EQ(half.plan_cache_credits, 4u);
    EXPECT_EQ(half.cache_miss_blocks, 5u);
}

/** Skewed out-of-core-ish graph for the engine-level guarantees. */
class LoadPlannerEngineTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat(
            {.scale = 9, .edge_factor = 8, .a = 0.57, .b = 0.19,
             .c = 0.19, .seed = 23, .symmetrize = true,
             .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, file_->edge_region_bytes() / 8);
    }

    core::EngineConfig
    config(unsigned window, unsigned threads) const
    {
        core::EngineConfig cfg = core::EngineConfig::full(
            0, partition_->max_block_bytes());
        cfg.prefetch_depth = 4;
        cfg.plan_window = window;
        cfg.step_threads = threads;
        return cfg;
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(LoadPlannerEngineTest, WalkIsBitIdenticalAcrossPlanWindows)
{
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    std::uint64_t planned = 0;
    for (const unsigned threads : {1u, 8u}) {
        for (const unsigned window : {0u, 2u, 8u}) {
            ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                        kWalkers);
            core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
                *file_, *partition_, config(window, threads));
            const auto stats = eng.run(app, kWalkers);
            endpoints.push_back(app.endpoints);
            std::vector<std::uint32_t> v(app.visits.size());
            for (std::size_t i = 0; i < v.size(); ++i) {
                v[i] = app.visits[i].load();
            }
            visits.push_back(std::move(v));
            steps.push_back(stats.steps);
            if (window == 0) {
                EXPECT_EQ(stats.planned_loads, 0u)
                    << "greedy path must not plan";
            } else {
                planned += stats.planned_loads;
            }
        }
    }
    EXPECT_GT(steps[0], 0u);
    EXPECT_GT(planned, 0u) << "planner never engaged";
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "config " << t;
    }
}

TEST_F(LoadPlannerEngineTest, Node2VecIsBitIdenticalAcrossPlanWindows)
{
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    for (const unsigned window : {0u, 2u, 8u}) {
        RecordingNode2Vec app(2.0, 0.5, 12, file_->num_vertices(), 2);
        core::NosWalkerEngine<RecordingNode2Vec> eng(
            *file_, *partition_, config(window, /*threads=*/1));
        const auto stats = eng.run(app, app.total_walkers());
        endpoints.push_back(app.endpoints);
        steps.push_back(stats.steps);
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "window config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "window config " << t;
    }
}

TEST_F(LoadPlannerEngineTest, ShardedWalkBitIdenticalAcrossPlanWindows)
{
    constexpr std::uint64_t kWalkers = 400;
    constexpr std::uint32_t kLength = 16;
    std::vector<std::vector<graph::VertexId>> endpoints;
    for (const unsigned shards : {1u, 2u}) {
        for (const unsigned window : {0u, 8u}) {
            ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                        kWalkers);
            core::EngineConfig cfg = config(window, /*threads=*/1);
            cfg.num_shards = shards;
            shard::ShardedEngine<ConcurrentRecordingWalk> eng(
                *file_, *partition_, cfg);
            eng.run(app, kWalkers);
            endpoints.push_back(app.endpoints);
        }
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(endpoints[t], endpoints[0])
            << "shards/window config " << t;
    }
}

TEST_F(LoadPlannerEngineTest, ColdVsWarmCacheKeepsOutputStable)
{
    // Against a warm shared cache the planner credits residency (cheap
    // re-reads plan earlier) — but the walk itself must not move.
    constexpr std::uint64_t kWalkers = 400;
    constexpr std::uint32_t kLength = 16;
    storage::SharedBlockCache cache(32ULL << 20);
    std::vector<std::vector<graph::VertexId>> endpoints;
    engine::RunStats cold;
    engine::RunStats warm;
    for (int pass = 0; pass < 2; ++pass) {
        ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                    kWalkers);
        core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
            *file_, *partition_, config(/*window=*/4, /*threads=*/1));
        eng.set_shared_cache(&cache);
        const auto stats = eng.run(app, kWalkers);
        endpoints.push_back(app.endpoints);
        (pass == 0 ? cold : warm) = stats;
    }
    EXPECT_EQ(endpoints[1], endpoints[0]);
    EXPECT_GT(cold.cache_miss_blocks, 0u) << "cold pass reads the device";
    EXPECT_GT(warm.cache_hit_blocks, 0u) << "warm pass hits the cache";
    EXPECT_GT(warm.plan_cache_credits, 0u)
        << "planner must credit warm residency";
    EXPECT_EQ(warm.cache_hit_blocks + warm.cache_miss_blocks,
              warm.blocks_loaded)
        << "every coarse load is a hit or a miss";
    EXPECT_LE(warm.cache_miss_blocks, cold.cache_miss_blocks);
}

TEST(LoadPlannerService, PerTenantStatsCarryCacheCounters)
{
    // Satellite: per-tenant SharedBlockCache accounting.  Two requests
    // from one tenant: the first warms the cache, the second hits it,
    // and both land in the tenant's aggregated RunStats.
    graph::CsrGraph g = graph::generate_rmat(
        {.scale = 9, .edge_factor = 8, .a = 0.57, .b = 0.19, .c = 0.19,
         .seed = 21, .symmetrize = false, .weighted = false});
    storage::MemDevice device;
    graph::GraphFile::write(g, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(file,
                                    file.edge_region_bytes() / 8);

    service::ServiceConfig cfg;
    cfg.num_workers = 1;
    cfg.max_batch = 1;
    cfg.batch_window_seconds = 0.0;
    cfg.cache_bytes = 32ULL << 20;
    cfg.plan_window = 4;
    cfg.tenant_weights[9] = 0.5; // exercised, output-invariant
    service::WalkService service(file, partition, cfg);

    service::WalkRequest request;
    request.tenant = 9;
    request.seed = 77;
    request.kind = service::WalkKind::kEndpoints;
    request.length = 16;
    request.walks_per_start = 50;
    for (graph::VertexId v = 0; v < 8; ++v) {
        request.starts.push_back(v * 31 % file.num_vertices());
    }

    auto first = service.submit(request).get();
    ASSERT_EQ(first.status, service::WalkStatus::kOk);
    auto second = service.submit(request).get();
    ASSERT_EQ(second.status, service::WalkStatus::kOk);
    EXPECT_EQ(second.endpoints, first.endpoints)
        << "same request + seed must reproduce";

    const engine::RunStats tenant = service.tenant_stats(9);
    EXPECT_GT(tenant.cache_miss_blocks, 0u) << "cold run misses";
    EXPECT_GT(tenant.cache_hit_blocks, 0u) << "warm run hits";
    const engine::RunStats other = service.tenant_stats(1234);
    EXPECT_EQ(other.cache_hit_blocks, 0u);
    EXPECT_EQ(other.cache_miss_blocks, 0u);
}

} // namespace
} // namespace noswalker
