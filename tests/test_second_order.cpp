/**
 * @file
 * Second-order (Node2Vec) correctness: the rejection-sampling workflow
 * must reproduce the exact Node2Vec transition distribution, and all
 * engines must agree.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "apps/node2vec.hpp"
#include "baselines/graphwalker.hpp"
#include "baselines/grasorw.hpp"
#include "baselines/inmemory.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/mem_device.hpp"

namespace noswalker {
namespace {

/** Node2Vec app that additionally records accepted transitions as
 *  (prev, from, to) triples. */
class RecordingNode2Vec : public apps::Node2Vec {
  public:
    using apps::Node2Vec::Node2Vec;

    bool
    rejection(WalkerT &w, const graph::VertexView &view, util::Rng &rng)
    {
        const graph::VertexId prev = w.prev;
        const graph::VertexId from = w.location;
        const graph::VertexId cand = w.candidate;
        const bool accepted = apps::Node2Vec::rejection(w, view, rng);
        if (accepted && prev != graph::kInvalidVertex) {
            ++counts[{prev, from, cand}];
        }
        return accepted;
    }

    std::map<std::tuple<graph::VertexId, graph::VertexId,
                        graph::VertexId>,
             std::uint64_t>
        counts;
};

static_assert(engine::SecondOrderApp<RecordingNode2Vec>);

/**
 * Small undirected test graph where vertex 0's neighbourhood exercises
 * all three Node2Vec distance cases from vertex 1:
 *   1 - 0 (return, d=0), 1 - 2 and 0 - 2 (common neighbour, d=1),
 *   0 - 3 (d=2 from 1).
 */
graph::CsrGraph
diamond_graph()
{
    std::vector<graph::Edge> edges = {
        {0, 1, 1}, {0, 2, 1}, {0, 3, 1}, {1, 2, 1}};
    graph::BuildOptions opt;
    opt.symmetrize = true;
    return graph::build_csr(std::move(edges), opt);
}

/** Exact Node2Vec probability of stepping 0→x given the previous
 *  vertex was 1, with p=2, q=0.5. */
std::map<graph::VertexId, double>
exact_from_0_prev_1(double p, double q)
{
    // N(0) = {1, 2, 3}; weights: 1 -> 1/p (return), 2 -> 1 (common
    // neighbour of 1), 3 -> 1/q (distance 2).
    std::map<graph::VertexId, double> w = {
        {1, 1.0 / p}, {2, 1.0}, {3, 1.0 / q}};
    double total = 0;
    for (auto &[v, x] : w) {
        total += x;
    }
    for (auto &[v, x] : w) {
        x /= total;
    }
    return w;
}

template <typename RunFn>
void
check_distribution(RunFn &&run_engine, const char *label)
{
    const graph::CsrGraph g = diamond_graph();
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 64); // several small blocks

    // Start all walkers at vertex 1; length 2: first step uniform, the
    // second step from 0 (if taken) exercises the weights.
    RecordingNode2Vec app(2.0, 0.5, 2, g.num_vertices(), 1);
    run_engine(file, part, app);

    // Collect the empirical conditional distribution for (1, 0, *).
    std::uint64_t total = 0;
    std::map<graph::VertexId, std::uint64_t> hist;
    for (const auto &[key, count] : app.counts) {
        const auto &[prev, from, to] = key;
        if (prev == 1 && from == 0) {
            hist[to] += count;
            total += count;
        }
    }
    ASSERT_GT(total, 400u) << label;
    const auto exact = exact_from_0_prev_1(2.0, 0.5);
    double chi2 = 0.0;
    for (const auto &[v, prob] : exact) {
        const double expected = prob * static_cast<double>(total);
        const double observed = static_cast<double>(hist[v]);
        chi2 += (observed - expected) * (observed - expected) / expected;
    }
    // 2 dof, alpha = 0.001 => 13.82.
    EXPECT_LT(chi2, 13.82) << label << " hist size " << hist.size();
}

TEST(SecondOrder, NosWalkerMatchesExactNode2VecDistribution)
{
    check_distribution(
        [](graph::GraphFile &file, graph::BlockPartition &part,
           RecordingNode2Vec &app) {
            core::EngineConfig cfg = core::EngineConfig::full(0, 64);
            // Many repetitions of the tiny walk gather the samples.
            for (int rep = 0; rep < 1500; ++rep) {
                cfg.seed = 31 + rep;
                core::NosWalkerEngine<RecordingNode2Vec> e(file, part,
                                                           cfg);
                e.run(app, app.total_walkers());
            }
        },
        "NosWalker");
}

TEST(SecondOrder, GraphWalkerMatchesExactNode2VecDistribution)
{
    check_distribution(
        [](graph::GraphFile &file, graph::BlockPartition &part,
           RecordingNode2Vec &app) {
            for (int rep = 0; rep < 1500; ++rep) {
                baselines::GraphWalkerEngine<RecordingNode2Vec> e(
                    file, part, 0, 41 + rep);
                e.run(app, app.total_walkers());
            }
        },
        "GraphWalker");
}

TEST(SecondOrder, GraSorwMatchesExactNode2VecDistribution)
{
    check_distribution(
        [](graph::GraphFile &file, graph::BlockPartition &part,
           RecordingNode2Vec &app) {
            for (int rep = 0; rep < 1500; ++rep) {
                baselines::GraSorwEngine<RecordingNode2Vec> e(file, part,
                                                              0, 51 + rep);
                e.run(app, app.total_walkers());
            }
        },
        "GraSorw");
}

TEST(SecondOrder, InMemoryMatchesExactNode2VecDistribution)
{
    check_distribution(
        [](graph::GraphFile &file, graph::BlockPartition &part,
           RecordingNode2Vec &app) {
            (void)part;
            for (int rep = 0; rep < 1500; ++rep) {
                baselines::InMemoryEngine<RecordingNode2Vec> e(file,
                                                               61 + rep);
                e.run(app, app.total_walkers());
            }
        },
        "InMemory");
}

TEST(SecondOrder, StepCountsAgreeAcrossEngines)
{
    const graph::CsrGraph g = graph::generate_rmat({.scale = 8,
                                                    .edge_factor = 8,
                                                    .a = 0.57,
                                                    .b = 0.19,
                                                    .c = 0.19,
                                                    .seed = 33,
                                                    .symmetrize = true,
                                                    .weighted = false});
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 8192);

    const std::uint32_t length = 6;
    apps::Node2Vec a1(2.0, 0.5, length, g.num_vertices(), 1);
    apps::Node2Vec a2(2.0, 0.5, length, g.num_vertices(), 1);
    apps::Node2Vec a3(2.0, 0.5, length, g.num_vertices(), 1);
    const std::uint64_t walkers = 200;

    core::EngineConfig cfg = core::EngineConfig::full(0, 8192);
    core::NosWalkerEngine<apps::Node2Vec> nw(file, part, cfg);
    baselines::GraSorwEngine<apps::Node2Vec> gs(file, part, 0);
    baselines::InMemoryEngine<apps::Node2Vec> im(file);

    const auto s1 = nw.run(a1, walkers);
    const auto s2 = gs.run(a2, walkers);
    const auto s3 = im.run(a3, walkers);
    // Symmetrized RMAT may still contain isolated vertices; all engines
    // must retire identical walker sets, hence identical step totals.
    EXPECT_EQ(s1.walkers, walkers);
    EXPECT_EQ(s2.walkers, walkers);
    EXPECT_EQ(s3.walkers, walkers);
    EXPECT_EQ(s1.steps, s2.steps);
    EXPECT_EQ(s2.steps, s3.steps);
}

TEST(SecondOrder, FirstStepIsUniform)
{
    // Star graph: from the hub every leaf must be equally likely on
    // the first step (prev == null ⇒ unconditional accept).
    const graph::CsrGraph g = graph::generate_star(9);
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);

    RecordingNode2Vec app(2.0, 0.5, 2, 1, 1); // start at hub (vertex 0)
    for (int rep = 0; rep < 3000; ++rep) {
        baselines::InMemoryEngine<RecordingNode2Vec> e(file, 81 + rep);
        e.run(app, 1);
    }
    // counts keys are (prev=0, from=leaf, to=0): every second step
    // returns to the hub — the interesting check is that all leaves
    // appear as `from`, roughly uniformly.
    std::map<graph::VertexId, std::uint64_t> from_hist;
    std::uint64_t total = 0;
    for (const auto &[key, count] : app.counts) {
        const auto &[prev, from, to] = key;
        EXPECT_EQ(prev, 0u);
        EXPECT_EQ(to, 0u); // leaves only connect back to the hub
        from_hist[from] += count;
        total += count;
    }
    ASSERT_GT(total, 1000u);
    for (const auto &[leaf, count] : from_hist) {
        EXPECT_NEAR(static_cast<double>(count) / total, 1.0 / 8.0, 0.04)
            << "leaf " << leaf;
    }
}

TEST(SecondOrder, RejectionStatsAreTracked)
{
    const graph::CsrGraph g = graph::generate_rmat({.scale = 7,
                                                    .edge_factor = 8,
                                                    .a = 0.57,
                                                    .b = 0.19,
                                                    .c = 0.19,
                                                    .seed = 35,
                                                    .symmetrize = true,
                                                    .weighted = false});
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    apps::Node2Vec app(2.0, 0.5, 8, g.num_vertices(), 1);
    baselines::InMemoryEngine<apps::Node2Vec> e(file);
    const auto stats = e.run(app, 100);
    EXPECT_GT(stats.rejection_trials, 0u);
    EXPECT_EQ(stats.rejection_trials,
              stats.steps + stats.rejection_rejected);
}

} // namespace
} // namespace noswalker
