/**
 * @file
 * The tentpole guarantee of the interleaved cohort step kernel
 * (DESIGN.md §12): walk output is bit-identical to the legacy scalar
 * loop at every cohort size × step-thread count × shard count, for
 * first-order, walk-length-budgeted PPR, and second-order Node2Vec
 * workloads.  Cohorting only changes *when* each walker's cache lines
 * are requested, never which step it takes.
 *
 * Also covered: AliasTable::sample_batch draw-for-draw equivalence
 * with sequential sample() (the kernel's batched-draw building block),
 * and the kernel telemetry counters' aggregation round-trip.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/noswalker_engine.hpp"
#include "engine/run_stats.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "shard/sharded_engine.hpp"
#include "storage/mem_device.hpp"
#include "util/alias_table.hpp"
#include "util/rng.hpp"

namespace noswalker {
namespace {

using testing_support::ConcurrentRecordingWalk;
using testing_support::RecordingNode2Vec;
using testing_support::RecordingPpr;

TEST(AliasTableBatch, SampleBatchMatchesSequentialDrawForDraw)
{
    for (const std::size_t outcomes : {1UL, 3UL, 17UL, 1000UL}) {
        std::vector<double> weights(outcomes);
        util::Rng wrng(911 + outcomes);
        for (double &w : weights) {
            w = wrng.next_double() * 10.0;
        }
        weights[0] += 1.0; // at least one strictly positive weight
        const util::AliasTable table(weights);

        for (const std::size_t n : {1UL, 5UL, 64UL, 257UL}) {
            const std::uint64_t seed = 1234 + outcomes * 1000 + n;
            util::Rng seq(seed);
            std::vector<std::uint32_t> expected(n);
            for (std::uint32_t &draw : expected) {
                draw = table.sample(seq);
            }

            util::Rng batch(seed);
            std::vector<std::uint32_t> got(n);
            table.sample_batch(batch, got.data(), n);
            EXPECT_EQ(got, expected)
                << outcomes << " outcomes, batch of " << n;
            // The generators must also agree *after* the draws, so a
            // caller can keep using the stream either way.
            EXPECT_EQ(batch(), seq());
        }
    }
}

TEST(RunStatsKernel, CountersAggregateAndScale)
{
    engine::RunStats a;
    a.kernel_cohorts = 10;
    a.kernel_prefetches = 1000;
    a.kernel_scalar_fallbacks = 4;
    engine::RunStats b;
    b.kernel_cohorts = 6;
    b.kernel_prefetches = 200;
    b.kernel_scalar_fallbacks = 1;

    a += b;
    EXPECT_EQ(a.kernel_cohorts, 16u);
    EXPECT_EQ(a.kernel_prefetches, 1200u);
    EXPECT_EQ(a.kernel_scalar_fallbacks, 5u);

    const engine::RunStats half = a.scaled(0.5);
    EXPECT_EQ(half.kernel_cohorts, 8u);
    EXPECT_EQ(half.kernel_prefetches, 600u);
    EXPECT_EQ(half.kernel_scalar_fallbacks, 3u); // rounds half-up

    const std::string dump = a.to_string();
    EXPECT_NE(dump.find("kernel_cohorts=16"), std::string::npos);
    EXPECT_NE(dump.find("kernel_prefetches=1200"), std::string::npos);
    EXPECT_NE(dump.find("kernel_scalar_fallbacks=5"), std::string::npos);
}

class StepKernelTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat(
            {.scale = 9, .edge_factor = 8, .a = 0.57, .b = 0.19,
             .c = 0.19, .seed = 23, .symmetrize = true,
             .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, file_->edge_region_bytes() / 8);
    }

    core::EngineConfig
    config(unsigned cohort, unsigned threads, bool presample) const
    {
        core::EngineConfig cfg = core::EngineConfig::full(
            testing_support::tight_budget(*file_, *partition_),
            partition_->max_block_bytes());
        cfg.step_cohort = cohort;
        cfg.step_threads = threads;
        cfg.presample = presample;
        return cfg;
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(StepKernelTest, BasicWalkBitIdenticalAcrossCohortSizes)
{
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    for (const unsigned cohort : {0u, 4u, 16u}) {
        for (const unsigned threads : {1u, 8u}) {
            ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                        kWalkers);
            core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
                *file_, *partition_,
                config(cohort, threads, /*presample=*/true));
            const auto stats = eng.run(app, kWalkers);
            endpoints.push_back(app.endpoints);
            std::vector<std::uint32_t> v(app.visits.size());
            for (std::size_t i = 0; i < v.size(); ++i) {
                v[i] = app.visits[i].load();
            }
            visits.push_back(std::move(v));
            steps.push_back(stats.steps);
            if (cohort == 0) {
                EXPECT_EQ(stats.kernel_cohorts, 0u);
                EXPECT_GT(stats.kernel_scalar_fallbacks, 0u);
            } else {
                EXPECT_GT(stats.kernel_cohorts, 0u);
                EXPECT_GT(stats.kernel_prefetches, 0u);
            }
        }
    }
    EXPECT_GT(steps[0], 0u);
    EXPECT_LE(steps[0], kWalkers * kLength);
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "config " << t;
    }
}

TEST_F(StepKernelTest, PprBitIdenticalAcrossCohortSizes)
{
    // A few query sources spread across the id range, so the walkers
    // hop blocks and exercise park/stall paths under the kernel.
    const graph::VertexId n = file_->num_vertices();
    const std::vector<graph::VertexId> sources{
        0, n / 3, n / 2, n - 1};
    constexpr std::uint64_t kWalksPerSource = 120;
    constexpr std::uint32_t kLength = 12;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    for (const unsigned cohort : {0u, 4u, 16u}) {
        for (const unsigned threads : {1u, 8u}) {
            RecordingPpr app(sources, kWalksPerSource, kLength, n);
            core::NosWalkerEngine<RecordingPpr> eng(
                *file_, *partition_,
                config(cohort, threads, /*presample=*/true));
            const auto stats = eng.run(app, app.total_walkers());
            endpoints.push_back(app.endpoints);
            std::vector<std::uint32_t> v(app.visits.size());
            for (std::size_t i = 0; i < v.size(); ++i) {
                v[i] = app.visits[i].load();
            }
            visits.push_back(std::move(v));
            steps.push_back(stats.steps);
        }
    }
    EXPECT_GT(steps[0], 0u);
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "config " << t;
    }
}

TEST_F(StepKernelTest, Node2VecBitIdenticalAcrossCohortSizes)
{
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    std::vector<std::uint64_t> trials;
    for (const unsigned cohort : {0u, 4u, 16u}) {
        for (const unsigned threads : {1u, 8u}) {
            RecordingNode2Vec app(2.0, 0.5, 12, file_->num_vertices(),
                                  2);
            core::NosWalkerEngine<RecordingNode2Vec> eng(
                *file_, *partition_,
                config(cohort, threads, /*presample=*/true));
            const auto stats = eng.run(app, app.total_walkers());
            endpoints.push_back(app.endpoints);
            steps.push_back(stats.steps);
            trials.push_back(stats.rejection_trials);
        }
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(trials[t], trials[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
    }
}

TEST_F(StepKernelTest, ShardedRunsBitIdenticalAcrossCohortSizes)
{
    // Shard rounds run with pre-sampling off (DESIGN.md §11), so the
    // baseline is a presample-off scalar single-shard run.
    constexpr std::uint64_t kWalkers = 400;
    constexpr std::uint32_t kLength = 16;

    ConcurrentRecordingWalk base_app(kLength, file_->num_vertices(),
                                     kWalkers);
    core::NosWalkerEngine<ConcurrentRecordingWalk> base(
        *file_, *partition_, config(0, 1, /*presample=*/false));
    base.run(base_app, kWalkers);

    for (const unsigned shards : {1u, 2u}) {
        for (const unsigned cohort : {0u, 4u, 16u}) {
            for (const unsigned threads : {1u, 8u}) {
                ConcurrentRecordingWalk app(
                    kLength, file_->num_vertices(), kWalkers);
                core::EngineConfig cfg =
                    config(cohort, threads, /*presample=*/false);
                cfg.num_shards = shards;
                shard::ShardedEngine<ConcurrentRecordingWalk> eng(
                    *file_, *partition_, cfg);
                eng.run(app, kWalkers);
                EXPECT_EQ(app.endpoints, base_app.endpoints)
                    << shards << " shards, cohort " << cohort << ", "
                    << threads << " threads";
            }
        }
    }
}

} // namespace
} // namespace noswalker

