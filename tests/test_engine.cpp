/**
 * @file
 * Correctness tests for the NosWalker engine itself.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "apps/basic_rw.hpp"
#include "apps/weighted_rw.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/mem_device.hpp"
#include "util/error.hpp"

namespace noswalker::core {
namespace {

struct Fixture {
    graph::CsrGraph graph;
    storage::MemDevice device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;

    Fixture(graph::CsrGraph g, std::uint64_t block_bytes)
        : graph(std::move(g))
    {
        graph::GraphFile::write(graph, device);
        file = std::make_unique<graph::GraphFile>(device);
        partition =
            std::make_unique<graph::BlockPartition>(*file, block_bytes);
    }
};

TEST(NosWalkerEngine, ExactStepCountOnCycle)
{
    Fixture s(graph::generate_cycle(100), 128);
    apps::BasicRandomWalk app(10, 100);
    EngineConfig cfg = EngineConfig::full(0, 128);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 50);
    EXPECT_EQ(stats.steps, 500u);
    EXPECT_EQ(stats.walkers, 50u);
    EXPECT_GT(stats.graph_bytes_read, 0u);
}

TEST(NosWalkerEngine, TransitionsFollowRealEdges)
{
    Fixture s(graph::generate_rmat({.scale = 9,
                                  .edge_factor = 8,
                                  .a = 0.57,
                                  .b = 0.19,
                                  .c = 0.19,
                                  .seed = 21,
                                  .symmetrize = false,
                                  .weighted = false}),
            4096);
    testing_support::RecordingWalk app(8, s.graph.num_vertices());
    // Small budget to force genuinely out-of-core behaviour.
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition, 0.25);
    EngineConfig cfg = EngineConfig::full(budget, 4096);
    NosWalkerEngine<testing_support::RecordingWalk> eng(*s.file,
                                                        *s.partition, cfg);
    const auto stats = eng.run(app, 300);
    EXPECT_EQ(stats.steps, app.transitions.size());
    for (const auto &[from, to] : app.transitions) {
        ASSERT_TRUE(s.graph.has_edge(from, to))
            << from << "->" << to << " is not an edge";
    }
}

TEST(NosWalkerEngine, EveryWalkerTakesExactlyLStepsOnRegularGraph)
{
    Fixture s(graph::generate_uniform(2000, 12, 5), 4096);
    testing_support::RecordingWalk app(7, 2000);
    EngineConfig cfg = EngineConfig::full(
        testing_support::tight_budget(*s.file, *s.partition), 4096);
    NosWalkerEngine<testing_support::RecordingWalk> eng(*s.file,
                                                        *s.partition, cfg);
    const auto stats = eng.run(app, 500);
    EXPECT_EQ(stats.walkers, 500u);
    EXPECT_EQ(stats.steps, 500u * 7);
    EXPECT_EQ(app.steps_per_walker.size(), 500u);
    for (const auto &[id, steps] : app.steps_per_walker) {
        EXPECT_EQ(steps, 7u) << "walker " << id;
    }
}

TEST(NosWalkerEngine, EndpointDistributionUniformOnComplete)
{
    Fixture s(graph::generate_complete(8), 1 << 20);
    // Record endpoints through the recording app.
    testing_support::RecordingWalk app(4, 8);
    EngineConfig cfg = EngineConfig::full(0, 1 << 20);
    cfg.seed = 99;
    NosWalkerEngine<testing_support::RecordingWalk> eng(*s.file,
                                                        *s.partition, cfg);
    eng.run(app, 4000);
    std::vector<int> counts(8, 0);
    for (const auto &[from, to] : app.transitions) {
        (void)from;
        ++counts[to];
    }
    const double n = static_cast<double>(app.transitions.size());
    double chi2 = 0.0;
    for (int c : counts) {
        // Uniform target over 7 out-neighbours averages to uniform
        // over all 8 vertices at stationarity; allow loose tolerance.
        const double expected = n / 8.0;
        chi2 += (c - expected) * (c - expected) / expected;
    }
    // 7 dof, alpha = 0.001 => 24.32; loose cap for mixing effects.
    EXPECT_LT(chi2, 40.0);
}

TEST(NosWalkerEngine, MemoryBudgetPeakRespected)
{
    Fixture s(graph::generate_rmat({.scale = 10,
                                  .edge_factor = 8,
                                  .a = 0.57,
                                  .b = 0.19,
                                  .c = 0.19,
                                  .seed = 22,
                                  .symmetrize = false,
                                  .weighted = false}),
            8192);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition);
    EngineConfig cfg = EngineConfig::full(budget, 8192);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 1000);
    EXPECT_LE(stats.peak_memory, budget);
    EXPECT_GT(stats.peak_memory, 0u);
}

TEST(NosWalkerEngine, InfeasibleBudgetThrows)
{
    Fixture s(graph::generate_rmat({.scale = 10,
                                  .edge_factor = 8,
                                  .a = 0.57,
                                  .b = 0.19,
                                  .c = 0.19,
                                  .seed = 23,
                                  .symmetrize = false,
                                  .weighted = false}),
            1 << 20);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    EngineConfig cfg = EngineConfig::full(1024, 1 << 20);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    EXPECT_THROW(eng.run(app, 10), util::BudgetExceeded);
}

TEST(NosWalkerEngine, DeterministicForSeed)
{
    Fixture s(graph::generate_rmat({.scale = 8,
                                  .edge_factor = 8,
                                  .a = 0.57,
                                  .b = 0.19,
                                  .c = 0.19,
                                  .seed = 24,
                                  .symmetrize = false,
                                  .weighted = false}),
            4096);
    EngineConfig cfg = EngineConfig::full(0, 4096);
    cfg.loader_threads = 0; // synchronous: fully deterministic schedule
    testing_support::RecordingWalk app1(6, s.graph.num_vertices());
    testing_support::RecordingWalk app2(6, s.graph.num_vertices());
    NosWalkerEngine<testing_support::RecordingWalk> e1(*s.file,
                                                       *s.partition, cfg);
    NosWalkerEngine<testing_support::RecordingWalk> e2(*s.file,
                                                       *s.partition, cfg);
    const auto s1 = e1.run(app1, 200);
    const auto s2 = e2.run(app2, 200);
    EXPECT_EQ(s1.steps, s2.steps);
    EXPECT_EQ(s1.graph_bytes_read, s2.graph_bytes_read);
    EXPECT_EQ(app1.transitions, app2.transitions);
}

TEST(NosWalkerEngine, KnobCombinationsAllAgreeOnStepCount)
{
    Fixture s(graph::generate_uniform(1500, 10, 6), 4096);
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition);
    const std::uint64_t expected = 400u * 5;
    for (int mask = 0; mask < 8; ++mask) {
        EngineConfig cfg = EngineConfig::full(budget, 4096);
        cfg.walker_management = (mask & 1) != 0;
        cfg.shrink_block = (mask & 2) != 0;
        cfg.presample = (mask & 4) != 0;
        apps::BasicRandomWalk app(5, 1500);
        NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition,
                                                   cfg);
        const auto stats = eng.run(app, 400);
        EXPECT_EQ(stats.steps, expected) << "knob mask " << mask;
        EXPECT_EQ(stats.walkers, 400u) << "knob mask " << mask;
    }
}

TEST(NosWalkerEngine, PresampleStepsServeWalkers)
{
    Fixture s(graph::generate_rmat({.scale = 10,
                                  .edge_factor = 16,
                                  .a = 0.57,
                                  .b = 0.19,
                                  .c = 0.19,
                                  .seed = 25,
                                  .symmetrize = false,
                                  .weighted = false}),
            8192);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    EngineConfig cfg = EngineConfig::full(
        testing_support::tight_budget(*s.file, *s.partition, 0.25), 8192);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 2000);
    EXPECT_GT(stats.presample_steps, 0u);
    EXPECT_GT(stats.block_steps, 0u);
    EXPECT_EQ(stats.presample_steps + stats.block_steps, stats.steps);
}

TEST(NosWalkerEngine, BaseImplementationChargesSwapTraffic)
{
    // Dead-end free so both configurations take identical step totals.
    Fixture s(graph::generate_uniform(2000, 16, 26), 8192);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition, 0.25);
    EngineConfig cfg = EngineConfig::base_implementation(budget, 8192);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    // Many walkers relative to the budget: swapping must occur.
    const auto stats = eng.run(app, 50000);
    EXPECT_GT(stats.swap_bytes, 0u);
    // Full NosWalker never swaps.
    EngineConfig full_cfg = EngineConfig::full(budget, 8192);
    apps::BasicRandomWalk app2(10, s.graph.num_vertices());
    NosWalkerEngine<apps::BasicRandomWalk> full_eng(*s.file, *s.partition,
                                                    full_cfg);
    const auto full_stats = full_eng.run(app2, 50000);
    EXPECT_EQ(full_stats.swap_bytes, 0u);
    EXPECT_EQ(full_stats.steps, stats.steps);
}

TEST(NosWalkerEngine, FineModeEngagesForSparseWalkers)
{
    Fixture s(graph::generate_rmat({.scale = 11,
                                  .edge_factor = 8,
                                  .a = 0.57,
                                  .b = 0.19,
                                  .c = 0.19,
                                  .seed = 27,
                                  .symmetrize = false,
                                  .weighted = false}),
            8192);
    apps::BasicRandomWalk app(64, s.graph.num_vertices());
    EngineConfig cfg = EngineConfig::full(
        testing_support::tight_budget(*s.file, *s.partition, 0.25), 8192);
    cfg.max_walkers = 4; // very sparse: α·|Wa|·4KiB << S_G
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 8);
    EXPECT_GT(stats.fine_loads, 0u);
}

TEST(NosWalkerEngine, ZeroWalkersIsANoop)
{
    Fixture s(graph::generate_cycle(16), 64);
    apps::BasicRandomWalk app(5, 16);
    EngineConfig cfg = EngineConfig::full(0, 64);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 0);
    EXPECT_EQ(stats.steps, 0u);
    EXPECT_EQ(stats.walkers, 0u);
}

TEST(NosWalkerEngine, SynchronousLoaderMatchesThreadedStepCount)
{
    Fixture s(graph::generate_uniform(800, 8, 7), 4096);
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition);
    EngineConfig async_cfg = EngineConfig::full(budget, 4096);
    EngineConfig sync_cfg = async_cfg;
    sync_cfg.loader_threads = 0;
    apps::BasicRandomWalk a1(6, 800);
    apps::BasicRandomWalk a2(6, 800);
    NosWalkerEngine<apps::BasicRandomWalk> e1(*s.file, *s.partition,
                                              async_cfg);
    NosWalkerEngine<apps::BasicRandomWalk> e2(*s.file, *s.partition,
                                              sync_cfg);
    EXPECT_EQ(e1.run(a1, 300).steps, e2.run(a2, 300).steps);
}

TEST(NosWalkerEngine, DeadEndWalkersRetireEarly)
{
    // 0 -> 1, 1 has no out-edges.
    graph::CsrGraph g({0, 1, 1}, {1});
    Fixture s(std::move(g), 64);
    apps::BasicRandomWalk app(5, 1, /*random_start=*/false);
    EngineConfig cfg = EngineConfig::full(0, 64);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 10); // all start at vertex 0
    EXPECT_EQ(stats.walkers, 10u);
    EXPECT_EQ(stats.steps, 10u); // one step each, then dead end
}

TEST(NosWalkerEngine, WeightedWalkRunsOnAliasFile)
{
    auto g = graph::generate_rmat({.scale = 8,
                                   .edge_factor = 8,
                                   .a = 0.57,
                                   .b = 0.19,
                                   .c = 0.19,
                                   .seed = 28,
                                   .symmetrize = false,
                                   .weighted = true});
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev, /*with_alias=*/true);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 8192);
    apps::WeightedRandomWalk app(10, file.num_vertices());
    graph::BlockPartition &partref = part;
    EngineConfig cfg = EngineConfig::full(
        testing_support::tight_budget(file, partref), 8192);
    NosWalkerEngine<apps::WeightedRandomWalk> eng(file, part, cfg);
    const auto stats = eng.run(app, 500);
    EXPECT_GT(stats.steps, 0u);
    EXPECT_EQ(stats.walkers, 500u);
}

TEST(NosWalkerEngine, RunIsRepeatableOnSameEngineObject)
{
    Fixture s(graph::generate_cycle(32), 64);
    apps::BasicRandomWalk app(4, 32);
    EngineConfig cfg = EngineConfig::full(0, 64);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto s1 = eng.run(app, 20);
    const auto s2 = eng.run(app, 20);
    EXPECT_EQ(s1.steps, s2.steps);
}

TEST(NosWalkerEngine, PresampleFirstPolicyStillCompletes)
{
    // use_loaded_block=false flips the source priority: pre-samples
    // are consumed eagerly with the loaded block as fallback.  The run
    // must complete with the same step totals.
    Fixture s(graph::generate_uniform(1500, 10, 61), 4096);
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition);
    EngineConfig cfg = EngineConfig::full(budget, 4096);
    cfg.use_loaded_block = false;
    apps::BasicRandomWalk app(6, 1500);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 300);
    EXPECT_EQ(stats.steps, 300u * 6);
    EXPECT_GT(stats.presample_steps, 0u);
}

TEST(NosWalkerEngine, SingleBufferModeUnderVeryTightBudget)
{
    // A budget just above the floor triggers the single-buffer
    // degradation; the run must still complete within budget.
    Fixture s(graph::generate_uniform(3000, 16, 62), 16384);
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition, 0.05);
    EngineConfig cfg = EngineConfig::full(budget, 16384);
    apps::BasicRandomWalk app(8, 3000);
    NosWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, cfg);
    const auto stats = eng.run(app, 500);
    EXPECT_EQ(stats.steps, 500u * 8);
    EXPECT_LE(stats.peak_memory, budget);
}

TEST(EngineConfig, ValidationCatchesNonsense)
{
    EngineConfig cfg;
    cfg.block_bytes = 0;
    EXPECT_THROW(cfg.validate(), util::ConfigError);
    cfg = EngineConfig{};
    cfg.alpha = -1;
    EXPECT_THROW(cfg.validate(), util::ConfigError);
    cfg = EngineConfig{};
    cfg.presamples_per_vertex = 0;
    EXPECT_THROW(cfg.validate(), util::ConfigError);
    cfg = EngineConfig{};
    cfg.walker_memory_fraction = 1.5;
    EXPECT_THROW(cfg.validate(), util::ConfigError);
    cfg = EngineConfig{};
    cfg.presample_memory_fraction = 1.0;
    EXPECT_THROW(cfg.validate(), util::ConfigError);
    EXPECT_NO_THROW(EngineConfig{}.validate());
}

} // namespace
} // namespace noswalker::core
