/**
 * @file
 * Unit tests for the graph substrate: CSR, builder, generators,
 * dataset twins.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "util/error.hpp"

namespace noswalker::graph {
namespace {

TEST(CsrGraph, BasicAccessors)
{
    // 0 -> {1, 2}, 1 -> {2}, 2 -> {}
    CsrGraph g({0, 2, 3, 3}, {1, 2, 2});
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_FALSE(g.weighted());
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(2), 0u);
    ASSERT_EQ(g.neighbors(0).size(), 2u);
    EXPECT_EQ(g.neighbors(0)[0], 1u);
    EXPECT_EQ(g.neighbors(1)[0], 2u);
    EXPECT_TRUE(g.neighbors(2).empty());
    EXPECT_EQ(g.csr_bytes(), 4 * 8 + 3 * 4u);
    EXPECT_EQ(g.max_degree(), 2u);
    EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
}

TEST(CsrGraph, WeightedAccessors)
{
    CsrGraph g({0, 2, 2}, {0, 1}, {0.5f, 1.5f});
    EXPECT_TRUE(g.weighted());
    ASSERT_EQ(g.weights(0).size(), 2u);
    EXPECT_FLOAT_EQ(g.weights(0)[0], 0.5f);
    EXPECT_TRUE(g.weights(1).empty());
}

TEST(CsrGraph, ValidateRejectsBadOffsets)
{
    EXPECT_THROW(CsrGraph({1, 2}, {0}), util::ConfigError);
    EXPECT_THROW(CsrGraph({0, 2, 1}, {0, 0}), util::ConfigError);
    EXPECT_THROW(CsrGraph({0, 1}, {0, 0}), util::ConfigError);
    EXPECT_THROW(CsrGraph({0, 1}, {5}), util::ConfigError); // target oob
    EXPECT_THROW(CsrGraph({0, 1}, {0}, {1.0f, 2.0f}),
                 util::ConfigError); // weights size mismatch
}

TEST(CsrGraph, HasEdgeSortedAndUnsorted)
{
    CsrGraph g({0, 3, 3}, {0, 1, 1});
    g.set_sorted(true);
    EXPECT_TRUE(g.has_edge(0, 1));
    EXPECT_FALSE(g.has_edge(1, 0));
    g.set_sorted(false);
    EXPECT_TRUE(g.has_edge(0, 0)); // linear scan path
    EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Builder, SortsAndBuilds)
{
    std::vector<Edge> edges = {{2, 0, 1}, {0, 2, 1}, {0, 1, 1}, {1, 0, 1}};
    CsrGraph g = build_csr(edges);
    EXPECT_EQ(g.num_vertices(), 3u);
    EXPECT_EQ(g.num_edges(), 4u);
    ASSERT_EQ(g.neighbors(0).size(), 2u);
    EXPECT_EQ(g.neighbors(0)[0], 1u); // sorted adjacency
    EXPECT_EQ(g.neighbors(0)[1], 2u);
    EXPECT_TRUE(g.sorted());
}

TEST(Builder, Dedup)
{
    std::vector<Edge> edges = {{0, 1, 1}, {0, 1, 2}, {0, 2, 1}};
    BuildOptions opt;
    opt.dedup = true;
    CsrGraph g = build_csr(edges, opt);
    EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, Symmetrize)
{
    std::vector<Edge> edges = {{0, 1, 1}, {1, 2, 1}};
    BuildOptions opt;
    opt.symmetrize = true;
    CsrGraph g = build_csr(edges, opt);
    EXPECT_EQ(g.num_edges(), 4u);
    EXPECT_TRUE(g.has_edge(1, 0));
    EXPECT_TRUE(g.has_edge(2, 1));
}

TEST(Builder, RemoveSelfLoops)
{
    std::vector<Edge> edges = {{0, 0, 1}, {0, 1, 1}, {1, 1, 1}};
    BuildOptions opt;
    opt.remove_self_loops = true;
    CsrGraph g = build_csr(edges, opt);
    EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, ForcedVertexCountKeepsIsolated)
{
    std::vector<Edge> edges = {{0, 1, 1}};
    BuildOptions opt;
    opt.num_vertices = 10;
    CsrGraph g = build_csr(edges, opt);
    EXPECT_EQ(g.num_vertices(), 10u);
    EXPECT_EQ(g.degree(9), 0u);
}

TEST(Builder, WeightedPreservesWeights)
{
    std::vector<Edge> edges = {{0, 2, 2.5f}, {0, 1, 1.5f}};
    CsrGraph g = build_csr(edges, {}, true);
    ASSERT_TRUE(g.weighted());
    // Sorted by destination: (0,1,1.5) then (0,2,2.5).
    EXPECT_FLOAT_EQ(g.weights(0)[0], 1.5f);
    EXPECT_FLOAT_EQ(g.weights(0)[1], 2.5f);
}

TEST(Builder, IncrementalInterface)
{
    GraphBuilder b;
    b.reserve(3);
    b.add_edge(0, 1);
    b.add_edges({{1, 2, 1.0f}, {2, 0, 1.0f}});
    EXPECT_EQ(b.size(), 3u);
    CsrGraph g = b.build();
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_EQ(b.size(), 0u); // builder drained
}

TEST(Generators, RmatSizesAndDeterminism)
{
    RmatParams p;
    p.scale = 10;
    p.edge_factor = 8;
    p.seed = 99;
    CsrGraph a = generate_rmat(p);
    CsrGraph b = generate_rmat(p);
    EXPECT_EQ(a.num_vertices(), 1024u);
    EXPECT_EQ(a.num_edges(), 8192u);
    EXPECT_EQ(a.targets(), b.targets());
    p.seed = 100;
    CsrGraph c = generate_rmat(p);
    EXPECT_NE(a.targets(), c.targets());
}

TEST(Generators, RmatIsSkewed)
{
    RmatParams p;
    p.scale = 12;
    p.edge_factor = 16;
    CsrGraph g = generate_rmat(p);
    // Power-law-ish: max degree far above the mean.
    EXPECT_GT(g.max_degree(), 8 * g.average_degree());
}

TEST(Generators, RmatWeighted)
{
    RmatParams p;
    p.scale = 8;
    p.edge_factor = 4;
    p.weighted = true;
    CsrGraph g = generate_rmat(p);
    ASSERT_TRUE(g.weighted());
    for (float w : g.all_weights()) {
        EXPECT_GT(w, 0.0f);
        EXPECT_LE(w, 1.001f);
    }
}

TEST(Generators, RmatSymmetrized)
{
    RmatParams p;
    p.scale = 8;
    p.edge_factor = 4;
    p.symmetrize = true;
    CsrGraph g = generate_rmat(p);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
        for (VertexId v : g.neighbors(u)) {
            if (u != v) {
                ASSERT_TRUE(g.has_edge(v, u))
                    << u << "->" << v << " missing reverse";
            }
        }
    }
}

TEST(Generators, RmatRejectsBadQuadrants)
{
    RmatParams p;
    p.a = 0.5;
    p.b = 0.3;
    p.c = 0.3;
    EXPECT_THROW(generate_rmat(p), util::ConfigError);
}

TEST(Generators, PowerLawDegreeRangeRespected)
{
    CsrGraph g = generate_power_law(2000, 2.7, 2, 64, 5);
    EXPECT_EQ(g.num_vertices(), 2000u);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_GE(g.degree(v), 2u);
        EXPECT_LE(g.degree(v), 64u);
    }
}

TEST(Generators, PowerLawIsFlatterThanRmat)
{
    // α=2.7 should have a lower mean degree than the min-degree-heavy
    // tail would suggest: most mass at min_degree.
    CsrGraph g = generate_power_law(5000, 2.7, 1, 128, 6);
    std::uint64_t deg1 = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        if (g.degree(v) == 1) {
            ++deg1;
        }
    }
    // With α=2.7 over [1,128], P(deg=1) ≈ 0.82.
    EXPECT_GT(deg1, g.num_vertices() / 2);
}

TEST(Generators, PowerLawRejectsBadRange)
{
    EXPECT_THROW(generate_power_law(10, 2.0, 0, 4, 1),
                 util::ConfigError);
    EXPECT_THROW(generate_power_law(10, 2.0, 5, 4, 1),
                 util::ConfigError);
}

TEST(Generators, UniformExactDegree)
{
    CsrGraph g = generate_uniform(500, 12, 3);
    EXPECT_EQ(g.num_edges(), 500u * 12u);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(g.degree(v), 12u);
        for (VertexId t : g.neighbors(v)) {
            EXPECT_NE(t, v); // no self loops
        }
    }
}

TEST(Generators, ErdosRenyiEdgeCount)
{
    CsrGraph g = generate_erdos_renyi(100, 1234, 8);
    EXPECT_EQ(g.num_vertices(), 100u);
    EXPECT_EQ(g.num_edges(), 1234u);
}

TEST(Generators, CycleStructure)
{
    CsrGraph g = generate_cycle(5);
    for (VertexId v = 0; v < 5; ++v) {
        ASSERT_EQ(g.degree(v), 1u);
        EXPECT_EQ(g.neighbors(v)[0], (v + 1) % 5);
    }
}

TEST(Generators, CompleteStructure)
{
    CsrGraph g = generate_complete(5);
    EXPECT_EQ(g.num_edges(), 20u);
    for (VertexId v = 0; v < 5; ++v) {
        EXPECT_EQ(g.degree(v), 4u);
        EXPECT_FALSE(g.has_edge(v, v));
    }
}

TEST(Generators, StarStructure)
{
    CsrGraph g = generate_star(6);
    EXPECT_EQ(g.degree(0), 5u);
    for (VertexId v = 1; v < 6; ++v) {
        ASSERT_EQ(g.degree(v), 1u);
        EXPECT_EQ(g.neighbors(v)[0], 0u);
    }
}

TEST(Generators, PaperToyMatchesFigure3)
{
    CsrGraph g = generate_paper_toy();
    EXPECT_EQ(g.num_vertices(), 7u);
    EXPECT_EQ(g.degree(0), 6u); // v0's six-edge fanout from the example
    EXPECT_TRUE(g.has_edge(0, 2));
    EXPECT_TRUE(g.has_edge(2, 6));
}

TEST(Datasets, AllTwinsBuildAndMatchProfiles)
{
    for (const DatasetSpec &spec : all_datasets()) {
        const CsrGraph g = build_dataset(spec.id, 8);
        EXPECT_GT(g.num_vertices(), 0u) << spec.name;
        EXPECT_GT(g.num_edges(), 0u) << spec.name;
        EXPECT_EQ(g.weighted(), spec.weighted) << spec.name;
    }
}

TEST(Datasets, SizeOrderingMatchesTable1)
{
    const auto k30 = build_dataset(DatasetId::kKron30, 8);
    const auto k31 = build_dataset(DatasetId::kKron31, 8);
    const auto cw = build_dataset(DatasetId::kCrawlWeb, 8);
    EXPECT_LT(k30.num_edges(), k31.num_edges());
    EXPECT_LT(k31.num_edges(), cw.num_edges());
    const auto g12 = build_dataset(DatasetId::kG12, 8);
    const auto a27 = build_dataset(DatasetId::kAlpha27, 8);
    // Flat graphs: more vertices than K30', lower skew.
    EXPECT_GT(g12.num_vertices(), k30.num_vertices());
    EXPECT_GT(a27.num_vertices(), k30.num_vertices());
    EXPECT_LT(g12.max_degree(), k30.max_degree());
}

TEST(Datasets, SpecLookup)
{
    EXPECT_EQ(dataset_spec(DatasetId::kKron30W).weighted, true);
    EXPECT_EQ(dataset_spec(DatasetId::kTwitter).name, "TW'");
}

} // namespace
} // namespace noswalker::graph
