/**
 * @file
 * Test-only application that records every transition a walker takes,
 * so property tests can assert "every step follows a real edge" and
 * per-walker step-count invariants against the reference CSR.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "apps/node2vec.hpp"
#include "apps/ppr.hpp"
#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/rng.hpp"

namespace noswalker::testing_support {

/** Uniform walk that logs (from, to) transitions and per-walker steps. */
class RecordingWalk {
  public:
    using WalkerT = engine::Walker;

    RecordingWalk(std::uint32_t length, graph::VertexId num_vertices)
        : length_(length), num_vertices_(num_vertices)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(n * 77 + 13);
        return WalkerT{
            n, static_cast<graph::VertexId>(mix.next() % num_vertices_),
            0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        transitions.emplace_back(w.location, next);
        ++steps_per_walker[w.id];
        w.location = next;
        ++w.step;
        return true;
    }

    std::vector<std::pair<graph::VertexId, graph::VertexId>> transitions;
    std::unordered_map<std::uint64_t, std::uint32_t> steps_per_walker;

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
};

static_assert(engine::RandomWalkApp<RecordingWalk>);

/**
 * First-order uniform walk recording endpoints + visit counts, thread
 * safe the way service apps are: each walker owns a private endpoint
 * slot, and visit counters are atomic.  Shared by the parallel-step
 * and step-kernel bit-identity suites.
 */
class ConcurrentRecordingWalk {
  public:
    using WalkerT = engine::Walker;

    ConcurrentRecordingWalk(std::uint32_t length,
                            graph::VertexId num_vertices,
                            std::uint64_t num_walkers)
        : endpoints(num_walkers, graph::kInvalidVertex),
          visits(num_vertices), length_(length),
          num_vertices_(num_vertices)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(n * 31 + 5);
        return WalkerT{
            n, static_cast<graph::VertexId>(mix.next() % num_vertices_),
            0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    /** Draw hint, as BasicRandomWalk's: the bit-identity suites must
     *  exercise the kernel's exact-slot prefetch path. */
    unsigned
    gather(const WalkerT &, const graph::VertexView &view,
           util::Rng probe) const
    {
        return view.prefetch_uniform_draw(probe);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        endpoints[w.id] = next;
        visits[next].fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    std::vector<graph::VertexId> endpoints;
    std::vector<std::atomic<std::uint32_t>> visits;

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
};

static_assert(engine::RandomWalkApp<ConcurrentRecordingWalk>);
static_assert(engine::DrawHintApp<ConcurrentRecordingWalk>);

/**
 * PersonalizedPageRank wrapper recording endpoints and atomic visit
 * counts (the app's own record_visits mode mutates an unordered_map in
 * action() and is not thread safe, so the suites use this instead).
 * Forwards the gather hint, so cohort runs exercise the app-refined
 * prefetch path.
 */
class RecordingPpr {
  public:
    using WalkerT = apps::PersonalizedPageRank::WalkerT;

    RecordingPpr(std::vector<graph::VertexId> sources,
                 std::uint64_t walks_per_source, std::uint32_t length,
                 graph::VertexId num_vertices)
        : visits(num_vertices),
          inner_(std::move(sources), walks_per_source, length)
    {
        endpoints.assign(inner_.total_walkers(), graph::kInvalidVertex);
    }

    std::uint64_t total_walkers() const { return inner_.total_walkers(); }

    WalkerT generate(std::uint64_t n) { return inner_.generate(n); }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return inner_.sample(view, rng);
    }

    unsigned
    gather(const WalkerT &w, const graph::VertexView &view) const
    {
        return inner_.gather(w, view);
    }

    unsigned
    gather(const WalkerT &w, const graph::VertexView &view,
           util::Rng probe) const
    {
        return inner_.gather(w, view, probe);
    }

    bool active(const WalkerT &w) const { return inner_.active(w); }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &rng)
    {
        const bool moved = inner_.action(w, next, rng);
        endpoints[w.id] = next;
        visits[next].fetch_add(1, std::memory_order_relaxed);
        return moved;
    }

    std::vector<graph::VertexId> endpoints;
    std::vector<std::atomic<std::uint32_t>> visits;

  private:
    apps::PersonalizedPageRank inner_;
};

static_assert(engine::RandomWalkApp<RecordingPpr>);
static_assert(engine::GatherHintApp<RecordingPpr>);
static_assert(engine::DrawHintApp<RecordingPpr>);

/** Node2Vec wrapper recording the endpoint of every accepted move. */
class RecordingNode2Vec {
  public:
    using WalkerT = apps::Node2Vec::WalkerT;

    RecordingNode2Vec(double p, double q, std::uint32_t length,
                      graph::VertexId num_vertices,
                      std::uint32_t walks_per_vertex)
        : inner_(p, q, length, num_vertices, walks_per_vertex)
    {
        // inner_ is declared after the public vectors; size them here,
        // once every member is constructed.
        endpoints.assign(inner_.total_walkers(), graph::kInvalidVertex);
    }

    std::uint64_t total_walkers() const { return inner_.total_walkers(); }

    WalkerT generate(std::uint64_t n) { return inner_.generate(n); }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return inner_.sample(view, rng);
    }

    unsigned
    gather(const WalkerT &w, const graph::VertexView &view) const
    {
        return inner_.gather(w, view);
    }

    bool active(const WalkerT &w) const { return inner_.active(w); }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &rng)
    {
        return inner_.action(w, next, rng);
    }

    bool has_candidate(const WalkerT &w) const
    {
        return inner_.has_candidate(w);
    }

    graph::VertexId candidate(const WalkerT &w) const
    {
        return inner_.candidate(w);
    }

    bool
    rejection(WalkerT &w, const graph::VertexView &view, util::Rng &rng)
    {
        const bool accepted = inner_.rejection(w, view, rng);
        if (accepted) {
            endpoints[w.id] = w.location;
        }
        return accepted;
    }

    std::vector<graph::VertexId> endpoints;

  private:
    apps::Node2Vec inner_;
};

static_assert(engine::SecondOrderApp<RecordingNode2Vec>);
static_assert(engine::GatherHintApp<RecordingNode2Vec>);

/**
 * A memory budget that is genuinely out-of-core (a fraction of the file)
 * but never below the engine's fixed floor (CSR index + two block
 * buffers + working slack), which dominates at unit-test graph sizes.
 */
inline std::uint64_t
tight_budget(const graph::GraphFile &file,
             const graph::BlockPartition &partition, double fraction = 0.33)
{
    const std::uint64_t page = 4096;
    const std::uint64_t buffers =
        2 * ((partition.max_block_bytes() / page + 2) * page);
    const std::uint64_t floor =
        file.index_bytes() + buffers + 48 * 1024;
    const auto frac = static_cast<std::uint64_t>(
        fraction * static_cast<double>(file.file_bytes()));
    return std::max(floor, frac);
}

} // namespace noswalker::testing_support
