/**
 * @file
 * Test-only application that records every transition a walker takes,
 * so property tests can assert "every step follows a real edge" and
 * per-walker step-count invariants against the reference CSR.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/app.hpp"
#include "engine/walker.hpp"
#include "util/rng.hpp"

namespace noswalker::testing_support {

/** Uniform walk that logs (from, to) transitions and per-walker steps. */
class RecordingWalk {
  public:
    using WalkerT = engine::Walker;

    RecordingWalk(std::uint32_t length, graph::VertexId num_vertices)
        : length_(length), num_vertices_(num_vertices)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(n * 77 + 13);
        return WalkerT{
            n, static_cast<graph::VertexId>(mix.next() % num_vertices_),
            0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        transitions.emplace_back(w.location, next);
        ++steps_per_walker[w.id];
        w.location = next;
        ++w.step;
        return true;
    }

    std::vector<std::pair<graph::VertexId, graph::VertexId>> transitions;
    std::unordered_map<std::uint64_t, std::uint32_t> steps_per_walker;

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
};

static_assert(engine::RandomWalkApp<RecordingWalk>);

/**
 * A memory budget that is genuinely out-of-core (a fraction of the file)
 * but never below the engine's fixed floor (CSR index + two block
 * buffers + working slack), which dominates at unit-test graph sizes.
 */
inline std::uint64_t
tight_budget(const graph::GraphFile &file,
             const graph::BlockPartition &partition, double fraction = 0.33)
{
    const std::uint64_t page = 4096;
    const std::uint64_t buffers =
        2 * ((partition.max_block_bytes() / page + 2) * page);
    const std::uint64_t floor =
        file.index_bytes() + buffers + 48 * 1024;
    const auto frac = static_cast<std::uint64_t>(
        fraction * static_cast<double>(file.file_bytes()));
    return std::max(floor, frac);
}

} // namespace noswalker::testing_support
