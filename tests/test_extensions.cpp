/**
 * @file
 * Tests for the adoption extensions: text edge-list I/O and Random
 * Walk with Restart.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>

#include "apps/rwr.hpp"
#include "baselines/inmemory.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/edge_list_io.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/mem_device.hpp"
#include "util/error.hpp"

namespace noswalker {
namespace {

TEST(EdgeListIo, ParsesCommentsAndEdges)
{
    std::istringstream in("# header\n"
                          "% another comment\n"
                          "0 1\n"
                          "  1 2\n"
                          "\n"
                          "2 0\n");
    const auto edges = graph::read_edge_list(in);
    ASSERT_EQ(edges.size(), 3u);
    EXPECT_EQ(edges[0].src, 0u);
    EXPECT_EQ(edges[0].dst, 1u);
    EXPECT_EQ(edges[2].src, 2u);
}

TEST(EdgeListIo, ParsesWeights)
{
    std::istringstream in("0 1 2.5\n1 0 0.5\n");
    graph::EdgeListOptions opt;
    opt.weighted = true;
    const auto edges = graph::read_edge_list(in, opt);
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_FLOAT_EQ(edges[0].weight, 2.5f);
    EXPECT_FLOAT_EQ(edges[1].weight, 0.5f);
}

TEST(EdgeListIo, MalformedLineThrowsWithLineNumber)
{
    std::istringstream in("0 1\nnot an edge\n");
    try {
        graph::read_edge_list(in);
        FAIL() << "expected ConfigError";
    } catch (const util::ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
}

TEST(EdgeListIo, MissingWeightThrows)
{
    std::istringstream in("0 1\n");
    graph::EdgeListOptions opt;
    opt.weighted = true;
    EXPECT_THROW(graph::read_edge_list(in, opt), util::ConfigError);
}

TEST(EdgeListIo, RoundTripThroughFile)
{
    const graph::CsrGraph original = graph::generate_rmat(
        {.scale = 7, .edge_factor = 4, .a = 0.57, .b = 0.19, .c = 0.19,
         .seed = 5, .symmetrize = false, .weighted = true});
    const std::string path = testing::TempDir() + "noswalker_el.txt";
    graph::save_edge_list(original, path);

    graph::EdgeListOptions opt;
    opt.weighted = true;
    opt.build.num_vertices = original.num_vertices();
    const graph::CsrGraph loaded = graph::load_edge_list(path, opt);
    EXPECT_EQ(loaded.num_vertices(), original.num_vertices());
    EXPECT_EQ(loaded.num_edges(), original.num_edges());
    for (graph::VertexId v = 0; v < original.num_vertices(); ++v) {
        ASSERT_EQ(loaded.degree(v), original.degree(v)) << v;
        const auto a = original.neighbors(v);
        const auto b = loaded.neighbors(v);
        for (std::size_t i = 0; i < a.size(); ++i) {
            ASSERT_EQ(a[i], b[i]);
        }
    }
    std::remove(path.c_str());
}

TEST(EdgeListIo, MissingFileThrows)
{
    EXPECT_THROW(graph::load_edge_list("/no/such/file.txt"),
                 util::IoError);
}

class RwrTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_uniform(500, 8, 91);
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ =
            std::make_unique<graph::BlockPartition>(*file_, 4096);
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(RwrTest, StepBudgetIsExact)
{
    apps::RandomWalkWithRestart app(7, 50, 20, 0.15);
    baselines::InMemoryEngine<apps::RandomWalkWithRestart> eng(*file_);
    const auto stats = eng.run(app, app.total_walkers());
    EXPECT_EQ(stats.walkers, 50u);
    EXPECT_EQ(stats.steps, 50u * 20);
}

TEST_F(RwrTest, SourceDominatesProximity)
{
    apps::RandomWalkWithRestart app(7, 200, 30, 0.3);
    baselines::InMemoryEngine<apps::RandomWalkWithRestart> eng(*file_);
    eng.run(app, app.total_walkers());
    const auto top = app.top_k(1);
    ASSERT_EQ(top.size(), 1u);
    // With restart 0.3 the source is revisited ~30% of steps — far
    // more than any vertex of a 500-vertex near-regular graph.
    EXPECT_EQ(top[0].first, 7u);
    EXPECT_NEAR(app.proximity(7), 0.3, 0.05);
}

TEST_F(RwrTest, ZeroRestartNeverTeleports)
{
    apps::RandomWalkWithRestart app(7, 50, 10, 0.0);
    baselines::InMemoryEngine<apps::RandomWalkWithRestart> eng(*file_);
    const auto stats = eng.run(app, app.total_walkers());
    EXPECT_EQ(stats.steps, 500u);
    // Visits to the source only happen via real edges; proximity is
    // small on a 500-vertex graph.
    EXPECT_LT(app.proximity(7), 0.05);
}

TEST_F(RwrTest, RunsUnderNosWalkerOutOfCore)
{
    apps::RandomWalkWithRestart app(3, 100, 25, 0.2);
    const std::uint64_t budget =
        testing_support::tight_budget(*file_, *partition_);
    core::EngineConfig cfg = core::EngineConfig::full(budget, 4096);
    core::NosWalkerEngine<apps::RandomWalkWithRestart> eng(
        *file_, *partition_, cfg);
    const auto stats = eng.run(app, app.total_walkers());
    EXPECT_EQ(stats.steps, 100u * 25);
    EXPECT_LE(stats.peak_memory, budget);
    // Restarts never consume pre-samples: the proximity of the source
    // must still reflect ~20% of steps.
    EXPECT_NEAR(app.proximity(3), 0.2, 0.05);
}

TEST_F(RwrTest, MatchesInMemoryDistribution)
{
    // Both engines must agree on the stationary proximity estimates.
    // 2000 walkers keep the Monte-Carlo noise of each estimate well
    // inside the tolerances below (~4σ) so the comparison is stable
    // across RNG stream layouts.
    apps::RandomWalkWithRestart a1(3, 2000, 25, 0.25);
    apps::RandomWalkWithRestart a2(3, 2000, 25, 0.25);
    baselines::InMemoryEngine<apps::RandomWalkWithRestart> im(*file_);
    im.run(a1, a1.total_walkers());
    core::EngineConfig cfg = core::EngineConfig::full(0, 4096);
    core::NosWalkerEngine<apps::RandomWalkWithRestart> nw(
        *file_, *partition_, cfg);
    nw.run(a2, a2.total_walkers());
    EXPECT_NEAR(a1.proximity(3), a2.proximity(3), 0.04);
    // A direct neighbour of the source receives comparable mass too.
    const graph::VertexId nbr = graph_.neighbors(3)[0];
    EXPECT_NEAR(a1.proximity(nbr), a2.proximity(nbr), 0.02);
}

} // namespace
} // namespace noswalker
