/**
 * @file
 * Tests for the compact pre-sample buffer (§3.3.2–§3.3.4).
 */
#include <gtest/gtest.h>

#include <memory>

#include "core/presample_buffer.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace noswalker::core {
namespace {

class PreSampleTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        // Star graph: hub 0 has high degree, leaves degree 1 (direct).
        graph_ = graph::generate_star(64);
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, 1ULL << 20); // single block
        reader_ = std::make_unique<storage::BlockReader>(*file_,
                                                         unbudgeted_);
        reader_->load_coarse(partition_->block(0), buffer_);
    }

    PreSampleBuffer::BuildParams
    params(std::uint64_t max_bytes = 1 << 16)
    {
        PreSampleBuffer::BuildParams p;
        p.max_bytes = max_bytes;
        p.base_quota = 4;
        p.max_quota = 16;
        p.low_degree_cutoff = 2;
        return p;
    }

    void
    fill(PreSampleBuffer &ps)
    {
        auto sampler = [this](const graph::VertexView &view) {
            return view.sample_uniform(rng_);
        };
        const graph::BlockInfo &block = partition_->block(0);
        for (graph::VertexId v = block.first_vertex;
             v < block.end_vertex; ++v) {
            if (ps.quota(v) > 0) {
                ps.fill_vertex(buffer_.view(*file_, v), sampler);
            }
        }
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
    util::MemoryBudget unbudgeted_{0};
    std::unique_ptr<storage::BlockReader> reader_;
    storage::BlockBuffer buffer_;
    util::Rng rng_{11};
};

TEST_F(PreSampleTest, LowDegreeVerticesAreDirect)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(*file_, partition_->block(0), params(), nullptr,
                       budget);
    fill(ps);
    // Leaves (degree 1 <= cutoff 2) are direct; the hub is sampled.
    EXPECT_FALSE(ps.is_direct(0));
    for (graph::VertexId v = 1; v < 64; ++v) {
        ASSERT_TRUE(ps.is_direct(v)) << v;
        ASSERT_TRUE(ps.has(v));
        const graph::VertexView view = ps.direct_view(v);
        ASSERT_EQ(view.degree(), 1u);
        EXPECT_EQ(view.targets[0], 0u); // leaf points at hub
    }
}

TEST_F(PreSampleTest, DirectVerticesNeverRunDry)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(*file_, partition_->block(0), params(), nullptr,
                       budget);
    fill(ps);
    for (int i = 0; i < 100; ++i) {
        EXPECT_TRUE(ps.has(1));
    }
}

TEST_F(PreSampleTest, SampledDrawsAreRealEdgesAndAccounted)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(*file_, partition_->block(0), params(), nullptr,
                       budget);
    fill(ps);
    const std::uint32_t q = ps.quota(0);
    ASSERT_GT(q, 0u);
    // Draws are with replacement from the walker's stream, and drying
    // only becomes visible once publish_drain() runs — so within one
    // step round the reservoir serves freely.
    util::Rng rng(7);
    for (std::uint32_t i = 0; i < 2 * q; ++i) {
        ASSERT_TRUE(ps.has(0));
        const graph::VertexId next = ps.sample(0, rng);
        // The hub's samples must be real neighbours.
        EXPECT_TRUE(graph_.has_edge(0, next));
        ps.consume(0);
    }
    EXPECT_TRUE(ps.has(0));
    EXPECT_EQ(ps.visits(0), 2 * q);
    // consumed_fraction is buffer-wide: 2q draws over all slots.
    EXPECT_DOUBLE_EQ(ps.consumed_fraction(),
                     static_cast<double>(2 * q) /
                         static_cast<double>(ps.slot_count()));
}

TEST_F(PreSampleTest, PublishedDrainDriesSampledVertices)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(*file_, partition_->block(0), params(), nullptr,
                       budget);
    fill(ps);
    const std::uint32_t q = ps.quota(0);
    util::Rng rng(13);
    // Consume a full quota: still available until the snapshot is
    // published (round-granular visibility).
    for (std::uint32_t i = 0; i < q; ++i) {
        ps.sample(0, rng);
        ps.consume(0);
    }
    EXPECT_TRUE(ps.has(0));
    ps.publish_drain();
    EXPECT_FALSE(ps.has(0));
    // Direct vertices hold the real adjacency and never dry.
    ps.consume(1);
    ps.publish_drain();
    EXPECT_TRUE(ps.has(1));
}

TEST_F(PreSampleTest, SampleIsAFunctionOfTheCallerStream)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(*file_, partition_->block(0), params(), nullptr,
                       budget);
    fill(ps);
    // Identically seeded streams see identical slot picks regardless of
    // interleaved draws by other streams — the property that makes
    // pre-sample-served steps thread-count independent.
    util::Rng a(21), b(21), interloper(99);
    for (int i = 0; i < 32; ++i) {
        const graph::VertexId from_a = ps.sample(0, a);
        ps.sample(0, interloper);
        const graph::VertexId from_b = ps.sample(0, b);
        EXPECT_EQ(from_a, from_b);
    }
}

TEST_F(PreSampleTest, StallVisitsFeedHistory)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(*file_, partition_->block(0), params(), nullptr,
                       budget);
    fill(ps);
    const std::uint32_t before = ps.visits(0);
    ps.record_visit(0);
    ps.record_visit(0);
    EXPECT_EQ(ps.visits(0), before + 2);
}

TEST_F(PreSampleTest, HistoryReweightsQuotas)
{
    util::MemoryBudget budget(0);
    // Use a skewed RMAT block so multiple vertices compete for slots.
    auto g = graph::generate_rmat(
        {.scale = 7, .edge_factor = 16, .a = 0.57, .b = 0.19, .c = 0.19,
         .seed = 3, .symmetrize = false, .weighted = false});
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 1ULL << 20);
    storage::BlockReader reader(file, unbudgeted_);
    storage::BlockBuffer buf;
    reader.load_coarse(part.block(0), buf);

    PreSampleBuffer::BuildParams p = params(8192);
    PreSampleBuffer first(file, part.block(0), p, nullptr, budget);

    // Find two comparable high-degree vertices.
    graph::VertexId hot = graph::kInvalidVertex;
    graph::VertexId cold = graph::kInvalidVertex;
    for (graph::VertexId v = 0; v < file.num_vertices(); ++v) {
        if (file.degree(v) > p.low_degree_cutoff &&
            first.quota(v) > 0) {
            if (hot == graph::kInvalidVertex) {
                hot = v;
            } else if (cold == graph::kInvalidVertex) {
                cold = v;
                break;
            }
        }
    }
    ASSERT_NE(hot, graph::kInvalidVertex);
    ASSERT_NE(cold, graph::kInvalidVertex);

    // Hammer `hot` with visits.
    for (int i = 0; i < 500; ++i) {
        first.record_visit(hot);
    }
    PreSampleBuffer second(file, part.block(0), p, &first, budget);
    EXPECT_GT(second.quota(hot), second.quota(cold));
    EXPECT_GE(second.quota(hot), first.quota(hot));
}

TEST_F(PreSampleTest, ZeroDegreeVerticesGetNoSlots)
{
    // Graph with an isolated vertex.
    graph::CsrGraph g({0, 1, 1}, {0});
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 1 << 20);
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(file, part.block(0), params(), nullptr, budget);
    EXPECT_EQ(ps.quota(1), 0u);
    EXPECT_FALSE(ps.has(1));
}

TEST_F(PreSampleTest, UnfilledVertexReportsEmpty)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer ps(*file_, partition_->block(0), params(), nullptr,
                       budget);
    // No fill_vertex calls yet.
    EXPECT_FALSE(ps.has(0));
    EXPECT_FALSE(ps.is_direct(1));
}

TEST_F(PreSampleTest, MemoryIsBudgetedAndReleased)
{
    util::MemoryBudget budget(1 << 20);
    {
        PreSampleBuffer ps(*file_, partition_->block(0), params(),
                           nullptr, budget);
        EXPECT_GT(budget.used(), 0u);
        EXPECT_EQ(budget.used(), ps.memory_bytes());
    }
    EXPECT_EQ(budget.used(), 0u);
}

TEST_F(PreSampleTest, TinyCapThrowsBudgetExceeded)
{
    util::MemoryBudget budget(0);
    EXPECT_THROW(PreSampleBuffer(*file_, partition_->block(0), params(8),
                                 nullptr, budget),
                 util::BudgetExceeded);
}

TEST_F(PreSampleTest, WeightedDirectViewCarriesWeights)
{
    auto g = graph::generate_rmat(
        {.scale = 6, .edge_factor = 2, .a = 0.57, .b = 0.19, .c = 0.19,
         .seed = 8, .symmetrize = false, .weighted = true});
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 1 << 20);
    storage::BlockReader reader(file, unbudgeted_);
    storage::BlockBuffer buf;
    reader.load_coarse(part.block(0), buf);

    util::MemoryBudget budget(0);
    PreSampleBuffer ps(file, part.block(0), params(), nullptr, budget);
    auto sampler = [this](const graph::VertexView &view) {
        return view.sample_uniform(rng_);
    };
    graph::VertexId direct = graph::kInvalidVertex;
    for (graph::VertexId v = 0; v < file.num_vertices(); ++v) {
        if (ps.quota(v) > 0) {
            ps.fill_vertex(buf.view(file, v), sampler);
            if (ps.is_direct(v)) {
                direct = v;
            }
        }
    }
    ASSERT_NE(direct, graph::kInvalidVertex);
    const graph::VertexView view = ps.direct_view(direct);
    ASSERT_EQ(view.weights.size(), view.targets.size());
    const auto ref_w = g.weights(direct);
    for (std::uint32_t i = 0; i < view.degree(); ++i) {
        EXPECT_FLOAT_EQ(view.weights[i], ref_w[i]);
    }
}

TEST_F(PreSampleTest, QuotaCapRespected)
{
    util::MemoryBudget budget(0);
    PreSampleBuffer::BuildParams p = params(1 << 20);
    p.max_quota = 5;
    PreSampleBuffer ps(*file_, partition_->block(0), p, nullptr, budget);
    EXPECT_LE(ps.quota(0), 5u); // hub capped despite huge byte budget
}

} // namespace
} // namespace noswalker::core
