/**
 * @file
 * Tests for the LRU block cache (the baselines' modeled page cache).
 */
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/block_cache.hpp"
#include "storage/mem_device.hpp"

namespace noswalker::storage {
namespace {

class BlockCacheTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat({.scale = 9,
                                       .edge_factor = 8,
                                       .a = 0.57,
                                       .b = 0.19,
                                       .c = 0.19,
                                       .seed = 12,
                                       .symmetrize = false,
                                       .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ =
            std::make_unique<graph::BlockPartition>(*file_, 2048);
        reader_ = std::make_unique<BlockReader>(*file_, budget_);
        ASSERT_GE(partition_->num_blocks(), 4u);
    }

    graph::CsrGraph graph_;
    MemDevice device_{SsdModel::p4618()};
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
    util::MemoryBudget budget_{0};
    std::unique_ptr<BlockReader> reader_;
    BlockBuffer scratch_;

    /** Exact bytes blocks 0..n-1 occupy when cached. */
    std::uint64_t
    cached_bytes(std::uint32_t n)
    {
        BlockCache probe(~std::uint64_t{0} >> 1);
        for (std::uint32_t b = 0; b < n; ++b) {
            probe.get(*reader_, partition_->block(b), scratch_);
        }
        return probe.used_bytes();
    }
};

TEST_F(BlockCacheTest, HitAvoidsDeviceTraffic)
{
    BlockCache cache(1 << 20);
    const graph::BlockInfo &block = partition_->block(0);
    cache.get(*reader_, block, scratch_);
    const IoStats after_miss = device_.stats();
    EXPECT_EQ(cache.misses(), 1u);

    const BlockBuffer *buf = cache.get(*reader_, block, scratch_);
    EXPECT_EQ(cache.hits(), 1u);
    const IoStats after_hit = device_.stats();
    EXPECT_EQ(after_hit.bytes_read, after_miss.bytes_read);
    // The cached buffer still decodes correctly.
    const graph::VertexId v = block.first_vertex;
    EXPECT_EQ(buf->view(*file_, v).degree(), graph_.degree(v));
}

TEST_F(BlockCacheTest, EvictsLeastRecentlyUsed)
{
    // Capacity for exactly blocks 0 and 1 (measured, not estimated).
    const std::uint64_t two_blocks = cached_bytes(2);
    BlockCache cache(two_blocks);
    cache.get(*reader_, partition_->block(0), scratch_);
    cache.get(*reader_, partition_->block(1), scratch_);
    cache.get(*reader_, partition_->block(2), scratch_); // evicts 0
    EXPECT_LE(cache.used_bytes(), two_blocks);
    cache.get(*reader_, partition_->block(2), scratch_);
    EXPECT_EQ(cache.hits(), 1u); // block 2 still resident
    const std::uint64_t misses_before = cache.misses();
    cache.get(*reader_, partition_->block(0), scratch_); // reload
    EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST_F(BlockCacheTest, OversizedBlockBypassesCache)
{
    BlockCache cache(16); // nothing fits
    const BlockBuffer *buf =
        cache.get(*reader_, partition_->block(0), scratch_);
    EXPECT_EQ(buf, &scratch_);
    EXPECT_EQ(cache.used_bytes(), 0u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST_F(BlockCacheTest, RecencyOrderRespected)
{
    const std::uint64_t two_blocks =
        2 * ((partition_->max_block_bytes() / 4096 + 2) * 4096);
    BlockCache cache(two_blocks);
    cache.get(*reader_, partition_->block(0), scratch_);
    cache.get(*reader_, partition_->block(1), scratch_);
    // Touch 0 so 1 becomes the LRU victim.
    cache.get(*reader_, partition_->block(0), scratch_);
    cache.get(*reader_, partition_->block(2), scratch_); // evicts 1
    const std::uint64_t hits_before = cache.hits();
    cache.get(*reader_, partition_->block(0), scratch_);
    EXPECT_EQ(cache.hits(), hits_before + 1);
}

TEST_F(BlockCacheTest, ClearDropsEverything)
{
    BlockCache cache(1 << 20);
    cache.get(*reader_, partition_->block(0), scratch_);
    EXPECT_GT(cache.used_bytes(), 0u);
    cache.clear();
    EXPECT_EQ(cache.used_bytes(), 0u);
    cache.get(*reader_, partition_->block(0), scratch_);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST_F(BlockCacheTest, WholeGraphFitsAllHitsAfterFirstSweep)
{
    BlockCache cache(file_->file_bytes() + (1 << 20));
    for (const graph::BlockInfo &b : partition_->blocks()) {
        cache.get(*reader_, b, scratch_);
    }
    const std::uint64_t bytes_after_sweep = device_.stats().bytes_read;
    for (const graph::BlockInfo &b : partition_->blocks()) {
        cache.get(*reader_, b, scratch_);
    }
    EXPECT_EQ(device_.stats().bytes_read, bytes_after_sweep);
    EXPECT_EQ(cache.hits(), partition_->num_blocks());
}

} // namespace
} // namespace noswalker::storage
