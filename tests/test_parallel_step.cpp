/**
 * @file
 * The tentpole guarantee of the parallel stepping path: walk output is
 * bit-identical at 1, 2, and 8 step threads, because every trajectory
 * is a pure function of (run seed, walker id) and pre-sample drying is
 * published at round granularity.
 *
 * The recording apps (tests/recording_app.hpp) are thread safe the way
 * service apps are: each walker owns a private endpoint slot, and
 * visit counters are atomic.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "core/noswalker_engine.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/mem_device.hpp"
#include "util/rng.hpp"

namespace noswalker {
namespace {

using testing_support::ConcurrentRecordingWalk;
using testing_support::RecordingNode2Vec;

class ParallelStepTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat(
            {.scale = 9, .edge_factor = 8, .a = 0.57, .b = 0.19,
             .c = 0.19, .seed = 23, .symmetrize = true,
             .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, file_->edge_region_bytes() / 8);
    }

    core::EngineConfig
    config(unsigned threads, bool presample) const
    {
        core::EngineConfig cfg = core::EngineConfig::full(
            testing_support::tight_budget(*file_, *partition_),
            partition_->max_block_bytes());
        cfg.step_threads = threads;
        cfg.presample = presample;
        return cfg;
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(ParallelStepTest, BasicWalkIsBitIdenticalAcrossThreadCounts)
{
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    for (const unsigned threads : {1u, 2u, 8u}) {
        ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                    kWalkers);
        core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
            *file_, *partition_, config(threads, /*presample=*/true));
        const auto stats = eng.run(app, kWalkers);
        endpoints.push_back(app.endpoints);
        std::vector<std::uint32_t> v(app.visits.size());
        for (std::size_t i = 0; i < v.size(); ++i) {
            v[i] = app.visits[i].load();
        }
        visits.push_back(std::move(v));
        steps.push_back(stats.steps);
    }
    // Dead ends retire walkers early, so the budget is an upper bound.
    EXPECT_GT(steps[0], 0u);
    EXPECT_LE(steps[0], kWalkers * kLength);
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]);
        EXPECT_EQ(endpoints[t], endpoints[0]) << "thread config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "thread config " << t;
    }
}

TEST_F(ParallelStepTest, PresampleOffIsBitIdenticalAcrossThreadCounts)
{
    constexpr std::uint64_t kWalkers = 400;
    constexpr std::uint32_t kLength = 16;
    std::vector<std::vector<graph::VertexId>> endpoints;
    for (const unsigned threads : {1u, 2u, 8u}) {
        ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                    kWalkers);
        core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
            *file_, *partition_, config(threads, /*presample=*/false));
        eng.run(app, kWalkers);
        endpoints.push_back(app.endpoints);
    }
    EXPECT_EQ(endpoints[1], endpoints[0]);
    EXPECT_EQ(endpoints[2], endpoints[0]);
}

TEST_F(ParallelStepTest, Node2VecIsBitIdenticalAcrossThreadCounts)
{
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    std::vector<std::uint64_t> trials;
    for (const unsigned threads : {1u, 2u, 8u}) {
        RecordingNode2Vec app(2.0, 0.5, 12, file_->num_vertices(), 2);
        core::NosWalkerEngine<RecordingNode2Vec> eng(
            *file_, *partition_, config(threads, /*presample=*/true));
        const auto stats = eng.run(app, app.total_walkers());
        endpoints.push_back(app.endpoints);
        steps.push_back(stats.steps);
        trials.push_back(stats.rejection_trials);
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]);
        EXPECT_EQ(trials[t], trials[0]);
        EXPECT_EQ(endpoints[t], endpoints[0]) << "thread config " << t;
    }
}

TEST_F(ParallelStepTest, RerunWithSameSeedRepeats)
{
    // The persistent pool survives across runs of one engine; repeated
    // runs must not leak state between them.
    constexpr std::uint64_t kWalkers = 300;
    ConcurrentRecordingWalk a(10, file_->num_vertices(), kWalkers);
    ConcurrentRecordingWalk b(10, file_->num_vertices(), kWalkers);
    core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
        *file_, *partition_, config(4, /*presample=*/true));
    eng.run(a, kWalkers);
    eng.run(b, kWalkers);
    EXPECT_EQ(a.endpoints, b.endpoints);
}

} // namespace
} // namespace noswalker
