/**
 * @file
 * The tentpole guarantee of the depth-K prefetch pipeline: walk output
 * is bit-identical at every prefetch depth and step-thread count,
 * because the engine always processes the scheduler's hottest block —
 * speculation only changes how its bytes arrive (DESIGN.md §10).
 *
 * Also covers the satellite mechanics: the modeled io-wait drop with
 * depth, the misprediction demote/re-steer path, FIFO completion order
 * of the depth-K loader in both threading modes, and the allocation
 * churn fixes (capacity-retaining BlockBuffer, recycling pool).
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "apps/node2vec.hpp"
#include "core/block_scheduler.hpp"
#include "core/noswalker_engine.hpp"
#include "core/prefetch_pipeline.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/async_loader.hpp"
#include "storage/block_buffer_pool.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "storage/shared_block_cache.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"

namespace noswalker {
namespace {

/** First-order uniform walk recording endpoints + visit counts. */
class ConcurrentRecordingWalk {
  public:
    using WalkerT = engine::Walker;

    ConcurrentRecordingWalk(std::uint32_t length,
                            graph::VertexId num_vertices,
                            std::uint64_t num_walkers)
        : endpoints(num_walkers, graph::kInvalidVertex),
          visits(num_vertices), length_(length),
          num_vertices_(num_vertices)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        util::SplitMix64 mix(n * 31 + 5);
        return WalkerT{
            n, static_cast<graph::VertexId>(mix.next() % num_vertices_),
            0};
    }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return view.sample_uniform(rng);
    }

    bool active(const WalkerT &w) const { return w.step < length_; }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &)
    {
        w.location = next;
        ++w.step;
        endpoints[w.id] = next;
        visits[next].fetch_add(1, std::memory_order_relaxed);
        return true;
    }

    std::vector<graph::VertexId> endpoints;
    std::vector<std::atomic<std::uint32_t>> visits;

  private:
    std::uint32_t length_;
    graph::VertexId num_vertices_;
};

static_assert(engine::RandomWalkApp<ConcurrentRecordingWalk>);

/** Node2Vec wrapper recording the endpoint of every accepted move. */
class RecordingNode2Vec {
  public:
    using WalkerT = apps::Node2Vec::WalkerT;

    RecordingNode2Vec(double p, double q, std::uint32_t length,
                      graph::VertexId num_vertices,
                      std::uint32_t walks_per_vertex)
        : inner_(p, q, length, num_vertices, walks_per_vertex)
    {
        endpoints.assign(inner_.total_walkers(), graph::kInvalidVertex);
    }

    std::uint64_t total_walkers() const { return inner_.total_walkers(); }

    WalkerT generate(std::uint64_t n) { return inner_.generate(n); }

    graph::VertexId
    sample(const graph::VertexView &view, util::Rng &rng)
    {
        return inner_.sample(view, rng);
    }

    bool active(const WalkerT &w) const { return inner_.active(w); }

    bool
    action(WalkerT &w, graph::VertexId next, util::Rng &rng)
    {
        return inner_.action(w, next, rng);
    }

    bool has_candidate(const WalkerT &w) const
    {
        return inner_.has_candidate(w);
    }

    graph::VertexId candidate(const WalkerT &w) const
    {
        return inner_.candidate(w);
    }

    bool
    rejection(WalkerT &w, const graph::VertexView &view, util::Rng &rng)
    {
        const bool accepted = inner_.rejection(w, view, rng);
        if (accepted) {
            endpoints[w.id] = w.location;
        }
        return accepted;
    }

    std::vector<graph::VertexId> endpoints;

  private:
    apps::Node2Vec inner_;
};

static_assert(engine::SecondOrderApp<RecordingNode2Vec>);

class PrefetchTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = graph::generate_rmat(
            {.scale = 9, .edge_factor = 8, .a = 0.57, .b = 0.19,
             .c = 0.19, .seed = 23, .symmetrize = true,
             .weighted = false});
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(
            *file_, file_->edge_region_bytes() / 8);
    }

    /**
     * Unlimited memory budget so prefetch_depth is honoured verbatim
     * (under a tight budget the engine auto-shrinks the depth, which
     * the budget-invariant test covers separately).
     */
    core::EngineConfig
    config(unsigned depth, unsigned threads) const
    {
        core::EngineConfig cfg = core::EngineConfig::full(
            0, partition_->max_block_bytes());
        cfg.prefetch_depth = depth;
        cfg.step_threads = threads;
        return cfg;
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_;
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
};

TEST_F(PrefetchTest, BasicWalkIsBitIdenticalAcrossDepths)
{
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    for (const unsigned threads : {1u, 4u}) {
        for (const unsigned depth : {0u, 1u, 2u, 4u}) {
            ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                        kWalkers);
            core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
                *file_, *partition_, config(depth, threads));
            const auto stats = eng.run(app, kWalkers);
            endpoints.push_back(app.endpoints);
            std::vector<std::uint32_t> v(app.visits.size());
            for (std::size_t i = 0; i < v.size(); ++i) {
                v[i] = app.visits[i].load();
            }
            visits.push_back(std::move(v));
            steps.push_back(stats.steps);
        }
    }
    EXPECT_GT(steps[0], 0u);
    EXPECT_LE(steps[0], kWalkers * kLength);
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "config " << t;
    }
}

TEST_F(PrefetchTest, Node2VecIsBitIdenticalAcrossDepths)
{
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    std::vector<std::uint64_t> trials;
    for (const unsigned threads : {1u, 4u}) {
        for (const unsigned depth : {0u, 2u, 4u}) {
            RecordingNode2Vec app(2.0, 0.5, 12, file_->num_vertices(), 2);
            core::NosWalkerEngine<RecordingNode2Vec> eng(
                *file_, *partition_, config(depth, threads));
            const auto stats = eng.run(app, app.total_walkers());
            endpoints.push_back(app.endpoints);
            steps.push_back(stats.steps);
            trials.push_back(stats.rejection_trials);
        }
    }
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(trials[t], trials[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
    }
}

TEST_F(PrefetchTest, SyncLoaderMatchesBackgroundLoader)
{
    // The 0-thread loader emulates the depth-K FIFO exactly: both the
    // walk output and the modeled stall accounting are identical.
    constexpr std::uint64_t kWalkers = 400;
    constexpr std::uint32_t kLength = 16;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<double> io_wait;
    for (const unsigned loader_threads : {0u, 1u}) {
        ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                    kWalkers);
        core::EngineConfig cfg = config(/*depth=*/2, /*threads=*/1);
        cfg.loader_threads = loader_threads;
        core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
            *file_, *partition_, cfg);
        const auto stats = eng.run(app, kWalkers);
        endpoints.push_back(app.endpoints);
        io_wait.push_back(stats.io_wait_seconds);
    }
    EXPECT_EQ(endpoints[1], endpoints[0]);
    EXPECT_DOUBLE_EQ(io_wait[1], io_wait[0]);
}

TEST_F(PrefetchTest, IoWaitDropsWithDepth)
{
    // Depth 1 pays the queue latency on every load; depth 4 amortizes
    // it across the FIFO.  The acceptance bar is a >= 30% drop.
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    double io_wait[2] = {0.0, 0.0};
    std::uint64_t hits4 = 0;
    int i = 0;
    for (const unsigned depth : {1u, 4u}) {
        ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                    kWalkers);
        core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
            *file_, *partition_, config(depth, /*threads=*/1));
        const auto stats = eng.run(app, kWalkers);
        io_wait[i++] = stats.io_wait_seconds;
        if (depth == 4) {
            hits4 = stats.prefetch_hits;
        }
    }
    EXPECT_GT(io_wait[0], 0.0);
    EXPECT_GT(hits4, 0u);
    EXPECT_LE(io_wait[1], 0.7 * io_wait[0])
        << "depth-4 io_wait " << io_wait[1] << " vs depth-1 "
        << io_wait[0];
}

TEST_F(PrefetchTest, PeakMemoryStaysWithinBudgetAtDepth4)
{
    // Depth auto-shrinks before the buffers can blow the block-buffer
    // share; output stays bit-identical because the processed-block
    // schedule is depth-independent.
    constexpr std::uint64_t kWalkers = 400;
    constexpr std::uint32_t kLength = 16;
    const std::uint64_t budget =
        testing_support::tight_budget(*file_, *partition_);
    std::vector<std::vector<graph::VertexId>> endpoints;
    for (const unsigned depth : {0u, 4u}) {
        ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                    kWalkers);
        core::EngineConfig cfg = core::EngineConfig::full(
            budget, partition_->max_block_bytes());
        cfg.prefetch_depth = depth;
        core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
            *file_, *partition_, cfg);
        const auto stats = eng.run(app, kWalkers);
        EXPECT_LE(stats.peak_memory, budget) << "depth " << depth;
        endpoints.push_back(app.endpoints);
    }
    EXPECT_EQ(endpoints[1], endpoints[0]);
}

TEST_F(PrefetchTest, BudgetedWalkIsBitIdenticalAcrossDepths)
{
    // Regression: a mid-size budget funds extra speculation slots
    // AND keeps the pre-sample pool under eviction pressure.  The
    // speculation reservation must not shift that pressure — the
    // pre-sample pool charges its own depth-invariant sub-budget —
    // or pre-sample content (and the walk) would vary with depth.
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    const std::uint64_t budget =
        3 * testing_support::tight_budget(*file_, *partition_);
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::uint64_t> steps;
    std::uint64_t hits4 = 0;
    for (const unsigned depth : {0u, 1u, 4u}) {
        ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                    kWalkers);
        core::EngineConfig cfg = core::EngineConfig::full(
            budget, partition_->max_block_bytes());
        cfg.prefetch_depth = depth;
        core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
            *file_, *partition_, cfg);
        const auto stats = eng.run(app, kWalkers);
        EXPECT_LE(stats.peak_memory, budget) << "depth " << depth;
        endpoints.push_back(app.endpoints);
        steps.push_back(stats.steps);
        if (depth == 4) {
            hits4 = stats.prefetch_hits;
        }
    }
    EXPECT_GT(hits4, 0u) << "speculation never engaged; budget too tight";
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
    }
}

TEST_F(PrefetchTest, MispredictDemotesToCacheAndResteers)
{
    // A speculatively loaded block whose bucket drains is demoted —
    // published to the shared cache and parked in the stash — never
    // discarded; a later demand for it is served without device I/O.
    util::MemoryBudget budget;
    storage::SharedBlockCache cache(1ULL << 20);
    storage::BlockReader reader(*file_, budget);
    storage::BlockBufferPool pool;
    storage::AsyncLoader loader(reader, /*background=*/false,
                                /*depth=*/2, &pool);
    core::PrefetchPipeline pipeline(loader, reader, pool, /*depth=*/2,
                                    &cache, /*queue_latency=*/80e-6);
    core::BlockScheduler sched(partition_->num_blocks(), 4.0,
                               file_->edge_region_bytes(), 4096);
    const graph::BlockInfo &block = partition_->block(1);

    sched.add_walker(1);
    ASSERT_TRUE(pipeline.can_speculate());
    pipeline.speculate(block);
    pipeline.poll(); // sync loader: executes + banks the load
    EXPECT_TRUE(pipeline.covers(1));

    sched.remove_walker(1);
    pipeline.sweep(sched);
    EXPECT_EQ(pipeline.stats().prefetch_mispredicts, 1u);
    EXPECT_NE(cache.find(1), nullptr);
    EXPECT_TRUE(pipeline.covers(1)) << "demoted, not discarded";

    // Re-steer: the bucket re-heats and the stashed bytes serve the
    // demand without touching the device again.
    sched.add_walker(1);
    const std::uint64_t device_bytes = file_->device().stats().bytes_read;
    storage::AsyncLoader::Request demand;
    demand.block = &block;
    auto response = pipeline.obtain(std::move(demand));
    EXPECT_EQ(response.block->id, 1u);
    EXPECT_TRUE(response.buffer.complete());
    EXPECT_EQ(pipeline.stats().prefetch_hits, 1u);
    EXPECT_EQ(file_->device().stats().bytes_read, device_bytes);
    pipeline.recycle(std::move(response.buffer));
    pipeline.finish();
}

TEST_F(PrefetchTest, WalkIsBitIdenticalAcrossReorderWindows)
{
    // Out-of-order consumption changes when bytes arrive, never which
    // block the engine processes (always the scheduler's hottest), so
    // FIFO, a bounded window, and fully out-of-order delivery produce
    // the same walk bit-for-bit at every thread count.
    constexpr std::uint64_t kWalkers = 600;
    constexpr std::uint32_t kLength = 24;
    std::vector<std::vector<graph::VertexId>> endpoints;
    std::vector<std::vector<std::uint32_t>> visits;
    std::vector<std::uint64_t> steps;
    for (const unsigned threads : {1u, 8u}) {
        for (const unsigned window : {0u, 2u, 4u}) {
            ConcurrentRecordingWalk app(kLength, file_->num_vertices(),
                                        kWalkers);
            core::EngineConfig cfg = config(/*depth=*/4, threads);
            cfg.prefetch_reorder_window = window;
            core::NosWalkerEngine<ConcurrentRecordingWalk> eng(
                *file_, *partition_, cfg);
            const auto stats = eng.run(app, kWalkers);
            endpoints.push_back(app.endpoints);
            std::vector<std::uint32_t> v(app.visits.size());
            for (std::size_t i = 0; i < v.size(); ++i) {
                v[i] = app.visits[i].load();
            }
            visits.push_back(std::move(v));
            steps.push_back(stats.steps);
        }
    }
    EXPECT_GT(steps[0], 0u);
    for (std::size_t t = 1; t < endpoints.size(); ++t) {
        EXPECT_EQ(steps[t], steps[0]) << "config " << t;
        EXPECT_EQ(endpoints[t], endpoints[0]) << "config " << t;
        EXPECT_EQ(visits[t], visits[0]) << "config " << t;
    }
}

TEST_F(PrefetchTest, ReorderWindowServesCachedDemandPastSlowLoad)
{
    // The head-of-line case the window exists for: a slow speculative
    // load is at the FIFO head when the engine demands a block the
    // shared cache can serve instantly.  FIFO consumption charges the
    // slow load's completion time before the demand; a window >= the
    // bypass count serves the demand at once.
    util::MemoryBudget budget;
    std::vector<double> io_wait;
    for (const unsigned window : {0u, 2u}) {
        storage::SharedBlockCache cache(1ULL << 20);
        storage::BlockReader reader(*file_, budget, 8ULL << 20, &cache);
        {
            // Pre-populate the cache with block 2 (published on miss).
            storage::BlockBuffer warm;
            reader.load_coarse(partition_->block(2), warm);
            warm.release_storage();
        }
        ASSERT_NE(cache.find(2), nullptr);
        storage::BlockBufferPool pool;
        storage::AsyncLoader loader(reader, /*background=*/false,
                                    /*depth=*/2, &pool);
        core::PrefetchPipeline pipeline(loader, reader, pool,
                                        /*depth=*/2, &cache,
                                        /*queue_latency=*/80e-6, window);
        pipeline.speculate(partition_->block(1)); // slow device load
        storage::AsyncLoader::Request demand;
        demand.block = &partition_->block(2); // cache hit, zero I/O
        auto response = pipeline.obtain(std::move(demand));
        EXPECT_EQ(response.block->id, 2u);
        EXPECT_TRUE(response.result.from_cache);
        io_wait.push_back(pipeline.stats().io_wait_seconds);
        pipeline.recycle(std::move(response.buffer));
        pipeline.finish();
    }
    EXPECT_GT(io_wait[0], 0.0) << "FIFO must wait out the slow head";
    EXPECT_EQ(io_wait[1], 0.0) << "window serves the completed demand";
    EXPECT_LT(io_wait[1], io_wait[0]);
}

TEST_F(PrefetchTest, SweepAdmissionFilterSkipsStaleDemotions)
{
    // ROADMAP item 2: a demoted block whose scheduler heat is older
    // than kAdmissionSweeps sweeps stays out of the shared cache (it
    // would only dilute hot service tenants) but is still stashed for
    // a re-steer, and the filtered demotion is counted.
    util::MemoryBudget budget;
    storage::SharedBlockCache cache(1ULL << 20);
    storage::BlockReader reader(*file_, budget);
    storage::BlockBufferPool pool;
    storage::AsyncLoader loader(reader, /*background=*/false,
                                /*depth=*/2, &pool);
    core::PrefetchPipeline pipeline(loader, reader, pool, /*depth=*/2,
                                    &cache, /*queue_latency=*/80e-6,
                                    /*reorder_window=*/2);
    core::BlockScheduler sched(partition_->num_blocks(), 4.0,
                               file_->edge_region_bytes(), 4096);

    sched.add_walker(1);
    pipeline.speculate(partition_->block(1));
    sched.remove_walker(1);
    // The load stays unbanked (no poll), so sweeps pass it over while
    // its speculation-time heat goes stale.
    for (std::uint64_t i = 0; i <= core::PrefetchPipeline::kAdmissionSweeps;
         ++i) {
        pipeline.sweep(sched);
    }
    pipeline.poll(); // sync loader: executes + banks the load
    pipeline.sweep(sched);
    EXPECT_EQ(pipeline.stats().prefetch_mispredicts, 1u);
    EXPECT_EQ(pipeline.stats().filtered_demotions, 1u);
    EXPECT_EQ(cache.find(1), nullptr) << "stale block must not publish";
    EXPECT_TRUE(pipeline.covers(1)) << "still stashed for a re-steer";
    pipeline.finish();
}

TEST_F(PrefetchTest, AsyncLoaderConsumesCompletionsOutOfOrder)
{
    // The ticketed consume paths: try_consume plucks a specific
    // completed block past older outstanding loads; consume_any then
    // drains the rest in ticket order.  Identical in both threading
    // modes — the 0-thread loader executes pending work up to the
    // target on the spot.
    util::MemoryBudget budget;
    storage::BlockReader reader(*file_, budget);
    ASSERT_GE(partition_->num_blocks(), 3u);
    for (const bool background : {false, true}) {
        storage::BlockBufferPool pool;
        storage::AsyncLoader loader(reader, background, /*depth=*/3,
                                    &pool);
        for (const std::uint32_t id : {0u, 1u, 2u}) {
            storage::AsyncLoader::Request request;
            request.block = &partition_->block(id);
            loader.submit(std::move(request));
        }
        EXPECT_FALSE(loader.try_consume(7u).has_value())
            << "no outstanding load for that block";
        std::optional<storage::AsyncLoader::Response> last;
        while (!last.has_value()) { // background: wait for completion
            last = loader.try_consume(2u);
        }
        EXPECT_EQ(last->block->id, 2u) << "background=" << background;
        EXPECT_TRUE(last->buffer.complete());
        EXPECT_EQ(loader.inflight(), 2u);
        pool.recycle(std::move(last->buffer));
        EXPECT_FALSE(loader.try_consume(2u).has_value())
            << "already consumed";
        for (const std::uint32_t id : {0u, 1u}) {
            auto response = loader.consume_any();
            EXPECT_EQ(response.block->id, id)
                << "background=" << background;
            pool.recycle(std::move(response.buffer));
        }
        EXPECT_FALSE(loader.outstanding());
    }
}

TEST_F(PrefetchTest, AsyncLoaderCompletesInFifoOrderAtDepthK)
{
    util::MemoryBudget budget;
    storage::BlockReader reader(*file_, budget);
    ASSERT_GE(partition_->num_blocks(), 3u);
    for (const bool background : {false, true}) {
        storage::BlockBufferPool pool;
        storage::AsyncLoader loader(reader, background, /*depth=*/3,
                                    &pool);
        EXPECT_EQ(loader.depth(), 3u);
        for (const std::uint32_t id : {0u, 1u, 2u}) {
            ASSERT_TRUE(loader.can_submit());
            storage::AsyncLoader::Request request;
            request.block = &partition_->block(id);
            loader.submit(std::move(request));
        }
        EXPECT_FALSE(loader.can_submit()) << "background=" << background;
        EXPECT_EQ(loader.inflight(), 3u);
        for (const std::uint32_t id : {0u, 1u, 2u}) {
            auto response = loader.wait();
            EXPECT_EQ(response.block->id, id)
                << "background=" << background;
            EXPECT_TRUE(response.buffer.complete());
            pool.recycle(std::move(response.buffer));
        }
        EXPECT_FALSE(loader.outstanding());
        EXPECT_TRUE(loader.can_submit());
    }
}

TEST(SharedBlockCache, BudgetAttachReleasesOnlyReservedBytes)
{
    // Regression: eviction used to release every victim's byte size
    // against the budget, but entries inserted before attach_budget
    // were never reserved — the first eviction of one tripped the
    // budget's underflow check.  Eviction must release exactly what
    // the entry reserved at insertion.
    storage::SharedBlockCache cache(/*capacity_bytes=*/3000);
    cache.insert(1, 0, std::vector<std::uint8_t>(1000, 0x11));
    cache.insert(2, 0, std::vector<std::uint8_t>(1000, 0x22));
    EXPECT_EQ(cache.used_bytes(), 2000u);

    util::MemoryBudget budget;
    cache.attach_budget(&budget);
    cache.insert(3, 0, std::vector<std::uint8_t>(1000, 0x33));
    EXPECT_EQ(budget.used(), 1000u) << "only the new entry reserves";

    // Capacity pressure evicts both pre-budget entries (LRU tail
    // first); their eviction releases nothing.
    cache.insert(4, 0, std::vector<std::uint8_t>(2000, 0x44));
    EXPECT_EQ(cache.find(1), nullptr);
    EXPECT_EQ(cache.find(2), nullptr);
    EXPECT_EQ(cache.used_bytes(), 3000u);
    EXPECT_EQ(budget.used(), 3000u);

    // Reserved entries release exactly their reservation.
    cache.clear();
    EXPECT_EQ(cache.used_bytes(), 0u);
    EXPECT_EQ(budget.used(), 0u);
}

TEST_F(PrefetchTest, BlockBufferRetainsCapacityAcrossLoads)
{
    // Satellite 1: clear() keeps the storage and the budget
    // reservation, so repeated loads of one block allocate exactly once.
    util::MemoryBudget budget;
    storage::BlockReader reader(*file_, budget);
    const graph::BlockInfo &block = partition_->block(0);
    storage::BlockBuffer buffer;
    for (int i = 0; i < 3; ++i) {
        reader.load_coarse(block, buffer);
        EXPECT_TRUE(buffer.complete());
        buffer.clear();
    }
    EXPECT_EQ(buffer.allocations(), 1u);
    const std::uint64_t reserved = budget.used();
    EXPECT_GT(reserved, 0u) << "reservation survives clear()";
    buffer.release_storage();
    EXPECT_EQ(budget.used(), 0u);
}

TEST_F(PrefetchTest, BufferPoolReusesStorageOnSyncPath)
{
    // Satellite 1 + 2: the 0-thread loader draws from the pool too, so
    // a recycle-after-consume loop touches the allocator only once.
    util::MemoryBudget budget;
    storage::BlockReader reader(*file_, budget);
    storage::BlockBufferPool pool;
    storage::AsyncLoader loader(reader, /*background=*/false,
                                /*depth=*/1, &pool);
    constexpr int kLoads = 12;
    for (int i = 0; i < kLoads; ++i) {
        storage::AsyncLoader::Request request;
        request.block = &partition_->block(0);
        loader.submit(std::move(request));
        auto response = loader.wait();
        EXPECT_TRUE(response.buffer.complete());
        pool.recycle(std::move(response.buffer));
    }
    EXPECT_EQ(pool.created(), 1u);
    EXPECT_EQ(pool.reused(), static_cast<std::uint64_t>(kLoads - 1));
    // The one buffer in rotation sized itself exactly once.
    storage::BlockBuffer buffer = pool.acquire();
    EXPECT_EQ(buffer.allocations(), 1u);
    buffer.release_storage();
}

} // namespace
} // namespace noswalker
