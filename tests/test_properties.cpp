/**
 * @file
 * Parameterized property suites: the core invariants must hold across
 * graph families × block sizes × budget fractions × engines.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "apps/basic_rw.hpp"
#include "baselines/drunkardmob.hpp"
#include "baselines/graphene.hpp"
#include "baselines/graphwalker.hpp"
#include "baselines/inmemory.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/mem_device.hpp"

namespace noswalker {
namespace {

enum class Family { kRmat, kUniform, kPowerLaw };

std::string
family_name(Family f)
{
    switch (f) {
      case Family::kRmat: return "rmat";
      case Family::kUniform: return "uniform";
      case Family::kPowerLaw: return "powerlaw";
    }
    return "?";
}

graph::CsrGraph
make_graph(Family f)
{
    switch (f) {
      case Family::kRmat:
        return graph::generate_rmat({.scale = 10,
                                     .edge_factor = 16,
                                     .a = 0.57,
                                     .b = 0.19,
                                     .c = 0.19,
                                     .seed = 77,
                                     .symmetrize = false,
                                     .weighted = false});
      case Family::kUniform:
        return graph::generate_uniform(1024, 16, 78);
      case Family::kPowerLaw:
        return graph::generate_power_law(2048, 2.7, 2, 128, 79);
    }
    return {};
}

using Params = std::tuple<Family, std::uint64_t /*block*/,
                          double /*budget fraction; 0 = unlimited*/>;

class EngineProperties : public testing::TestWithParam<Params> {
  protected:
    void
    SetUp() override
    {
        const auto [family, block_bytes, fraction] = GetParam();
        graph_ = make_graph(family);
        graph::GraphFile::write(graph_, device_);
        file_ = std::make_unique<graph::GraphFile>(device_);
        partition_ = std::make_unique<graph::BlockPartition>(*file_,
                                                             block_bytes);
        budget_ = fraction == 0.0
                      ? 0
                      : testing_support::tight_budget(*file_, *partition_,
                                                      fraction);
        block_bytes_ = block_bytes;
    }

    graph::CsrGraph graph_;
    storage::MemDevice device_{storage::SsdModel::p4618()};
    std::unique_ptr<graph::GraphFile> file_;
    std::unique_ptr<graph::BlockPartition> partition_;
    std::uint64_t budget_ = 0;
    std::uint64_t block_bytes_ = 0;
};

TEST_P(EngineProperties, NosWalkerTransitionsAreRealEdges)
{
    testing_support::RecordingWalk app(6, graph_.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(budget_,
                                                      block_bytes_);
    core::NosWalkerEngine<testing_support::RecordingWalk> eng(
        *file_, *partition_, cfg);
    const auto stats = eng.run(app, 250);
    EXPECT_EQ(stats.steps, app.transitions.size());
    for (const auto &[from, to] : app.transitions) {
        ASSERT_TRUE(graph_.has_edge(from, to));
    }
    if (budget_ != 0) {
        EXPECT_LE(stats.peak_memory, budget_);
    }
}

TEST_P(EngineProperties, AllEnginesRetireAllWalkersWithEqualSteps)
{
    const std::uint64_t walkers = 200;
    apps::BasicRandomWalk a1(8, graph_.num_vertices());
    apps::BasicRandomWalk a2(8, graph_.num_vertices());
    apps::BasicRandomWalk a3(8, graph_.num_vertices());
    apps::BasicRandomWalk a4(8, graph_.num_vertices());

    core::EngineConfig cfg = core::EngineConfig::full(budget_,
                                                      block_bytes_);
    core::NosWalkerEngine<apps::BasicRandomWalk> nw(*file_, *partition_,
                                                    cfg);
    baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(
        *file_, *partition_, 0);
    baselines::DrunkardMobEngine<apps::BasicRandomWalk> dm(
        *file_, *partition_, 0);
    baselines::InMemoryEngine<apps::BasicRandomWalk> im(*file_);

    const auto s1 = nw.run(a1, walkers);
    const auto s2 = gw.run(a2, walkers);
    const auto s3 = dm.run(a3, walkers);
    const auto s4 = im.run(a4, walkers);
    EXPECT_EQ(s1.walkers, walkers);
    EXPECT_EQ(s2.walkers, walkers);
    EXPECT_EQ(s3.walkers, walkers);
    EXPECT_EQ(s4.walkers, walkers);
    // On dead-end-free graphs every walker takes exactly L steps, so
    // all engines must agree; with dead ends the cut-off point is
    // path-dependent and totals legitimately differ.
    bool has_dead_end = false;
    for (graph::VertexId v = 0; v < graph_.num_vertices(); ++v) {
        if (graph_.degree(v) == 0) {
            has_dead_end = true;
            break;
        }
    }
    if (!has_dead_end) {
        EXPECT_EQ(s1.steps, walkers * 8);
        EXPECT_EQ(s2.steps, walkers * 8);
        EXPECT_EQ(s3.steps, walkers * 8);
        EXPECT_EQ(s4.steps, walkers * 8);
    }
}

TEST_P(EngineProperties, DeviceCountersAreConsistent)
{
    apps::BasicRandomWalk app(6, graph_.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(budget_,
                                                      block_bytes_);
    device_.reset_stats();
    core::NosWalkerEngine<apps::BasicRandomWalk> eng(*file_, *partition_,
                                                     cfg);
    const auto stats = eng.run(app, 300);
    const storage::IoStats io = device_.stats();
    // Engine-visible counters must match the device's ground truth.
    EXPECT_EQ(stats.graph_bytes_read, io.bytes_read);
    EXPECT_EQ(stats.graph_read_requests, io.read_requests);
    EXPECT_GT(io.busy_seconds, 0.0);
    EXPECT_EQ(stats.edges_loaded,
              io.bytes_read / file_->record_bytes());
}

TEST_P(EngineProperties, NosWalkerNeverLoadsMoreEdgesPerStepThanGraphWalker)
{
    if (budget_ == 0 || budget_ >= file_->file_bytes()) {
        GTEST_SKIP() << "budget covers the whole graph: both engines "
                        "cache it and the comparison is about "
                        "constrained runs";
    }
    apps::BasicRandomWalk a1(10, graph_.num_vertices());
    apps::BasicRandomWalk a2(10, graph_.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(budget_,
                                                      block_bytes_);
    core::NosWalkerEngine<apps::BasicRandomWalk> nw(*file_, *partition_,
                                                    cfg);
    baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(
        *file_, *partition_, budget_);
    const auto s1 = nw.run(a1, 500);
    const auto s2 = gw.run(a2, 500);
    EXPECT_LE(s1.edges_per_step(), s2.edges_per_step() * 1.05);
}

std::string
sweep_name(const testing::TestParamInfo<Params> &info)
{
    const Family family = std::get<0>(info.param);
    const std::uint64_t block = std::get<1>(info.param);
    const double fraction = std::get<2>(info.param);
    return family_name(family) + "_b" + std::to_string(block) + "_m" +
           std::to_string(static_cast<int>(fraction * 100));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineProperties,
    testing::Combine(testing::Values(Family::kRmat, Family::kUniform,
                                     Family::kPowerLaw),
                     testing::Values(std::uint64_t{4096},
                                     std::uint64_t{16384}),
                     testing::Values(0.0, 0.3, 0.6)),
    sweep_name);

/** Dataset twins must all be walkable end to end. */
class DatasetProperties
    : public testing::TestWithParam<graph::DatasetId> {};

TEST_P(DatasetProperties, NosWalkerCompletesOnEveryTwin)
{
    const graph::DatasetSpec &spec = graph::dataset_spec(GetParam());
    const graph::CsrGraph g = graph::build_dataset(GetParam(), 10);
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev, spec.alias_tables);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 8192);
    apps::BasicRandomWalk app(5, file.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(
        testing_support::tight_budget(file, part, 0.4), 8192);
    core::NosWalkerEngine<apps::BasicRandomWalk> eng(file, part, cfg);
    const auto stats = eng.run(app, 300);
    EXPECT_EQ(stats.walkers, 300u) << spec.name;
}

std::string
twin_name(const testing::TestParamInfo<graph::DatasetId> &info)
{
    return std::string("twin") +
           std::to_string(static_cast<int>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllTwins, DatasetProperties,
    testing::Values(graph::DatasetId::kTwitter, graph::DatasetId::kYahoo,
                    graph::DatasetId::kKron30, graph::DatasetId::kKron31,
                    graph::DatasetId::kCrawlWeb,
                    graph::DatasetId::kKron30W, graph::DatasetId::kG12,
                    graph::DatasetId::kAlpha27),
    twin_name);

} // namespace
} // namespace noswalker
