/**
 * @file
 * End-to-end integration: real files on disk, full pipelines, and
 * shape checks that mirror the paper's headline claims at test scale.
 */
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "apps/basic_rw.hpp"
#include "apps/node2vec.hpp"
#include "apps/ppr.hpp"
#include "apps/weighted_rw.hpp"
#include "baselines/drunkardmob.hpp"
#include "baselines/graphwalker.hpp"
#include "baselines/grasorw.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/file_device.hpp"
#include "storage/mem_device.hpp"
#include "storage/raid_device.hpp"

namespace noswalker {
namespace {

TEST(Integration, FullPipelineOnRealFile)
{
    const std::string path =
        testing::TempDir() + "noswalker_integration.graph";
    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kKron30, 10);
    {
        storage::FileDevice dev(path);
        graph::GraphFile::write(g, dev);
        dev.sync();
    }
    storage::FileDevice dev(path);
    graph::GraphFile file(dev);
    EXPECT_EQ(file.num_vertices(), g.num_vertices());
    graph::BlockPartition part(file, 8192);
    apps::BasicRandomWalk app(10, file.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(
        testing_support::tight_budget(file, part, 0.35), 8192);
    core::NosWalkerEngine<apps::BasicRandomWalk> eng(file, part, cfg);
    const auto stats = eng.run(app, 1000);
    EXPECT_EQ(stats.walkers, 1000u);
    EXPECT_GT(stats.steps, 0u);
    std::remove(path.c_str());
}

TEST(Integration, Fig2ShapeEdgesPerStepOrdering)
{
    // The paper's Fig 2(a): DrunkardMob needs more loaded edges per
    // step than GraphWalker, which needs more than NosWalker.
    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kKron30, 11);
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 16384);
    const std::uint64_t budget =
        testing_support::tight_budget(file, part, 0.2);

    apps::BasicRandomWalk a1(10, file.num_vertices());
    apps::BasicRandomWalk a2(10, file.num_vertices());
    apps::BasicRandomWalk a3(10, file.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(budget, 16384);
    core::NosWalkerEngine<apps::BasicRandomWalk> nw(file, part, cfg);
    baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(file, part,
                                                           budget);
    // Same budget for all systems (the paper's setup); with an
    // unlimited budget DrunkardMob would just cache the whole graph.
    baselines::DrunkardMobEngine<apps::BasicRandomWalk> dm(file, part,
                                                           budget);

    const auto sn = nw.run(a1, 600);
    const auto sg = gw.run(a2, 600);
    const auto sd = dm.run(a3, 600);
    EXPECT_LT(sn.edges_per_step(), sg.edges_per_step());
    EXPECT_LT(sg.edges_per_step(), sd.edges_per_step());
}

TEST(Integration, NosWalkerTotalIoBelowGraphWalker)
{
    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kKron30, 11);
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 16384);
    const std::uint64_t budget =
        testing_support::tight_budget(file, part, 0.2);

    apps::BasicRandomWalk a1(10, file.num_vertices());
    apps::BasicRandomWalk a2(10, file.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(budget, 16384);
    core::NosWalkerEngine<apps::BasicRandomWalk> nw(file, part, cfg);
    baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(file, part,
                                                           budget);
    const auto sn = nw.run(a1, 2000);
    const auto sg = gw.run(a2, 2000);
    EXPECT_LT(sn.total_io_bytes(), sg.total_io_bytes());
    // Compare the modeled I/O time, not modeled_seconds(): the latter
    // maxes in measured CPU seconds, which jitters under parallel test
    // load and used to flake this assertion.
    const double nw_io = sn.io_busy_seconds / sn.io_efficiency;
    const double gw_io = sg.io_busy_seconds / sg.io_efficiency;
    EXPECT_LT(nw_io, gw_io);
}

TEST(Integration, SecondOrderNosWalkerBeatsGraSorwOnIo)
{
    graph::RmatParams p;
    p.scale = 10;
    p.edge_factor = 16;
    p.seed = 90;
    p.symmetrize = true; // Node2Vec needs an undirected graph
    const graph::CsrGraph g = graph::generate_rmat(p);
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 16384);
    const std::uint64_t budget =
        testing_support::tight_budget(file, part, 0.25);

    apps::Node2Vec a1(2.0, 0.5, 6, file.num_vertices(), 1);
    apps::Node2Vec a2(2.0, 0.5, 6, file.num_vertices(), 1);
    core::EngineConfig cfg = core::EngineConfig::full(budget, 16384);
    core::NosWalkerEngine<apps::Node2Vec> nw(file, part, cfg);
    baselines::GraSorwEngine<apps::Node2Vec> gs(file, part, 0);
    const auto sn = nw.run(a1, 500);
    const auto sg = gs.run(a2, 500);
    EXPECT_EQ(sn.walkers, sg.walkers);
    EXPECT_LT(sn.graph_bytes_read, sg.graph_bytes_read);
}

TEST(Integration, RaidDeviceEndToEnd)
{
    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kKron30, 9);
    auto raid = storage::Raid0Device::paper_array();
    graph::GraphFile::write(g, *raid);
    graph::GraphFile file(*raid);
    graph::BlockPartition part(file, 8192);
    apps::BasicRandomWalk app(10, file.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(0, 8192);
    core::NosWalkerEngine<apps::BasicRandomWalk> eng(file, part, cfg);
    const auto stats = eng.run(app, 300);
    EXPECT_EQ(stats.walkers, 300u);
    EXPECT_GT(raid->stats().bytes_read, 0u);
}

TEST(Integration, WeightedAliasPipelineEndToEnd)
{
    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kKron30W, 9);
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev, /*with_alias=*/true);
    graph::GraphFile file(dev);
    // Alias tables inflate the file ~4x vs unweighted (K30W effect).
    storage::MemDevice plain_dev;
    const graph::CsrGraph plain =
        graph::build_dataset(graph::DatasetId::kKron30, 9);
    graph::GraphFile::write(plain, plain_dev);
    graph::GraphFile plain_file(plain_dev);
    EXPECT_EQ(file.edge_region_bytes(),
              4 * plain_file.edge_region_bytes());

    graph::BlockPartition part(file, 16384);
    apps::WeightedRandomWalk app(10, file.num_vertices());
    core::EngineConfig cfg = core::EngineConfig::full(
        testing_support::tight_budget(file, part, 0.3), 16384);
    core::NosWalkerEngine<apps::WeightedRandomWalk> eng(file, part, cfg);
    const auto stats = eng.run(app, 400);
    EXPECT_EQ(stats.walkers, 400u);
}

TEST(Integration, PprQueryPipelineProducesRanking)
{
    const graph::CsrGraph g =
        graph::build_dataset(graph::DatasetId::kTwitter, 10);
    storage::MemDevice dev;
    graph::GraphFile::write(g, dev);
    graph::GraphFile file(dev);
    graph::BlockPartition part(file, 8192);

    // Query the highest-degree vertex (likely well connected).
    graph::VertexId source = 0;
    for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
        if (g.degree(v) > g.degree(source)) {
            source = v;
        }
    }
    apps::PersonalizedPageRank app({source}, 200, 10, true);
    core::EngineConfig cfg = core::EngineConfig::full(
        testing_support::tight_budget(file, part, 0.35), 8192);
    core::NosWalkerEngine<apps::PersonalizedPageRank> eng(file, part,
                                                          cfg);
    eng.run(app, app.total_walkers());
    const auto top = app.top_k(0, 10);
    ASSERT_FALSE(top.empty());
    for (std::size_t i = 1; i < top.size(); ++i) {
        EXPECT_GE(top[i - 1].second, top[i].second);
    }
}

} // namespace
} // namespace noswalker
