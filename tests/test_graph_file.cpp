/**
 * @file
 * Tests for the on-disk graph format and the block partitioner.
 */
#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/mem_device.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace noswalker::graph {
namespace {

using storage::MemDevice;
using storage::SsdModel;

CsrGraph
sample_graph(bool weighted)
{
    RmatParams p;
    p.scale = 7;
    p.edge_factor = 6;
    p.seed = 4;
    p.weighted = weighted;
    return generate_rmat(p);
}

TEST(GraphFile, RoundTripUnweighted)
{
    const CsrGraph g = sample_graph(false);
    MemDevice dev;
    GraphFile::write(g, dev);
    GraphFile file(dev);
    EXPECT_EQ(file.num_vertices(), g.num_vertices());
    EXPECT_EQ(file.num_edges(), g.num_edges());
    EXPECT_FALSE(file.weighted());
    EXPECT_FALSE(file.has_alias());
    EXPECT_EQ(file.record_bytes(), 4u);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(file.degree(v), g.degree(v));
    }
    EXPECT_EQ(file.edge_region_bytes(), g.num_edges() * 4);
    EXPECT_EQ(file.index_bytes(),
              (g.num_vertices() + 1) * sizeof(EdgeIndex));
}

TEST(GraphFile, RoundTripWeighted)
{
    const CsrGraph g = sample_graph(true);
    MemDevice dev;
    GraphFile::write(g, dev);
    GraphFile file(dev);
    EXPECT_TRUE(file.weighted());
    EXPECT_EQ(file.record_bytes(), 8u);
    EXPECT_EQ(file.edge_region_bytes(), g.num_edges() * 8);
}

TEST(GraphFile, WeightedWithAliasTables)
{
    const CsrGraph g = sample_graph(true);
    MemDevice dev;
    GraphFile::write(g, dev, /*with_alias=*/true);
    GraphFile file(dev);
    EXPECT_TRUE(file.has_alias());
    EXPECT_EQ(file.record_bytes(), 16u);
    // Alias tables inflate the on-disk size ~4x over plain CSR edges,
    // reproducing the K30W 136->384 GiB effect directionally.
    EXPECT_EQ(file.edge_region_bytes(), g.num_edges() * 16);
}

TEST(GraphFile, AliasRequiresWeights)
{
    const CsrGraph g = sample_graph(false);
    MemDevice dev;
    EXPECT_THROW(GraphFile::write(g, dev, true), util::ConfigError);
}

TEST(GraphFile, DecodeMatchesReference)
{
    const CsrGraph g = sample_graph(true);
    MemDevice dev;
    GraphFile::write(g, dev, true);
    GraphFile file(dev);

    // Read the whole edge region and decode every vertex.
    std::vector<std::uint8_t> raw(file.edge_region_bytes());
    dev.read(file.edge_region_offset(), raw.size(), raw.data());
    util::Rng rng(1);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const VertexView view =
            file.decode(v, raw, file.edge_region_offset());
        ASSERT_EQ(view.degree(), g.degree(v));
        const auto nbrs = g.neighbors(v);
        const auto ws = g.weights(v);
        for (std::uint32_t i = 0; i < view.degree(); ++i) {
            ASSERT_EQ(view.targets[i], nbrs[i]);
            ASSERT_FLOAT_EQ(view.weights[i], ws[i]);
        }
        if (view.degree() > 0) {
            ASSERT_EQ(view.prob.size(), view.degree());
            ASSERT_EQ(view.alias.size(), view.degree());
            // Alias samples must be valid neighbours.
            for (int k = 0; k < 8; ++k) {
                const VertexId s = view.sample_weighted(rng);
                EXPECT_TRUE(view.has_target(s));
            }
        }
    }
}

TEST(GraphFile, WeightedSamplingWithoutAliasFallsBack)
{
    // degree-3 vertex, weights 1/2/7.
    CsrGraph g({0, 3}, {0, 0, 0}, {1.0f, 2.0f, 7.0f});
    MemDevice dev;
    GraphFile::write(g, dev, false);
    GraphFile file(dev);
    std::vector<std::uint8_t> raw(file.edge_region_bytes());
    dev.read(file.edge_region_offset(), raw.size(), raw.data());
    const VertexView view = file.decode(0, raw, file.edge_region_offset());
    EXPECT_TRUE(view.prob.empty());
    util::Rng rng(5);
    // All targets are vertex 0; exercising the prefix-scan path.
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(view.sample_weighted(rng), 0u);
    }
}

TEST(GraphFile, BadMagicRejected)
{
    MemDevice dev;
    std::vector<std::uint8_t> junk(64, 0xAB);
    dev.write(0, junk.size(), junk.data());
    EXPECT_THROW(GraphFile file(dev), util::IoError);
}

TEST(GraphFile, TruncatedFileRejected)
{
    const CsrGraph g = sample_graph(false);
    MemDevice dev;
    GraphFile::write(g, dev);
    // Chop the edge region.
    MemDevice truncated;
    std::vector<std::uint8_t> head(dev.size() / 2);
    dev.read(0, head.size(), head.data());
    truncated.write(0, head.size(), head.data());
    EXPECT_THROW(GraphFile file(truncated), util::IoError);
}

TEST(GraphFile, TooSmallForHeaderRejected)
{
    MemDevice dev;
    std::uint8_t b = 0;
    dev.write(0, 1, &b);
    EXPECT_THROW(GraphFile file(dev), util::IoError);
}

class PartitionTest : public testing::Test {
  protected:
    void
    SetUp() override
    {
        graph_ = sample_graph(false);
        GraphFile::write(graph_, device_);
        file_ = std::make_unique<GraphFile>(device_);
    }

    CsrGraph graph_;
    MemDevice device_;
    std::unique_ptr<GraphFile> file_;
};

TEST_F(PartitionTest, CoversAllVerticesExactlyOnce)
{
    BlockPartition part(*file_, 1024);
    VertexId expected = 0;
    EdgeIndex edges = 0;
    std::uint64_t bytes = 0;
    for (const BlockInfo &b : part.blocks()) {
        EXPECT_EQ(b.first_vertex, expected);
        expected = b.end_vertex;
        edges += b.num_edges;
        bytes += b.byte_size;
    }
    EXPECT_EQ(expected, file_->num_vertices());
    EXPECT_EQ(edges, file_->num_edges());
    EXPECT_EQ(bytes, file_->edge_region_bytes());
}

TEST_F(PartitionTest, BlockSizesRespectTargetOrSingleVertex)
{
    const std::uint64_t target = 512;
    BlockPartition part(*file_, target);
    for (const BlockInfo &b : part.blocks()) {
        if (b.byte_size > target) {
            // Oversized blocks must be a single fat vertex.
            EXPECT_EQ(b.num_vertices(), 1u);
        }
    }
    EXPECT_GE(part.max_block_bytes(), 1u);
    EXPECT_EQ(part.target_block_bytes(), target);
}

TEST_F(PartitionTest, BlockOfIsConsistent)
{
    BlockPartition part(*file_, 777);
    for (VertexId v = 0; v < file_->num_vertices(); ++v) {
        const std::uint32_t b = part.block_of(v);
        EXPECT_TRUE(part.block(b).contains(v)) << "vertex " << v;
    }
}

TEST_F(PartitionTest, SingleBlockWhenTargetHuge)
{
    BlockPartition part(*file_, 1ULL << 40);
    EXPECT_EQ(part.num_blocks(), 1u);
}

TEST_F(PartitionTest, RejectsZeroTarget)
{
    EXPECT_THROW(BlockPartition(*file_, 0), util::ConfigError);
}

TEST_F(PartitionTest, ByteOffsetsMatchFile)
{
    BlockPartition part(*file_, 2048);
    for (const BlockInfo &b : part.blocks()) {
        EXPECT_EQ(b.byte_begin,
                  file_->vertex_byte_offset(b.first_vertex));
        EXPECT_EQ(b.edge_begin, file_->edge_begin(b.first_vertex));
    }
}

} // namespace
} // namespace noswalker::graph
