/**
 * @file
 * Unit tests for the util substrate: RNG, alias tables, bitmaps,
 * memory budget, blocking queue, stats registry.
 */
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/alias_table.hpp"
#include "util/bitmap.hpp"
#include "util/blocking_queue.hpp"
#include "util/error.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace noswalker::util {
namespace {

TEST(Rng, DeterministicForSeed)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a(), b());
    }
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a() == b()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, NextIndexInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.next_index(bound), bound);
        }
    }
}

TEST(Rng, NextIndexCoversAllValues)
{
    Rng rng(9);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        seen.insert(rng.next_index(8));
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.next_double();
        ASSERT_GE(x, 0.0);
        ASSERT_LT(x, 1.0);
        sum += x;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(5);
    Rng child = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (parent() == child()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(SplitMix, Deterministic)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), SplitMix64(43).next());
}

TEST(AliasTable, UniformWeights)
{
    std::vector<double> w(4, 1.0);
    AliasTable table(w);
    Rng rng(3);
    std::vector<int> counts(4, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
        ++counts[table.sample(rng)];
    }
    for (int c : counts) {
        EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
    }
}

TEST(AliasTable, SkewedWeightsMatchDistribution)
{
    const std::vector<double> w = {1.0, 2.0, 4.0, 8.0, 1.0};
    const double total = 16.0;
    AliasTable table(w);
    Rng rng(13);
    std::vector<int> counts(w.size(), 0);
    const int n = 160000;
    for (int i = 0; i < n; ++i) {
        ++counts[table.sample(rng)];
    }
    // Chi-square goodness of fit, 4 dof, alpha=0.001 => 18.47.
    double chi2 = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
        const double expected = n * w[i] / total;
        const double diff = counts[i] - expected;
        chi2 += diff * diff / expected;
    }
    EXPECT_LT(chi2, 18.47);
}

TEST(AliasTable, ZeroWeightNeverSampled)
{
    const std::vector<double> w = {0.0, 1.0, 0.0, 1.0};
    AliasTable table(w);
    Rng rng(17);
    for (int i = 0; i < 1000; ++i) {
        const auto s = table.sample(rng);
        EXPECT_TRUE(s == 1 || s == 3);
    }
}

TEST(AliasTable, SingleOutcome)
{
    const std::vector<double> w = {3.5};
    AliasTable table(w);
    Rng rng(19);
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(table.sample(rng), 0u);
    }
}

TEST(AliasTable, AllZeroWeightsThrows)
{
    const std::vector<double> w = {0.0, 0.0};
    AliasTable table;
    EXPECT_THROW(table.build(w), ConfigError);
}

TEST(AliasArrays, MatchAliasTableSemantics)
{
    const std::vector<double> w = {5.0, 1.0, 2.0};
    std::vector<float> prob(3);
    std::vector<std::uint32_t> alias(3);
    build_alias_arrays(w, prob, alias);
    // Sample manually and compare against expectations.
    Rng rng(23);
    std::vector<int> counts(3, 0);
    const int n = 90000;
    for (int i = 0; i < n; ++i) {
        const auto slot =
            static_cast<std::size_t>(rng.next_index(3));
        const auto pick = rng.next_double() < prob[slot]
                              ? static_cast<std::uint32_t>(slot)
                              : alias[slot];
        ++counts[pick];
    }
    EXPECT_NEAR(counts[0] / double(n), 5.0 / 8.0, 0.02);
    EXPECT_NEAR(counts[1] / double(n), 1.0 / 8.0, 0.02);
    EXPECT_NEAR(counts[2] / double(n), 2.0 / 8.0, 0.02);
}

TEST(Bitmap, SetTestClear)
{
    Bitmap bm(130);
    EXPECT_EQ(bm.size(), 130u);
    EXPECT_TRUE(bm.none());
    bm.set(0);
    bm.set(64);
    bm.set(129);
    EXPECT_TRUE(bm.test(0));
    EXPECT_TRUE(bm.test(64));
    EXPECT_TRUE(bm.test(129));
    EXPECT_FALSE(bm.test(1));
    EXPECT_EQ(bm.count(), 3u);
    bm.clear(64);
    EXPECT_FALSE(bm.test(64));
    EXPECT_EQ(bm.count(), 2u);
}

TEST(Bitmap, ForEachSetAscending)
{
    Bitmap bm(200);
    const std::vector<std::size_t> bits = {3, 64, 65, 127, 128, 199};
    for (std::size_t b : bits) {
        bm.set(b);
    }
    std::vector<std::size_t> seen;
    bm.for_each_set([&](std::size_t i) { seen.push_back(i); });
    EXPECT_EQ(seen, bits);
}

TEST(Bitmap, ResetClearsAll)
{
    Bitmap bm(64);
    bm.set(5);
    bm.set(63);
    bm.reset();
    EXPECT_TRUE(bm.none());
    EXPECT_EQ(bm.count(), 0u);
}

TEST(Bitmap, ResizeZero)
{
    Bitmap bm(10);
    bm.set(3);
    bm.resize(0);
    EXPECT_EQ(bm.size(), 0u);
    EXPECT_TRUE(bm.none());
}

TEST(MemoryBudget, ReserveReleasePeak)
{
    MemoryBudget budget(1000);
    budget.reserve(400, "a");
    EXPECT_EQ(budget.used(), 400u);
    budget.reserve(500, "b");
    EXPECT_EQ(budget.used(), 900u);
    EXPECT_EQ(budget.peak(), 900u);
    budget.release(500);
    EXPECT_EQ(budget.used(), 400u);
    EXPECT_EQ(budget.peak(), 900u);
    EXPECT_EQ(budget.available(), 600u);
}

TEST(MemoryBudget, ExceedingThrows)
{
    MemoryBudget budget(100);
    budget.reserve(60);
    EXPECT_THROW(budget.reserve(41), BudgetExceeded);
    EXPECT_EQ(budget.used(), 60u); // failed reserve must not leak
    EXPECT_FALSE(budget.try_reserve(41));
    EXPECT_TRUE(budget.try_reserve(40));
}

TEST(MemoryBudget, UnlimitedNeverThrows)
{
    MemoryBudget budget(0);
    budget.reserve(1ULL << 40);
    EXPECT_EQ(budget.used(), 1ULL << 40);
}

TEST(MemoryBudget, SaturatingReserveNearUint64Max)
{
    // Regression: on an unlimited budget, cur + bytes used to wrap
    // around UINT64_MAX and corrupt used_/peak_ (used() would come
    // back tiny while two huge reservations were outstanding).
    const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
    MemoryBudget budget(0);
    EXPECT_TRUE(budget.try_reserve(max - 100));
    EXPECT_EQ(budget.used(), max - 100);
    EXPECT_TRUE(budget.try_reserve(1000)); // would wrap; saturates
    EXPECT_EQ(budget.used(), max);
    EXPECT_EQ(budget.peak(), max);

    // Releases clamp at zero once saturation lost exact pairing, so
    // the drain invariant (everything released ⇒ used() == 0) holds.
    budget.release(1000);
    budget.release(max - 100);
    EXPECT_EQ(budget.used(), 0u);
}

TEST(MemoryBudget, OverflowingReserveRejectedUnderLimit)
{
    // Regression: under a finite limit, a wrapped cur + bytes could
    // come out *below* the limit and slip a giant reservation past
    // the cap.
    const std::uint64_t max = std::numeric_limits<std::uint64_t>::max();
    MemoryBudget budget(1ULL << 20);
    budget.reserve(100);
    EXPECT_FALSE(budget.try_reserve(max - 50));
    EXPECT_EQ(budget.used(), 100u);
    EXPECT_THROW(budget.reserve(max - 50), BudgetExceeded);
    EXPECT_EQ(budget.used(), 100u);
    budget.release(100);
    EXPECT_EQ(budget.used(), 0u);
}

TEST(Reservation, RaiiReleases)
{
    MemoryBudget budget(100);
    {
        Reservation r(budget, 80, "tmp");
        EXPECT_EQ(budget.used(), 80u);
    }
    EXPECT_EQ(budget.used(), 0u);
}

TEST(Reservation, MoveTransfersOwnership)
{
    MemoryBudget budget(100);
    Reservation a(budget, 50);
    Reservation b = std::move(a);
    EXPECT_EQ(budget.used(), 50u);
    a.release(); // moved-from: no-op
    EXPECT_EQ(budget.used(), 50u);
    b.release();
    EXPECT_EQ(budget.used(), 0u);
}

TEST(Reservation, ResizeGrowsAndShrinks)
{
    MemoryBudget budget(100);
    Reservation r(budget, 20);
    r.resize(70);
    EXPECT_EQ(budget.used(), 70u);
    r.resize(10);
    EXPECT_EQ(budget.used(), 10u);
    EXPECT_THROW(r.resize(200), BudgetExceeded);
    EXPECT_EQ(budget.used(), 10u);
}

TEST(MemoryBudget, ConcurrentReserveRespectsCap)
{
    MemoryBudget budget(10000);
    std::vector<std::thread> threads;
    std::atomic<int> successes{0};
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < 1000; ++i) {
                if (budget.try_reserve(10)) {
                    ++successes;
                }
            }
        });
    }
    for (auto &th : threads) {
        th.join();
    }
    EXPECT_EQ(successes.load(), 1000);
    EXPECT_EQ(budget.used(), 10000u);
}

TEST(BlockingQueue, FifoOrder)
{
    BlockingQueue<int> q(8);
    for (int i = 0; i < 5; ++i) {
        EXPECT_TRUE(q.push(i));
    }
    for (int i = 0; i < 5; ++i) {
        auto v = q.pop();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
}

TEST(BlockingQueue, CloseDrainsThenEnds)
{
    BlockingQueue<int> q(4);
    q.push(1);
    q.close();
    EXPECT_FALSE(q.push(2));
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 1);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, CrossThreadTransfer)
{
    BlockingQueue<int> q(2);
    std::thread producer([&] {
        for (int i = 0; i < 100; ++i) {
            q.push(i);
        }
        q.close();
    });
    int expected = 0;
    while (auto v = q.pop()) {
        EXPECT_EQ(*v, expected++);
    }
    EXPECT_EQ(expected, 100);
    producer.join();
}

TEST(BlockingQueue, TryPopEmpty)
{
    BlockingQueue<int> q(2);
    EXPECT_FALSE(q.try_pop().has_value());
    q.push(9);
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 9);
}

TEST(StatsRegistry, AddGetMerge)
{
    StatsRegistry a;
    a.add("x");
    a.add("x", 4);
    a.set("y", 7);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 7u);
    EXPECT_EQ(a.get("missing"), 0u);

    StatsRegistry b;
    b.add("x", 10);
    b.add("z", 1);
    a.merge(b);
    EXPECT_EQ(a.get("x"), 15u);
    EXPECT_EQ(a.get("z"), 1u);
    EXPECT_NE(a.to_string().find("x=15"), std::string::npos);
}

TEST(Timer, MeasuresElapsed)
{
    Timer t;
    const double a = t.seconds();
    EXPECT_GE(a, 0.0);
    AccumTimer acc;
    acc.start();
    acc.stop();
    acc.start();
    acc.stop();
    EXPECT_GE(acc.seconds(), 0.0);
}

} // namespace
} // namespace noswalker::util
