/**
 * @file
 * BlockingQueue semantics the walk service depends on: bounded
 * capacity with non-blocking rejection, timed pops, and clean
 * multi-producer/multi-consumer shutdown.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/blocking_queue.hpp"

namespace noswalker::util {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, BoundedCapacityRejectsTryPushWhenFull)
{
    BlockingQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3));
    EXPECT_EQ(q.size(), 2u);

    EXPECT_EQ(q.try_pop().value(), 1);
    EXPECT_TRUE(q.try_push(3));
    EXPECT_EQ(q.try_pop().value(), 2);
    EXPECT_EQ(q.try_pop().value(), 3);
    EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, UnboundedNeverRejects)
{
    BlockingQueue<int> q(0);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(q.try_push(i));
    }
    EXPECT_EQ(q.size(), 10000u);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_EQ(q.pop().value(), i);
    }
}

TEST(BlockingQueue, PopForTimesOutOnEmptyOpenQueue)
{
    BlockingQueue<int> q(4);
    const auto before = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.pop_for(20ms).has_value());
    EXPECT_GE(std::chrono::steady_clock::now() - before, 20ms);
    EXPECT_FALSE(q.closed());
}

TEST(BlockingQueue, CloseFailsPushesButDrainsRemainingElements)
{
    BlockingQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(3));
    EXPECT_FALSE(q.try_push(3));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.pop_for(1ms).has_value());
}

TEST(BlockingQueue, MultiConsumerShutdownDeliversEverythingExactlyOnce)
{
    constexpr int kItems = 2000;
    constexpr int kConsumers = 4;
    BlockingQueue<int> q(16);

    std::atomic<int> delivered{0};
    std::atomic<long long> sum{0};
    std::vector<std::thread> consumers;
    consumers.reserve(kConsumers);
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (auto v = q.pop()) {
                delivered.fetch_add(1, std::memory_order_relaxed);
                sum.fetch_add(*v, std::memory_order_relaxed);
            }
        });
    }

    for (int i = 1; i <= kItems; ++i) {
        ASSERT_TRUE(q.push(i));
    }
    q.close();
    for (std::thread &t : consumers) {
        t.join();
    }

    EXPECT_EQ(delivered.load(), kItems);
    EXPECT_EQ(sum.load(),
              static_cast<long long>(kItems) * (kItems + 1) / 2);
}

TEST(BlockingQueue, CloseWakesProducersBlockedOnFullQueue)
{
    BlockingQueue<int> q(1);
    ASSERT_TRUE(q.push(1)); // queue now full

    std::atomic<int> rejected{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&] {
            if (!q.push(99)) {
                rejected.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // Give the producers a moment to block on the full queue.
    std::this_thread::sleep_for(10ms);
    q.close();
    for (std::thread &t : producers) {
        t.join();
    }
    EXPECT_EQ(rejected.load(), 3);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_FALSE(q.pop().has_value());
}

} // namespace
} // namespace noswalker::util
