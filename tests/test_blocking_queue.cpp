/**
 * @file
 * BlockingQueue semantics the walk service depends on: bounded
 * capacity with non-blocking rejection, timed pops, and clean
 * multi-producer/multi-consumer shutdown.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/blocking_queue.hpp"

namespace noswalker::util {
namespace {

using namespace std::chrono_literals;

TEST(BlockingQueue, BoundedCapacityRejectsTryPushWhenFull)
{
    BlockingQueue<int> q(2);
    EXPECT_TRUE(q.try_push(1));
    EXPECT_TRUE(q.try_push(2));
    EXPECT_FALSE(q.try_push(3));
    EXPECT_EQ(q.size(), 2u);

    EXPECT_EQ(q.try_pop().value(), 1);
    EXPECT_TRUE(q.try_push(3));
    EXPECT_EQ(q.try_pop().value(), 2);
    EXPECT_EQ(q.try_pop().value(), 3);
    EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, UnboundedNeverRejects)
{
    BlockingQueue<int> q(0);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_TRUE(q.try_push(i));
    }
    EXPECT_EQ(q.size(), 10000u);
    for (int i = 0; i < 10000; ++i) {
        ASSERT_EQ(q.pop().value(), i);
    }
}

TEST(BlockingQueue, PopForTimesOutOnEmptyOpenQueue)
{
    BlockingQueue<int> q(4);
    const auto before = std::chrono::steady_clock::now();
    EXPECT_FALSE(q.pop_for(20ms).has_value());
    EXPECT_GE(std::chrono::steady_clock::now() - before, 20ms);
    EXPECT_FALSE(q.closed());
}

TEST(BlockingQueue, TryPushResultDistinguishesFullFromClosed)
{
    // Regression: the walk service reports *why* a submission was
    // dropped.  A bare bool cannot tell a full queue from a closed one
    // (the service used to re-probe closed() after the failed push and
    // could misreport a racing close), so the outcome must be decided
    // under the queue lock.
    BlockingQueue<int> q(1);
    EXPECT_EQ(q.try_push_result(1), PushOutcome::kPushed);
    EXPECT_EQ(q.try_push_result(2), PushOutcome::kFull);
    EXPECT_EQ(q.size(), 1u);

    // Full AND closed: closed wins — the value could never be served.
    q.close();
    EXPECT_EQ(q.try_push_result(3), PushOutcome::kClosed);

    // Empty and closed is still closed, never "full".
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.try_push_result(4), PushOutcome::kClosed);
}

TEST(BlockingQueue, CloseFailsPushesButDrainsRemainingElements)
{
    BlockingQueue<int> q(8);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.push(3));
    EXPECT_FALSE(q.try_push(3));
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    EXPECT_FALSE(q.pop().has_value());
    EXPECT_FALSE(q.pop_for(1ms).has_value());
}

TEST(BlockingQueue, MultiConsumerShutdownDeliversEverythingExactlyOnce)
{
    constexpr int kItems = 2000;
    constexpr int kConsumers = 4;
    BlockingQueue<int> q(16);

    std::atomic<int> delivered{0};
    std::atomic<long long> sum{0};
    std::vector<std::thread> consumers;
    consumers.reserve(kConsumers);
    for (int c = 0; c < kConsumers; ++c) {
        consumers.emplace_back([&] {
            while (auto v = q.pop()) {
                delivered.fetch_add(1, std::memory_order_relaxed);
                sum.fetch_add(*v, std::memory_order_relaxed);
            }
        });
    }

    for (int i = 1; i <= kItems; ++i) {
        ASSERT_TRUE(q.push(i));
    }
    q.close();
    for (std::thread &t : consumers) {
        t.join();
    }

    EXPECT_EQ(delivered.load(), kItems);
    EXPECT_EQ(sum.load(),
              static_cast<long long>(kItems) * (kItems + 1) / 2);
}

TEST(BlockingQueue, CloseWakesProducersBlockedOnFullQueue)
{
    BlockingQueue<int> q(1);
    ASSERT_TRUE(q.push(1)); // queue now full

    std::atomic<int> rejected{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&] {
            if (!q.push(99)) {
                rejected.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }
    // Give the producers a moment to block on the full queue.
    std::this_thread::sleep_for(10ms);
    q.close();
    for (std::thread &t : producers) {
        t.join();
    }
    EXPECT_EQ(rejected.load(), 3);
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_FALSE(q.pop().has_value());
}

TEST(BlockingQueue, PushBatchKeepsBatchContiguousAcrossProducers)
{
    // Two producers push interleaved batches; each batch must land as
    // one contiguous run (push_batch holds the lock for the batch).
    BlockingQueue<int> q(0);
    constexpr int kBatches = 50;
    constexpr int kPerBatch = 20;
    auto producer = [&](int base) {
        for (int b = 0; b < kBatches; ++b) {
            std::vector<int> batch;
            for (int i = 0; i < kPerBatch; ++i) {
                batch.push_back(base + b * kPerBatch + i);
            }
            ASSERT_TRUE(q.push_batch(std::move(batch)));
        }
    };
    std::thread p1(producer, 0);
    std::thread p2(producer, 1'000'000);
    p1.join();
    p2.join();

    const std::vector<int> all = q.pop_all();
    ASSERT_EQ(all.size(),
              static_cast<std::size_t>(2 * kBatches * kPerBatch));
    for (std::size_t i = 0; i < all.size(); i += kPerBatch) {
        for (int j = 1; j < kPerBatch; ++j) {
            EXPECT_EQ(all[i + j], all[i] + j) << "split batch at " << i;
        }
    }
    EXPECT_EQ(q.size(), 0u);
}

TEST(BlockingQueue, PushBatchBlocksUntilTheWholeBatchFits)
{
    BlockingQueue<int> q(4);
    ASSERT_TRUE(q.push(1));
    ASSERT_TRUE(q.push(2));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push_batch({10, 11, 12}));
        pushed.store(true);
    });
    // 3 elements cannot join 2 under a cap of 4 — the producer waits.
    std::this_thread::sleep_for(10ms);
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(q.pop().value(), 1);
    EXPECT_EQ(q.pop().value(), 2);
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop_all(), (std::vector<int>{10, 11, 12}));
}

TEST(BlockingQueue, PushBatchFailsAfterCloseAndWakesBlockedBatch)
{
    BlockingQueue<int> q(2);
    ASSERT_TRUE(q.push(7));
    EXPECT_FALSE(q.closed());

    std::atomic<int> failures{0};
    std::thread producer([&] {
        // Needs 2 free slots; only 1 exists, so it blocks until close.
        if (!q.push_batch({8, 9})) {
            failures.fetch_add(1, std::memory_order_relaxed);
        }
    });
    std::this_thread::sleep_for(10ms);
    q.close();
    producer.join();
    EXPECT_EQ(failures.load(), 1);

    // Closed queues fail immediately, without blocking.
    EXPECT_FALSE(q.push_batch({1, 2, 3}));

    // Elements accepted before the close still drain.
    EXPECT_EQ(q.pop_all(), (std::vector<int>{7}));
    EXPECT_TRUE(q.pop_all().empty());
    EXPECT_TRUE(q.closed());
}

TEST(BlockingQueue, PopAllDrainsEverythingInFifoOrderAndUnblocks)
{
    BlockingQueue<int> q(4);
    ASSERT_TRUE(q.push_batch({1, 2, 3, 4}));

    std::atomic<bool> pushed{false};
    std::thread producer([&] {
        ASSERT_TRUE(q.push(5));
        pushed.store(true);
    });
    std::this_thread::sleep_for(10ms);
    EXPECT_FALSE(pushed.load()); // full: the producer is parked

    // One drain takes everything and wakes the blocked producer.
    EXPECT_EQ(q.pop_all(), (std::vector<int>{1, 2, 3, 4}));
    producer.join();
    EXPECT_TRUE(pushed.load());
    EXPECT_EQ(q.pop_all(), (std::vector<int>{5}));

    // Empty open queue: pop_all returns empty without blocking.
    EXPECT_TRUE(q.pop_all().empty());
    EXPECT_FALSE(q.closed());
}

} // namespace
} // namespace noswalker::util
