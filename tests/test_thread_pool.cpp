/**
 * @file
 * Tests for the persistent fork-join pool backing parallel stepping.
 */
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace noswalker::util {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    EXPECT_EQ(pool.hired(), 3u);
    std::vector<std::atomic<int>> hits(100);
    pool.run(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hits) {
        EXPECT_EQ(h.load(), 1);
    }
}

TEST(ThreadPoolTest, ZeroHiredRunsOnTheCaller)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.hired(), 0u);
    const std::thread::id me = std::this_thread::get_id();
    std::size_t executed = 0;
    pool.run(16, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), me);
        ++executed;
    });
    EXPECT_EQ(executed, 16u);
}

TEST(ThreadPoolTest, ZeroTasksIsANoop)
{
    ThreadPool pool(2);
    bool touched = false;
    pool.run(0, [&](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, PropagatesTheFirstException)
{
    ThreadPool pool(2);
    std::atomic<int> before_throw{0};
    EXPECT_THROW(pool.run(64,
                          [&](std::size_t i) {
                              if (i == 5) {
                                  throw std::runtime_error("task 5");
                              }
                              before_throw.fetch_add(
                                  1, std::memory_order_relaxed);
                          }),
                 std::runtime_error);
    // Unclaimed indices were abandoned, not executed twice.
    EXPECT_LT(before_throw.load(), 64);
}

TEST(ThreadPoolTest, ReusableAcrossRunsAndAfterAnException)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        pool.run(8, [](std::size_t) { throw std::logic_error("boom"); }),
        std::logic_error);
    std::atomic<std::size_t> sum{0};
    for (int round = 0; round < 3; ++round) {
        pool.run(32, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 3u * (31u * 32u / 2));
}

TEST(ThreadPoolTest, ConcurrentCallersAreSerialized)
{
    // The walk service hands one pool to every worker; concurrent
    // run() calls must queue, not interleave state.
    ThreadPool pool(2);
    std::atomic<std::size_t> total{0};
    std::vector<std::thread> callers;
    callers.reserve(4);
    for (int c = 0; c < 4; ++c) {
        callers.emplace_back([&] {
            pool.run(50, [&](std::size_t) {
                total.fetch_add(1, std::memory_order_relaxed);
            });
        });
    }
    for (std::thread &t : callers) {
        t.join();
    }
    EXPECT_EQ(total.load(), 200u);
}

} // namespace
} // namespace noswalker::util
