/**
 * @file
 * Tests for BlockScheduler, WalkerPool and WalkerSpill.
 */
#include <gtest/gtest.h>

#include "core/block_scheduler.hpp"
#include "core/walker_pool.hpp"
#include "engine/walker.hpp"
#include "engine/walker_spill.hpp"
#include "storage/mem_device.hpp"
#include "util/memory_budget.hpp"

namespace noswalker {
namespace {

TEST(BlockScheduler, HottestPicksMaxCount)
{
    core::BlockScheduler sched(4, 4.0, 1 << 20, 4096);
    EXPECT_EQ(sched.hottest(), core::BlockScheduler::kNoBlock);
    sched.add_walker(1);
    sched.add_walker(2);
    sched.add_walker(2);
    EXPECT_EQ(sched.hottest(), 2u);
    sched.remove_walker(2);
    sched.remove_walker(2);
    EXPECT_EQ(sched.hottest(), 1u);
    sched.remove_walkers(1, 1);
    EXPECT_EQ(sched.hottest(), core::BlockScheduler::kNoBlock);
}

TEST(BlockScheduler, CountsTracked)
{
    core::BlockScheduler sched(2, 4.0, 1 << 20, 4096);
    sched.add_walker(0);
    sched.add_walker(0);
    EXPECT_EQ(sched.count(0), 2u);
    EXPECT_EQ(sched.count(1), 0u);
}

TEST(BlockScheduler, RemoveWalkersUnderflowClampsInsteadOfWrapping)
{
    // Regression: remove_walkers(b, n) with n > count used to wrap the
    // unsigned bucket to ~2^64, wedging the schedule on block b
    // forever.  Release builds clamp to zero; debug builds assert.
    core::BlockScheduler sched(4, 4.0, 1 << 20, 4096);
    sched.add_walker(1);
    sched.add_walker(2);
#ifdef NDEBUG
    sched.remove_walkers(1, 5); // over-removal clamps...
    EXPECT_EQ(sched.count(1), 0u);
    EXPECT_EQ(sched.hottest(), 2u) << "block 1 must not wrap hottest";
#else
    EXPECT_DEATH(sched.remove_walkers(1, 5), "");
#endif
}

TEST(BlockScheduler, HottestBreaksTiesTowardLowestBlockId)
{
    // Stated determinism contract (not an accident): the planner's
    // candidate order and the processed-block schedule rely on it.
    core::BlockScheduler sched(5, 4.0, 1 << 20, 4096);
    sched.add_walker(4);
    sched.add_walker(2);
    sched.add_walker(3);
    EXPECT_EQ(sched.hottest(), 2u);
    sched.add_walker(3);
    EXPECT_EQ(sched.hottest(), 3u) << "strictly hotter wins";
    sched.add_walker(2);
    EXPECT_EQ(sched.hottest(), 2u) << "tie at 2 resolves to lower id";
    EXPECT_EQ(sched.hottest_excluding(2), 3u);
}

TEST(BlockScheduler, TopKBreaksTiesTowardLowestIdAtEveryRank)
{
    core::BlockScheduler sched(6, 4.0, 1 << 20, 4096);
    // counts: b1=2, b3=2, b0=1, b5=1, b4=0.
    sched.add_walker(3);
    sched.add_walker(3);
    sched.add_walker(1);
    sched.add_walker(1);
    sched.add_walker(5);
    sched.add_walker(0);
    const std::vector<std::uint32_t> top =
        sched.top_k_excluding(6, {});
    const std::vector<std::uint32_t> want = {1, 3, 0, 5};
    EXPECT_EQ(top, want);
    const std::uint32_t skip[] = {1};
    const std::vector<std::uint32_t> rest =
        sched.top_k_excluding(2, skip);
    const std::vector<std::uint32_t> want_rest = {3, 0};
    EXPECT_EQ(rest, want_rest);
}

TEST(BlockScheduler, FineModeRule)
{
    // S_G = 1 MiB, alpha = 4, page 4 KiB: threshold at |Wa| = 64.
    core::BlockScheduler sched(2, 4.0, 1 << 20, 4096);
    EXPECT_FALSE(sched.fine_mode(1000));
    EXPECT_FALSE(sched.fine_mode(64)); // 4*64*4096 == S_G, not <
    EXPECT_TRUE(sched.fine_mode(63));
}

TEST(BlockScheduler, FineModeIsSticky)
{
    core::BlockScheduler sched(2, 4.0, 1 << 20, 4096);
    EXPECT_TRUE(sched.fine_mode(1));
    // Once fine, stays fine even if the count argument grows.
    EXPECT_TRUE(sched.fine_mode(1'000'000));
    EXPECT_TRUE(sched.fine_mode_active());
}

TEST(WalkerPool, AdmitParkTakeRetire)
{
    util::MemoryBudget budget(0);
    core::WalkerPool<engine::Walker> pool(3, 4, budget);
    EXPECT_EQ(pool.capacity(), 4u);
    EXPECT_TRUE(pool.can_admit());
    pool.admit();
    pool.admit();
    EXPECT_EQ(pool.live(), 2u);
    pool.park(1, engine::Walker{0, 5, 0});
    pool.park(1, engine::Walker{1, 6, 0});
    EXPECT_EQ(pool.parked(1), 2u);
    EXPECT_EQ(pool.total_parked(), 2u);
    EXPECT_EQ(pool.bucket_view(1).size(), 2u);
    auto bucket = pool.take_bucket(1);
    EXPECT_EQ(bucket.size(), 2u);
    EXPECT_EQ(pool.parked(1), 0u);
    pool.retire();
    pool.retire();
    EXPECT_EQ(pool.live(), 0u);
}

TEST(WalkerPool, CapacityBoundsAdmission)
{
    util::MemoryBudget budget(0);
    core::WalkerPool<engine::Walker> pool(1, 2, budget);
    pool.admit();
    pool.admit();
    EXPECT_FALSE(pool.can_admit());
    pool.retire();
    EXPECT_TRUE(pool.can_admit());
}

TEST(WalkerPool, BudgetChargedForCapacity)
{
    util::MemoryBudget budget(1 << 20);
    {
        core::WalkerPool<engine::Walker> pool(1, 100, budget);
        EXPECT_EQ(budget.used(), 100 * sizeof(engine::Walker));
    }
    EXPECT_EQ(budget.used(), 0u);
}

TEST(WalkerPool, ExplicitReservationOverride)
{
    util::MemoryBudget budget(1 << 20);
    core::WalkerPool<engine::Walker> pool(1, 1000, budget, 64);
    EXPECT_EQ(budget.used(), 64u);
}

TEST(WalkerSpill, NoTrafficUnderCapacity)
{
    storage::MemDevice dev;
    engine::WalkerSpill spill(dev, 16, 100, 4);
    spill.park(0, 50);
    spill.park(1, 50);
    spill.activate(0);
    EXPECT_EQ(spill.swap_bytes(), 0u);
    EXPECT_EQ(spill.resident(), 100u);
}

TEST(WalkerSpill, OverflowWritesOut)
{
    storage::MemDevice dev;
    engine::WalkerSpill spill(dev, 16, 100, 4);
    spill.park(0, 150);
    // 50 walkers * 16 bytes spilled.
    EXPECT_EQ(spill.swap_bytes(), 50u * 16);
    EXPECT_EQ(spill.resident(), 100u);
    EXPECT_GT(dev.stats().bytes_written, 0u);
}

TEST(WalkerSpill, ActivateReadsBack)
{
    storage::MemDevice dev;
    engine::WalkerSpill spill(dev, 16, 100, 4);
    spill.park(0, 150);
    const std::uint64_t written = spill.swap_bytes();
    spill.activate(0);
    // Read-back traffic of the 50 spilled states (may evict others).
    EXPECT_GE(spill.swap_bytes(), written + 50u * 16);
    EXPECT_GT(dev.stats().bytes_read, 0u);
    // After activation the whole bucket can be retired.
    spill.retire(0, 150);
    EXPECT_EQ(spill.resident(), 0u);
}

TEST(WalkerSpill, EvictionFromColdestMakesRoom)
{
    storage::MemDevice dev;
    engine::WalkerSpill spill(dev, 16, 100, 4);
    spill.park(0, 60); // resident 60
    spill.park(1, 80); // 140 > 100: 40 of block 1 spilled
    EXPECT_EQ(spill.resident(), 100u);
    spill.activate(1); // needs 40 back: evicts from block 0
    spill.retire(1, 80);
    EXPECT_EQ(spill.resident(), 20u);
    spill.activate(0); // block 0's evicted states return
    spill.retire(0, 60);
    EXPECT_EQ(spill.resident(), 0u);
}

TEST(WalkerSpill, SwapTrafficGoesThroughDeviceModel)
{
    storage::MemDevice dev(storage::SsdModel::p4618());
    engine::WalkerSpill spill(dev, 16, 10, 2);
    spill.park(0, 1000);
    EXPECT_GT(dev.stats().busy_seconds, 0.0);
    EXPECT_EQ(dev.stats().bytes_written, spill.swap_bytes());
}

} // namespace
} // namespace noswalker
