/**
 * @file
 * Application-level tests: PPR, SimRank, RWD, Graphlet, DeepWalk.
 */
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "apps/deepwalk.hpp"
#include "apps/graphlet.hpp"
#include "apps/ppr.hpp"
#include "apps/rwd.hpp"
#include "apps/simrank.hpp"
#include "baselines/inmemory.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/mem_device.hpp"

namespace noswalker::apps {
namespace {

struct Fixture {
    graph::CsrGraph graph;
    storage::MemDevice device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;

    explicit Fixture(graph::CsrGraph g, std::uint64_t block_bytes = 4096)
        : graph(std::move(g))
    {
        graph::GraphFile::write(graph, device);
        file = std::make_unique<graph::GraphFile>(device);
        partition =
            std::make_unique<graph::BlockPartition>(*file, block_bytes);
    }
};

TEST(Ppr, WalkerScheduleCoversSources)
{
    std::vector<graph::VertexId> sources = {3, 7};
    PersonalizedPageRank app(sources, 5, 10);
    EXPECT_EQ(app.total_walkers(), 10u);
    EXPECT_EQ(app.generate(0).location, 3u);
    EXPECT_EQ(app.generate(4).location, 3u);
    EXPECT_EQ(app.generate(5).location, 7u);
    EXPECT_EQ(app.generate(9).location, 7u);
}

TEST(Ppr, StarGraphMassConcentratesOnHub)
{
    Fixture s(graph::generate_star(32));
    PersonalizedPageRank app({1}, 500, 4, /*record_visits=*/true);
    baselines::InMemoryEngine<PersonalizedPageRank> eng(*s.file);
    eng.run(app, app.total_walkers());
    // From leaf 1 every odd step lands on the hub: hub mass ~1/2 and
    // is the single largest.
    const auto top = app.top_k(0, 1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].first, 0u);
    EXPECT_NEAR(app.estimate(0, 0), 0.5, 0.05);
}

TEST(Ppr, EstimateZeroForUnvisited)
{
    Fixture s(graph::generate_cycle(64));
    PersonalizedPageRank app({0}, 10, 3, true);
    baselines::InMemoryEngine<PersonalizedPageRank> eng(*s.file);
    eng.run(app, app.total_walkers());
    // On a directed cycle a 3-step walk from 0 visits only 1,2,3.
    EXPECT_GT(app.estimate(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(app.estimate(0, 40), 0.0);
}

TEST(SimRank, IdenticalStartsMeetImmediately)
{
    Fixture s(graph::generate_cycle(16));
    // Both sides start at the same vertex on a deterministic cycle:
    // the paired walks coincide at every step, so the first meeting is
    // step 1 and the estimate is decay^1.
    SimRank app(4, 4, 100, 8, 0.6);
    baselines::InMemoryEngine<SimRank> eng(*s.file);
    eng.run(app, app.total_walkers());
    EXPECT_NEAR(app.estimate(), 0.6, 1e-9);
}

TEST(SimRank, DisconnectedPairNeverMeets)
{
    // Two disjoint cycles: 0..3 and 4..7.
    std::vector<graph::Edge> edges;
    for (graph::VertexId v = 0; v < 4; ++v) {
        edges.push_back({v, (v + 1) % 4, 1.0f});
        edges.push_back(
            {static_cast<graph::VertexId>(4 + v),
             static_cast<graph::VertexId>(4 + (v + 1) % 4), 1.0f});
    }
    Fixture s(graph::build_csr(edges));
    SimRank app(0, 4, 50, 6, 0.6);
    baselines::InMemoryEngine<SimRank> eng(*s.file);
    eng.run(app, app.total_walkers());
    EXPECT_DOUBLE_EQ(app.estimate(), 0.0);
}

TEST(SimRank, AdjacentVerticesOnCycleMeetNever)
{
    // Deterministic cycle: walkers keep their initial offset forever.
    Fixture s(graph::generate_cycle(8));
    SimRank app(0, 1, 20, 8, 0.6);
    baselines::InMemoryEngine<SimRank> eng(*s.file);
    eng.run(app, app.total_walkers());
    EXPECT_DOUBLE_EQ(app.estimate(), 0.0);
}

TEST(Rwd, VisitCountsMatchWalkLengths)
{
    Fixture s(graph::generate_uniform(200, 6, 9));
    RandomWalkDomination app(200, 6);
    baselines::InMemoryEngine<RandomWalkDomination> eng(*s.file);
    const auto stats = eng.run(app, app.total_walkers());
    std::uint64_t total_visits = 0;
    for (graph::VertexId v = 0; v < 200; ++v) {
        total_visits += app.visits(v);
    }
    EXPECT_EQ(total_visits, stats.steps);
    EXPECT_EQ(stats.steps, 200u * 6);
}

TEST(Rwd, HubDominatesOnStar)
{
    Fixture s(graph::generate_star(64));
    RandomWalkDomination app(64, 6);
    baselines::InMemoryEngine<RandomWalkDomination> eng(*s.file);
    eng.run(app, app.total_walkers());
    const auto top = app.top_k(3);
    ASSERT_GE(top.size(), 1u);
    EXPECT_EQ(top[0].first, 0u); // the hub
    EXPECT_GT(top[0].second, top.size() > 1 ? top[1].second : 0u);
}

TEST(Graphlet, CompleteGraphIsAllTriangles)
{
    Fixture s(graph::generate_complete(16));
    GraphletConcentration app(16, 400);
    baselines::InMemoryEngine<GraphletConcentration> eng(*s.file);
    eng.run(app, app.total_walkers());
    EXPECT_DOUBLE_EQ(app.triangle_concentration(s.graph), 1.0);
}

TEST(Graphlet, CycleHasNoTriangles)
{
    Fixture s(graph::generate_cycle(64));
    GraphletConcentration app(64, 200);
    baselines::InMemoryEngine<GraphletConcentration> eng(*s.file);
    eng.run(app, app.total_walkers());
    EXPECT_DOUBLE_EQ(app.triangle_concentration(s.graph), 0.0);
}

TEST(Graphlet, EstimateTracksGroundTruthOnMixedGraph)
{
    // Two triangles plus a long tail: concentration strictly between
    // 0 and 1.
    std::vector<graph::Edge> edges = {
        {0, 1, 1}, {1, 2, 1}, {2, 0, 1},
        {3, 4, 1}, {4, 5, 1}, {5, 3, 1},
        {6, 7, 1}, {7, 8, 1}, {8, 9, 1}, {9, 6, 1}};
    graph::BuildOptions opt;
    opt.symmetrize = true;
    Fixture s(graph::build_csr(edges, opt));
    GraphletConcentration app(10, 4000);
    baselines::InMemoryEngine<GraphletConcentration> eng(*s.file);
    eng.run(app, app.total_walkers());
    const double c = app.triangle_concentration(s.graph);
    EXPECT_GT(c, 0.2);
    EXPECT_LT(c, 0.9);
}

TEST(DeepWalk, SinkReceivesCompleteSequences)
{
    Fixture s(graph::generate_uniform(100, 5, 12));
    std::uint64_t sequences = 0;
    std::set<std::uint64_t> ids;
    DeepWalk app(100, 2, 8,
                 [&](std::uint64_t id,
                     const std::vector<graph::VertexId> &seq) {
                     ++sequences;
                     ids.insert(id);
                     ASSERT_EQ(seq.size(), 9u); // start + 8 steps
                     EXPECT_LT(seq.front(), 100u);
                 });
    EXPECT_EQ(app.total_walkers(), 200u);
    baselines::InMemoryEngine<DeepWalk> eng(*s.file);
    eng.run(app, app.total_walkers());
    EXPECT_EQ(sequences, 200u);
    EXPECT_EQ(ids.size(), 200u);
}

TEST(DeepWalk, SequencesFollowEdges)
{
    Fixture s(graph::generate_uniform(64, 4, 13));
    DeepWalk app(64, 1, 5,
                 [&](std::uint64_t,
                     const std::vector<graph::VertexId> &seq) {
                     for (std::size_t i = 1; i < seq.size(); ++i) {
                         ASSERT_TRUE(s.graph.has_edge(seq[i - 1], seq[i]));
                     }
                 });
    baselines::InMemoryEngine<DeepWalk> eng(*s.file);
    eng.run(app, app.total_walkers());
}

TEST(Apps, RunUnderNosWalkerEngineToo)
{
    Fixture s(graph::generate_uniform(300, 8, 14));
    core::EngineConfig cfg = core::EngineConfig::full(0, 4096);
    {
        PersonalizedPageRank app({5}, 50, 6, true);
        core::NosWalkerEngine<PersonalizedPageRank> eng(*s.file,
                                                        *s.partition, cfg);
        const auto stats = eng.run(app, app.total_walkers());
        EXPECT_EQ(stats.walkers, 50u);
    }
    {
        RandomWalkDomination app(300, 6);
        core::NosWalkerEngine<RandomWalkDomination> eng(*s.file,
                                                        *s.partition, cfg);
        const auto stats = eng.run(app, app.total_walkers());
        EXPECT_EQ(stats.steps, 300u * 6);
    }
    {
        GraphletConcentration app(300, 30);
        core::NosWalkerEngine<GraphletConcentration> eng(*s.file,
                                                         *s.partition,
                                                         cfg);
        const auto stats = eng.run(app, app.total_walkers());
        EXPECT_EQ(stats.walkers, 30u);
    }
}

} // namespace
} // namespace noswalker::apps
