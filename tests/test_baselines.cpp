/**
 * @file
 * Behavioural tests of the baseline engines: each must exhibit the
 * scheduling policy of the system it reproduces.
 */
#include <gtest/gtest.h>

#include <memory>

#include "apps/basic_rw.hpp"
#include "baselines/drunkardmob.hpp"
#include "baselines/graphene.hpp"
#include "baselines/graphwalker.hpp"
#include "baselines/inmemory.hpp"
#include "baselines/knightking_model.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "recording_app.hpp"
#include "storage/mem_device.hpp"
#include "util/error.hpp"

namespace noswalker::baselines {
namespace {

struct Fixture {
    graph::CsrGraph graph;
    storage::MemDevice device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;

    explicit Fixture(graph::CsrGraph g, std::uint64_t block_bytes = 8192)
        : graph(std::move(g))
    {
        graph::GraphFile::write(graph, device);
        file = std::make_unique<graph::GraphFile>(device);
        partition =
            std::make_unique<graph::BlockPartition>(*file, block_bytes);
    }
};

graph::CsrGraph
test_rmat(std::uint64_t seed = 40, unsigned scale = 9)
{
    return graph::generate_rmat({.scale = scale,
                                 .edge_factor = 16,
                                 .a = 0.57,
                                 .b = 0.19,
                                 .c = 0.19,
                                 .seed = seed,
                                 .symmetrize = false,
                                 .weighted = false});
}

TEST(DrunkardMob, StepCountExactOnRegularGraph)
{
    Fixture s(graph::generate_uniform(1000, 8, 2));
    apps::BasicRandomWalk app(10, 1000);
    DrunkardMobEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, 0);
    const auto stats = eng.run(app, 200);
    EXPECT_EQ(stats.steps, 2000u);
    EXPECT_EQ(stats.walkers, 200u);
}

TEST(DrunkardMob, LoadsEveryBlockEachSweep)
{
    Fixture s(test_rmat(), 4096);
    // One walker with one step starting at vertex 0 (never isolated in
    // RMAT): DrunkardMob still streams whole blocks to serve it.
    apps::BasicRandomWalk app(1, s.graph.num_vertices(),
                              /*random_start=*/false);
    DrunkardMobEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, 0);
    const auto stats = eng.run(app, 1);
    // A full sweep is up to num_blocks loads for a single step.
    EXPECT_GE(stats.blocks_loaded, 1u);
    EXPECT_GT(stats.edges_per_step(), 1.0);
}

TEST(DrunkardMob, FailsWhenWalkersExceedBudget)
{
    Fixture s(test_rmat(), 8192);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    // Budget fits the index and buffers but not 10^6 walker states.
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition, 0.4);
    DrunkardMobEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition,
                                                 budget);
    EXPECT_THROW(eng.run(app, 1'000'000), util::BudgetExceeded);
}

TEST(GraphWalker, ReentryMovesMultipleStepsPerLoad)
{
    Fixture s(test_rmat(), 1ULL << 30); // single block: full re-entry
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    GraphWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, 0);
    const auto stats = eng.run(app, 100);
    // One block, walkers never leave it: a single load suffices.
    EXPECT_EQ(stats.blocks_loaded, 1u);
    EXPECT_EQ(stats.steps, stats.block_steps);
}

TEST(GraphWalker, FewerEdgesPerStepThanDrunkardMob)
{
    Fixture s(test_rmat(), 4096);
    apps::BasicRandomWalk a1(10, s.graph.num_vertices());
    apps::BasicRandomWalk a2(10, s.graph.num_vertices());
    // A tight budget keeps both systems genuinely out of core (with an
    // unlimited budget both would cache the whole graph).
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition, 0.3);
    DrunkardMobEngine<apps::BasicRandomWalk> dm(*s.file, *s.partition,
                                                budget);
    GraphWalkerEngine<apps::BasicRandomWalk> gw(*s.file, *s.partition,
                                                budget);
    const auto sd = dm.run(a1, 500);
    const auto sg = gw.run(a2, 500);
    // Dead ends make exact step totals path-dependent; compare the
    // normalized Fig 2(a) metric: GraphWalker needs fewer loaded edges
    // per step than DrunkardMob.
    EXPECT_NEAR(static_cast<double>(sd.steps),
                static_cast<double>(sg.steps), 0.05 * sd.steps);
    EXPECT_LT(sg.edges_per_step(), sd.edges_per_step());
}

TEST(GraphWalker, SpillsUnderTightWalkerBuffer)
{
    Fixture s(test_rmat(41, 10), 8192);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition, 0.3);
    GraphWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition,
                                                 budget);
    const auto stats = eng.run(app, 100'000);
    EXPECT_GT(stats.swap_bytes, 0u);
    // Unlimited budget: no swapping at all.
    apps::BasicRandomWalk app2(10, s.graph.num_vertices());
    GraphWalkerEngine<apps::BasicRandomWalk> roomy(*s.file, *s.partition,
                                                   0);
    EXPECT_EQ(roomy.run(app2, 100'000).swap_bytes, 0u);
}

TEST(GraphWalker, TransitionsFollowRealEdges)
{
    Fixture s(test_rmat(42), 4096);
    testing_support::RecordingWalk app(6, s.graph.num_vertices());
    GraphWalkerEngine<testing_support::RecordingWalk> eng(*s.file,
                                                          *s.partition, 0);
    eng.run(app, 200);
    for (const auto &[from, to] : app.transitions) {
        ASSERT_TRUE(s.graph.has_edge(from, to));
    }
}

TEST(Graphene, OnlyIssuesFineLoads)
{
    Fixture s(test_rmat(43), 4096);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    GrapheneEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, 0);
    const auto stats = eng.run(app, 300);
    EXPECT_GT(stats.fine_loads, 0u);
    EXPECT_EQ(stats.blocks_loaded, 0u);
    EXPECT_GT(stats.steps, 0u);
}

TEST(Graphene, SkipsWalkerFreeBlocks)
{
    Fixture s(test_rmat(44), 4096);
    // One walker, one step, from vertex 0: only its pages are touched.
    apps::BasicRandomWalk app(1, s.graph.num_vertices(),
                              /*random_start=*/false);
    GrapheneEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition, 0);
    const auto stats = eng.run(app, 1);
    EXPECT_EQ(stats.fine_loads, 1u);
    EXPECT_LE(stats.graph_bytes_read,
              8 * storage::BlockReader::kPageBytes);
}

TEST(Graphene, ReadsLessThanDrunkardMob)
{
    Fixture s(test_rmat(45), 4096);
    apps::BasicRandomWalk a1(10, s.graph.num_vertices());
    apps::BasicRandomWalk a2(10, s.graph.num_vertices());
    // Tight budget: DrunkardMob cannot cache the graph, while
    // Graphene's on-demand fine loads touch only walker pages.
    const std::uint64_t budget =
        testing_support::tight_budget(*s.file, *s.partition, 0.3);
    DrunkardMobEngine<apps::BasicRandomWalk> dm(*s.file, *s.partition,
                                                budget);
    GrapheneEngine<apps::BasicRandomWalk> ge(*s.file, *s.partition, 0);
    const auto sd = dm.run(a1, 100);
    const auto sg = ge.run(a2, 100);
    EXPECT_EQ(sd.steps, sg.steps);
    EXPECT_LT(sg.graph_bytes_read, sd.graph_bytes_read);
}

TEST(GraphWalker, CachesBlocksWhenBudgetAllows)
{
    Fixture s(test_rmat(48), 4096);
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    // Unlimited budget: the whole graph is cached, so device traffic
    // cannot exceed one full pass over the edge region (plus header).
    GraphWalkerEngine<apps::BasicRandomWalk> eng(*s.file, *s.partition,
                                                 0);
    const auto stats = eng.run(app, 2000);
    EXPECT_LE(stats.graph_bytes_read,
              s.file->edge_region_bytes() + (64 << 10));
}

TEST(InMemory, LoadsEdgeRegionExactlyOnce)
{
    Fixture s(test_rmat(46));
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    InMemoryEngine<apps::BasicRandomWalk> eng(*s.file);
    const auto stats = eng.run(app, 500);
    EXPECT_EQ(stats.graph_bytes_read, s.file->edge_region_bytes());
    EXPECT_EQ(stats.edges_loaded, s.file->num_edges());
    EXPECT_GT(stats.io_busy_seconds, 0.0);
}

TEST(InMemory, StepCountMatchesOutOfCoreEngines)
{
    Fixture s(graph::generate_uniform(500, 6, 3));
    apps::BasicRandomWalk a1(8, 500);
    apps::BasicRandomWalk a2(8, 500);
    InMemoryEngine<apps::BasicRandomWalk> im(*s.file);
    GraphWalkerEngine<apps::BasicRandomWalk> gw(*s.file, *s.partition, 0);
    EXPECT_EQ(im.run(a1, 300).steps, gw.run(a2, 300).steps);
}

TEST(KnightKing, NetworkModelMath)
{
    ClusterModel m;
    m.nodes = 4;
    m.network_bps = 10e9;
    m.message_bytes = 16;
    // 1M messages * 16B over 4 * 1.25 GB/s.
    EXPECT_NEAR(m.network_seconds(1'000'000),
                16e6 / (1.25e9 * 4), 1e-9);
    EXPECT_DOUBLE_EQ(m.network_seconds(0), 0.0);
    ClusterModel single;
    single.nodes = 1;
    EXPECT_DOUBLE_EQ(single.network_seconds(1'000'000), 0.0);
}

TEST(KnightKing, LoadModelMath)
{
    ClusterModel m;
    m.nodes = 4;
    m.load_bandwidth = 1e9;
    EXPECT_DOUBLE_EQ(m.load_seconds(4'000'000'000ULL), 1.0);
}

TEST(KnightKing, CountsCrossPartitionMessages)
{
    Fixture s(test_rmat(47));
    apps::BasicRandomWalk app(10, s.graph.num_vertices());
    ClusterModel m;
    m.nodes = 4;
    KnightKingModelEngine<apps::BasicRandomWalk> eng(*s.file, m);
    const auto result = eng.run(app, 500);
    EXPECT_GT(result.cross_partition_messages, 0u);
    // Hash partitioning: ~3/4 of steps cross nodes.
    EXPECT_LE(result.cross_partition_messages, result.stats.steps);
    EXPECT_GT(result.cross_partition_messages, result.stats.steps / 2);
    EXPECT_GT(result.total_seconds(), result.walk_seconds());
}

TEST(KnightKing, WalkSecondsIsMaxOfComputeAndNetwork)
{
    ClusterRunResult r;
    r.compute_seconds = 2.0;
    r.network_seconds = 3.0;
    r.load_seconds = 1.0;
    EXPECT_DOUBLE_EQ(r.walk_seconds(), 3.0);
    EXPECT_DOUBLE_EQ(r.total_seconds(), 4.0);
}

TEST(RunStats, ModeledTimePolicies)
{
    engine::RunStats sync;
    sync.io_busy_seconds = 2.0;
    sync.io_efficiency = 0.25;
    sync.cpu_seconds = 1.0;
    sync.pipelined = false;
    EXPECT_DOUBLE_EQ(sync.modeled_seconds(), 9.0);

    engine::RunStats piped = sync;
    piped.pipelined = true;
    piped.io_efficiency = 0.8;
    EXPECT_DOUBLE_EQ(piped.modeled_seconds(), 2.5);

    engine::RunStats cpu_bound = piped;
    cpu_bound.cpu_seconds = 10.0;
    EXPECT_DOUBLE_EQ(cpu_bound.modeled_seconds(), 10.0);

    // Pipelined overlap hides busy phases in each other, but seconds
    // the consumer provably blocked on loads extend the total.
    engine::RunStats stalled = piped;
    stalled.io_wait_seconds = 0.75;
    EXPECT_DOUBLE_EQ(stalled.modeled_seconds(), 3.25);

    // The non-pipelined total already serializes loading and stepping;
    // the wait term must not be double counted there.
    engine::RunStats sync_stalled = sync;
    sync_stalled.io_wait_seconds = 0.75;
    EXPECT_DOUBLE_EQ(sync_stalled.modeled_seconds(), 9.0);
}

TEST(RunStats, ScaledAndAccumulateRoundTripNewerCounters)
{
    // Every counter added since the walk-service PR must survive both
    // scaled() (per-tenant attribution) and operator+= (fleet totals)
    // with its intended semantics: waits and hit/mispredict counts are
    // additive work, pre-sample pool sizes and peaks are shared-state
    // maxima that scaling must NOT split.
    engine::RunStats s;
    s.io_wait_seconds = 2.0;
    s.prefetch_hits = 40;
    s.prefetch_mispredicts = 8;
    s.migrations = 100;
    s.migration_batches = 10;
    s.migration_wait_seconds = 0.4;
    s.migration_overlap_seconds = 0.8;
    s.presample_bytes_used = 1000;
    s.presample_bytes_total = 4000;
    s.peak_memory = 512;
    s.io_efficiency = 0.8;
    s.pipelined = true;

    const engine::RunStats half = s.scaled(0.5);
    EXPECT_DOUBLE_EQ(half.io_wait_seconds, 1.0);
    EXPECT_EQ(half.prefetch_hits, 20u);
    EXPECT_EQ(half.prefetch_mispredicts, 4u);
    EXPECT_EQ(half.migrations, 50u);
    EXPECT_EQ(half.migration_batches, 5u);
    EXPECT_DOUBLE_EQ(half.migration_wait_seconds, 0.2);
    EXPECT_DOUBLE_EQ(half.migration_overlap_seconds, 0.4);
    EXPECT_EQ(half.presample_bytes_used, 1000u)
        << "shared pool size is not divisible across tenants";
    EXPECT_EQ(half.presample_bytes_total, 4000u);
    EXPECT_EQ(half.peak_memory, 512u);
    EXPECT_DOUBLE_EQ(half.io_efficiency, 0.8);
    EXPECT_TRUE(half.pipelined);

    engine::RunStats sum = half;
    engine::RunStats other;
    other.io_wait_seconds = 0.5;
    other.prefetch_hits = 5;
    other.prefetch_mispredicts = 1;
    other.migrations = 7;
    other.migration_batches = 2;
    other.migration_wait_seconds = 0.1;
    other.migration_overlap_seconds = 0.05;
    other.presample_bytes_used = 3000;
    other.presample_bytes_total = 3000;
    other.peak_memory = 1024;
    other.io_efficiency = 0.5;
    sum += other;
    EXPECT_DOUBLE_EQ(sum.io_wait_seconds, 1.5);
    EXPECT_EQ(sum.prefetch_hits, 25u);
    EXPECT_EQ(sum.prefetch_mispredicts, 5u);
    EXPECT_EQ(sum.migrations, 57u);
    EXPECT_EQ(sum.migration_batches, 7u);
    EXPECT_DOUBLE_EQ(sum.migration_wait_seconds, 0.3);
    EXPECT_DOUBLE_EQ(sum.migration_overlap_seconds, 0.45);
    EXPECT_EQ(sum.presample_bytes_used, 3000u) << "max, not sum";
    EXPECT_EQ(sum.presample_bytes_total, 4000u) << "max, not sum";
    EXPECT_EQ(sum.peak_memory, 1024u) << "max, not sum";
    EXPECT_DOUBLE_EQ(sum.io_efficiency, 0.8) << "max, not sum";
    EXPECT_TRUE(sum.pipelined);
}

TEST(RunStats, DerivedMetrics)
{
    engine::RunStats s;
    s.steps = 100;
    s.edges_loaded = 2500;
    s.graph_bytes_read = 10000;
    s.swap_bytes = 6000;
    EXPECT_DOUBLE_EQ(s.edges_per_step(), 25.0);
    EXPECT_EQ(s.total_io_bytes(), 16000u);
    EXPECT_FALSE(s.to_string().empty());
}

} // namespace
} // namespace noswalker::baselines
