
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/knightking_model.cpp" "src/CMakeFiles/noswalker.dir/baselines/knightking_model.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/baselines/knightking_model.cpp.o.d"
  "/root/repo/src/core/block_scheduler.cpp" "src/CMakeFiles/noswalker.dir/core/block_scheduler.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/core/block_scheduler.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/noswalker.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/core/config.cpp.o.d"
  "/root/repo/src/core/presample_buffer.cpp" "src/CMakeFiles/noswalker.dir/core/presample_buffer.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/core/presample_buffer.cpp.o.d"
  "/root/repo/src/engine/run_stats.cpp" "src/CMakeFiles/noswalker.dir/engine/run_stats.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/engine/run_stats.cpp.o.d"
  "/root/repo/src/engine/walker_spill.cpp" "src/CMakeFiles/noswalker.dir/engine/walker_spill.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/engine/walker_spill.cpp.o.d"
  "/root/repo/src/graph/builder.cpp" "src/CMakeFiles/noswalker.dir/graph/builder.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/graph/builder.cpp.o.d"
  "/root/repo/src/graph/csr_graph.cpp" "src/CMakeFiles/noswalker.dir/graph/csr_graph.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/graph/csr_graph.cpp.o.d"
  "/root/repo/src/graph/datasets.cpp" "src/CMakeFiles/noswalker.dir/graph/datasets.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/graph/datasets.cpp.o.d"
  "/root/repo/src/graph/edge_list_io.cpp" "src/CMakeFiles/noswalker.dir/graph/edge_list_io.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/graph/edge_list_io.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/noswalker.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph_file.cpp" "src/CMakeFiles/noswalker.dir/graph/graph_file.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/graph/graph_file.cpp.o.d"
  "/root/repo/src/graph/partition.cpp" "src/CMakeFiles/noswalker.dir/graph/partition.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/graph/partition.cpp.o.d"
  "/root/repo/src/storage/async_loader.cpp" "src/CMakeFiles/noswalker.dir/storage/async_loader.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/async_loader.cpp.o.d"
  "/root/repo/src/storage/block_cache.cpp" "src/CMakeFiles/noswalker.dir/storage/block_cache.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/block_cache.cpp.o.d"
  "/root/repo/src/storage/block_reader.cpp" "src/CMakeFiles/noswalker.dir/storage/block_reader.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/block_reader.cpp.o.d"
  "/root/repo/src/storage/file_device.cpp" "src/CMakeFiles/noswalker.dir/storage/file_device.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/file_device.cpp.o.d"
  "/root/repo/src/storage/io_device.cpp" "src/CMakeFiles/noswalker.dir/storage/io_device.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/io_device.cpp.o.d"
  "/root/repo/src/storage/mem_device.cpp" "src/CMakeFiles/noswalker.dir/storage/mem_device.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/mem_device.cpp.o.d"
  "/root/repo/src/storage/raid_device.cpp" "src/CMakeFiles/noswalker.dir/storage/raid_device.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/raid_device.cpp.o.d"
  "/root/repo/src/storage/ssd_model.cpp" "src/CMakeFiles/noswalker.dir/storage/ssd_model.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/storage/ssd_model.cpp.o.d"
  "/root/repo/src/util/alias_table.cpp" "src/CMakeFiles/noswalker.dir/util/alias_table.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/util/alias_table.cpp.o.d"
  "/root/repo/src/util/bitmap.cpp" "src/CMakeFiles/noswalker.dir/util/bitmap.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/util/bitmap.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/noswalker.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/memory_budget.cpp" "src/CMakeFiles/noswalker.dir/util/memory_budget.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/util/memory_budget.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/noswalker.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/noswalker.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
