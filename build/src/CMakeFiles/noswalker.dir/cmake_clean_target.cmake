file(REMOVE_RECURSE
  "libnoswalker.a"
)
