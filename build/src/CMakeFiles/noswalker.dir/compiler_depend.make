# Empty compiler generated dependencies file for noswalker.
# This may be replaced when dependencies are built.
