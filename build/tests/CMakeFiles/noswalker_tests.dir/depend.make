# Empty dependencies file for noswalker_tests.
# This may be replaced when dependencies are built.
