
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_apps.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_apps.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_apps.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_block_cache.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_block_cache.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_block_cache.cpp.o.d"
  "/root/repo/tests/test_engine.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_engine.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_engine.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_graph.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_graph.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_graph.cpp.o.d"
  "/root/repo/tests/test_graph_file.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_graph_file.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_graph_file.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_presample.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_presample.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_presample.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_scheduler_pool.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_scheduler_pool.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_scheduler_pool.cpp.o.d"
  "/root/repo/tests/test_second_order.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_second_order.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_second_order.cpp.o.d"
  "/root/repo/tests/test_storage.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_storage.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_storage.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/noswalker_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/noswalker_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/noswalker.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
