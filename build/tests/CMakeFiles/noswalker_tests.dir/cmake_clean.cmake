file(REMOVE_RECURSE
  "CMakeFiles/noswalker_tests.dir/test_apps.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_apps.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_baselines.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_baselines.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_block_cache.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_block_cache.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_engine.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_engine.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_graph.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_graph.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_graph_file.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_graph_file.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_integration.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_presample.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_presample.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_properties.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_properties.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_scheduler_pool.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_scheduler_pool.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_second_order.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_second_order.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_storage.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_storage.cpp.o.d"
  "CMakeFiles/noswalker_tests.dir/test_util.cpp.o"
  "CMakeFiles/noswalker_tests.dir/test_util.cpp.o.d"
  "noswalker_tests"
  "noswalker_tests.pdb"
  "noswalker_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noswalker_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
