file(REMOVE_RECURSE
  "CMakeFiles/fig15_node2vec.dir/fig15_node2vec.cpp.o"
  "CMakeFiles/fig15_node2vec.dir/fig15_node2vec.cpp.o.d"
  "fig15_node2vec"
  "fig15_node2vec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_node2vec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
