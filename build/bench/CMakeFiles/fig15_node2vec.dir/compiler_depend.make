# Empty compiler generated dependencies file for fig15_node2vec.
# This may be replaced when dependencies are built.
