# Empty dependencies file for fig11_walk_length.
# This may be replaced when dependencies are built.
