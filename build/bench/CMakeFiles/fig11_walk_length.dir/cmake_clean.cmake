file(REMOVE_RECURSE
  "CMakeFiles/fig11_walk_length.dir/fig11_walk_length.cpp.o"
  "CMakeFiles/fig11_walk_length.dir/fig11_walk_length.cpp.o.d"
  "fig11_walk_length"
  "fig11_walk_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_walk_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
