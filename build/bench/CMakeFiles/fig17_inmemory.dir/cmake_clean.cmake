file(REMOVE_RECURSE
  "CMakeFiles/fig17_inmemory.dir/fig17_inmemory.cpp.o"
  "CMakeFiles/fig17_inmemory.dir/fig17_inmemory.cpp.o.d"
  "fig17_inmemory"
  "fig17_inmemory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_inmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
