# Empty compiler generated dependencies file for fig17_inmemory.
# This may be replaced when dependencies are built.
