file(REMOVE_RECURSE
  "CMakeFiles/fig02_edges_per_step.dir/fig02_edges_per_step.cpp.o"
  "CMakeFiles/fig02_edges_per_step.dir/fig02_edges_per_step.cpp.o.d"
  "fig02_edges_per_step"
  "fig02_edges_per_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_edges_per_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
