# Empty dependencies file for fig02_edges_per_step.
# This may be replaced when dependencies are built.
