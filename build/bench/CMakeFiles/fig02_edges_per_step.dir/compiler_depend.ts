# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig02_edges_per_step.
