# Empty compiler generated dependencies file for fig10_num_walkers.
# This may be replaced when dependencies are built.
