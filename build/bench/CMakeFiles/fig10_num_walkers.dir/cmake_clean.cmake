file(REMOVE_RECURSE
  "CMakeFiles/fig10_num_walkers.dir/fig10_num_walkers.cpp.o"
  "CMakeFiles/fig10_num_walkers.dir/fig10_num_walkers.cpp.o.d"
  "fig10_num_walkers"
  "fig10_num_walkers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_num_walkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
