file(REMOVE_RECURSE
  "CMakeFiles/fig12_memory_budget.dir/fig12_memory_budget.cpp.o"
  "CMakeFiles/fig12_memory_budget.dir/fig12_memory_budget.cpp.o.d"
  "fig12_memory_budget"
  "fig12_memory_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_memory_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
