# Empty compiler generated dependencies file for fig12_memory_budget.
# This may be replaced when dependencies are built.
