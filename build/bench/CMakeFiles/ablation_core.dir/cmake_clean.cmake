file(REMOVE_RECURSE
  "CMakeFiles/ablation_core.dir/ablation_core.cpp.o"
  "CMakeFiles/ablation_core.dir/ablation_core.cpp.o.d"
  "ablation_core"
  "ablation_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
