# Empty dependencies file for ablation_core.
# This may be replaced when dependencies are built.
