file(REMOVE_RECURSE
  "CMakeFiles/fig16_graphene.dir/fig16_graphene.cpp.o"
  "CMakeFiles/fig16_graphene.dir/fig16_graphene.cpp.o.d"
  "fig16_graphene"
  "fig16_graphene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_graphene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
