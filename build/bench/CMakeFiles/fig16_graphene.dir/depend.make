# Empty dependencies file for fig16_graphene.
# This may be replaced when dependencies are built.
