# Empty dependencies file for fig09_applications.
# This may be replaced when dependencies are built.
