file(REMOVE_RECURSE
  "CMakeFiles/fig09_applications.dir/fig09_applications.cpp.o"
  "CMakeFiles/fig09_applications.dir/fig09_applications.cpp.o.d"
  "fig09_applications"
  "fig09_applications.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
