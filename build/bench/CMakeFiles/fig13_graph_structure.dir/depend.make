# Empty dependencies file for fig13_graph_structure.
# This may be replaced when dependencies are built.
