file(REMOVE_RECURSE
  "CMakeFiles/fig13_graph_structure.dir/fig13_graph_structure.cpp.o"
  "CMakeFiles/fig13_graph_structure.dir/fig13_graph_structure.cpp.o.d"
  "fig13_graph_structure"
  "fig13_graph_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_graph_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
