# Empty compiler generated dependencies file for fig04_longtail.
# This may be replaced when dependencies are built.
