file(REMOVE_RECURSE
  "CMakeFiles/fig04_longtail.dir/fig04_longtail.cpp.o"
  "CMakeFiles/fig04_longtail.dir/fig04_longtail.cpp.o.d"
  "fig04_longtail"
  "fig04_longtail.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_longtail.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
