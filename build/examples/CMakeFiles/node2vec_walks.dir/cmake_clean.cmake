file(REMOVE_RECURSE
  "CMakeFiles/node2vec_walks.dir/node2vec_walks.cpp.o"
  "CMakeFiles/node2vec_walks.dir/node2vec_walks.cpp.o.d"
  "node2vec_walks"
  "node2vec_walks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node2vec_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
