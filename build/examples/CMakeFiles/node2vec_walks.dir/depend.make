# Empty dependencies file for node2vec_walks.
# This may be replaced when dependencies are built.
