file(REMOVE_RECURSE
  "CMakeFiles/deepwalk_corpus.dir/deepwalk_corpus.cpp.o"
  "CMakeFiles/deepwalk_corpus.dir/deepwalk_corpus.cpp.o.d"
  "deepwalk_corpus"
  "deepwalk_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deepwalk_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
