file(REMOVE_RECURSE
  "CMakeFiles/ppr_topk.dir/ppr_topk.cpp.o"
  "CMakeFiles/ppr_topk.dir/ppr_topk.cpp.o.d"
  "ppr_topk"
  "ppr_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppr_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
