/**
 * @file
 * Figure 11 reproduction: basic RW time vs walk length with the
 * walker count fixed (paper: 10^6; scaled here to |V|/8 per twin),
 * for the three out-of-core systems.
 *
 * Expected shape: all systems scale roughly linearly in L on the
 * out-of-core twins, with NosWalker holding a 30–95x edge over
 * GraphWalker in the paper (a large constant factor here).
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "baselines/drunkardmob.hpp"
#include "baselines/graphwalker.hpp"
#include "bench_common.hpp"
#include "util/error.hpp"

using namespace noswalker;

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    const graph::DatasetId graphs[] = {
        graph::DatasetId::kTwitter, graph::DatasetId::kYahoo,
        graph::DatasetId::kKron30, graph::DatasetId::kKron31,
        graph::DatasetId::kCrawlWeb};

    for (const graph::DatasetId id : graphs) {
        bench::GraphHandle &h = env.get(id);
        const std::uint64_t budget = env.budget_for(h);
        const std::uint64_t walkers =
            std::max<std::uint64_t>(64, h.file->num_vertices() / 8);
        bench::print_table_header(
            "Fig 11 (" + h.spec.name + ", walkers=" +
                bench::fmt_count(walkers) + ")",
            {"length", "DrunkardMob", "GraphWalker", "NosWalker",
             "speedup"});
        for (std::uint32_t length = 4; length <= 128; length *= 4) {
            std::string dm_cell = "OOM";
            try {
                apps::BasicRandomWalk app(length,
                                          h.file->num_vertices());
                baselines::DrunkardMobEngine<apps::BasicRandomWalk> eng(
                    *h.file, *h.partition, budget);
                dm_cell = bench::fmt_double(
                    eng.run(app, walkers).modeled_seconds(), 4);
            } catch (const util::BudgetExceeded &) {
            }
            apps::BasicRandomWalk a2(length, h.file->num_vertices());
            baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(
                *h.file, *h.partition, budget);
            const double gw_time =
                gw.run(a2, walkers).modeled_seconds();
            apps::BasicRandomWalk a3(length, h.file->num_vertices());
            core::NosWalkerEngine<apps::BasicRandomWalk> nw(
                *h.file, *h.partition, env.noswalker_config(h));
            const double nw_time =
                nw.run(a3, walkers).modeled_seconds();
            bench::print_table_row(
                {std::to_string(length), dm_cell,
                 bench::fmt_double(gw_time, 4),
                 bench::fmt_double(nw_time, 4),
                 bench::fmt_double(gw_time / nw_time, 1) + "x"});
        }
    }
    return 0;
}
