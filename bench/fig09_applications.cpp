/**
 * @file
 * Figure 9 reproduction: the four real-world applications (PPR,
 * SimRank, RWD, Graphlet Concentration) on the five main twins under
 * the three out-of-core systems.  Parameters follow §4.2, scaled:
 * PPR 4 sources × 200 walks × L10; SR 1 pair × 200 walks × L11;
 * RWD one walker per vertex × L6; GC |V|/100 walkers × L3.
 *
 * Expected shape: NosWalker fastest everywhere; DrunkardMob OOMs on
 * the largest twins when walker state exceeds the budget; speedups
 * grow with graph size.
 */
#include <cstdio>
#include <functional>

#include "apps/graphlet.hpp"
#include "apps/ppr.hpp"
#include "apps/rwd.hpp"
#include "apps/simrank.hpp"
#include "baselines/drunkardmob.hpp"
#include "baselines/graphwalker.hpp"
#include "bench_common.hpp"
#include "util/error.hpp"

using namespace noswalker;

namespace {

const graph::DatasetId kGraphs[] = {
    graph::DatasetId::kTwitter, graph::DatasetId::kYahoo,
    graph::DatasetId::kKron30, graph::DatasetId::kKron31,
    graph::DatasetId::kCrawlWeb};

template <typename App, typename MakeApp>
void
run_application(bench::BenchEnv &env, const char *name, MakeApp &&make)
{
    bench::print_table_header(
        std::string("Fig 9: ") + name,
        {"Dataset", "App", "System", "time(s)", "io", "edges/step",
         "steps"});
    for (const graph::DatasetId id : kGraphs) {
        bench::GraphHandle &h = env.get(id);
        const std::uint64_t budget = env.budget_for(h);
        {
            auto app = make(h);
            try {
                baselines::DrunkardMobEngine<App> eng(*h.file,
                                                      *h.partition,
                                                      budget);
                const auto s = eng.run(app, app.total_walkers());
                bench::print_run(h.spec.name, name, s);
            } catch (const util::BudgetExceeded &) {
                bench::print_table_row({h.spec.name, name, "DrunkardMob",
                                        "OOM", "-", "-", "-"});
            }
        }
        {
            auto app = make(h);
            baselines::GraphWalkerEngine<App> eng(*h.file, *h.partition,
                                                  budget);
            bench::print_run(h.spec.name, name,
                             eng.run(app, app.total_walkers()));
        }
        {
            auto app = make(h);
            core::NosWalkerEngine<App> eng(*h.file, *h.partition,
                                           env.noswalker_config(h));
            bench::print_run(h.spec.name, name,
                             eng.run(app, app.total_walkers()));
        }
    }
}

} // namespace

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor

    run_application<apps::PersonalizedPageRank>(
        env, "PPR", [](bench::GraphHandle &h) {
            const graph::VertexId v = h.file->num_vertices();
            std::vector<graph::VertexId> sources = {
                v / 7, v / 3, v / 2, v - 1};
            return apps::PersonalizedPageRank(sources, 200, 10);
        });

    run_application<apps::SimRank>(env, "SR", [](bench::GraphHandle &h) {
        const graph::VertexId v = h.file->num_vertices();
        return apps::SimRank(v / 5, v / 2, 200, 11);
    });

    run_application<apps::RandomWalkDomination>(
        env, "RWD", [](bench::GraphHandle &h) {
            return apps::RandomWalkDomination(h.file->num_vertices(), 6,
                                              /*record_visits=*/false);
        });

    run_application<apps::GraphletConcentration>(
        env, "GC", [](bench::GraphHandle &h) {
            const std::uint64_t walkers =
                std::max<std::uint64_t>(64, h.file->num_vertices() / 100);
            return apps::GraphletConcentration(h.file->num_vertices(),
                                               walkers, 3);
        });
    return 0;
}
