/**
 * @file
 * Figure 2 reproduction: (a) average edge records loaded per step and
 * (b) average step rate, for DrunkardMob / GraphWalker / NosWalker on
 * the K30' twin under a ~12 % memory budget.
 *
 * Paper values: edges/step 32 / 23 / 6.4, step rate 0.5 / 5.6 / 84.7
 * Msteps/s.  Expected shape: DrunkardMob > GraphWalker >> NosWalker on
 * edges/step and the reverse on step rate.
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "baselines/drunkardmob.hpp"
#include "baselines/graphwalker.hpp"
#include "bench_common.hpp"

using namespace noswalker;

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor (largest twin)
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const std::uint64_t budget = env.budget_for(h);
    const std::uint64_t walkers = h.file->num_vertices() / 4;
    const std::uint32_t length = 10;

    std::printf("Figure 2: basic RW on %s, %llu walkers, length %u, "
                "budget %s\n",
                h.spec.name.c_str(),
                static_cast<unsigned long long>(walkers), length,
                bench::fmt_bytes(budget).c_str());
    bench::print_table_header(
        "Fig 2", {"System", "edges/step", "steps/s", "io", "paper e/s"});

    {
        apps::BasicRandomWalk app(length, h.file->num_vertices());
        baselines::DrunkardMobEngine<apps::BasicRandomWalk> eng(
            *h.file, *h.partition, budget);
        const auto s = eng.run(app, walkers);
        bench::print_table_row({"DrunkardMob",
                                bench::fmt_double(s.edges_per_step(), 2),
                                bench::fmt_count(static_cast<std::uint64_t>(
                                    s.step_rate())),
                                bench::fmt_bytes(s.total_io_bytes()),
                                "32"});
    }
    {
        apps::BasicRandomWalk app(length, h.file->num_vertices());
        baselines::GraphWalkerEngine<apps::BasicRandomWalk> eng(
            *h.file, *h.partition, budget);
        const auto s = eng.run(app, walkers);
        bench::print_table_row({"GraphWalker",
                                bench::fmt_double(s.edges_per_step(), 2),
                                bench::fmt_count(static_cast<std::uint64_t>(
                                    s.step_rate())),
                                bench::fmt_bytes(s.total_io_bytes()),
                                "23"});
    }
    {
        apps::BasicRandomWalk app(length, h.file->num_vertices());
        core::NosWalkerEngine<apps::BasicRandomWalk> eng(
            *h.file, *h.partition, env.noswalker_config(h));
        const auto s = eng.run(app, walkers);
        bench::print_table_row({"NosWalker",
                                bench::fmt_double(s.edges_per_step(), 2),
                                bench::fmt_count(static_cast<std::uint64_t>(
                                    s.step_rate())),
                                bench::fmt_bytes(s.total_io_bytes()),
                                "6.4"});
    }
    return 0;
}
