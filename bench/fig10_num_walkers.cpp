/**
 * @file
 * Figure 10 reproduction: basic RW time vs the number of walkers
 * (length fixed at 10) on each twin, for the three out-of-core
 * systems.  The paper sweeps 10^3..10^10; the twins sweep a
 * proportionally scaled range.
 *
 * Expected shape: DrunkardMob/GraphWalker stay flat while walkers are
 * few (the whole graph is streamed regardless — loading dominates),
 * so NosWalker's speedup peaks at small walker counts, up to two
 * orders of magnitude.
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "baselines/drunkardmob.hpp"
#include "baselines/graphwalker.hpp"
#include "bench_common.hpp"
#include "util/error.hpp"

using namespace noswalker;

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    const graph::DatasetId graphs[] = {
        graph::DatasetId::kTwitter, graph::DatasetId::kYahoo,
        graph::DatasetId::kKron30, graph::DatasetId::kKron31,
        graph::DatasetId::kCrawlWeb};

    for (const graph::DatasetId id : graphs) {
        bench::GraphHandle &h = env.get(id);
        const std::uint64_t budget = env.budget_for(h);
        bench::print_table_header(
            "Fig 10 (" + h.spec.name + ", L=10)",
            {"walkers", "DrunkardMob", "GraphWalker", "NosWalker",
             "speedup"});
        // Scaled sweep: 2^4 .. |V| walkers in decades.
        for (std::uint64_t walkers = 16;
             walkers <= 4ULL * h.file->num_vertices(); walkers *= 8) {
            std::string dm_cell = "OOM";
            double dm_time = -1.0;
            try {
                apps::BasicRandomWalk app(10, h.file->num_vertices());
                baselines::DrunkardMobEngine<apps::BasicRandomWalk> eng(
                    *h.file, *h.partition, budget);
                dm_time = eng.run(app, walkers).modeled_seconds();
                dm_cell = bench::fmt_double(dm_time, 4);
            } catch (const util::BudgetExceeded &) {
            }
            apps::BasicRandomWalk a2(10, h.file->num_vertices());
            baselines::GraphWalkerEngine<apps::BasicRandomWalk> gw(
                *h.file, *h.partition, budget);
            const double gw_time =
                gw.run(a2, walkers).modeled_seconds();
            apps::BasicRandomWalk a3(10, h.file->num_vertices());
            core::NosWalkerEngine<apps::BasicRandomWalk> nw(
                *h.file, *h.partition, env.noswalker_config(h));
            const double nw_time =
                nw.run(a3, walkers).modeled_seconds();
            bench::print_table_row(
                {bench::fmt_count(walkers), dm_cell,
                 bench::fmt_double(gw_time, 4),
                 bench::fmt_double(nw_time, 4),
                 bench::fmt_double(gw_time / nw_time, 1) + "x"});
        }
    }
    return 0;
}
