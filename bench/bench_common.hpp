/**
 * @file
 * Shared infrastructure for the figure/table reproduction harness.
 *
 * Every bench binary regenerates one figure or table of the paper's
 * evaluation on the scaled dataset twins (DESIGN.md §2, §5).  The twin
 * scale is controlled by the NOSWALKER_BENCH_SCALE environment
 * variable (default 13 ⇒ K30' has 2^13 vertices and 2^18 edges); the
 * memory budget defaults to the paper's setup of ~12 % of the largest
 * graph, floored at each engine's fixed minimum (index + two block
 * buffers + working set).
 *
 * Reported numbers: raw counters (steps, bytes, requests) are
 * scale-faithful; "time(s)" is the modeled time under the SSD cost
 * model + measured CPU (see RunStats::modeled_seconds and DESIGN.md
 * §2).  Absolute values are not comparable to the paper's testbed —
 * the *shape* (who wins, by what factor, where crossovers fall) is.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/noswalker_engine.hpp"
#include "engine/run_stats.hpp"
#include "graph/datasets.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/mem_device.hpp"

namespace noswalker::bench {

/** A twin loaded into its on-disk format with a block partition. */
struct GraphHandle {
    graph::DatasetSpec spec;
    graph::CsrGraph reference;
    std::unique_ptr<storage::MemDevice> device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;
};

/** Lazily builds and caches dataset twins for one bench process. */
class BenchEnv {
  public:
    BenchEnv();

    /** The twin scale knob (NOSWALKER_BENCH_SCALE). */
    unsigned scale() const { return scale_; }

    /**
     * Get (building on first use) one twin.  Blocks are sized to give
     * the graph ~32 blocks, mirroring the paper's 33-block K30 setup.
     */
    GraphHandle &get(graph::DatasetId id);

    /**
     * The run's memory budget for @p handle: fraction × the *largest*
     * twin (CW'), floored at the engine minimum for this graph — the
     * paper's "64 GiB for every system and dataset" setup.
     */
    std::uint64_t budget_for(const GraphHandle &handle,
                             double fraction = 0.12);

    /** Engine floor: index + two block buffers + 64 KiB slack. */
    static std::uint64_t floor_for(const GraphHandle &handle);

    /** Default NosWalker config for @p handle. */
    core::EngineConfig noswalker_config(const GraphHandle &handle,
                                        double budget_fraction = 0.12);

  private:
    unsigned scale_;
    std::map<graph::DatasetId, GraphHandle> cache_;
    std::uint64_t largest_file_bytes_ = 0;
};

/** Fixed-width table printing. */
void print_table_header(const std::string &title,
                        const std::vector<std::string> &columns);
void print_table_row(const std::vector<std::string> &cells);

/** Format helpers. */
std::string fmt_double(double value, int precision = 3);
std::string fmt_bytes(std::uint64_t bytes);
std::string fmt_count(std::uint64_t count);

/** One result line: system name + headline metrics of a run. */
void print_run(const std::string &dataset, const std::string &workload,
               const engine::RunStats &stats);

/** One machine-readable bench result (see JsonReporter). */
struct JsonRecord {
    std::string engine;
    std::string dataset;
    std::string workload;
    std::uint64_t steps = 0;
    double steps_per_second = 0.0;
    double io_busy_seconds = 0.0;
    double cpu_seconds = 0.0;
    std::uint64_t peak_memory = 0;
    /** Bench-specific metrics appended verbatim (numeric). */
    std::vector<std::pair<std::string, double>> extras;
};

/**
 * Optional `--json <path>` sink for bench binaries: collects one
 * JsonRecord per run and writes them as a JSON array on flush (or
 * destruction), so scripts/bench_snapshot.sh can archive comparable
 * numbers across commits.  Inactive (no-op) unless --json was passed.
 * Serialization is hand-rolled — no external dependencies.
 */
class JsonReporter {
  public:
    /** Scan argv for `--json <path>`; inactive when absent. */
    static JsonReporter from_args(int argc, char **argv);

    JsonReporter() = default;
    ~JsonReporter() { flush(); }
    JsonReporter(JsonReporter &&other) noexcept
        : path_(std::move(other.path_)),
          records_(std::move(other.records_))
    {
        other.path_.clear();
    }
    JsonReporter &operator=(JsonReporter &&) = delete;
    JsonReporter(const JsonReporter &) = delete;
    JsonReporter &operator=(const JsonReporter &) = delete;

    bool active() const { return !path_.empty(); }

    void add(JsonRecord record);

    /** Convenience: build the record from a run's stats.  steps/s uses
     *  the harness's modeled-time policy (SSD model + measured CPU). */
    void add(const std::string &dataset, const std::string &workload,
             const engine::RunStats &stats);

    /** Write the collected records to the --json path (idempotent). */
    void flush();

  private:
    std::string path_;
    std::vector<JsonRecord> records_;
};

} // namespace noswalker::bench
