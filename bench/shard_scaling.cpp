/**
 * @file
 * Shard-count ablation for the sharded scale-out engine (DESIGN.md
 * §11): basic and node2vec walks on the K30' twin across 1/2/4/8
 * shards, each shard owning a private modeled device and a 1/N budget
 * slice, with the overlapped-migration knob toggled per row.
 *
 * The base device model is slowed by 2048x (both bandwidth and IOPS)
 * so the runs sit firmly in the IO-bound regime the paper's out-of-core
 * setting targets: there the modeled win of N concurrent devices is
 * deterministic and the measured-CPU term (noisy on small containers)
 * never masks it.  Expected shape: modeled time falls with the shard
 * count while the migration tax (walkers crossing shard boundaries)
 * grows — and with shard_overlap on, most of that tax hides behind the
 * remainder of each round (migr ovl(s)) instead of stretching the
 * modeled time (migr wait(s)).
 *
 * Output: one table row and one --json record per (workload, overlap,
 * shard count), with modeled seconds, rounds, migration counters, the
 * per-shard p99 modeled seconds, and speedup vs the matching 1-shard
 * row.
 */
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "apps/basic_rw.hpp"
#include "apps/node2vec.hpp"
#include "bench_common.hpp"
#include "graph/datasets.hpp"
#include "shard/sharded_engine.hpp"
#include "storage/mem_device.hpp"

using namespace noswalker;

namespace {

/** p99 over per-shard modeled seconds (max at small shard counts). */
double
p99(std::vector<double> samples)
{
    if (samples.empty()) {
        return 0.0;
    }
    std::sort(samples.begin(), samples.end());
    const std::size_t idx = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(samples.size()))) - 1;
    return samples[std::min(idx, samples.size() - 1)];
}

template <typename App>
void
run_workload(const char *workload, App &app, std::uint64_t walkers,
             const graph::GraphFile &file,
             const graph::BlockPartition &partition,
             std::uint64_t budget_per_shard, bench::JsonReporter &json,
             const std::string &dataset)
{
    for (const bool overlap : {false, true}) {
        double base_seconds = 0.0;
        for (const unsigned shards : {1u, 2u, 4u, 8u}) {
            core::EngineConfig cfg = core::EngineConfig::full(
                budget_per_shard * shards,
                partition.target_block_bytes());
            cfg.num_shards = shards;
            cfg.shard_overlap = overlap;
            shard::ShardedEngine<App> engine(file, partition, cfg);
            const engine::RunStats stats = engine.run(app, walkers);
            const double seconds = stats.modeled_seconds();
            if (shards == 1) {
                base_seconds = seconds;
            }
            const double speedup =
                seconds > 0.0 ? base_seconds / seconds : 0.0;

            std::vector<double> shard_seconds;
            for (const engine::RunStats &s : engine.shard_stats()) {
                shard_seconds.push_back(s.modeled_seconds());
            }
            const double shard_p99 = p99(std::move(shard_seconds));

            bench::print_table_row(
                {workload, overlap ? "on" : "off",
                 std::to_string(engine.num_shards()),
                 bench::fmt_count(engine.rounds()),
                 bench::fmt_double(seconds, 4),
                 bench::fmt_double(speedup, 2) + "x",
                 bench::fmt_count(stats.migrations),
                 bench::fmt_double(stats.migration_wait_seconds, 4),
                 bench::fmt_double(stats.migration_overlap_seconds, 4),
                 bench::fmt_double(shard_p99, 4)});

            bench::JsonRecord r;
            r.engine = stats.engine;
            r.dataset = dataset;
            r.workload = std::string(workload) + "/shards=" +
                         std::to_string(engine.num_shards()) +
                         "/overlap=" + (overlap ? "on" : "off");
            r.steps = stats.steps;
            r.steps_per_second =
                seconds > 0.0
                    ? static_cast<double>(stats.steps) / seconds
                    : 0.0;
            r.io_busy_seconds = stats.io_busy_seconds;
            r.cpu_seconds = stats.cpu_seconds;
            r.peak_memory = stats.peak_memory;
            r.extras.emplace_back(
                "num_shards",
                static_cast<double>(engine.num_shards()));
            r.extras.emplace_back("shard_overlap", overlap ? 1.0 : 0.0);
            r.extras.emplace_back("modeled_seconds", seconds);
            r.extras.emplace_back("rounds",
                                  static_cast<double>(engine.rounds()));
            r.extras.emplace_back(
                "migrations", static_cast<double>(stats.migrations));
            r.extras.emplace_back(
                "migration_batches",
                static_cast<double>(stats.migration_batches));
            r.extras.emplace_back("migration_wait_seconds",
                                  stats.migration_wait_seconds);
            r.extras.emplace_back("migration_overlap_seconds",
                                  stats.migration_overlap_seconds);
            r.extras.emplace_back("shard_p99_modeled_seconds",
                                  shard_p99);
            r.extras.emplace_back("speedup_vs_one_shard", speedup);
            json.add(std::move(r));
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json = bench::JsonReporter::from_args(argc, argv);
    bench::BenchEnv env;
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const graph::VertexId v = h.file->num_vertices();

    // Rebuild K30' on a slow private-device model (see file comment).
    storage::SsdModel slow = storage::SsdModel::p4618();
    slow.seq_bandwidth /= 2048.0;
    slow.iops /= 2048.0;
    storage::MemDevice device(slow);
    graph::GraphFile::write(h.reference, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(file,
                                    h.partition->target_block_bytes());

    // Scale-out semantics: every shard is its own node and brings its
    // own budget, so the sweep holds the *per-shard* budget fixed (the
    // 1/N slice of a fixed total would fall below the engine floor —
    // CSR index copy + block buffers — at higher shard counts).
    const std::uint64_t budget_per_shard = env.budget_for(h);
    const std::uint64_t walkers = v;
    const std::uint32_t length = 10;

    std::printf("shard scaling on %s (scale %u): %llu walkers, L=%u, "
                "budget %s per shard\n\n",
                h.spec.name.c_str(), env.scale(),
                static_cast<unsigned long long>(walkers), length,
                bench::fmt_bytes(budget_per_shard).c_str());

    bench::print_table_header(
        "Sharded NosWalker, K30', slowed devices",
        {"workload", "overlap", "shards", "rounds", "time(s)", "speedup",
         "migrations", "migr wait(s)", "migr ovl(s)", "shard p99(s)"});

    apps::BasicRandomWalk basic(length, v);
    run_workload("basic", basic, walkers, file, partition,
                 budget_per_shard, json, h.spec.name);

    apps::Node2Vec n2v(2.0, 0.5, length, v, /*walks_per_vertex=*/1);
    run_workload("node2vec", n2v, walkers, file, partition,
                 budget_per_shard, json, h.spec.name);

    std::printf(
        "\nshards split the block range across private devices, so the "
        "per-round IO phase shrinks ~1/N; the migration tax is the "
        "price of walkers crossing shard boundaries.  With overlap on, "
        "per-bucket flushes hide most of that tax behind the remainder "
        "of the round (migr ovl) and only the residual stretches the "
        "modeled time (migr wait).\n");
    return 0;
}
