/**
 * @file
 * Shard-count ablation for the sharded scale-out engine (DESIGN.md
 * §11): basic random walks on the K30' twin across 1/2/4/8 shards,
 * each shard owning a private modeled device and a 1/N budget slice.
 *
 * The base device model is slowed by 2048x (both bandwidth and IOPS)
 * so the runs sit firmly in the IO-bound regime the paper's out-of-core
 * setting targets: there the modeled win of N concurrent devices is
 * deterministic and the measured-CPU term (noisy on small containers)
 * never masks it.  Expected shape: modeled time falls with the shard
 * count while the migration tax (walkers crossing shard boundaries at
 * round barriers) grows — the classic scale-out trade.
 *
 * Output: one table row and one --json record per shard count, with
 * modeled seconds, rounds, migration counters, and speedup vs 1 shard.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "apps/basic_rw.hpp"
#include "bench_common.hpp"
#include "graph/datasets.hpp"
#include "shard/sharded_engine.hpp"
#include "storage/mem_device.hpp"

using namespace noswalker;

int
main(int argc, char **argv)
{
    bench::JsonReporter json = bench::JsonReporter::from_args(argc, argv);
    bench::BenchEnv env;
    bench::GraphHandle &h = env.get(graph::DatasetId::kKron30);
    const graph::VertexId v = h.file->num_vertices();

    // Rebuild K30' on a slow private-device model (see file comment).
    storage::SsdModel slow = storage::SsdModel::p4618();
    slow.seq_bandwidth /= 2048.0;
    slow.iops /= 2048.0;
    storage::MemDevice device(slow);
    graph::GraphFile::write(h.reference, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(file,
                                    h.partition->target_block_bytes());

    // Scale-out semantics: every shard is its own node and brings its
    // own budget, so the sweep holds the *per-shard* budget fixed (the
    // 1/N slice of a fixed total would fall below the engine floor —
    // CSR index copy + block buffers — at higher shard counts).
    const std::uint64_t budget_per_shard = env.budget_for(h);
    const std::uint64_t walkers = v;
    const std::uint32_t length = 10;

    std::printf("shard scaling on %s (scale %u): %llu walkers, L=%u, "
                "budget %s per shard\n\n",
                h.spec.name.c_str(), env.scale(),
                static_cast<unsigned long long>(walkers), length,
                bench::fmt_bytes(budget_per_shard).c_str());

    bench::print_table_header(
        "Sharded NosWalker, K30', slowed devices",
        {"shards", "rounds", "time(s)", "speedup", "migrations",
         "batches", "migr wait(s)", "steps"});

    double base_seconds = 0.0;
    for (const unsigned shards : {1u, 2u, 4u, 8u}) {
        core::EngineConfig cfg = core::EngineConfig::full(
            budget_per_shard * shards, partition.target_block_bytes());
        cfg.num_shards = shards;
        shard::ShardedEngine<apps::BasicRandomWalk> engine(
            file, partition, cfg);
        apps::BasicRandomWalk app(length, v);
        const engine::RunStats stats = engine.run(app, walkers);
        const double seconds = stats.modeled_seconds();
        if (shards == 1) {
            base_seconds = seconds;
        }
        const double speedup =
            seconds > 0.0 ? base_seconds / seconds : 0.0;

        bench::print_table_row(
            {std::to_string(engine.num_shards()),
             bench::fmt_count(engine.rounds()),
             bench::fmt_double(seconds, 4),
             bench::fmt_double(speedup, 2) + "x",
             bench::fmt_count(stats.migrations),
             bench::fmt_count(stats.migration_batches),
             bench::fmt_double(stats.migration_wait_seconds, 4),
             bench::fmt_count(stats.steps)});

        bench::JsonRecord r;
        r.engine = stats.engine;
        r.dataset = h.spec.name;
        r.workload = "shards=" + std::to_string(engine.num_shards());
        r.steps = stats.steps;
        r.steps_per_second =
            seconds > 0.0 ? static_cast<double>(stats.steps) / seconds
                          : 0.0;
        r.io_busy_seconds = stats.io_busy_seconds;
        r.cpu_seconds = stats.cpu_seconds;
        r.peak_memory = stats.peak_memory;
        r.extras.emplace_back("num_shards",
                              static_cast<double>(engine.num_shards()));
        r.extras.emplace_back("modeled_seconds", seconds);
        r.extras.emplace_back("rounds",
                              static_cast<double>(engine.rounds()));
        r.extras.emplace_back("migrations",
                              static_cast<double>(stats.migrations));
        r.extras.emplace_back(
            "migration_batches",
            static_cast<double>(stats.migration_batches));
        r.extras.emplace_back("migration_wait_seconds",
                              stats.migration_wait_seconds);
        r.extras.emplace_back("speedup_vs_one_shard", speedup);
        json.add(std::move(r));
    }

    std::printf("\nshards split the block range across private devices, "
                "so the per-round IO phase shrinks ~1/N; the migration "
                "wait is the price of walkers crossing shard "
                "boundaries at round barriers.\n");
    return 0;
}
