#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace noswalker::bench {

BenchEnv::BenchEnv()
{
    scale_ = 13;
    if (const char *env = std::getenv("NOSWALKER_BENCH_SCALE")) {
        const int v = std::atoi(env);
        if (v >= 8 && v <= 22) {
            scale_ = static_cast<unsigned>(v);
        }
    }
}

GraphHandle &
BenchEnv::get(graph::DatasetId id)
{
    auto it = cache_.find(id);
    if (it != cache_.end()) {
        return it->second;
    }
    GraphHandle handle;
    handle.spec = graph::dataset_spec(id);
    handle.reference = graph::build_dataset(id, scale_);
    handle.device = std::make_unique<storage::MemDevice>(
        storage::SsdModel::p4618());
    graph::GraphFile::write(handle.reference, *handle.device,
                            handle.spec.alias_tables);
    handle.file = std::make_unique<graph::GraphFile>(*handle.device);
    // ~32 blocks per graph, mirroring the paper's 33-block K30 setup.
    const std::uint64_t block_bytes = std::max<std::uint64_t>(
        16 * 1024, handle.file->edge_region_bytes() / 32);
    handle.partition =
        std::make_unique<graph::BlockPartition>(*handle.file, block_bytes);
    largest_file_bytes_ =
        std::max(largest_file_bytes_, handle.file->file_bytes());
    auto [pos, inserted] = cache_.emplace(id, std::move(handle));
    return pos->second;
}

std::uint64_t
BenchEnv::floor_for(const GraphHandle &handle)
{
    const std::uint64_t page = 4096;
    const std::uint64_t buffers =
        2 * ((handle.partition->max_block_bytes() / page + 2) * page);
    return handle.file->index_bytes() + buffers + 64 * 1024;
}

std::uint64_t
BenchEnv::budget_for(const GraphHandle &handle, double fraction)
{
    // The paper fixes 64 GiB ≈ 12 % of the largest graph for all runs;
    // anchor the fraction to the largest built twin (build CW' first
    // when cross-dataset comparability matters).
    const std::uint64_t anchor =
        std::max(largest_file_bytes_, handle.file->file_bytes());
    const auto frac = static_cast<std::uint64_t>(
        fraction * static_cast<double>(anchor));
    return std::max(frac, floor_for(handle));
}

core::EngineConfig
BenchEnv::noswalker_config(const GraphHandle &handle,
                           double budget_fraction)
{
    core::EngineConfig cfg = core::EngineConfig::full(
        budget_for(handle, budget_fraction),
        handle.partition->target_block_bytes());
    return cfg;
}

void
print_table_header(const std::string &title,
                   const std::vector<std::string> &columns)
{
    std::printf("\n== %s ==\n", title.c_str());
    for (const std::string &c : columns) {
        std::printf("%-14s", c.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < columns.size(); ++i) {
        std::printf("%-14s", "------------");
    }
    std::printf("\n");
}

void
print_table_row(const std::vector<std::string> &cells)
{
    for (const std::string &c : cells) {
        std::printf("%-14s", c.c_str());
    }
    std::printf("\n");
    std::fflush(stdout);
}

std::string
fmt_double(double value, int precision)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(precision);
    out << value;
    return out.str();
}

std::string
fmt_bytes(std::uint64_t bytes)
{
    const char *units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
    double v = static_cast<double>(bytes);
    int unit = 0;
    while (v >= 1024.0 && unit < 4) {
        v /= 1024.0;
        ++unit;
    }
    return fmt_double(v, 1) + units[unit];
}

std::string
fmt_count(std::uint64_t count)
{
    if (count >= 10'000'000) {
        return fmt_double(static_cast<double>(count) / 1e6, 1) + "M";
    }
    if (count >= 10'000) {
        return fmt_double(static_cast<double>(count) / 1e3, 1) + "K";
    }
    return std::to_string(count);
}

void
print_run(const std::string &dataset, const std::string &workload,
          const engine::RunStats &stats)
{
    print_table_row({dataset, workload, stats.engine,
                     fmt_double(stats.modeled_seconds(), 4),
                     fmt_bytes(stats.total_io_bytes()),
                     fmt_double(stats.edges_per_step(), 2),
                     fmt_count(stats.steps)});
}

JsonReporter
JsonReporter::from_args(int argc, char **argv)
{
    JsonReporter reporter;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--json") {
            reporter.path_ = argv[i + 1];
            break;
        }
    }
    return reporter;
}

void
JsonReporter::add(JsonRecord record)
{
    if (active()) {
        records_.push_back(std::move(record));
    }
}

void
JsonReporter::add(const std::string &dataset,
                  const std::string &workload,
                  const engine::RunStats &stats)
{
    if (!active()) {
        return;
    }
    JsonRecord r;
    r.engine = stats.engine;
    r.dataset = dataset;
    r.workload = workload;
    r.steps = stats.steps;
    const double modeled = stats.modeled_seconds();
    r.steps_per_second =
        modeled > 0.0 ? static_cast<double>(stats.steps) / modeled : 0.0;
    r.io_busy_seconds = stats.io_busy_seconds;
    r.cpu_seconds = stats.cpu_seconds;
    r.peak_memory = stats.peak_memory;
    records_.push_back(std::move(r));
}

namespace {

std::string
json_escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
json_number(double v)
{
    // JSON has no NaN/Inf; clamp to null-adjacent zero.
    if (!(v == v) || v > 1e308 || v < -1e308) {
        return "0";
    }
    std::ostringstream out;
    out.precision(12);
    out << v;
    return out.str();
}

} // namespace

void
JsonReporter::flush()
{
    if (!active() || records_.empty()) {
        return;
    }
    std::ofstream out(path_);
    if (!out) {
        std::fprintf(stderr, "JsonReporter: cannot open %s\n",
                     path_.c_str());
        return;
    }
    out << "[\n";
    for (std::size_t i = 0; i < records_.size(); ++i) {
        const JsonRecord &r = records_[i];
        out << "  {\"engine\": \"" << json_escape(r.engine)
            << "\", \"dataset\": \"" << json_escape(r.dataset)
            << "\", \"workload\": \"" << json_escape(r.workload)
            << "\", \"steps\": " << r.steps
            << ", \"steps_per_second\": " << json_number(r.steps_per_second)
            << ", \"io_busy_seconds\": " << json_number(r.io_busy_seconds)
            << ", \"cpu_seconds\": " << json_number(r.cpu_seconds)
            << ", \"peak_memory\": " << r.peak_memory;
        for (const auto &[key, value] : r.extras) {
            out << ", \"" << json_escape(key)
                << "\": " << json_number(value);
        }
        out << "}" << (i + 1 < records_.size() ? "," : "") << "\n";
    }
    out << "]\n";
    records_.clear();
}

} // namespace noswalker::bench
