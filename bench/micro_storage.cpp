/**
 * @file
 * Google-benchmark microbenchmarks of the substrates: the §3.3.1 SSD
 * tradeoff under the cost model, block-reader coarse/fine paths, the
 * recycling buffer pool, alias sampling, pre-sample buffer operations,
 * and the RNG.  After the microbenchmarks, a prefetch-depth ablation
 * runs the full engine at depth 0/1/2/4 and reports the modeled
 * io_wait per depth; pass `--json <path>` to archive it
 * (scripts/bench_snapshot.sh).
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/basic_rw.hpp"
#include "apps/node2vec.hpp"
#include "bench_common.hpp"
#include "core/noswalker_engine.hpp"
#include "graph/builder.hpp"
#include "core/prefetch_pipeline.hpp"
#include "core/presample_buffer.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/async_loader.hpp"
#include "storage/block_buffer_pool.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "storage/shared_block_cache.hpp"
#include "util/alias_table.hpp"
#include "util/memory_budget.hpp"
#include "util/rng.hpp"

using namespace noswalker;

namespace {

struct MicroFixture {
    MicroFixture()
    {
        graph = graph::generate_rmat({.scale = 12,
                                      .edge_factor = 16,
                                      .a = 0.57,
                                      .b = 0.19,
                                      .c = 0.19,
                                      .seed = 7,
                                      .symmetrize = false,
                                      .weighted = false});
        device = std::make_unique<storage::MemDevice>(
            storage::SsdModel::p4618());
        graph::GraphFile::write(graph, *device);
        file = std::make_unique<graph::GraphFile>(*device);
        partition = std::make_unique<graph::BlockPartition>(
            *file, file->edge_region_bytes() / 32);
    }

    graph::CsrGraph graph;
    std::unique_ptr<storage::MemDevice> device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;
};

MicroFixture &
fixture()
{
    static MicroFixture f;
    return f;
}

void
BM_SsdModelRequest(benchmark::State &state)
{
    const storage::SsdModel m = storage::SsdModel::p4618();
    const auto len = static_cast<std::uint64_t>(state.range(0));
    double total = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(total += m.request_seconds(len));
    }
    state.counters["modeled_MiBps"] = benchmark::Counter(
        static_cast<double>(len) / m.request_seconds(len) / (1 << 20));
}
BENCHMARK(BM_SsdModelRequest)->Arg(4096)->Arg(64 << 10)->Arg(8 << 20);

void
BM_CoarseBlockLoad(benchmark::State &state)
{
    MicroFixture &f = fixture();
    util::MemoryBudget budget(0);
    storage::BlockReader reader(*f.file, budget);
    storage::BlockBuffer buffer;
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto r =
            reader.load_coarse(f.partition->block(0), buffer);
        bytes += r.bytes_read;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CoarseBlockLoad);

void
BM_FineBlockLoad(benchmark::State &state)
{
    MicroFixture &f = fixture();
    util::MemoryBudget budget(0);
    storage::BlockReader reader(*f.file, budget);
    storage::BlockBuffer buffer;
    const graph::BlockInfo &block = f.partition->block(0);
    std::vector<graph::VertexId> needed;
    const auto count = static_cast<graph::VertexId>(state.range(0));
    for (graph::VertexId v = block.first_vertex;
         v < block.first_vertex + count && v < block.end_vertex; ++v) {
        needed.push_back(v);
    }
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto r = reader.load_fine(block, needed, buffer);
        bytes += r.bytes_read;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FineBlockLoad)->Arg(1)->Arg(16)->Arg(256);

void
BM_PooledAsyncLoad(benchmark::State &state)
{
    // The steady-state load loop of the prefetch pipeline: submit,
    // wait, recycle.  The pool keeps one buffer in rotation, so the
    // loop reuses its storage and budget reservation every iteration.
    MicroFixture &f = fixture();
    util::MemoryBudget budget(0);
    storage::BlockReader reader(*f.file, budget);
    storage::BlockBufferPool pool;
    storage::AsyncLoader loader(reader, /*background=*/false,
                                /*depth=*/1, &pool);
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        storage::AsyncLoader::Request request;
        request.block = &f.partition->block(0);
        loader.submit(std::move(request));
        auto response = loader.wait();
        bytes += response.result.bytes_read;
        pool.recycle(std::move(response.buffer));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
    state.counters["pool_reused"] =
        benchmark::Counter(static_cast<double>(pool.reused()));
}
BENCHMARK(BM_PooledAsyncLoad);

void
BM_AliasTableSample(benchmark::State &state)
{
    util::Rng rng(3);
    std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
    for (double &w : weights) {
        w = rng.next_double() + 0.01;
    }
    util::AliasTable table(weights);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sink += table.sample(rng));
    }
}
BENCHMARK(BM_AliasTableSample)->Arg(8)->Arg(1024)->Arg(1 << 16);

void
BM_AliasTableSampleBatch(benchmark::State &state)
{
    // Draw-for-draw identical to BM_AliasTableSample's loop, but the
    // two-pass batch prefetches each draw's prob/alias rows before the
    // comparison resolves — the win grows once the table outsizes L2.
    util::Rng rng(3);
    std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
    for (double &w : weights) {
        w = rng.next_double() + 0.01;
    }
    util::AliasTable table(weights);
    std::uint32_t out[64];
    std::uint64_t items = 0;
    for (auto _ : state) {
        table.sample_batch(rng, out, 64);
        benchmark::DoNotOptimize(out[63]);
        items += 64;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(items));
}
BENCHMARK(BM_AliasTableSampleBatch)
    ->Arg(8)
    ->Arg(1024)
    ->Arg(1 << 16)
    ->Arg(1 << 20);

void
BM_PreSampleBuildAndDrain(benchmark::State &state)
{
    MicroFixture &f = fixture();
    util::MemoryBudget unbudgeted(0);
    storage::BlockReader reader(*f.file, unbudgeted);
    storage::BlockBuffer buffer;
    const graph::BlockInfo &block = f.partition->block(0);
    reader.load_coarse(block, buffer);
    util::Rng rng(5);
    core::PreSampleBuffer::BuildParams params;
    params.max_bytes = 1 << 20;
    for (auto _ : state) {
        util::MemoryBudget budget(0);
        core::PreSampleBuffer ps(*f.file, block, params, nullptr,
                                 budget);
        auto sampler = [&](const graph::VertexView &view) {
            return view.sample_uniform(rng);
        };
        for (graph::VertexId v = block.first_vertex;
             v < block.end_vertex; ++v) {
            if (ps.quota(v) > 0) {
                ps.fill_vertex(buffer.view(*f.file, v), sampler);
            }
        }
        std::uint64_t drained = 0;
        for (graph::VertexId v = block.first_vertex;
             v < block.end_vertex; ++v) {
            if (!ps.has(v) || ps.is_direct(v)) {
                continue;
            }
            const std::uint32_t q = ps.quota(v);
            for (std::uint32_t i = 0; i < q; ++i) {
                benchmark::DoNotOptimize(ps.sample(v, rng));
                ps.consume(v);
                ++drained;
            }
        }
        benchmark::DoNotOptimize(drained);
    }
}
BENCHMARK(BM_PreSampleBuildAndDrain);

void
BM_RngNextIndex(benchmark::State &state)
{
    util::Rng rng(9);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sink += rng.next_index(1000003));
    }
}
BENCHMARK(BM_RngNextIndex);

/**
 * Engine-level prefetch-depth ablation (DESIGN.md §10): same walk at
 * depth 0/1/2/4, unlimited budget so the configured depth is honoured.
 * io_wait is modeled (SSD cost model + queue latency), so the numbers
 * are machine-independent; walk output is bit-identical across rows.
 */
void
run_prefetch_ablation(bench::JsonReporter &json)
{
    MicroFixture &f = fixture();
    const graph::VertexId n = f.file->num_vertices();
    std::printf("\nPrefetch-depth ablation: basic walk L=10, %u walkers, "
                "%u blocks\n",
                static_cast<unsigned>(n),
                static_cast<unsigned>(f.partition->num_blocks()));
    bench::print_table_header(
        "Prefetch", {"depth", "io_wait(s)", "modeled_s", "hits",
                     "mispredicts", "io_wait vs depth1"});
    double depth1_wait = 0.0;
    for (const unsigned depth : {0u, 1u, 2u, 4u}) {
        apps::BasicRandomWalk app(10, n);
        core::EngineConfig cfg = core::EngineConfig::full(
            0, f.partition->max_block_bytes());
        cfg.prefetch_depth = depth;
        core::NosWalkerEngine<apps::BasicRandomWalk> eng(
            *f.file, *f.partition, cfg);
        const auto s = eng.run(app, n);
        if (depth == 1) {
            depth1_wait = s.io_wait_seconds;
        }
        const double ratio =
            depth1_wait > 0.0 ? s.io_wait_seconds / depth1_wait : 0.0;
        bench::print_table_row(
            {std::to_string(depth),
             bench::fmt_double(s.io_wait_seconds, 6),
             bench::fmt_double(s.modeled_seconds(), 6),
             bench::fmt_count(s.prefetch_hits),
             bench::fmt_count(s.prefetch_mispredicts),
             depth >= 1 ? bench::fmt_double(ratio, 2) : "-"});
        bench::JsonRecord record;
        record.engine = s.engine;
        record.dataset = "rmat-micro";
        record.workload = "prefetch_depth_" + std::to_string(depth);
        record.steps = s.steps;
        record.io_busy_seconds = s.io_busy_seconds;
        record.cpu_seconds = s.cpu_seconds;
        record.peak_memory = s.peak_memory;
        record.extras = {
            {"prefetch_depth", static_cast<double>(depth)},
            {"io_wait_seconds", s.io_wait_seconds},
            {"modeled_seconds", s.modeled_seconds()},
            {"prefetch_hits", static_cast<double>(s.prefetch_hits)},
            {"prefetch_mispredicts",
             static_cast<double>(s.prefetch_mispredicts)},
        };
        json.add(std::move(record));
    }
}

/**
 * Reorder-window ablation on a mixed coarse/fine pipeline workload:
 * per group, three slow coarse speculative loads are in flight when a
 * cache-warm block is demanded (zero device I/O) and one speculated
 * block is then claimed as a fine demand; the other two are
 * mispredicted.  Strict FIFO consumption (window 0) must wait out
 * every queued load before the warm demand; a reorder window serves
 * the completed demand past the slow heads, so its modeled io_wait is
 * strictly lower.
 */
void
run_reorder_ablation(bench::JsonReporter &json)
{
    MicroFixture &f = fixture();
    // Coarser blocks than the micro partition: the slow heads should
    // be transfer-bound, not queue-latency-bound.
    graph::BlockPartition partition(*f.file,
                                    f.file->edge_region_bytes() / 8);
    const std::uint32_t blocks = partition.num_blocks();
    const double queue_latency = f.file->device().model().queue_latency;
    std::printf("\nReorder-window ablation: mixed coarse/fine groups, "
                "depth 4, %u blocks\n", static_cast<unsigned>(blocks));
    bench::print_table_header(
        "Reorder", {"window", "io_wait(s)", "hits", "mispredicts",
                    "io_wait vs fifo"});
    double fifo_wait = 0.0;
    for (const unsigned window : {0u, 2u, 4u}) {
        util::MemoryBudget budget;
        storage::SharedBlockCache cache(256ULL << 20);
        storage::BlockReader reader(*f.file, budget, 8ULL << 20, &cache);
        // Warm every fourth block: published to the cache on miss.
        for (std::uint32_t id = 0; id + 3 < blocks; id += 4) {
            storage::BlockBuffer warm;
            reader.load_coarse(partition.block(id), warm);
            warm.release_storage();
        }
        core::PrefetchPipeline::Stats total;
        for (std::uint32_t base = 0; base + 3 < blocks; base += 4) {
            storage::BlockBufferPool pool;
            storage::AsyncLoader loader(reader, /*background=*/false,
                                        /*depth=*/4, &pool);
            core::PrefetchPipeline pipeline(loader, reader, pool,
                                            /*depth=*/4, &cache,
                                            queue_latency, window);
            for (std::uint32_t off = 1; off <= 3; ++off) {
                pipeline.speculate(partition.block(base + off));
            }
            storage::AsyncLoader::Request warm;
            warm.block = &partition.block(base); // cache hit
            auto served = pipeline.obtain(std::move(warm));
            pipeline.recycle(std::move(served.buffer));
            const graph::BlockInfo &claimed = partition.block(base + 1);
            storage::AsyncLoader::Request fine;
            fine.block = &claimed;
            fine.fine = true;
            for (graph::VertexId v = claimed.first_vertex;
                 v < claimed.end_vertex; v += 7) {
                fine.needed.push_back(v);
            }
            served = pipeline.obtain(std::move(fine));
            pipeline.recycle(std::move(served.buffer));
            pipeline.finish(); // base+2, base+3 are mispredicted
            const core::PrefetchPipeline::Stats &s = pipeline.stats();
            total.io_wait_seconds += s.io_wait_seconds;
            total.prefetch_hits += s.prefetch_hits;
            total.fine_loads += s.fine_loads;
            total.prefetch_mispredicts += s.prefetch_mispredicts;
        }
        if (window == 0) {
            fifo_wait = total.io_wait_seconds;
        }
        const double ratio = fifo_wait > 0.0
                                 ? total.io_wait_seconds / fifo_wait
                                 : 0.0;
        bench::print_table_row(
            {std::to_string(window),
             bench::fmt_double(total.io_wait_seconds, 6),
             bench::fmt_count(total.prefetch_hits),
             bench::fmt_count(total.prefetch_mispredicts),
             bench::fmt_double(ratio, 2)});
        bench::JsonRecord record;
        record.engine = "noswalker";
        record.dataset = "rmat-micro";
        record.workload =
            "prefetch_reorder_window_" + std::to_string(window);
        record.extras = {
            {"reorder_window", static_cast<double>(window)},
            {"io_wait_seconds", total.io_wait_seconds},
            {"prefetch_hits", static_cast<double>(total.prefetch_hits)},
            {"prefetch_mispredicts",
             static_cast<double>(total.prefetch_mispredicts)},
        };
        json.add(std::move(record));
    }
}

/**
 * Step-cohort ablation (DESIGN.md §12): the same walk at cohort size
 * 0 (legacy scalar loop), 4, 16, and 64, on a graph sized past L2 so
 * the adjacency reads the kernel prefetches actually miss the near
 * caches.  Walk output is bit-identical across rows — only measured
 * cpu_seconds and the kernel telemetry move.  cpu_seconds is measured
 * (not modeled), so rows are machine-dependent; each config reports
 * the best of five runs to damp scheduler noise.
 */
void
run_cohort_ablation(bench::JsonReporter &json)
{
    // A dedicated fixture, larger than the micro one: ~16 MiB of edge
    // data in two big blocks, so each loaded block far outsizes a
    // typical L2 and the adjacency reads the kernel prefetches would
    // otherwise miss into the outer caches.
    graph::CsrGraph graph =
        graph::generate_rmat({.scale = 17,
                              .edge_factor = 16,
                              .a = 0.57,
                              .b = 0.19,
                              .c = 0.19,
                              .seed = 11,
                              .symmetrize = true,
                              .weighted = false});
    storage::MemDevice device(storage::SsdModel::p4618());
    graph::GraphFile::write(graph, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(file, file.edge_region_bytes() / 2);

    const graph::VertexId n = file.num_vertices();
    const std::uint64_t walkers = 2ULL * n;
    std::printf("\nStep-cohort ablation: basic walk L=10, %llu walkers, "
                "%u blocks, %.1f MiB edge data\n",
                static_cast<unsigned long long>(walkers),
                static_cast<unsigned>(partition.num_blocks()),
                static_cast<double>(file.edge_region_bytes()) /
                    (1 << 20));
    bench::print_table_header(
        "Cohort", {"cohort", "cpu_s", "steps/cpu_s", "cohorts",
                   "sw_prefetches", "cpu vs scalar"});
    const std::vector<unsigned> cohorts{0u, 4u, 16u, 64u};
    std::vector<engine::RunStats> bests(cohorts.size());
    // Interleave the repetitions round-robin across configs: noise on
    // a shared machine drifts over seconds, and back-to-back reps of
    // one config would fold that drift into the cross-config ratios.
    // min-of-9 per config keeps the estimator below the drift floor.
    for (int rep = 0; rep < 9; ++rep) {
        for (std::size_t ci = 0; ci < cohorts.size(); ++ci) {
            apps::BasicRandomWalk app(10, n);
            core::EngineConfig cfg = core::EngineConfig::full(
                0, partition.max_block_bytes());
            cfg.step_cohort = cohorts[ci];
            core::NosWalkerEngine<apps::BasicRandomWalk> eng(
                file, partition, cfg);
            const auto s = eng.run(app, walkers);
            if (rep == 0 || s.cpu_seconds < bests[ci].cpu_seconds) {
                bests[ci] = s;
            }
        }
    }
    double scalar_cpu = 0.0;
    for (std::size_t ci = 0; ci < cohorts.size(); ++ci) {
        const unsigned cohort = cohorts[ci];
        const engine::RunStats &best = bests[ci];
        if (cohort == 0) {
            scalar_cpu = best.cpu_seconds;
        }
        const double ratio =
            scalar_cpu > 0.0 ? best.cpu_seconds / scalar_cpu : 0.0;
        bench::print_table_row(
            {std::to_string(cohort),
             bench::fmt_double(best.cpu_seconds, 4),
             bench::fmt_count(static_cast<std::uint64_t>(
                 best.cpu_seconds > 0.0
                     ? static_cast<double>(best.steps) / best.cpu_seconds
                     : 0.0)),
             bench::fmt_count(best.kernel_cohorts),
             bench::fmt_count(best.kernel_prefetches),
             cohort > 0 ? bench::fmt_double(ratio, 3) : "1.000"});
        bench::JsonRecord record;
        record.engine = best.engine;
        record.dataset = "rmat-cohort";
        record.workload = "step_cohort_" + std::to_string(cohort);
        record.steps = best.steps;
        record.io_busy_seconds = best.io_busy_seconds;
        record.cpu_seconds = best.cpu_seconds;
        record.peak_memory = best.peak_memory;
        record.extras = {
            {"step_cohort", static_cast<double>(cohort)},
            {"cpu_vs_scalar", ratio},
            {"kernel_cohorts",
             static_cast<double>(best.kernel_cohorts)},
            {"kernel_prefetches",
             static_cast<double>(best.kernel_prefetches)},
            {"kernel_scalar_fallbacks",
             static_cast<double>(best.kernel_scalar_fallbacks)},
        };
        json.add(std::move(record));
    }
}

/**
 * Plan-window ablation (DESIGN.md §13): the same walk at plan_window
 * 0 (greedy top-K nomination) / 2 / 4 / 8, depth-4 pipeline, against a
 * half-warm shared cache so residency credits and the one-step flow
 * estimate both engage.  Walk output is bit-identical across rows —
 * the planner only picks *speculative* loads; the modeled I/O clock
 * (io_busy / io_efficiency + io_wait, the same I/O term the Fig.14
 * breakdown bars use) is what moves.  At micro scale the measured
 * stepping CPU swamps the modeled device, so cpu_s is reported but
 * kept out of the ratio.
 */
void
run_plan_window_ablation(bench::JsonReporter &json)
{
    MicroFixture &f = fixture();
    const graph::VertexId n = f.file->num_vertices();
    const std::uint32_t blocks = f.partition->num_blocks();
    std::printf("\nPlan-window ablation: basic walk L=10, %u walkers, "
                "%u blocks, half-warm shared cache\n",
                static_cast<unsigned>(n), static_cast<unsigned>(blocks));
    bench::print_table_header(
        "PlanWindow",
        {"window", "io_model_s", "io_wait(s)", "planned", "rescores",
         "cache_credits", "cpu_s", "io vs greedy"});
    double greedy_io = 0.0;
    for (const unsigned window : {0u, 2u, 4u, 8u}) {
        // Fresh, identically half-warm cache per row: each run
        // publishes every block it loads, so a shared cache would leak
        // one row's loads into the next row's residency.
        util::MemoryBudget unbudgeted(0);
        storage::SharedBlockCache cache(f.file->edge_region_bytes() / 2);
        storage::BlockReader warm_reader(*f.file, unbudgeted, 8ULL << 20,
                                         &cache);
        for (std::uint32_t id = 0; id < blocks; id += 2) {
            storage::BlockBuffer buf;
            warm_reader.load_coarse(f.partition->block(id), buf);
            buf.release_storage();
        }
        apps::BasicRandomWalk app(10, n);
        core::EngineConfig cfg = core::EngineConfig::full(
            0, f.partition->max_block_bytes());
        cfg.prefetch_depth = 4;
        cfg.plan_window = window;
        core::NosWalkerEngine<apps::BasicRandomWalk> eng(
            *f.file, *f.partition, cfg);
        eng.set_shared_cache(&cache);
        const auto s = eng.run(app, n);
        const double io_model =
            s.io_busy_seconds / s.io_efficiency + s.io_wait_seconds;
        if (window == 0) {
            greedy_io = io_model;
        }
        const double ratio =
            greedy_io > 0.0 ? io_model / greedy_io : 0.0;
        bench::print_table_row(
            {std::to_string(window),
             bench::fmt_double(io_model, 6),
             bench::fmt_double(s.io_wait_seconds, 6),
             bench::fmt_count(s.planned_loads),
             bench::fmt_count(s.plan_rescores),
             bench::fmt_count(s.plan_cache_credits),
             bench::fmt_double(s.cpu_seconds, 4),
             bench::fmt_double(ratio, 3)});
        bench::JsonRecord record;
        record.engine = s.engine;
        record.dataset = "rmat-micro";
        record.workload = "plan_window_" + std::to_string(window);
        record.steps = s.steps;
        record.io_busy_seconds = s.io_busy_seconds;
        record.cpu_seconds = s.cpu_seconds;
        record.peak_memory = s.peak_memory;
        record.extras = {
            {"plan_window", static_cast<double>(window)},
            {"modeled_io_seconds", io_model},
            {"modeled_io_vs_greedy", ratio},
            {"io_wait_seconds", s.io_wait_seconds},
            {"graph_bytes_read",
             static_cast<double>(s.graph_bytes_read)},
            {"planned_loads", static_cast<double>(s.planned_loads)},
            {"plan_rescores", static_cast<double>(s.plan_rescores)},
            {"plan_cache_credits",
             static_cast<double>(s.plan_cache_credits)},
            {"cache_hit_blocks",
             static_cast<double>(s.cache_hit_blocks)},
            {"cache_miss_blocks",
             static_cast<double>(s.cache_miss_blocks)},
        };
        json.add(std::move(record));
    }
}

/** Basic walk whose every walker starts at vertex 0 — the
 *  concentrated single-source access pattern (PPR-style) that marches
 *  through the block sequence as a pack. */
class SourceWalk : public apps::BasicRandomWalk {
  public:
    SourceWalk(std::uint32_t length, graph::VertexId n)
        : apps::BasicRandomWalk(length, n)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        return WalkerT{n, 0, 0};
    }
};

/** Node2vec variant of the same pattern: every second-order walker
 *  starts at vertex 0.  GraSorw's trapezoid study predicts the
 *  largest load-ordering win for exactly this shape — second-order
 *  resolution touches the *next* block's adjacency, so starving the
 *  pipeline one block ahead is twice as expensive as first-order. */
class SourceNode2Vec : public apps::Node2Vec {
  public:
    SourceNode2Vec(std::uint32_t length, graph::VertexId n)
        : apps::Node2Vec(2.0, 0.5, length, n, 1)
    {
    }

    WalkerT
    generate(std::uint64_t n)
    {
        WalkerT w = apps::Node2Vec::generate(n);
        w.location = 0;
        return w;
    }
};

/**
 * Plan-window ablation, flow-lookahead scenario (DESIGN.md §13): a
 * single-source walk on a forward ring lattice (v → v+32..v+39 mod n)
 * marches as a pack through the block sequence.  At any moment only
 * the pack's block holds parked walkers, so the greedy top-K can
 * nominate at most one or two blocks and the depth-4 pipeline starves;
 * once the first lap has taught the planner the block-to-block flow,
 * the successor extension speculates the blocks the pack is *about* to
 * enter.  Walk output stays bit-identical; modeled io_wait drops with
 * W.
 */
template <typename App>
void
run_plan_march_case(const graph::GraphFile &file,
                    const graph::BlockPartition &partition,
                    bench::JsonReporter &json, const char *label,
                    std::uint32_t length, std::uint64_t walkers)
{
    double greedy_io = 0.0;
    for (const unsigned window : {0u, 2u, 4u, 8u}) {
        App app(length, file.num_vertices());
        core::EngineConfig cfg = core::EngineConfig::full(
            0, partition.max_block_bytes());
        cfg.prefetch_depth = 4;
        cfg.plan_window = window;
        // No presampling: the second lap must re-read every block, so
        // the flow table learned on lap one actually steers loads.
        cfg.presample = false;
        core::NosWalkerEngine<App> eng(file, partition, cfg);
        const auto s = eng.run(app, walkers);
        const double io_model =
            s.io_busy_seconds / s.io_efficiency + s.io_wait_seconds;
        if (window == 0) {
            greedy_io = io_model;
        }
        const double ratio =
            greedy_io > 0.0 ? io_model / greedy_io : 0.0;
        bench::print_table_row(
            {std::string(label) + " W=" + std::to_string(window),
             bench::fmt_double(io_model, 6),
             bench::fmt_double(s.io_wait_seconds, 6),
             bench::fmt_count(s.prefetch_hits),
             bench::fmt_count(s.planned_loads),
             bench::fmt_count(s.plan_rescores),
             bench::fmt_double(ratio, 3)});
        bench::JsonRecord record;
        record.engine = s.engine;
        record.dataset = "ring-march";
        record.workload = std::string("plan_march_") + label + "_" +
                          std::to_string(window);
        record.steps = s.steps;
        record.io_busy_seconds = s.io_busy_seconds;
        record.cpu_seconds = s.cpu_seconds;
        record.peak_memory = s.peak_memory;
        record.extras = {
            {"plan_window", static_cast<double>(window)},
            {"modeled_io_seconds", io_model},
            {"modeled_io_vs_greedy", ratio},
            {"io_wait_seconds", s.io_wait_seconds},
            {"prefetch_hits", static_cast<double>(s.prefetch_hits)},
            {"prefetch_mispredicts",
             static_cast<double>(s.prefetch_mispredicts)},
            {"planned_loads", static_cast<double>(s.planned_loads)},
            {"plan_rescores", static_cast<double>(s.plan_rescores)},
        };
        json.add(std::move(record));
    }
}

void
run_plan_march_ablation(bench::JsonReporter &json)
{
    graph::GraphBuilder builder;
    const graph::VertexId n = 1 << 13;
    for (graph::VertexId v = 0; v < n; ++v) {
        for (std::uint32_t j = 0; j < 8; ++j) {
            builder.add_edge(v, (v + 32 + j) % n);
        }
    }
    graph::CsrGraph graph =
        builder.build({.num_vertices = n});
    storage::MemDevice device(storage::SsdModel::p4618());
    graph::GraphFile::write(graph, device);
    graph::GraphFile file(device);
    graph::BlockPartition partition(file, file.edge_region_bytes() / 64);

    constexpr std::uint64_t kWalkers = 4096;
    constexpr std::uint32_t kLength = 512; // ~2 laps around the ring
    std::printf("\nPlan-window march ablation: single-source walks "
                "L=%u, %llu walkers, %u blocks on a forward ring\n",
                kLength, static_cast<unsigned long long>(kWalkers),
                static_cast<unsigned>(partition.num_blocks()));
    bench::print_table_header(
        "PlanMarch",
        {"case", "io_model_s", "io_wait(s)", "hits", "planned",
         "rescores", "io vs greedy"});
    run_plan_march_case<SourceWalk>(file, partition, json, "1st",
                                    kLength, kWalkers);
    run_plan_march_case<SourceNode2Vec>(file, partition, json, "n2v",
                                        kLength, kWalkers);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::JsonReporter json = bench::JsonReporter::from_args(argc, argv);
    // google-benchmark rejects flags it does not know; strip --json
    // before handing argv over.
    std::vector<char *> bench_args;
    for (int i = 0; i < argc; ++i) {
        if (std::string_view(argv[i]) == "--json" && i + 1 < argc) {
            ++i;
            continue;
        }
        bench_args.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(bench_args.size());
    benchmark::Initialize(&bench_argc, bench_args.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                               bench_args.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    run_prefetch_ablation(json);
    run_reorder_ablation(json);
    run_cohort_ablation(json);
    run_plan_window_ablation(json);
    run_plan_march_ablation(json);
    return 0;
}
