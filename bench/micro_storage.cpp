/**
 * @file
 * Google-benchmark microbenchmarks of the substrates: the §3.3.1 SSD
 * tradeoff under the cost model, block-reader coarse/fine paths, alias
 * sampling, pre-sample buffer operations, and the RNG.
 */
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/presample_buffer.hpp"
#include "graph/generators.hpp"
#include "graph/graph_file.hpp"
#include "graph/partition.hpp"
#include "storage/block_reader.hpp"
#include "storage/mem_device.hpp"
#include "util/alias_table.hpp"
#include "util/rng.hpp"

using namespace noswalker;

namespace {

struct MicroFixture {
    MicroFixture()
    {
        graph = graph::generate_rmat({.scale = 12,
                                      .edge_factor = 16,
                                      .a = 0.57,
                                      .b = 0.19,
                                      .c = 0.19,
                                      .seed = 7,
                                      .symmetrize = false,
                                      .weighted = false});
        device = std::make_unique<storage::MemDevice>(
            storage::SsdModel::p4618());
        graph::GraphFile::write(graph, *device);
        file = std::make_unique<graph::GraphFile>(*device);
        partition = std::make_unique<graph::BlockPartition>(
            *file, file->edge_region_bytes() / 32);
    }

    graph::CsrGraph graph;
    std::unique_ptr<storage::MemDevice> device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;
};

MicroFixture &
fixture()
{
    static MicroFixture f;
    return f;
}

void
BM_SsdModelRequest(benchmark::State &state)
{
    const storage::SsdModel m = storage::SsdModel::p4618();
    const auto len = static_cast<std::uint64_t>(state.range(0));
    double total = 0.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(total += m.request_seconds(len));
    }
    state.counters["modeled_MiBps"] = benchmark::Counter(
        static_cast<double>(len) / m.request_seconds(len) / (1 << 20));
}
BENCHMARK(BM_SsdModelRequest)->Arg(4096)->Arg(64 << 10)->Arg(8 << 20);

void
BM_CoarseBlockLoad(benchmark::State &state)
{
    MicroFixture &f = fixture();
    util::MemoryBudget budget(0);
    storage::BlockReader reader(*f.file, budget);
    storage::BlockBuffer buffer;
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto r =
            reader.load_coarse(f.partition->block(0), buffer);
        bytes += r.bytes_read;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CoarseBlockLoad);

void
BM_FineBlockLoad(benchmark::State &state)
{
    MicroFixture &f = fixture();
    util::MemoryBudget budget(0);
    storage::BlockReader reader(*f.file, budget);
    storage::BlockBuffer buffer;
    const graph::BlockInfo &block = f.partition->block(0);
    std::vector<graph::VertexId> needed;
    const auto count = static_cast<graph::VertexId>(state.range(0));
    for (graph::VertexId v = block.first_vertex;
         v < block.first_vertex + count && v < block.end_vertex; ++v) {
        needed.push_back(v);
    }
    std::uint64_t bytes = 0;
    for (auto _ : state) {
        const auto r = reader.load_fine(block, needed, buffer);
        bytes += r.bytes_read;
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_FineBlockLoad)->Arg(1)->Arg(16)->Arg(256);

void
BM_AliasTableSample(benchmark::State &state)
{
    util::Rng rng(3);
    std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
    for (double &w : weights) {
        w = rng.next_double() + 0.01;
    }
    util::AliasTable table(weights);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sink += table.sample(rng));
    }
}
BENCHMARK(BM_AliasTableSample)->Arg(8)->Arg(1024)->Arg(1 << 16);

void
BM_PreSampleBuildAndDrain(benchmark::State &state)
{
    MicroFixture &f = fixture();
    util::MemoryBudget unbudgeted(0);
    storage::BlockReader reader(*f.file, unbudgeted);
    storage::BlockBuffer buffer;
    const graph::BlockInfo &block = f.partition->block(0);
    reader.load_coarse(block, buffer);
    util::Rng rng(5);
    core::PreSampleBuffer::BuildParams params;
    params.max_bytes = 1 << 20;
    for (auto _ : state) {
        util::MemoryBudget budget(0);
        core::PreSampleBuffer ps(*f.file, block, params, nullptr,
                                 budget);
        auto sampler = [&](const graph::VertexView &view) {
            return view.sample_uniform(rng);
        };
        for (graph::VertexId v = block.first_vertex;
             v < block.end_vertex; ++v) {
            if (ps.quota(v) > 0) {
                ps.fill_vertex(buffer.view(*f.file, v), sampler);
            }
        }
        std::uint64_t drained = 0;
        for (graph::VertexId v = block.first_vertex;
             v < block.end_vertex; ++v) {
            if (!ps.has(v) || ps.is_direct(v)) {
                continue;
            }
            const std::uint32_t q = ps.quota(v);
            for (std::uint32_t i = 0; i < q; ++i) {
                benchmark::DoNotOptimize(ps.sample(v, rng));
                ps.consume(v);
                ++drained;
            }
        }
        benchmark::DoNotOptimize(drained);
    }
}
BENCHMARK(BM_PreSampleBuildAndDrain);

void
BM_RngNextIndex(benchmark::State &state)
{
    util::Rng rng(9);
    std::uint64_t sink = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sink += rng.next_index(1000003));
    }
}
BENCHMARK(BM_RngNextIndex);

} // namespace

BENCHMARK_MAIN();
