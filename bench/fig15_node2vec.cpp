/**
 * @file
 * Figure 15 reproduction: second-order Node2Vec walk generation,
 * NosWalker (rejection-sampling decoupled workflow, Appendix A) vs
 * GraSorw (triangular bi-block scheduling).  Paper settings scaled:
 * p = 2, q = 0.5, L = 10, walkers per vertex 10 → 2, on undirected
 * versions of TW'/YH'/K30'/K31'.
 *
 * Expected shape: ~3x on the in-memory-sized TW', growing to 10–49x
 * on the twins larger than the budget.
 */
#include <cstdio>

#include "apps/node2vec.hpp"
#include "baselines/grasorw.hpp"
#include "bench_common.hpp"
#include "graph/builder.hpp"

using namespace noswalker;

namespace {

/** Undirected (symmetrized) variant of a twin, as Node2Vec requires. */
struct UndirectedHandle {
    graph::CsrGraph graph;
    std::unique_ptr<storage::MemDevice> device;
    std::unique_ptr<graph::GraphFile> file;
    std::unique_ptr<graph::BlockPartition> partition;
};

UndirectedHandle
make_undirected(const bench::GraphHandle &handle)
{
    UndirectedHandle u;
    std::vector<graph::Edge> edges;
    edges.reserve(handle.reference.num_edges());
    for (graph::VertexId v = 0; v < handle.reference.num_vertices();
         ++v) {
        for (graph::VertexId t : handle.reference.neighbors(v)) {
            edges.push_back({v, t, 1.0f});
        }
    }
    graph::BuildOptions opt;
    opt.symmetrize = true;
    opt.dedup = true;
    opt.num_vertices = handle.reference.num_vertices();
    u.graph = graph::build_csr(std::move(edges), opt);
    u.device = std::make_unique<storage::MemDevice>(
        storage::SsdModel::p4618());
    graph::GraphFile::write(u.graph, *u.device);
    u.file = std::make_unique<graph::GraphFile>(*u.device);
    const std::uint64_t block_bytes = std::max<std::uint64_t>(
        16 * 1024, u.file->edge_region_bytes() / 32);
    u.partition =
        std::make_unique<graph::BlockPartition>(*u.file, block_bytes);
    return u;
}

} // namespace

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor
    const graph::DatasetId graphs[] = {
        graph::DatasetId::kTwitter, graph::DatasetId::kYahoo,
        graph::DatasetId::kKron30, graph::DatasetId::kKron31};

    bench::print_table_header(
        "Fig 15: Node2Vec (p=2, q=0.5, L=10, 2 walkers/vertex)",
        {"Dataset", "GraSorw", "NosWalker", "speedup", "io GS",
         "io NW"});
    for (const graph::DatasetId id : graphs) {
        bench::GraphHandle &h = env.get(id);
        UndirectedHandle u = make_undirected(h);
        const std::uint64_t budget = std::max(
            bench::BenchEnv::floor_for(h),
            static_cast<std::uint64_t>(
                0.12 *
                static_cast<double>(
                    env.get(graph::DatasetId::kCrawlWeb)
                        .file->file_bytes())));

        apps::Node2Vec a1(2.0, 0.5, 10, u.file->num_vertices(), 2);
        baselines::GraSorwEngine<apps::Node2Vec> gs(*u.file,
                                                    *u.partition, budget);
        const auto sg = gs.run(a1, a1.total_walkers());

        apps::Node2Vec a2(2.0, 0.5, 10, u.file->num_vertices(), 2);
        core::EngineConfig cfg = core::EngineConfig::full(
            budget, u.partition->target_block_bytes());
        core::NosWalkerEngine<apps::Node2Vec> nw(*u.file, *u.partition,
                                                 cfg);
        const auto sn = nw.run(a2, a2.total_walkers());

        bench::print_table_row(
            {h.spec.name, bench::fmt_double(sg.modeled_seconds(), 4),
             bench::fmt_double(sn.modeled_seconds(), 4),
             bench::fmt_double(sg.modeled_seconds() /
                                   sn.modeled_seconds(),
                               1) +
                 "x",
             bench::fmt_bytes(sg.total_io_bytes()),
             bench::fmt_bytes(sn.total_io_bytes())});
    }
    return 0;
}
