/**
 * @file
 * Figure 13 reproduction: sensitivity to graph structure.  The five
 * workloads (Basic-RW, RWD, GC, PPR, SR) on the power-law K30' and
 * the flat G12' / α2.7' twins, GraphWalker vs NosWalker.
 *
 * Expected shape: NosWalker keeps a clear win on the flat graphs, but
 * the speedup shrinks versus K30' because pre-sampling pays less on
 * low-degree vertices (Basic-RW 18x→8x, PPR 35x→20x, SR 25x→21x in
 * the paper).
 */
#include <cstdio>

#include "apps/basic_rw.hpp"
#include "apps/graphlet.hpp"
#include "apps/ppr.hpp"
#include "apps/rwd.hpp"
#include "apps/simrank.hpp"
#include "baselines/graphwalker.hpp"
#include "bench_common.hpp"

using namespace noswalker;

namespace {

template <typename App, typename MakeApp>
void
run_workload(bench::BenchEnv &env, const char *name, MakeApp &&make)
{
    const graph::DatasetId graphs[] = {graph::DatasetId::kKron30,
                                       graph::DatasetId::kG12,
                                       graph::DatasetId::kAlpha27};
    bench::print_table_header(
        std::string("Fig 13: ") + name,
        {"Dataset", "GraphWalker", "NosWalker", "speedup"});
    for (const graph::DatasetId id : graphs) {
        bench::GraphHandle &h = env.get(id);
        const std::uint64_t budget = env.budget_for(h);
        auto a1 = make(h);
        baselines::GraphWalkerEngine<App> gw(*h.file, *h.partition,
                                             budget);
        const double tg =
            gw.run(a1, a1.total_walkers()).modeled_seconds();
        auto a2 = make(h);
        core::NosWalkerEngine<App> nw(*h.file, *h.partition,
                                      env.noswalker_config(h));
        const double tn =
            nw.run(a2, a2.total_walkers()).modeled_seconds();
        bench::print_table_row({h.spec.name, bench::fmt_double(tg, 4),
                                bench::fmt_double(tn, 4),
                                bench::fmt_double(tg / tn, 1) + "x"});
    }
}

/** Basic-RW wrapper exposing total_walkers(). */
class BasicWorkload : public apps::BasicRandomWalk {
  public:
    BasicWorkload(std::uint32_t length, graph::VertexId v,
                  std::uint64_t walkers)
        : apps::BasicRandomWalk(length, v), walkers_(walkers)
    {
    }
    std::uint64_t total_walkers() const { return walkers_; }

  private:
    std::uint64_t walkers_;
};

} // namespace

int
main()
{
    bench::BenchEnv env;
    env.get(graph::DatasetId::kCrawlWeb); // budget anchor

    run_workload<BasicWorkload>(env, "Basic-RW", [](bench::GraphHandle &h) {
        // Paper: 1 billion walkers ≈ one per K30 vertex.
        return BasicWorkload(10, h.file->num_vertices(),
                             h.file->num_vertices());
    });
    run_workload<apps::RandomWalkDomination>(
        env, "RWD", [](bench::GraphHandle &h) {
            return apps::RandomWalkDomination(h.file->num_vertices(), 6,
                                              false);
        });
    run_workload<apps::GraphletConcentration>(
        env, "GC", [](bench::GraphHandle &h) {
            return apps::GraphletConcentration(
                h.file->num_vertices(),
                std::max<std::uint64_t>(64,
                                        h.file->num_vertices() / 100),
                3);
        });
    run_workload<apps::PersonalizedPageRank>(
        env, "PPR", [](bench::GraphHandle &h) {
            const graph::VertexId v = h.file->num_vertices();
            return apps::PersonalizedPageRank({v / 7, v / 3, v / 2, v - 1},
                                              200, 10);
        });
    run_workload<apps::SimRank>(env, "SR", [](bench::GraphHandle &h) {
        const graph::VertexId v = h.file->num_vertices();
        return apps::SimRank(v / 5, v / 2, 200, 11);
    });
    return 0;
}
